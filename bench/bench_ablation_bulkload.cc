// Reproduces the §1 claim: bulk loading an R*-tree is far cheaper than
// building it with repeated inserts. The paper measured 109.9 s (bulk) vs
// 864.5 s (inserts) for 122K hydrography objects with a 16 MB buffer pool —
// a 7.9x gap. This bench builds the index on the synthetic hydrography both
// ways and reports the ratio.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/index_build.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Ablation (S1 claim): bulk load vs repeated inserts");
  PrintScaleBanner(scale);
  PrintNote("paper: 122K hydrography objects, 16MB pool: bulk load 109.9s "
            "vs 864.5s with inserts (7.9x)");

  const PaperCardinalities card;
  TigerGenerator gen(TigerGenerator::Params{});
  const auto hydro = gen.GenerateHydrography(Scaled(card.hydro, scale));
  const size_t pool_bytes =
      std::max<size_t>(static_cast<size_t>(16.0 * 1024 * 1024 * scale),
                       32 * kPageSize);

  double bulk_total = 0, insert_total = 0;
  {
    Workspace ws(pool_bytes);
    auto rel = LoadRelation(ws.pool(), nullptr, "hydro", hydro);
    PBSM_CHECK(rel.ok()) << rel.status().ToString();
    ws.disk()->ResetStats();
    Stopwatch watch;
    auto idx = BuildIndexByBulkLoad(ws.pool(), rel->AsInput(),
                                    "bulk.rtree", 0.75);
    PBSM_CHECK(idx.ok()) << idx.status().ToString();
    PBSM_CHECK(ws.pool()->FlushAll().ok());
    bulk_total = watch.ElapsedSeconds() * CpuScale() +
                 ws.disk()->stats().modeled_seconds;
    auto stats = idx->ComputeStats();
    PBSM_CHECK(stats.ok());
    std::printf("  bulk load:        %8.2fs (cpu96+modeled io), height=%u, "
                "nodes=%u\n",
                bulk_total, stats->height, stats->num_nodes);
  }
  {
    Workspace ws(pool_bytes);
    auto rel = LoadRelation(ws.pool(), nullptr, "hydro", hydro);
    PBSM_CHECK(rel.ok()) << rel.status().ToString();
    ws.disk()->ResetStats();
    Stopwatch watch;
    auto idx = BuildIndexByInserts(ws.pool(), rel->AsInput(), "ins.rtree");
    PBSM_CHECK(idx.ok()) << idx.status().ToString();
    PBSM_CHECK(ws.pool()->FlushAll().ok());
    insert_total = watch.ElapsedSeconds() * CpuScale() +
                   ws.disk()->stats().modeled_seconds;
    auto stats = idx->ComputeStats();
    PBSM_CHECK(stats.ok());
    std::printf("  repeated inserts: %8.2fs (cpu96+modeled io), height=%u, "
                "nodes=%u\n",
                insert_total, stats->height, stats->num_nodes);
  }
  std::printf("  insert/bulk ratio: %.2fx (paper: 7.9x)\n",
              insert_total / bulk_total);
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
