// Ablation: Hilbert vs Z-order spatial sorting for R*-tree bulk loading.
// The paper's Paradise bulk loader sorts key-pointers by the Hilbert value
// of the MBR center (§4.1); Z-order (the basis of Orenstein's z-value
// methods the paper cites) is the classic alternative. Better locality in
// the sort order gives leaves with tighter MBRs and hence fewer node reads
// per window query.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "geom/hilbert.h"
#include "rtree/rstar_tree.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Ablation: Hilbert vs Z-order bulk-load sort (R*-tree query "
             "I/O)");
  PrintScaleBanner(scale);
  PrintNote("expectation: Hilbert-packed leaves have tighter MBRs, so "
            "window queries touch fewer pages than Z-order-packed ones");

  TigerGenerator gen(TigerGenerator::Params{});
  const PaperCardinalities card;
  const auto roads = gen.GenerateRoads(Scaled(card.road, scale));
  Rect universe;
  std::vector<RTreeEntry> entries;
  entries.reserve(roads.size());
  for (size_t i = 0; i < roads.size(); ++i) {
    entries.push_back(RTreeEntry{roads[i].geometry.Mbr(), i});
    universe.Expand(roads[i].geometry.Mbr());
  }

  for (const auto kind : {SpaceFillingCurve::Kind::kHilbert,
                          SpaceFillingCurve::Kind::kZOrder}) {
    // Sort by the chosen curve and pack with the streaming bulk loader.
    const SpaceFillingCurve curve(kind, universe);
    std::vector<std::pair<uint64_t, size_t>> keyed(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      keyed[i] = {curve.Key(entries[i].mbr), i};
    }
    std::sort(keyed.begin(), keyed.end());

    // A small pool (48 frames) so queries must do physical reads.
    Workspace ws(48 * kPageSize);
    size_t index = 0;
    auto tree = RStarTree::BulkLoadSorted(
        ws.pool(), "curve.rtree",
        [&](RTreeEntry* out) -> Result<bool> {
          if (index >= keyed.size()) return false;
          *out = entries[keyed[index++].second];
          return true;
        },
        0.75);
    PBSM_CHECK(tree.ok()) << tree.status().ToString();

    // Measure physical reads over a fixed window-query workload.
    ws.disk()->ResetStats();
    Rng rng(11);
    std::vector<uint64_t> hits;
    uint64_t total_hits = 0;
    for (int q = 0; q < 2000; ++q) {
      hits.clear();
      const double x = rng.UniformDouble(universe.xlo, universe.xhi);
      const double y = rng.UniformDouble(universe.ylo, universe.yhi);
      const Rect window(x, y, x + universe.width() / 50,
                        y + universe.height() / 50);
      PBSM_CHECK(tree->WindowQuery(window, &hits).ok());
      total_hits += hits.size();
    }
    auto stats = tree->ComputeStats();
    PBSM_CHECK(stats.ok());
    std::printf(
        "  %-8s sort: %u nodes, height %u, %llu hits, physical reads "
        "during 2000 queries: %llu\n",
        kind == SpaceFillingCurve::Kind::kHilbert ? "Hilbert" : "Z-order",
        stats->num_nodes, stats->height,
        static_cast<unsigned long long>(total_hits),
        static_cast<unsigned long long>(ws.disk()->stats().reads));
  }
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
