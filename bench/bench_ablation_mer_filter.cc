// Reproduces the §4.4 discussion of BKSS94 multi-step refinement: storing a
// maximal enclosed rectangle (MER) with each polygon lets a containment
// refinement short-circuit — if MBR(island) fits inside MER(polygon), the
// pair is a result without running the exact geometry test. The paper
// projects an order-of-magnitude refinement saving in many cases and notes
// PBSM's relative performance would improve further.
//
// Runs the Sequoia containment join with and without the MER pre-filter.

#include <cstdio>

#include "bench/join_bench.h"

namespace pbsm {
namespace bench {
namespace {

double RefinementSeconds(const JoinCostBreakdown& cost) {
  for (const auto& [name, phase] : cost.phases) {
    if (name == "refinement") return PaperSeconds(phase);
  }
  return 0.0;
}

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Ablation (S4.4 / BKSS94): MBR/MER refinement pre-filter, "
             "Sequoia containment join");
  PrintScaleBanner(scale);
  PrintNote("paper: refinement dominates the Sequoia join (79% of PBSM's "
            "cost); an MER pre-filter cuts it by skipping exact tests");

  const SequoiaData sequoia = GenSequoia(scale);
  const auto pools = PoolSizes(scale);
  const size_t pool_bytes = pools[2].second;

  for (const bool use_mer : {false, true}) {
    for (const auto mode :
         {SegmentTestMode::kPlaneSweep, SegmentTestMode::kNaive}) {
      Workspace ws(pool_bytes);
      auto r = LoadRelation(ws.pool(), nullptr, "polygon", sequoia.polygons,
                            /*clustered=*/false, /*precompute_mers=*/true);
      PBSM_CHECK(r.ok()) << r.status().ToString();
      auto s = LoadRelation(ws.pool(), nullptr, "island", sequoia.islands);
      PBSM_CHECK(s.ok()) << s.status().ToString();
      ws.disk()->ResetStats();
      JoinOptions opts = MakeJoinOptions(pool_bytes);
      opts.use_mer_filter = use_mer;
      opts.refinement_mode = mode;
      JoinSpec spec;
      spec.method = JoinMethod::kPbsm;
      spec.predicate = SpatialPredicate::kContains;
      spec.options = opts;
      auto joined = SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), spec);
      PBSM_CHECK(joined.ok()) << joined.status().ToString();
      const JoinCostBreakdown* cost = &joined->breakdown;
      std::printf(
          "  mer=%-5s exact=%-11s refinement=%8.3fs total=%8.3fs "
          "results=%llu\n",
          use_mer ? "on" : "off",
          mode == SegmentTestMode::kNaive ? "naive" : "plane-sweep",
          RefinementSeconds(*cost), PaperSeconds(cost->Total()),
          static_cast<unsigned long long>(cost->results));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
