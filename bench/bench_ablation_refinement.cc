// Reproduces the §4.4 refinement observation: without the plane-sweep
// algorithm for the exact polyline-intersection test, the refinement step's
// cost increases by ~62%. Runs PBSM Road JOIN Hydrography with the
// plane-sweep refinement and with the naive all-pairs segment test, and
// compares the refinement-phase and total costs.
//
// Also reports the interval-tree sweep variant of the *filter* step's
// partition merge (the §3.1 footnote), as an extra ablation.

#include <cstdio>

#include "bench/join_bench.h"

namespace pbsm {
namespace bench {
namespace {

double RefinementSeconds(const JoinCostBreakdown& cost) {
  for (const auto& [name, phase] : cost.phases) {
    if (name == "refinement") return PaperSeconds(phase);
  }
  return 0.0;
}

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Ablation (S4.4): refinement with plane sweep vs naive "
             "segment tests");
  PrintScaleBanner(scale);
  PrintNote("paper: dropping the plane-sweep refinement increases the "
            "refinement step's cost by ~62%");

  const TigerData tiger = GenTiger(scale);
  const auto pools = PoolSizes(scale);
  const size_t pool_bytes = pools[2].second;  // The 24MB point.

  double sweep_refine = 0.0;
  struct Config {
    const char* label;
    SegmentTestMode mode;
    SweepAlgorithm filter_sweep;
  };
  static const Config kConfigs[] = {
      {"plane-sweep refinement", SegmentTestMode::kPlaneSweep,
       SweepAlgorithm::kForwardSweep},
      {"naive refinement", SegmentTestMode::kNaive,
       SweepAlgorithm::kForwardSweep},
      {"interval-tree filter sweep", SegmentTestMode::kPlaneSweep,
       SweepAlgorithm::kIntervalTreeSweep},
  };
  for (const Config& c : kConfigs) {
    Workspace ws(pool_bytes);
    auto r = LoadRelation(ws.pool(), nullptr, "road", tiger.roads);
    PBSM_CHECK(r.ok()) << r.status().ToString();
    auto s = LoadRelation(ws.pool(), nullptr, "hydro", tiger.hydro);
    PBSM_CHECK(s.ok()) << s.status().ToString();
    ws.disk()->ResetStats();
    JoinOptions opts = MakeJoinOptions(pool_bytes);
    opts.refinement_mode = c.mode;
    opts.sweep = c.filter_sweep;
    JoinSpec spec;
    spec.method = JoinMethod::kPbsm;
    spec.options = opts;
    auto joined = SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), spec);
    PBSM_CHECK(joined.ok()) << joined.status().ToString();
    const JoinCostBreakdown* cost = &joined->breakdown;
    const double refine = RefinementSeconds(*cost);
    if (c.mode == SegmentTestMode::kPlaneSweep &&
        c.filter_sweep == SweepAlgorithm::kForwardSweep) {
      sweep_refine = refine;
    }
    std::printf("  %-28s refinement=%8.3fs total=%8.3fs results=%llu\n",
                c.label, refine, PaperSeconds(cost->Total()),
                static_cast<unsigned long long>(cost->results));
  }
  if (sweep_refine > 0) {
    std::printf("  (naive vs plane-sweep refinement overhead shown above; "
                "paper measured +62%%)\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
