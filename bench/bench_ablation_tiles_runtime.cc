// Reproduces the §4.3 observation: the number of tiles used by the PBSM
// partitioning function has a very small effect (< 5%) on total execution
// time — it changes replication and balance, but both effects are minor at
// reasonable tile counts.

#include <cstdio>

#include "bench/join_bench.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Ablation (S4.3): PBSM total time vs number of tiles");
  PrintScaleBanner(scale);
  PrintNote("paper: changing the tile count moved PBSM's total execution "
            "time by < 5% (1024 tiles used everywhere else)");

  const TigerData tiger = GenTiger(scale);
  const auto pools = PoolSizes(scale);
  const size_t pool_bytes = pools[1].second;  // The 8MB point.

  double base_total = 0.0;
  for (const uint32_t tiles : {64u, 256u, 1024u, 2048u, 4096u}) {
    Workspace ws(pool_bytes);
    auto r = LoadRelation(ws.pool(), nullptr, "road", tiger.roads);
    PBSM_CHECK(r.ok()) << r.status().ToString();
    auto s = LoadRelation(ws.pool(), nullptr, "hydro", tiger.hydro);
    PBSM_CHECK(s.ok()) << s.status().ToString();
    ws.disk()->ResetStats();
    JoinOptions opts = MakeJoinOptions(pool_bytes);
    opts.num_tiles = tiles;
    JoinSpec spec;
    spec.method = JoinMethod::kPbsm;
    spec.options = opts;
    auto joined = SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), spec);
    PBSM_CHECK(joined.ok()) << joined.status().ToString();
    const JoinCostBreakdown* cost = &joined->breakdown;
    const double total = PaperSeconds(cost->Total());
    if (tiles == 1024u) base_total = total;
    std::printf("  %5u tiles: total=%8.3fs  partitions=%u replicated=%llu "
                "candidates=%llu results=%llu\n",
                tiles, total, cost->num_partitions,
                static_cast<unsigned long long>(cost->replicated),
                static_cast<unsigned long long>(cost->candidates),
                static_cast<unsigned long long>(cost->results));
  }
  (void)base_total;
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
