// Reproduces Tables 2 and 3: data set inventories (cardinality, stored
// size, bulk-loaded R*-tree size) for the synthetic TIGER and Sequoia data.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/index_build.h"
#include "rtree/rstar_tree.h"

namespace pbsm {
namespace bench {
namespace {

struct PaperRow {
  const char* name;
  uint64_t objects;
  double data_mb;
  double index_mb;
};

void Report(Workspace* ws, const char* name, std::vector<Tuple> tuples,
            const PaperRow& paper, double scale) {
  auto rel = LoadRelation(ws->pool(), nullptr, name, std::move(tuples));
  PBSM_CHECK(rel.ok()) << rel.status().ToString();
  auto index = BuildIndexByBulkLoad(ws->pool(), rel->AsInput(),
                                    std::string(name) + ".rtree", 0.75);
  PBSM_CHECK(index.ok()) << index.status().ToString();
  auto stats = index->ComputeStats();
  PBSM_CHECK(stats.ok()) << stats.status().ToString();

  const double data_mb =
      static_cast<double>(rel->info.total_bytes) / (1024 * 1024);
  const double index_mb =
      static_cast<double>(stats->size_bytes) / (1024 * 1024);
  std::printf(
      "  %-12s objects=%8llu (paper %8llu x%.2f)  data=%7.2f MB (paper "
      "%6.1f x%.2f)  rtree=%6.2f MB (paper %5.1f x%.2f)  avg_pts=%5.1f\n",
      name, static_cast<unsigned long long>(rel->info.cardinality),
      static_cast<unsigned long long>(paper.objects), scale, data_mb,
      paper.data_mb, scale, index_mb, paper.index_mb, scale,
      rel->info.avg_points());
  PBSM_CHECK(ws->pool()->DropFile(index->file()).ok());
  PBSM_CHECK(ws->pool()->DropFile(rel->heap.file()).ok());
}

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Tables 2 & 3: data set inventories");
  PrintScaleBanner(scale);
  PrintNote("paper columns are the full-size TIGER/Sequoia values; compare "
            "against paper * scale");

  Workspace ws(64 << 20);
  TigerData tiger = GenTiger(scale);
  Report(&ws, "Road", std::move(tiger.roads),
         {"Road", 456613, 62.4, 24.0}, scale);
  Report(&ws, "Hydrography", std::move(tiger.hydro),
         {"Hydrography", 122149, 25.2, 6.5}, scale);
  Report(&ws, "Rail", std::move(tiger.rail), {"Rail", 16844, 2.4, 1.0},
         scale);

  SequoiaData sequoia = GenSequoia(scale);
  Report(&ws, "Polygon", std::move(sequoia.polygons),
         {"Polygon", 58115, 21.9, 3.2}, scale);
  Report(&ws, "Island", std::move(sequoia.islands),
         {"Island", 20000, 6.4, 1.1}, scale);
  PrintNote("(paper does not report island cardinality/sizes; 20,000 "
            "objects assumed)");
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
