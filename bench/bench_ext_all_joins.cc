// Extension bench: the full Table 1 line-up on one workload. The paper's
// classification (§2, Table 1) covers four families; this repository
// implements one member of each, joined here on Road x Hydrography:
//
//   transform, no index ........ ZOrderJoin        [Ore86, OM88]
//   direct 2-D, needs indices .. RtreeJoin         [BKS93]
//   direct 2-D, builds index ... IndexedNestedLoops (paper's INL)
//   direct 2-D, no index ....... PBSM (the paper) and
//                                SpatialHashJoin   [LR96]
//
// Expected shape: the two partition-based no-index algorithms (PBSM and
// the spatial hash join) lead; the z-transform trails even at its best
// grid; INL trails until the pool holds the indexed input.

#include <cstdio>

#include "bench/join_bench.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Extension: all five join algorithms (Table 1 line-up), "
             "Road JOIN Hydrography");
  PrintScaleBanner(scale);
  PrintNote("families per the paper's Table 1: PBSM & spatial-hash "
            "(partition, no index), R-tree join (tree indices), INL "
            "(build+probe index), z-join (1-D transform)");

  const TigerData tiger = GenTiger(scale);
  for (const auto& [pool_label, pool_bytes] : PoolSizes(scale)) {
    std::printf("  -- buffer pool %s --\n", pool_label.c_str());
    JoinBenchSpec spec;
    spec.r_tuples = &tiger.roads;
    spec.s_tuples = &tiger.hydro;
    spec.r_name = "road";
    spec.s_name = "hydrography";

    static const char* kNames[] = {"PBSM", "R-tree join", "Idx nested loops"};
    for (int algo = 0; algo < 3; ++algo) {
      PrintJoinRow(kNames[algo], RunOneJoin(spec, pool_bytes, algo));
    }
    {
      Workspace ws(pool_bytes);
      auto r = LoadRelation(ws.pool(), nullptr, "road", tiger.roads);
      PBSM_CHECK(r.ok()) << r.status().ToString();
      auto s = LoadRelation(ws.pool(), nullptr, "hydro", tiger.hydro);
      PBSM_CHECK(s.ok()) << s.status().ToString();
      ws.disk()->ResetStats();
      JoinSpec join_spec;
      join_spec.method = JoinMethod::kSpatialHash;
      join_spec.options = MakeJoinOptions(pool_bytes);
      auto joined =
          SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), join_spec);
      PBSM_CHECK(joined.ok()) << joined.status().ToString();
      PrintJoinRow("Spatial hash join (LR96)", joined->breakdown);
    }
    {
      Workspace ws(pool_bytes);
      auto r = LoadRelation(ws.pool(), nullptr, "road", tiger.roads);
      PBSM_CHECK(r.ok()) << r.status().ToString();
      auto s = LoadRelation(ws.pool(), nullptr, "hydro", tiger.hydro);
      PBSM_CHECK(s.ok()) << s.status().ToString();
      ws.disk()->ResetStats();
      JoinSpec join_spec;
      join_spec.method = JoinMethod::kZOrder;
      join_spec.zorder.max_level = 8;
      // Its best grid (bench_ext_zorder).
      join_spec.zorder.max_cells_per_object = 4;
      join_spec.options = MakeJoinOptions(pool_bytes);
      auto joined =
          SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), join_spec);
      PBSM_CHECK(joined.ok()) << joined.status().ToString();
      PrintJoinRow("Z-transform join (Ore86)", joined->breakdown);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
