// Extension bench: the *real* multi-threaded PBSM executor
// (ParallelPbsmJoin), as opposed to the simulated shared-nothing cluster of
// bench_ext_parallel_pbsm. Sweeps the worker-thread count on the TIGER-like
// Road ⋈ Hydrography workload and emits one JSON object per configuration:
//
//   {"threads": N, "wall_seconds": ..., "wall_speedup": ...,
//    "critical_path_speedup": ..., "sweep_balance_cov": ..., ...}
//
// wall_speedup is single-thread wall / N-thread wall on *this* host; it is
// capped by the host's core count. critical_path_speedup is total task busy
// time / busiest worker's busy time — the speedup the same decomposition
// achieves once every worker has its own core, and the trajectory metric
// tracked in bench/results/parallel_exec_baseline.json.
//
// Set PBSM_JSON_OUT=<path> to also append the JSON lines to a file.

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/spatial_join.h"
#include "datagen/loader.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const unsigned hw = static_cast<unsigned>(ThreadPool::DefaultThreads());
  PrintTitle("Extension: real multi-threaded PBSM executor");
  PrintScaleBanner(scale);
  std::printf("  hardware_concurrency=%u (wall speedup is capped by this; "
              "critical_path_speedup measures the decomposition)\n", hw);

  FILE* json_out = nullptr;
  if (const char* path = std::getenv("PBSM_JSON_OUT")) {
    json_out = std::fopen(path, "a");
  }

  const TigerData tiger = GenTiger(scale);

  // Thread ladder: 1,2,4,... up to at least 8 so the decomposition metrics
  // are recorded even on small hosts, and up to hardware_concurrency on
  // larger ones.
  std::vector<uint32_t> ladder;
  for (uint32_t t = 1; t <= std::max(8u, hw); t *= 2) ladder.push_back(t);
  if (hw > 8 && ladder.back() != hw) ladder.push_back(hw);

  double single_thread_wall = 0.0;
  for (const uint32_t threads : ladder) {
    Workspace ws(64 << 20);
    auto r = LoadRelation(ws.pool(), nullptr, "road", tiger.roads);
    PBSM_CHECK(r.ok()) << r.status().ToString();
    auto s = LoadRelation(ws.pool(), nullptr, "hydro", tiger.hydro);
    PBSM_CHECK(s.ok()) << s.status().ToString();
    ws.disk()->ResetStats();

    JoinOptions opts;
    opts.memory_budget_bytes = 4 << 20;
    opts.num_threads = threads;
    ParallelJoinStats stats;
    JoinSpec join_spec;
    join_spec.method = JoinMethod::kParallelPbsm;
    join_spec.options = opts;
    join_spec.parallel_stats = &stats;
    auto joined =
        SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), join_spec);
    PBSM_CHECK(joined.ok()) << joined.status().ToString();
    const JoinCostBreakdown* cost = &joined->breakdown;
    if (threads == 1) single_thread_wall = stats.total_wall_seconds;
    const double wall_speedup =
        stats.total_wall_seconds == 0.0
            ? 1.0
            : single_thread_wall / stats.total_wall_seconds;

    char json[512];
    std::snprintf(
        json, sizeof(json),
        "{\"threads\": %u, \"hardware_concurrency\": %u, "
        "\"wall_seconds\": %.4f, \"wall_speedup\": %.3f, "
        "\"critical_path_speedup\": %.3f, \"sweep_balance_cov\": %.4f, "
        "\"partitions\": %u, \"candidates\": %llu, \"results\": %llu, "
        "\"partition_wall\": %.4f, \"sweep_wall\": %.4f, "
        "\"merge_wall\": %.4f, \"refine_wall\": %.4f}",
        threads, hw, stats.total_wall_seconds, wall_speedup,
        stats.CriticalPathSpeedup(), stats.SweepBalanceCov(),
        cost->num_partitions,
        static_cast<unsigned long long>(cost->candidates),
        static_cast<unsigned long long>(cost->results),
        stats.partition_wall_seconds, stats.sweep_wall_seconds,
        stats.merge_wall_seconds, stats.refine_wall_seconds);
    std::printf("  %s\n", json);
    if (json_out != nullptr) std::fprintf(json_out, "%s\n", json);
  }

  // Cross-check against the serial executor once (result equivalence).
  {
    Workspace ws(64 << 20);
    auto r = LoadRelation(ws.pool(), nullptr, "road", tiger.roads);
    PBSM_CHECK(r.ok()) << r.status().ToString();
    auto s = LoadRelation(ws.pool(), nullptr, "hydro", tiger.hydro);
    PBSM_CHECK(s.ok()) << s.status().ToString();
    JoinOptions opts;
    opts.memory_budget_bytes = 4 << 20;
    JoinSpec serial_spec;
    serial_spec.method = JoinMethod::kPbsm;
    serial_spec.options = opts;
    auto serial =
        SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), serial_spec);
    PBSM_CHECK(serial.ok()) << serial.status().ToString();
    JoinSpec parallel_spec;
    parallel_spec.method = JoinMethod::kParallelPbsm;
    parallel_spec.options = opts;
    parallel_spec.options.num_threads = 4;
    auto parallel =
        SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), parallel_spec);
    PBSM_CHECK(parallel.ok()) << parallel.status().ToString();
    PBSM_CHECK(serial->num_results == parallel->num_results)
        << "serial " << serial->num_results << " vs parallel "
        << parallel->num_results;
    std::printf("  serial/parallel result check: %llu == %llu OK\n",
                static_cast<unsigned long long>(serial->num_results),
                static_cast<unsigned long long>(parallel->num_results));
  }

  if (json_out != nullptr) std::fclose(json_out);
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main(int argc, char** argv) {
  pbsm::bench::ParseBenchArgs(argc, argv);
  pbsm::bench::Run();
  return 0;
}
