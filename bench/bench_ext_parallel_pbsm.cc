// Extension bench (paper §5, future work): simulated shared-nothing
// parallel PBSM. The spatial partitioning function doubles as the
// declustering function; each worker joins its tile set independently.
//
// The paper conjectures (a) PBSM parallelizes well because it partitions
// like a hash join, (b) tiling adapts to skew better than one-tile-per-node
// declustering, and (c) full-object replication trades storage for the
// remote fetches of MBR-only replication. This bench measures all three:
// speedup and load balance vs worker count, tile granularity, and the
// replication scheme.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/parallel_pbsm.h"
#include "datagen/loader.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Extension (S5): simulated shared-nothing parallel PBSM");
  PrintScaleBanner(scale);
  PrintNote("paper conjecture: PBSM parallelizes like a hash join; tiled "
            "declustering balances skew; full replication avoids remote "
            "fetches at a storage cost");

  const TigerData tiger = GenTiger(scale);

  auto run_config = [&](uint32_t workers, uint32_t tiles, bool full_repl) {
    Workspace ws(32 << 20);
    auto r = LoadRelation(ws.pool(), nullptr, "road", tiger.roads);
    PBSM_CHECK(r.ok()) << r.status().ToString();
    auto s = LoadRelation(ws.pool(), nullptr, "hydro", tiger.hydro);
    PBSM_CHECK(s.ok()) << s.status().ToString();
    ws.disk()->ResetStats();

    ParallelPbsmOptions opts;
    opts.num_workers = workers;
    opts.num_tiles = tiles;
    opts.replicate_full_objects = full_repl;
    opts.join.memory_budget_bytes = 4 << 20;
    auto report = SimulateParallelPbsm(ws.pool(), r->AsInput(), s->AsInput(),
                                       SpatialPredicate::kIntersects, opts);
    PBSM_CHECK(report.ok()) << report.status().ToString();
    uint64_t remote = 0;
    for (const auto& w : report->workers) remote += w.remote_fetches;
    std::printf(
        "  workers=%2u tiles=%5u repl=%-4s  parallel=%8.3fs work=%8.3fs "
        "speedup=%5.2fx balance(CoV)=%6.3f results=%llu repl_copies=%llu "
        "remote=%llu\n",
        workers, tiles, full_repl ? "full" : "mbr",
        report->ParallelSeconds(CpuScale()),
        report->TotalWorkSeconds(CpuScale()), report->Speedup(CpuScale()),
        report->WorkerCostCov(CpuScale()),
        static_cast<unsigned long long>(report->results),
        static_cast<unsigned long long>(report->replicated_r +
                                        report->replicated_s),
        static_cast<unsigned long long>(remote));
    return report->results;
  };

  std::printf("\n  -- speedup vs worker count (1024 tiles, full "
              "replication) --\n");
  uint64_t baseline = 0;
  for (const uint32_t workers : {1u, 2u, 4u, 8u, 16u}) {
    const uint64_t results = run_config(workers, 1024, true);
    if (workers == 1) {
      baseline = results;
    } else {
      PBSM_CHECK(results == baseline) << "parallel results diverge";
    }
  }

  std::printf("\n  -- tile granularity: one-tile-per-worker (TY95-style) vs "
              "fine tiles (8 workers) --\n");
  for (const uint32_t tiles : {8u, 64u, 1024u}) {
    run_config(8, tiles, true);
  }

  std::printf("\n  -- replication scheme (8 workers, 1024 tiles) --\n");
  run_config(8, 1024, true);
  run_config(8, 1024, false);
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
