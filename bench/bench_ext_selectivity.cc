// Extension bench: spatial-join selectivity estimation. The paper's PBSM
// consults the catalog only for the universe MBR (§3.1); this extension
// adds a grid histogram to the catalog and checks how well it predicts the
// filter-step candidate cardinality — the number that sizes the candidate
// sorter and, through Equation 1, the partitioning.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/spatial_join.h"
#include "core/selectivity.h"
#include "datagen/loader.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Extension: grid-histogram join selectivity estimation");
  PrintScaleBanner(scale);
  PrintNote("estimate = sum over cells of n1*n2*min(1, Minkowski overlap "
            "probability); good estimates land within ~2x of the actual "
            "filter output");

  const TigerData tiger = GenTiger(scale);
  const SequoiaData sequoia = GenSequoia(scale);

  struct Query {
    const char* label;
    const std::vector<Tuple>* r;
    const std::vector<Tuple>* s;
  };
  const Query queries[] = {
      {"Road x Hydrography", &tiger.roads, &tiger.hydro},
      {"Road x Rail", &tiger.roads, &tiger.rail},
      {"Polygon x Island", &sequoia.polygons, &sequoia.islands},
  };

  for (const Query& q : queries) {
    Workspace ws(64 << 20);
    auto r = LoadRelation(ws.pool(), nullptr, "r", *q.r);
    PBSM_CHECK(r.ok()) << r.status().ToString();
    auto s = LoadRelation(ws.pool(), nullptr, "s", *q.s);
    PBSM_CHECK(s.ok()) << s.status().ToString();
    const Rect universe = Rect::Union(r->info.universe, s->info.universe);

    JoinOptions opts;
    opts.memory_budget_bytes = 16 << 20;
    JoinSpec join_spec;
    join_spec.method = JoinMethod::kPbsm;
    join_spec.options = opts;
    auto joined =
        SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), join_spec);
    PBSM_CHECK(joined.ok()) << joined.status().ToString();
    const JoinCostBreakdown* cost = &joined->breakdown;
    const double actual =
        static_cast<double>(cost->candidates - cost->duplicates_removed);

    std::printf("  %-20s actual candidates=%10.0f\n", q.label, actual);
    for (const uint32_t grid : {8u, 32u, 128u}) {
      auto hr = SpatialHistogram::Build(r->heap, universe, grid, grid);
      auto hs = SpatialHistogram::Build(s->heap, universe, grid, grid);
      PBSM_CHECK(hr.ok() && hs.ok());
      const double estimate = hr->EstimateJoinCandidates(*hs);
      std::printf("    grid %3ux%-3u estimate=%10.0f  (ratio %5.2fx)\n",
                  grid, grid, estimate,
                  actual > 0 ? estimate / actual : 0.0);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
