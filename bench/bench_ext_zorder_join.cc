// Extension bench: the z-value transform join (Orenstein [Ore86, OM88]) —
// the "transform the approximation into another dimension" family of the
// paper's Table 1 — compared against PBSM on the Road x Hydrography query.
//
// The paper's §2 critique to reproduce: transform approaches lose spatial
// proximity information, so they either filter poorly (coarse grids,
// producing many false-positive candidates for the expensive refinement
// step) or pay heavy approximation overhead (fine grids multiply the
// z-elements per object), and their sweet spot is data-dependent
// ([Ore89]'s grid sensitivity). PBSM's direct 2-D filtering avoids the
// dilemma.

#include <cstdio>

#include "bench/join_bench.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Extension (Table 1 / S2): z-value transform join vs PBSM");
  PrintScaleBanner(scale);
  PrintNote("paper critique: transforms lose proximity -> coarse grids "
            "over-produce candidates, fine grids multiply z-elements; PBSM "
            "filters in 2-D directly");

  const TigerData tiger = GenTiger(scale);
  const auto pools = PoolSizes(scale);
  const size_t pool_bytes = pools[1].second;  // The 8MB point.

  // PBSM reference.
  {
    JoinBenchSpec spec;
    spec.r_tuples = &tiger.roads;
    spec.s_tuples = &tiger.hydro;
    spec.r_name = "road";
    spec.s_name = "hydrography";
    const JoinCostBreakdown cost = RunOneJoin(spec, pool_bytes, 0);
    PrintJoinRow("PBSM (reference)", cost);
  }

  struct Config {
    uint32_t level;
    uint32_t cells;
  };
  static const Config kConfigs[] = {
      {8, 1}, {8, 4}, {10, 8}, {12, 16}, {14, 32},
  };
  for (const Config& c : kConfigs) {
    Workspace ws(pool_bytes);
    auto r = LoadRelation(ws.pool(), nullptr, "road", tiger.roads);
    PBSM_CHECK(r.ok()) << r.status().ToString();
    auto s = LoadRelation(ws.pool(), nullptr, "hydro", tiger.hydro);
    PBSM_CHECK(s.ok()) << s.status().ToString();
    ws.disk()->ResetStats();

    JoinSpec join_spec;
    join_spec.method = JoinMethod::kZOrder;
    join_spec.zorder.max_level = c.level;
    join_spec.zorder.max_cells_per_object = c.cells;
    join_spec.options = MakeJoinOptions(pool_bytes);
    auto joined =
        SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), join_spec);
    PBSM_CHECK(joined.ok()) << joined.status().ToString();
    const JoinCostBreakdown* cost = &joined->breakdown;
    char label[64];
    std::snprintf(label, sizeof(label), "z-join L=%u cells<=%u", c.level,
                  c.cells);
    PrintJoinRow(label, *cost);
    std::printf("      extra z-elements from decomposition: %llu\n",
                static_cast<unsigned long long>(cost->replicated));
  }
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
