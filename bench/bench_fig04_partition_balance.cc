// Reproduces Figure 4: coefficient of variation of the tuples-per-partition
// distribution as a function of the number of tiles, for hash vs round-robin
// tile mapping and 4 vs 16 partitions, on the (TIGER-like) road data.
//
// Paper findings to match: (1) many tiles + hashing gives the best balance;
// (2) every mapping improves with more tiles; (3) for a fixed tile count,
// fewer partitions balance better; (4) round robin shows spikes where the
// tile count is an integral multiple of the partition count.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/spatial_partitioner.h"

namespace pbsm {
namespace bench {
namespace {

double PartitionCov(const std::vector<Tuple>& tuples, const Rect& universe,
                    uint32_t tiles, uint32_t partitions,
                    TileMapping mapping) {
  const SpatialPartitioner part(universe, tiles, partitions, mapping);
  std::vector<uint64_t> counts(partitions, 0);
  std::vector<uint32_t> targets;
  for (const Tuple& t : tuples) {
    targets.clear();
    part.PartitionsFor(t.geometry.Mbr(), &targets);
    for (const uint32_t p : targets) ++counts[p];
  }
  return ComputeStats(counts).CoefficientOfVariation();
}

void Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Figure 4: spatial partitioning function alternatives "
             "(road data)");
  PrintScaleBanner(scale);
  PrintNote("paper: CoV starts ~0.5-0.9 at few tiles and falls below ~0.1 "
            "for hash with 1000+ tiles; round robin is spiky; 16 partitions "
            "balance worse than 4");

  TigerGenerator gen(TigerGenerator::Params{});
  const PaperCardinalities card;
  const auto roads = gen.GenerateRoads(Scaled(card.road, scale));
  Rect universe;
  for (const Tuple& t : roads) universe.Expand(t.geometry.Mbr());

  const std::vector<uint32_t> tile_counts = {25,  64,   121,  256, 529,
                                             1024, 2025, 3025, 4096};
  std::printf("  %14s   %-12s %-12s %-12s %-12s\n", "", "hash/4part",
              "hash/16part", "rr/4part", "rr/16part");
  for (const uint32_t tiles : tile_counts) {
    const double h4 =
        PartitionCov(roads, universe, tiles, 4, TileMapping::kHash);
    const double h16 =
        PartitionCov(roads, universe, tiles, 16, TileMapping::kHash);
    const double r4 =
        PartitionCov(roads, universe, tiles, 4, TileMapping::kRoundRobin);
    const double r16 =
        PartitionCov(roads, universe, tiles, 16, TileMapping::kRoundRobin);
    std::printf("  %8u tiles:  %-12.4f %-12.4f %-12.4f %-12.4f\n", tiles, h4,
                h16, r4, r16);
  }
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
