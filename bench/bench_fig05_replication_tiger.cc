// Reproduces Figure 5: replication overhead (percentage increase in the
// number of key-pointer copies caused by MBRs spanning tiles of multiple
// partitions) vs the number of tiles, TIGER-like road data, 16 partitions.

#include "bench/bench_util.h"

int main() {
  using namespace pbsm;
  using namespace pbsm::bench;
  const double scale = ScaleFromEnv();
  TigerGenerator gen(TigerGenerator::Params{});
  const PaperCardinalities card;
  const auto roads = gen.GenerateRoads(Scaled(card.road, scale));
  RunReplicationBench(
      "Figure 5: replication overhead, TIGER road data (16 partitions)",
      roads,
      "paper: very modest overhead, ~+4.8% at 4000 tiles; round robin dips "
      "when the tile count is an integral multiple of the partition count",
      scale);
  return 0;
}
