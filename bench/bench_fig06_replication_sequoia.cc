// Reproduces Figure 6: replication overhead vs number of tiles for the
// Sequoia polygon data (16 partitions). The paper's point: polygon MBRs are
// much larger than road-segment MBRs, so replication is far higher than in
// Figure 5 (tens of percent instead of a few percent).

#include "bench/bench_util.h"

int main() {
  using namespace pbsm;
  using namespace pbsm::bench;
  const double scale = ScaleFromEnv();
  SequoiaGenerator gen(SequoiaGenerator::Params{});
  const PaperCardinalities card;
  const auto polys = gen.GeneratePolygons(Scaled(card.sequoia_polygons,
                                                 scale));
  RunReplicationBench(
      "Figure 6: replication overhead, Sequoia polygon data (16 partitions)",
      polys,
      "paper: much higher overhead than the road data (large polygon MBRs "
      "span many tiles)",
      scale);
  return 0;
}
