// Reproduces Figure 7: Road JOIN Hydrography (intersection), neither input
// indexed, across the paper's 2/8/24 MB buffer pools.
//
// Paper result (seconds, from Table 4): at 2/8/24 MB —
//   PBSM          889.9 / 591.6 / 539.0
//   R-tree join  1315.8 / 1221.7 / 1069.0
//   INL          3730.5 / 1288.2 / 1044.7
// i.e. PBSM is 48-98% faster than the R-tree join and 93-300% faster than
// INL, and INL improves sharply as the pool grows. Result: 34,166 tuples.

#include "bench/join_bench.h"

int main(int argc, char** argv) {
  using namespace pbsm::bench;
  ParseBenchArgs(argc, argv);
  const double scale = ScaleFromEnv();
  const TigerData tiger = GenTiger(scale);
  JoinBenchSpec spec;
  spec.title = "Figure 7: Road JOIN Hydrography, no pre-existing indices";
  spec.paper_note =
      "paper totals (2/8/24MB): PBSM 889.9/591.6/539.0s, R-tree "
      "1315.8/1221.7/1069.0s, INL 3730.5/1288.2/1044.7s; expected shape: "
      "PBSM < R-tree < INL, INL catching up with pool size";
  spec.r_tuples = &tiger.roads;
  spec.s_tuples = &tiger.hydro;
  spec.r_name = "road";
  spec.s_name = "hydrography";
  RunJoinSweep(spec, scale);
  return 0;
}
