// Reproduces Figure 8: Road JOIN Rail — inputs of very different sizes
// (456K vs 17K tuples), neither indexed.
//
// Paper result: because the Rail data and its index fit in the buffer pool,
// Indexed Nested Loops BEATS the R-tree join here; the R-tree join spends
// ~85% of its time bulk loading the index on the large Road input. PBSM
// remains the fastest or competitive. Result: 4,678 tuples.

#include "bench/join_bench.h"

int main(int argc, char** argv) {
  using namespace pbsm::bench;
  ParseBenchArgs(argc, argv);
  const double scale = ScaleFromEnv();
  const TigerData tiger = GenTiger(scale);
  JoinBenchSpec spec;
  spec.title = "Figure 8: Road JOIN Rail, no pre-existing indices";
  spec.paper_note =
      "paper shape: INL (index on tiny Rail) beats the R-tree join, whose "
      "cost is ~85% building the Road index; PBSM best or competitive";
  spec.r_tuples = &tiger.roads;
  spec.s_tuples = &tiger.rail;
  spec.r_name = "road";
  spec.s_name = "rail";
  RunJoinSweep(spec, scale);
  return 0;
}
