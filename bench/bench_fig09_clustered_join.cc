// Reproduces Figure 9: Road JOIN Hydrography on spatially clustered inputs
// (both relations Hilbert-ordered on disk).
//
// Paper result: every algorithm improves vs Figure 7 — index builds skip
// the spatial sort, partition writes become near-sequential, and the
// refinement step gets spatial locality. PBSM stays ~40% faster than the
// R-tree join and 60-80% faster than INL.

#include "bench/join_bench.h"

int main() {
  using namespace pbsm::bench;
  const double scale = ScaleFromEnv();
  const TigerData tiger = GenTiger(scale);
  JoinBenchSpec spec;
  spec.title = "Figure 9: clustered Road JOIN Hydrography";
  spec.paper_note =
      "paper shape: all algorithms faster than Figure 7; PBSM ~40% faster "
      "than R-tree join, 60-80% faster than INL";
  spec.r_tuples = &tiger.roads;
  spec.s_tuples = &tiger.hydro;
  spec.r_name = "road";
  spec.s_name = "hydrography";
  spec.clustered = true;
  RunJoinSweep(spec, scale);
  return 0;
}
