// Reproduces Figures 10, 11 and 12: per-component cost breakdowns for the
// Road JOIN Hydrography query, clustered vs non-clustered inputs, for the
// R-tree join (Fig 10), Indexed Nested Loops (Fig 11) and PBSM (Fig 12).
//
// Paper findings to match:
//  * R-tree join: clustering slashes the index-build cost (the spatial sort
//    is skipped) and the refinement cost; tree-joining cost is unchanged
//    because bulk loading builds the identical tree either way.
//  * INL: clustering cuts both the index build and (for small pools) the
//    probe cost.
//  * PBSM: clustering mostly reduces the partitioning cost — consecutive
//    tuples land in the same tile, so partition writes stop seeking.
//  * PBSM and the R-tree join spend the same absolute time in refinement
//    (~45% of PBSM's total, ~23% of the R-tree join's).

#include "bench/join_bench.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const TigerData tiger = GenTiger(scale);

  PrintTitle(
      "Figures 10-12: cost breakdowns, Road JOIN Hydrography, clustered "
      "(C) vs non-clustered (NC)");
  PrintScaleBanner(scale);
  PrintNote("paper shape: clustering cuts index-build/partitioning costs; "
            "tree-join cost unchanged; PBSM and R-tree join refinement "
            "costs equal");

  static const char* kAlgoNames[] = {"PBSM (Fig 12)", "R-tree join (Fig 10)",
                                     "INL (Fig 11)"};
  for (const auto& [pool_label, pool_bytes] : PoolSizes(scale)) {
    std::printf("\n  ---- buffer pool %s ----\n", pool_label.c_str());
    for (const bool clustered : {false, true}) {
      for (const int algo : {1, 2, 0}) {  // Paper order: Fig 10, 11, 12.
        JoinBenchSpec spec;
        spec.r_tuples = &tiger.roads;
        spec.s_tuples = &tiger.hydro;
        spec.r_name = "road";
        spec.s_name = "hydrography";
        spec.clustered = clustered;
        const JoinCostBreakdown cost = RunOneJoin(spec, pool_bytes, algo);
        PrintBreakdown(std::string(kAlgoNames[algo]) +
                           (clustered ? " [C]" : " [NC]"),
                       cost);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
