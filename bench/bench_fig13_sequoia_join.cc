// Reproduces Figure 13: the Sequoia containment join — islands contained in
// landuse polygons.
//
// Paper result: PBSM is 13-27% faster than the R-tree join and 17-114%
// faster than INL; the refinement step dominates (79% of PBSM's cost, 68%
// of the R-tree join's) because polygon containment tests are expensive.
// Result: 25,260 tuples. (§4.4 notes an MBR/MER pre-filter would cut the
// refinement cost — see bench_ablation_mer_filter.)

#include "bench/join_bench.h"

int main() {
  using namespace pbsm::bench;
  const double scale = ScaleFromEnv();
  const SequoiaData sequoia = GenSequoia(scale);
  JoinBenchSpec spec;
  spec.title = "Figure 13: Sequoia polygons CONTAIN islands";
  spec.paper_note =
      "paper shape: PBSM 13-27% faster than R-tree join, 17-114% faster "
      "than INL; refinement dominates both (79%/68% of total)";
  spec.r_tuples = &sequoia.polygons;
  spec.s_tuples = &sequoia.islands;
  spec.r_name = "polygon";
  spec.s_name = "island";
  spec.pred = pbsm::SpatialPredicate::kContains;
  RunJoinSweep(spec, scale);
  return 0;
}
