// Reproduces Figure 14: Road JOIN Hydrography when indices pre-exist on
// one or both inputs.
//
// Paper shape: with both indices (Rtree-2-Indices) the R-tree join wins;
// with an index only on the large input, the R-tree join still wins (the
// small index is cheap to build); with an index only on the small input,
// PBSM wins. INL-1-LargeIdx improves rapidly with pool size and INL beats
// the R-tree variants at large pools.

#include "bench/join_bench.h"

int main() {
  using namespace pbsm::bench;
  const double scale = ScaleFromEnv();
  const TigerData tiger = GenTiger(scale);
  JoinBenchSpec spec;
  spec.title = "Figure 14: pre-existing index variants, Road JOIN Hydrography";
  spec.paper_note =
      "paper shape: Rtree-2-Indices best; Rtree-1-LargeIdx close behind; "
      "PBSM beats everything when only the small index exists";
  spec.r_tuples = &tiger.roads;
  spec.s_tuples = &tiger.hydro;
  spec.r_name = "road";
  spec.s_name = "hydrography";
  RunPreexistingIndexSweep(spec, scale);
  return 0;
}
