// Reproduces Figure 15: Road JOIN Rail with pre-existing indices — the
// skewed-cardinality companion to Figure 14.
//
// Paper shape: as in Figure 14, except INL-1-SmallIdx (index on the tiny
// Rail input) outperforms the R-tree variant at every pool size because
// Rail's index fits in memory.

#include "bench/join_bench.h"

int main() {
  using namespace pbsm::bench;
  const double scale = ScaleFromEnv();
  const TigerData tiger = GenTiger(scale);
  JoinBenchSpec spec;
  spec.title = "Figure 15: pre-existing index variants, Road JOIN Rail";
  spec.paper_note =
      "paper shape: Rtree-2/Rtree-1-Large best; INL-1-SmallIdx beats "
      "Rtree-1-SmallIdx at all pool sizes; PBSM wins the small-index case "
      "among non-INL";
  spec.r_tuples = &tiger.roads;
  spec.s_tuples = &tiger.rail;
  spec.r_name = "road";
  spec.s_name = "rail";
  RunPreexistingIndexSweep(spec, scale);
  return 0;
}
