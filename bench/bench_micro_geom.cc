// Microbenchmarks for the geometry substrate: exact predicates, segment
// intersection, Hilbert keys, MER computation.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "geom/hilbert.h"
#include "geom/mer.h"
#include "geom/predicates.h"

namespace pbsm {
namespace {

Geometry RandomPolyline(Rng* rng, int n) {
  std::vector<Point> pts;
  Point p{rng->UniformDouble(0, 100), rng->UniformDouble(0, 100)};
  for (int i = 0; i < n; ++i) {
    pts.push_back(p);
    p.x += rng->UniformDouble(-1, 1);
    p.y += rng->UniformDouble(-1, 1);
  }
  return Geometry::MakePolyline(std::move(pts));
}

Geometry RandomPolygon(Rng* rng, int n) {
  const Point c{rng->UniformDouble(0, 100), rng->UniformDouble(0, 100)};
  std::vector<Point> ring;
  for (int i = 0; i < n; ++i) {
    const double angle = 2 * M_PI * i / n;
    const double r = 3.0 * (1.0 + 0.3 * rng->NextDouble());
    ring.push_back({c.x + std::cos(angle) * r, c.y + std::sin(angle) * r});
  }
  return Geometry::MakePolygon({ring});
}

void BM_SegmentsIntersect(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::pair<Segment, Segment>> cases;
  for (int i = 0; i < 1024; ++i) {
    auto seg = [&]() {
      const Point a{rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)};
      return Segment{a, {a.x + rng.UniformDouble(-2, 2),
                         a.y + rng.UniformDouble(-2, 2)}};
    };
    cases.emplace_back(seg(), seg());
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = cases[i++ & 1023];
    benchmark::DoNotOptimize(SegmentsIntersect(a, b));
  }
}
BENCHMARK(BM_SegmentsIntersect);

void BM_PolylineIntersects(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const Geometry a = RandomPolyline(&rng, n);
  const Geometry b = RandomPolyline(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Intersects(a, b, SegmentTestMode::kPlaneSweep));
  }
}
BENCHMARK(BM_PolylineIntersects)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_PolylineIntersectsNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const Geometry a = RandomPolyline(&rng, n);
  const Geometry b = RandomPolyline(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersects(a, b, SegmentTestMode::kNaive));
  }
}
BENCHMARK(BM_PolylineIntersectsNaive)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_PointInPolygon(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Geometry poly = RandomPolygon(&rng, n);
  const Point p = poly.Mbr().Center();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PointInPolygon(p, poly));
  }
}
BENCHMARK(BM_PointInPolygon)->Arg(16)->Arg(46)->Arg(256);

void BM_PolygonContains(benchmark::State& state) {
  Rng rng(4);
  const Geometry outer = RandomPolygon(&rng, 46);
  // A small polygon at the outer's center (usually contained).
  Rng rng2(5);
  std::vector<Point> ring;
  const Point c = outer.Mbr().Center();
  for (int i = 0; i < 35; ++i) {
    const double angle = 2 * M_PI * i / 35;
    ring.push_back({c.x + std::cos(angle) * 0.4,
                    c.y + std::sin(angle) * 0.4});
  }
  const Geometry inner = Geometry::MakePolygon({ring});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Contains(outer, inner));
  }
}
BENCHMARK(BM_PolygonContains);

void BM_ComputeMer(benchmark::State& state) {
  Rng rng(6);
  const Geometry poly = RandomPolygon(&rng, 46);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMer(poly));
  }
}
BENCHMARK(BM_ComputeMer);

void BM_HilbertKey(benchmark::State& state) {
  const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kHilbert,
                                Rect(0, 0, 100, 100));
  Rng rng(7);
  double x = 50, y = 50;
  for (auto _ : state) {
    x = rng.UniformDouble(0, 100);
    y = rng.UniformDouble(0, 100);
    benchmark::DoNotOptimize(curve.Key(Point{x, y}));
  }
}
BENCHMARK(BM_HilbertKey);

void BM_ZOrderKey(benchmark::State& state) {
  const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kZOrder,
                                Rect(0, 0, 100, 100));
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        curve.Key(Point{rng.UniformDouble(0, 100),
                        rng.UniformDouble(0, 100)}));
  }
}
BENCHMARK(BM_ZOrderKey);

void BM_GeometrySerialize(benchmark::State& state) {
  Rng rng(9);
  const Geometry g = RandomPolyline(&rng, 19);
  for (auto _ : state) {
    std::string buf;
    g.AppendTo(&buf);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_GeometrySerialize);

void BM_GeometryParse(benchmark::State& state) {
  Rng rng(10);
  const Geometry g = RandomPolyline(&rng, 19);
  std::string buf;
  g.AppendTo(&buf);
  for (auto _ : state) {
    size_t consumed;
    auto parsed = Geometry::Parse(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_GeometryParse);

}  // namespace
}  // namespace pbsm

BENCHMARK_MAIN();
