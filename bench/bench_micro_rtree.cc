// Microbenchmarks for the R*-tree: insertion, window queries, bulk load.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "rtree/rstar_tree.h"

namespace pbsm {
namespace {

std::vector<RTreeEntry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RTreeEntry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    out.push_back(RTreeEntry{
        Rect(x, y, x + rng.NextDouble() * 2, y + rng.NextDouble() * 2), i});
  }
  return out;
}

void BM_RTreeInsert(benchmark::State& state) {
  bench::Workspace ws(4096 * kPageSize);
  auto tree = RStarTree::Create(ws.pool(), "t.rtree");
  PBSM_CHECK(tree.ok());
  Rng rng(1);
  for (auto _ : state) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    PBSM_CHECK(tree->Insert(Rect(x, y, x + 1, y + 1), 1).ok());
  }
}
BENCHMARK(BM_RTreeInsert);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = RandomEntries(n, 2);
  int run = 0;
  for (auto _ : state) {
    state.PauseTiming();
    bench::Workspace ws(4096 * kPageSize);
    state.ResumeTiming();
    auto tree = RStarTree::BulkLoad(
        ws.pool(), "bl" + std::to_string(run++) + ".rtree", entries, 0.75);
    PBSM_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(10000)->Arg(50000);

void BM_RTreeWindowQuery(benchmark::State& state) {
  bench::Workspace ws(4096 * kPageSize);
  const auto entries = RandomEntries(50000, 3);
  auto tree = RStarTree::BulkLoad(ws.pool(), "q.rtree", entries, 0.75);
  PBSM_CHECK(tree.ok());
  Rng rng(4);
  std::vector<uint64_t> hits;
  for (auto _ : state) {
    hits.clear();
    const double x = rng.UniformDouble(0, 990);
    const double y = rng.UniformDouble(0, 990);
    PBSM_CHECK(tree->WindowQuery(Rect(x, y, x + 10, y + 10), &hits).ok());
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeWindowQuery);

void BM_RTreePointProbe(benchmark::State& state) {
  // The INL inner loop: a probe with a tiny window.
  bench::Workspace ws(4096 * kPageSize);
  const auto entries = RandomEntries(50000, 5);
  auto tree = RStarTree::BulkLoad(ws.pool(), "p.rtree", entries, 0.75);
  PBSM_CHECK(tree.ok());
  Rng rng(6);
  std::vector<uint64_t> hits;
  for (auto _ : state) {
    hits.clear();
    const double x = rng.UniformDouble(0, 999);
    const double y = rng.UniformDouble(0, 999);
    PBSM_CHECK(
        tree->WindowQuery(Rect(x, y, x + 0.5, y + 0.5), &hits).ok());
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreePointProbe);

}  // namespace
}  // namespace pbsm

BENCHMARK_MAIN();
