// Microbenchmarks for the R*-tree: insertion, window queries, bulk load.
//
// `bench_micro_rtree --compare-layouts` skips google-benchmark and instead
// compares the in-memory node layouts end to end through WindowQuery: for
// each workload it builds one tree per layout (AoS page scans, SoA double
// ribbons, quantized uint16 ribbons), verifies every layout x kernel
// combination returns the identical hit set on every probe (exit 1 on
// mismatch), and times a fixed probe batch best-of-N. One
// RTREE_COMPARE_JSON line is emitted; the checked-in baseline lives at
// bench/results/simd_rtree_baseline.json and the CI perf-smoke job replays
// this mode, gating best_speedup (scalar AoS vs the best vector ribbon
// variant) on AVX2 hosts.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/sweep_kernel.h"
#include "rtree/rstar_tree.h"

namespace pbsm {
namespace {

std::vector<RTreeEntry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RTreeEntry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    out.push_back(RTreeEntry{
        Rect(x, y, x + rng.NextDouble() * 2, y + rng.NextDouble() * 2), i});
  }
  return out;
}

void BM_RTreeInsert(benchmark::State& state) {
  bench::Workspace ws(4096 * kPageSize);
  auto tree = RStarTree::Create(ws.pool(), "t.rtree");
  PBSM_CHECK(tree.ok());
  Rng rng(1);
  for (auto _ : state) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    PBSM_CHECK(tree->Insert(Rect(x, y, x + 1, y + 1), 1).ok());
  }
}
BENCHMARK(BM_RTreeInsert);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = RandomEntries(n, 2);
  int run = 0;
  for (auto _ : state) {
    state.PauseTiming();
    bench::Workspace ws(4096 * kPageSize);
    state.ResumeTiming();
    auto tree = RStarTree::BulkLoad(
        ws.pool(), "bl" + std::to_string(run++) + ".rtree", entries, 0.75);
    PBSM_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(10000)->Arg(50000);

void BM_RTreeWindowQuery(benchmark::State& state) {
  bench::Workspace ws(4096 * kPageSize);
  const auto entries = RandomEntries(50000, 3);
  auto tree = RStarTree::BulkLoad(ws.pool(), "q.rtree", entries, 0.75);
  PBSM_CHECK(tree.ok());
  Rng rng(4);
  std::vector<uint64_t> hits;
  for (auto _ : state) {
    hits.clear();
    const double x = rng.UniformDouble(0, 990);
    const double y = rng.UniformDouble(0, 990);
    PBSM_CHECK(tree->WindowQuery(Rect(x, y, x + 10, y + 10), &hits).ok());
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeWindowQuery);

void BM_RTreePointProbe(benchmark::State& state) {
  // The INL inner loop: a probe with a tiny window.
  bench::Workspace ws(4096 * kPageSize);
  const auto entries = RandomEntries(50000, 5);
  auto tree = RStarTree::BulkLoad(ws.pool(), "p.rtree", entries, 0.75);
  PBSM_CHECK(tree.ok());
  Rng rng(6);
  std::vector<uint64_t> hits;
  for (auto _ : state) {
    hits.clear();
    const double x = rng.UniformDouble(0, 999);
    const double y = rng.UniformDouble(0, 999);
    PBSM_CHECK(
        tree->WindowQuery(Rect(x, y, x + 0.5, y + 0.5), &hits).ok());
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreePointProbe);

// ---------------------------------------------------------------------------
// --compare-layouts mode.
// ---------------------------------------------------------------------------

struct LayoutCase {
  const char* label;
  size_t n;            ///< Indexed entries.
  double window;       ///< Probe window side length (0.5 = INL point probe).
  size_t probes;
};

struct LayoutVariant {
  const char* label;   ///< JSON key prefix, e.g. "soa_avx2".
  NodeLayout layout;
  SimdMode simd;
};

/// Best-of-k wall time for the full probe batch against one tree under one
/// kernel. The warm-up rep also faults every touched page into the pool, so
/// the AoS timing measures page *parsing*, not disk I/O — the quantity the
/// ribbons eliminate.
double TimeProbesMs(const RStarTree& tree, const std::vector<Rect>& windows,
                    SimdMode simd, uint64_t* hits_out) {
  constexpr int kReps = 5;
  double best_ms = 1e300;
  uint64_t total = 0;
  std::vector<uint64_t> hits;
  for (int rep = 0; rep <= kReps; ++rep) {  // Rep 0 is warmup.
    uint64_t count = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const Rect& w : windows) {
      hits.clear();
      PBSM_CHECK(tree.WindowQuery(w, &hits, simd).ok());
      count += hits.size();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep > 0 && ms < best_ms) best_ms = ms;
    total = count;
  }
  *hits_out = total;
  return best_ms;
}

int RunCompareLayouts() {
  const LayoutCase cases[] = {
      {"probe-50k", 50000, 0.5, 4000},
      {"window-50k", 50000, 10.0, 2000},
      {"probe-200k", 200000, 0.5, 4000},
  };
  const LayoutVariant variants[] = {
      {"aos_scalar", NodeLayout::kAos, SimdMode::kScalar},
      {"soa_scalar", NodeLayout::kSoa, SimdMode::kScalar},
      {"soa_avx2", NodeLayout::kSoa, SimdMode::kAvx2},
      {"q16_scalar", NodeLayout::kSoaQuantized, SimdMode::kScalar},
      {"q16_avx2", NodeLayout::kSoaQuantized, SimdMode::kAvx2},
  };
  const bool have_avx2 = Avx2Supported();
  std::printf("Node-layout comparison (WindowQuery, warm buffer pool)\n");
  std::printf("  avx2_compiled_in=%d avx2_supported=%d\n",
              Avx2CompiledIn() ? 1 : 0, have_avx2 ? 1 : 0);

  bool all_match = true;
  double best_speedup = 0.0;
  std::string cases_json = "[";
  for (const LayoutCase& c : cases) {
    bench::Workspace ws(8192 * kPageSize);
    const auto entries = RandomEntries(c.n, 11);
    std::vector<RStarTree> trees;  // One per layout, same page images.
    for (const NodeLayout layout :
         {NodeLayout::kAos, NodeLayout::kSoa, NodeLayout::kSoaQuantized}) {
      auto tree = RStarTree::BulkLoad(
          ws.pool(),
          std::string(c.label) + "_" + std::string(NodeLayoutName(layout)) +
              ".rtree",
          entries, 0.75, layout);
      PBSM_CHECK(tree.ok()) << tree.status().ToString();
      PBSM_CHECK(tree->layout() == layout);
      trees.push_back(std::move(*tree));
    }
    auto tree_for = [&trees](NodeLayout layout) -> const RStarTree& {
      for (const RStarTree& t : trees) {
        if (t.layout() == layout) return t;
      }
      PBSM_CHECK(false);
      return trees[0];
    };

    std::vector<Rect> windows;
    Rng rng(13);
    for (size_t i = 0; i < c.probes; ++i) {
      const double x = rng.UniformDouble(0, 1000 - c.window);
      const double y = rng.UniformDouble(0, 1000 - c.window);
      windows.emplace_back(x, y, x + c.window, y + c.window);
    }

    // Correctness first: every variant must return the identical hit set
    // on every probe (sorted, since traversal order differs per layout).
    bool match = true;
    std::vector<uint64_t> want, got;
    for (const Rect& w : windows) {
      want.clear();
      PBSM_CHECK(tree_for(NodeLayout::kAos)
                     .WindowQuery(w, &want, SimdMode::kScalar)
                     .ok());
      std::sort(want.begin(), want.end());
      for (const LayoutVariant& v : variants) {
        got.clear();
        PBSM_CHECK(tree_for(v.layout).WindowQuery(w, &got, v.simd).ok());
        std::sort(got.begin(), got.end());
        match = match && got == want;
      }
    }
    all_match = all_match && match;

    double ms[sizeof(variants) / sizeof(variants[0])];
    uint64_t hits = 0;
    std::string variants_json;
    for (size_t vi = 0; vi < sizeof(variants) / sizeof(variants[0]); ++vi) {
      const LayoutVariant& v = variants[vi];
      ms[vi] = TimeProbesMs(tree_for(v.layout), windows, v.simd, &hits);
      char field[96];
      std::snprintf(field, sizeof(field), "%s\"%s_ms\":%.3f",
                    vi > 0 ? "," : "", v.label, ms[vi]);
      variants_json += field;
    }
    // The headline ratio: scalar AoS page scans vs the best vector ribbon.
    const double best_simd_ms = std::min(ms[2], ms[4]);
    const double speedup = best_simd_ms > 0 ? ms[0] / best_simd_ms : 0.0;
    if (have_avx2 && speedup > best_speedup) best_speedup = speedup;
    std::printf(
        "  %-12s n=%-7zu probes=%-5zu hits=%-8llu aos=%8.2fms "
        "soa=%8.2fms/%8.2fms q16=%8.2fms/%8.2fms speedup=%5.2fx %s\n",
        c.label, c.n, c.probes, static_cast<unsigned long long>(hits), ms[0],
        ms[1], ms[2], ms[3], ms[4], speedup, match ? "MATCH" : "MISMATCH");

    char row[512];
    std::snprintf(row, sizeof(row),
                  "%s{\"label\":\"%s\",\"n\":%zu,\"probes\":%zu,"
                  "\"window\":%.1f,\"hits\":%llu,%s,\"speedup\":%.3f,"
                  "\"match\":%s}",
                  cases_json.size() > 1 ? "," : "", c.label, c.n, c.probes,
                  c.window, static_cast<unsigned long long>(hits),
                  variants_json.c_str(), speedup, match ? "true" : "false");
    cases_json += row;
  }
  cases_json += "]";

  std::printf("  best_speedup=%.2fx %s\n", best_speedup,
              all_match ? "(all hit sets match)" : "(HIT SET MISMATCH)");
  std::printf(
      "RTREE_COMPARE_JSON {\"schema\":\"pbsm.rtree_compare.v1\","
      "\"host\":%s,\"avx2_supported\":%s,\"all_match\":%s,"
      "\"best_speedup\":%.3f,\"cases\":%s}\n",
      bench::HostInfoJson().c_str(), have_avx2 ? "true" : "false",
      all_match ? "true" : "false", best_speedup, cases_json.c_str());
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace pbsm

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare-layouts") == 0) {
      return pbsm::RunCompareLayouts();
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
