// Microbenchmarks for the storage substrate: buffer pool hit/miss paths,
// heap file append/fetch, spool append/scan, external sort throughput.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "storage/external_sort.h"
#include "storage/heap_file.h"
#include "storage/spool_file.h"

namespace pbsm {
namespace {

void BM_BufferPoolHit(benchmark::State& state) {
  bench::Workspace ws(64 * kPageSize);
  auto file = ws.disk()->CreateFile("f");
  PBSM_CHECK(file.ok());
  auto page = ws.pool()->NewPage(*file);
  PBSM_CHECK(page.ok());
  const PageId id = page->id();
  page->Release();
  for (auto _ : state) {
    auto handle = ws.pool()->FetchPage(id);
    benchmark::DoNotOptimize(handle);
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissChurn(benchmark::State& state) {
  // Fetch pages round-robin through a file 4x the pool size: ~every fetch
  // is a miss with eviction.
  bench::Workspace ws(16 * kPageSize);
  auto file = ws.disk()->CreateFile("f");
  PBSM_CHECK(file.ok());
  for (int i = 0; i < 64; ++i) {
    auto page = ws.pool()->NewPage(*file);
    PBSM_CHECK(page.ok());
  }
  PBSM_CHECK(ws.pool()->FlushAll().ok());
  uint32_t next = 0;
  for (auto _ : state) {
    auto handle = ws.pool()->FetchPage(PageId{*file, next});
    benchmark::DoNotOptimize(handle);
    next = (next + 1) % 64;
  }
}
BENCHMARK(BM_BufferPoolMissChurn);

void BM_HeapAppend(benchmark::State& state) {
  bench::Workspace ws(256 * kPageSize);
  auto heap = HeapFile::Create(ws.pool(), "h");
  PBSM_CHECK(heap.ok());
  const std::string record(120, 'x');
  for (auto _ : state) {
    auto oid = heap->Append(record);
    benchmark::DoNotOptimize(oid);
  }
}
BENCHMARK(BM_HeapAppend);

void BM_HeapFetch(benchmark::State& state) {
  bench::Workspace ws(256 * kPageSize);
  auto heap = HeapFile::Create(ws.pool(), "h");
  PBSM_CHECK(heap.ok());
  const std::string record(120, 'x');
  std::vector<Oid> oids;
  for (int i = 0; i < 10000; ++i) {
    auto oid = heap->Append(record);
    PBSM_CHECK(oid.ok());
    oids.push_back(*oid);
  }
  Rng rng(1);
  std::string out;
  for (auto _ : state) {
    const Status s = heap->Fetch(oids[rng.Uniform(oids.size())], &out);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_HeapFetch);

void BM_SpoolAppend(benchmark::State& state) {
  bench::Workspace ws(256 * kPageSize);
  auto spool = SpoolFile::Create(ws.pool(), 40);
  PBSM_CHECK(spool.ok());
  char record[40] = {};
  for (auto _ : state) {
    benchmark::DoNotOptimize(spool->Append(record));
  }
}
BENCHMARK(BM_SpoolAppend);

void BM_ExternalSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  struct Less {
    bool operator()(uint64_t a, uint64_t b) const { return a < b; }
  };
  for (auto _ : state) {
    state.PauseTiming();
    bench::Workspace ws(256 * kPageSize);
    Rng rng(n);
    state.ResumeTiming();
    ExternalSorter<uint64_t, Less> sorter(ws.pool(), 64 << 10, Less{});
    for (size_t i = 0; i < n; ++i) {
      PBSM_CHECK(sorter.Add(rng.Next()).ok());
    }
    PBSM_CHECK(sorter.Finish().ok());
    uint64_t v, count = 0;
    while (true) {
      auto has = sorter.Next(&v);
      PBSM_CHECK(has.ok());
      if (!*has) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ExternalSort)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace pbsm

BENCHMARK_MAIN();
