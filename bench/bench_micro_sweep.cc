// Microbenchmarks for the in-memory plane-sweep rectangle join (the PBSM
// partition-merge kernel): forward sweep vs interval-tree sweep vs nested
// loops across input sizes and selectivities.
//
// `bench_micro_sweep --compare-kernels` skips google-benchmark and instead
// runs the scalar-vs-SIMD filter-kernel comparison: for each workload it
// verifies both kernels emit the identical pair set (exit 1 on mismatch)
// and times the pure §3.1 forward-sweep scan (inputs pre-sorted so the sort
// does not dilute kernel speedup), emitting one KERNEL_COMPARE_JSON line.
// The checked-in baseline lives at bench/results/simd_sweep_baseline.json
// and the CI perf-smoke job replays this mode on every push.
//
// `bench_micro_sweep --compare-dedup` compares the two dedup_mode filter
// schemes end to end through the parallel executor on the Figure 7 and 8
// workloads (Road x Hydrography, Road x Rail): verifies both modes produce
// the identical result-pair set, times the filter phases (partition +
// sweep/mini-join + merge; refinement excluded since the knob does not
// touch it), and emits one DEDUP_COMPARE_JSON line. Baseline:
// bench/results/two_layer_baseline.json; CI's perf-smoke job gates
// two_layer_filter_ms <= merge_filter_ms on the fig07 case.
//
// `bench_micro_sweep --compare-refine` compares refine_mode=exact against
// refine_mode=adaptive (true-hit cell filtering) on the same two workloads:
// verifies the adaptive engine produces the identical result-pair set,
// times the refinement phase alone (best-of-N refine_wall_seconds), and
// emits one REFINE_COMPARE_JSON line. Baseline:
// bench/results/adaptive_refine_baseline.json; CI's perf-smoke job gates
// refine_speedup on the fig07 case at PBSM_SCALE=1.0.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/plane_sweep_join.h"
#include "core/spatial_join.h"
#include "core/sweep_kernel.h"

namespace pbsm {
namespace {

std::vector<KeyPointer> RandomRects(size_t n, double size, uint64_t seed) {
  Rng rng(seed);
  std::vector<KeyPointer> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    out.push_back(KeyPointer{
        Rect(x, y, x + rng.NextDouble() * size, y + rng.NextDouble() * size),
        i});
  }
  return out;
}

void RunSweep(benchmark::State& state, SweepAlgorithm algo) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double size = static_cast<double>(state.range(1));
  const auto r0 = RandomRects(n, size, 1);
  const auto s0 = RandomRects(n, size, 2);
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto r = r0;
    auto s = s0;
    pairs = PlaneSweepJoin(&r, &s, [](uint64_t, uint64_t) {}, algo);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}

void BM_ForwardSweep(benchmark::State& state) {
  RunSweep(state, SweepAlgorithm::kForwardSweep);
}
BENCHMARK(BM_ForwardSweep)
    ->Args({1000, 2})
    ->Args({10000, 2})
    ->Args({100000, 2})
    ->Args({10000, 20});

void BM_IntervalTreeSweep(benchmark::State& state) {
  RunSweep(state, SweepAlgorithm::kIntervalTreeSweep);
}
BENCHMARK(BM_IntervalTreeSweep)
    ->Args({1000, 2})
    ->Args({10000, 2})
    ->Args({100000, 2})
    ->Args({10000, 20});

void BM_NestedLoopsJoin(benchmark::State& state) {
  RunSweep(state, SweepAlgorithm::kNestedLoops);
}
BENCHMARK(BM_NestedLoopsJoin)->Args({1000, 2})->Args({10000, 2});

// ---------------------------------------------------------------------------
// --compare-kernels mode.
// ---------------------------------------------------------------------------

struct CompareCase {
  const char* label;
  size_t n;
  double rect_size;  // Larger rectangles = longer scan windows = more lanes.
};

/// Best-of-k wall time for one forward sweep under `simd`, counting pairs
/// through a no-op batch sink so emission overhead cannot mask kernel cost.
/// Inputs are pre-sorted and passed kSortedByXlo: both kernels then time the
/// scan itself rather than the shared std::sort.
double TimeSweepMs(std::vector<KeyPointer>* r, std::vector<KeyPointer>* s,
                   SimdMode simd, uint64_t* pairs_out) {
  constexpr int kReps = 5;
  double best_ms = 1e300;
  uint64_t pairs = 0;
  for (int rep = 0; rep <= kReps; ++rep) {  // Rep 0 is warmup.
    uint64_t count = 0;
    const auto t0 = std::chrono::steady_clock::now();
    PlaneSweepJoinBatch(
        r, s, [&count](const OidPair*, size_t k) { count += k; },
        SweepAlgorithm::kForwardSweep, simd, InputOrder::kSortedByXlo);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep > 0 && ms < best_ms) best_ms = ms;
    pairs = count;
  }
  *pairs_out = pairs;
  return best_ms;
}

int RunCompareKernels() {
  const CompareCase cases[] = {
      {"sparse-10k", 10000, 2},
      {"sparse-100k", 100000, 2},
      {"mid-10k", 10000, 20},
      {"dense-4k", 4000, 80},
  };
  const bool have_avx2 = Avx2Supported();
  std::printf("Filter-kernel comparison (forward sweep, pre-sorted inputs)\n");
  std::printf("  avx2_compiled_in=%d avx2_supported=%d\n",
              Avx2CompiledIn() ? 1 : 0, have_avx2 ? 1 : 0);

  bool all_match = true;
  double best_speedup = 0.0;
  std::string cases_json = "[";
  for (const CompareCase& c : cases) {
    auto r = RandomRects(c.n, c.rect_size, 1);
    auto s = RandomRects(c.n, c.rect_size, 2);
    auto by_xlo = [](const KeyPointer& a, const KeyPointer& b) {
      return a.mbr.xlo < b.mbr.xlo;
    };
    std::sort(r.begin(), r.end(), by_xlo);
    std::sort(s.begin(), s.end(), by_xlo);

    // Correctness first: the two kernels must emit the identical pair SET.
    std::vector<OidPair> scalar_pairs, simd_pairs;
    PlaneSweepJoinBatch(&r, &s, VectorBatchSink{&scalar_pairs},
                        SweepAlgorithm::kForwardSweep, SimdMode::kScalar,
                        InputOrder::kSortedByXlo);
    PlaneSweepJoinBatch(&r, &s, VectorBatchSink{&simd_pairs},
                        SweepAlgorithm::kForwardSweep, SimdMode::kAvx2,
                        InputOrder::kSortedByXlo);
    auto by_pair = [](const OidPair& a, const OidPair& b) {
      return a.r != b.r ? a.r < b.r : a.s < b.s;
    };
    std::sort(scalar_pairs.begin(), scalar_pairs.end(), by_pair);
    std::sort(simd_pairs.begin(), simd_pairs.end(), by_pair);
    const bool match =
        scalar_pairs.size() == simd_pairs.size() &&
        std::equal(scalar_pairs.begin(), scalar_pairs.end(),
                   simd_pairs.begin(),
                   [](const OidPair& a, const OidPair& b) {
                     return a.r == b.r && a.s == b.s;
                   });
    all_match = all_match && match;

    uint64_t scalar_count = 0, simd_count = 0;
    const double scalar_ms = TimeSweepMs(&r, &s, SimdMode::kScalar,
                                         &scalar_count);
    const double simd_ms = TimeSweepMs(&r, &s, SimdMode::kAvx2, &simd_count);
    const double speedup = simd_ms > 0 ? scalar_ms / simd_ms : 0.0;
    if (have_avx2 && speedup > best_speedup) best_speedup = speedup;
    std::printf(
        "  %-12s n=%-7zu pairs=%-9llu scalar=%8.3fms simd=%8.3fms "
        "speedup=%5.2fx %s\n",
        c.label, c.n, static_cast<unsigned long long>(scalar_count),
        scalar_ms, simd_ms, speedup, match ? "MATCH" : "MISMATCH");

    char row[320];
    std::snprintf(row, sizeof(row),
                  "%s{\"label\":\"%s\",\"n\":%zu,\"rect_size\":%.1f,"
                  "\"pairs_scalar\":%llu,\"pairs_simd\":%llu,\"match\":%s,"
                  "\"scalar_ms\":%.3f,\"simd_ms\":%.3f,\"speedup\":%.3f}",
                  cases_json.size() > 1 ? "," : "", c.label, c.n, c.rect_size,
                  static_cast<unsigned long long>(scalar_pairs.size()),
                  static_cast<unsigned long long>(simd_pairs.size()),
                  match ? "true" : "false", scalar_ms, simd_ms, speedup);
    cases_json += row;
  }
  cases_json += "]";

  std::printf("  best_speedup=%.2fx %s\n", best_speedup,
              all_match ? "(all pair sets match)" : "(PAIR SET MISMATCH)");
  std::printf(
      "KERNEL_COMPARE_JSON {\"schema\":\"pbsm.kernel_compare.v1\","
      "\"host\":%s,\"all_match\":%s,\"best_speedup\":%.3f,\"cases\":%s}\n",
      bench::HostInfoJson().c_str(), all_match ? "true" : "false",
      best_speedup, cases_json.c_str());
  return all_match ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --compare-dedup mode.
// ---------------------------------------------------------------------------

struct DedupCase {
  const char* label;
  const std::vector<Tuple>* r;
  const std::vector<Tuple>* s;
  const char* r_name;
  const char* s_name;
};

struct DedupRun {
  double filter_ms = 1e300;  ///< Best-of-N partition+filter(+merge) wall.
  double partition_ms = 0.0;  ///< Components of the best filter_ms rep.
  double sweep_ms = 0.0;
  double merge_ms = 0.0;
  double total_ms = 0.0;
  uint64_t candidates = 0;
  uint64_t duplicates = 0;
  uint64_t results = 0;
  uint32_t threads = 0;
  std::vector<OidPair> pairs;  ///< Sorted result pairs, for the match check.
};

/// Runs the parallel executor under `mode` in one workspace, best-of-kReps
/// after a warm-up rep (which also warms the buffer pool). The timed
/// quantity is the filter critical path — partition + sweep/mini-join +
/// merge walls; merge_wall is identically 0 under two_layer, which is the
/// phase deletion this comparison exists to measure.
DedupRun RunDedupMode(const DedupCase& c, size_t budget_bytes,
                      DedupMode mode) {
  // The Equation-1 budget (which fixes the partition count and hence the
  // replication the merge path must dedup) is the paper-faithful pool
  // point, but the *actual* pool is sized to cache both inputs: this mode
  // compares the filter CPU paths, and eviction churn in the shared scan
  // phase would only add mode-independent noise.
  bench::Workspace ws(std::max<size_t>(budget_bytes, 128u << 20));
  auto r = LoadRelation(ws.pool(), nullptr, c.r_name, *c.r);
  PBSM_CHECK(r.ok()) << r.status().ToString();
  auto s = LoadRelation(ws.pool(), nullptr, c.s_name, *c.s);
  PBSM_CHECK(s.ok()) << s.status().ToString();

  JoinOptions opts;
  opts.memory_budget_bytes = budget_bytes;
  opts.num_tiles = 1024;  // The paper's default (§4.3).
  opts.dedup_mode = mode;

  DedupRun run;
  constexpr int kReps = 5;
  for (int rep = 0; rep <= kReps; ++rep) {
    std::vector<OidPair> pairs;
    ParallelJoinStats stats;
    JoinSpec spec;
    spec.method = JoinMethod::kParallelPbsm;
    spec.options = opts;
    spec.parallel_stats = &stats;
    spec.sink = [&pairs](Oid ro, Oid so) {
      pairs.push_back(OidPair{ro.Encode(), so.Encode()});
    };
    auto result = SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), spec);
    PBSM_CHECK(result.ok()) << result.status().ToString();
    if (rep == 0) continue;  // Warm-up.
    const double filter_ms =
        (stats.partition_wall_seconds + stats.sweep_wall_seconds +
         stats.merge_wall_seconds) *
        1e3;
    if (filter_ms < run.filter_ms) {
      run.filter_ms = filter_ms;
      run.partition_ms = stats.partition_wall_seconds * 1e3;
      run.sweep_ms = stats.sweep_wall_seconds * 1e3;
      run.merge_ms = stats.merge_wall_seconds * 1e3;
      run.total_ms = stats.total_wall_seconds * 1e3;
    }
    run.candidates = result->breakdown.candidates;
    run.duplicates = result->breakdown.duplicates_removed;
    run.results = result->breakdown.results;
    run.threads = stats.num_threads;
    run.pairs = std::move(pairs);
  }
  std::sort(run.pairs.begin(), run.pairs.end());
  return run;
}

int RunCompareDedup() {
  const double scale = bench::ScaleFromEnv();
  const bench::TigerData tiger = bench::GenTiger(scale);
  const DedupCase cases[] = {
      {"fig07-road-hydro", &tiger.roads, &tiger.hydro, "road", "hydrography"},
      {"fig08-road-rail", &tiger.roads, &tiger.rail, "road", "rail"},
  };
  // The paper's largest (24 MB) pool point: this measures the filter CPU
  // path, not buffer-pool thrash.
  const size_t pool_bytes = bench::PoolSizes(scale).back().second;

  std::printf("Dedup-mode comparison (parallel PBSM, merge vs two_layer)\n");
  std::printf("  scale=%.2f pool_pages=%zu\n", scale, pool_bytes / kPageSize);

  bool all_match = true;
  std::string cases_json = "[";
  for (const DedupCase& c : cases) {
    const DedupRun merge = RunDedupMode(c, pool_bytes, DedupMode::kMerge);
    const DedupRun two = RunDedupMode(c, pool_bytes, DedupMode::kTwoLayer);
    const bool match = merge.pairs == two.pairs;
    all_match = all_match && match;
    const double speedup =
        two.filter_ms > 0 ? merge.filter_ms / two.filter_ms : 0.0;
    std::printf(
        "  %-18s r=%-7zu s=%-7zu threads=%u merge=%8.2fms (dups=%llu) "
        "two_layer=%8.2fms filter_speedup=%5.2fx %s\n",
        c.label, c.r->size(), c.s->size(), two.threads, merge.filter_ms,
        static_cast<unsigned long long>(merge.duplicates), two.filter_ms,
        speedup, match ? "MATCH" : "MISMATCH");

    char row[768];
    std::snprintf(
        row, sizeof(row),
        "%s{\"label\":\"%s\",\"r_n\":%zu,\"s_n\":%zu,\"threads\":%u,"
        "\"merge_filter_ms\":%.3f,\"merge_phases_ms\":[%.3f,%.3f,%.3f],"
        "\"two_layer_filter_ms\":%.3f,\"two_layer_phases_ms\":[%.3f,%.3f],"
        "\"filter_speedup\":%.3f,\"merge_total_ms\":%.3f,"
        "\"two_layer_total_ms\":%.3f,\"merge_candidates\":%llu,"
        "\"merge_duplicates_removed\":%llu,\"two_layer_candidates\":%llu,"
        "\"results\":%llu,\"match\":%s}",
        cases_json.size() > 1 ? "," : "", c.label, c.r->size(), c.s->size(),
        two.threads, merge.filter_ms, merge.partition_ms, merge.sweep_ms,
        merge.merge_ms, two.filter_ms, two.partition_ms, two.sweep_ms,
        speedup, merge.total_ms,
        two.total_ms, static_cast<unsigned long long>(merge.candidates),
        static_cast<unsigned long long>(merge.duplicates),
        static_cast<unsigned long long>(two.candidates),
        static_cast<unsigned long long>(two.results),
        match ? "true" : "false");
    cases_json += row;
  }
  cases_json += "]";

  std::printf("  %s\n", all_match ? "(all result-pair sets match)"
                                  : "(RESULT-PAIR SET MISMATCH)");
  std::printf(
      "DEDUP_COMPARE_JSON {\"schema\":\"pbsm.dedup_compare.v1\","
      "\"host\":%s,\"scale\":%.2f,\"all_match\":%s,\"cases\":%s}\n",
      bench::HostInfoJson().c_str(), scale, all_match ? "true" : "false",
      cases_json.c_str());
  return all_match ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --compare-refine mode.
// ---------------------------------------------------------------------------

struct RefineRun {
  double refine_ms = 1e300;  ///< Best-of-N refinement-phase wall.
  double total_ms = 0.0;     ///< Total wall of the best rep.
  uint64_t candidates = 0;
  uint64_t results = 0;
  uint64_t true_hits = 0;
  uint64_t cell_rejects = 0;
  uint64_t exact_fallbacks = 0;
  uint64_t cover_builds = 0;
  uint32_t threads = 0;
  std::vector<OidPair> pairs;  ///< Sorted result pairs, for the match check.
};

/// Runs the parallel executor under `mode` in one workspace, best-of-kReps
/// after a warm-up rep. The timed quantity is the refinement phase alone
/// (refine_wall_seconds): the cell filter replaces exact predicate tests
/// there and nowhere else.
RefineRun RunRefineMode(const DedupCase& c, size_t budget_bytes,
                        RefineMode mode) {
  bench::Workspace ws(std::max<size_t>(budget_bytes, 128u << 20));
  auto r = LoadRelation(ws.pool(), nullptr, c.r_name, *c.r);
  PBSM_CHECK(r.ok()) << r.status().ToString();
  auto s = LoadRelation(ws.pool(), nullptr, c.s_name, *c.s);
  PBSM_CHECK(s.ok()) << s.status().ToString();

  RefineRun run;
  constexpr int kReps = 5;
  for (int rep = 0; rep <= kReps; ++rep) {
    std::vector<OidPair> pairs;
    ParallelJoinStats stats;
    JoinSpec spec;
    spec.method = JoinMethod::kParallelPbsm;
    spec.options.memory_budget_bytes = budget_bytes;
    spec.options.num_tiles = 1024;  // The paper's default (§4.3).
    spec.options.refine.mode = mode;
    // PBSM_REFINE_GRID_ORDER overrides the auto grid resolution, for
    // sweeping the reject-rate / raster-cost trade-off without a rebuild.
    if (const char* go = std::getenv("PBSM_REFINE_GRID_ORDER")) {
      spec.options.refine.grid_order =
          static_cast<uint32_t>(std::atoi(go));
    }
    if (const char* mr = std::getenv("PBSM_REFINE_MIN_RUN")) {
      spec.options.refine.min_cover_pairs =
          static_cast<uint32_t>(std::atoi(mr));
    }
    spec.parallel_stats = &stats;
    spec.sink = [&pairs](Oid ro, Oid so) {
      pairs.push_back(OidPair{ro.Encode(), so.Encode()});
    };
    auto result = SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), spec);
    PBSM_CHECK(result.ok()) << result.status().ToString();
    if (rep == 0) continue;  // Warm-up.
    const double refine_ms = stats.refine_wall_seconds * 1e3;
    if (refine_ms < run.refine_ms) {
      run.refine_ms = refine_ms;
      run.total_ms = stats.total_wall_seconds * 1e3;
    }
    run.candidates = result->breakdown.candidates;
    run.results = result->breakdown.results;
    run.true_hits = result->metrics.counter("refinement.true_hits");
    run.cell_rejects = result->metrics.counter("refinement.cell_rejects");
    run.exact_fallbacks =
        result->metrics.counter("refinement.exact_fallbacks");
    run.cover_builds = result->metrics.counter("refinement.cover_builds");
    run.threads = stats.num_threads;
    run.pairs = std::move(pairs);
  }
  std::sort(run.pairs.begin(), run.pairs.end());
  return run;
}

int RunCompareRefine() {
  const double scale = bench::ScaleFromEnv();
  const bench::TigerData tiger = bench::GenTiger(scale);
  const DedupCase cases[] = {
      {"fig07-road-hydro", &tiger.roads, &tiger.hydro, "road", "hydrography"},
      {"fig08-road-rail", &tiger.roads, &tiger.rail, "road", "rail"},
  };
  const size_t pool_bytes = bench::PoolSizes(scale).back().second;

  std::printf("Refine-mode comparison (parallel PBSM, exact vs adaptive)\n");
  std::printf("  scale=%.2f pool_pages=%zu\n", scale, pool_bytes / kPageSize);

  bool all_match = true;
  std::string cases_json = "[";
  for (const DedupCase& c : cases) {
    const RefineRun exact = RunRefineMode(c, pool_bytes, RefineMode::kExact);
    const RefineRun adaptive =
        RunRefineMode(c, pool_bytes, RefineMode::kAdaptive);
    const bool match = exact.pairs == adaptive.pairs;
    all_match = all_match && match;
    const double speedup =
        adaptive.refine_ms > 0 ? exact.refine_ms / adaptive.refine_ms : 0.0;
    std::printf(
        "  %-18s r=%-7zu s=%-7zu threads=%u exact=%8.2fms "
        "adaptive=%8.2fms (hits=%llu rejects=%llu fallbacks=%llu "
        "builds=%llu) refine_speedup=%5.2fx %s\n",
        c.label, c.r->size(), c.s->size(), adaptive.threads, exact.refine_ms,
        adaptive.refine_ms,
        static_cast<unsigned long long>(adaptive.true_hits),
        static_cast<unsigned long long>(adaptive.cell_rejects),
        static_cast<unsigned long long>(adaptive.exact_fallbacks),
        static_cast<unsigned long long>(adaptive.cover_builds), speedup,
        match ? "MATCH" : "MISMATCH");

    char row[640];
    std::snprintf(
        row, sizeof(row),
        "%s{\"label\":\"%s\",\"r_n\":%zu,\"s_n\":%zu,\"threads\":%u,"
        "\"exact_refine_ms\":%.3f,\"adaptive_refine_ms\":%.3f,"
        "\"refine_speedup\":%.3f,\"exact_total_ms\":%.3f,"
        "\"adaptive_total_ms\":%.3f,\"candidates\":%llu,\"results\":%llu,"
        "\"true_hits\":%llu,\"cell_rejects\":%llu,\"exact_fallbacks\":%llu,"
        "\"match\":%s}",
        cases_json.size() > 1 ? "," : "", c.label, c.r->size(), c.s->size(),
        adaptive.threads, exact.refine_ms, adaptive.refine_ms, speedup,
        exact.total_ms, adaptive.total_ms,
        static_cast<unsigned long long>(adaptive.candidates),
        static_cast<unsigned long long>(adaptive.results),
        static_cast<unsigned long long>(adaptive.true_hits),
        static_cast<unsigned long long>(adaptive.cell_rejects),
        static_cast<unsigned long long>(adaptive.exact_fallbacks),
        match ? "true" : "false");
    cases_json += row;
  }
  cases_json += "]";

  std::printf("  %s\n", all_match ? "(all result-pair sets match)"
                                  : "(RESULT-PAIR SET MISMATCH)");
  std::printf(
      "REFINE_COMPARE_JSON {\"schema\":\"pbsm.refine_compare.v1\","
      "\"host\":%s,\"scale\":%.2f,\"all_match\":%s,\"cases\":%s}\n",
      bench::HostInfoJson().c_str(), scale, all_match ? "true" : "false",
      cases_json.c_str());
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace pbsm

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare-kernels") == 0) {
      return pbsm::RunCompareKernels();
    }
    if (std::strcmp(argv[i], "--compare-dedup") == 0) {
      return pbsm::RunCompareDedup();
    }
    if (std::strcmp(argv[i], "--compare-refine") == 0) {
      return pbsm::RunCompareRefine();
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
