// Microbenchmarks for the in-memory plane-sweep rectangle join (the PBSM
// partition-merge kernel): forward sweep vs interval-tree sweep vs nested
// loops across input sizes and selectivities.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/plane_sweep_join.h"

namespace pbsm {
namespace {

std::vector<KeyPointer> RandomRects(size_t n, double size, uint64_t seed) {
  Rng rng(seed);
  std::vector<KeyPointer> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    out.push_back(KeyPointer{
        Rect(x, y, x + rng.NextDouble() * size, y + rng.NextDouble() * size),
        i});
  }
  return out;
}

void RunSweep(benchmark::State& state, SweepAlgorithm algo) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double size = static_cast<double>(state.range(1));
  const auto r0 = RandomRects(n, size, 1);
  const auto s0 = RandomRects(n, size, 2);
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto r = r0;
    auto s = s0;
    pairs = PlaneSweepJoin(&r, &s, [](uint64_t, uint64_t) {}, algo);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}

void BM_ForwardSweep(benchmark::State& state) {
  RunSweep(state, SweepAlgorithm::kForwardSweep);
}
BENCHMARK(BM_ForwardSweep)
    ->Args({1000, 2})
    ->Args({10000, 2})
    ->Args({100000, 2})
    ->Args({10000, 20});

void BM_IntervalTreeSweep(benchmark::State& state) {
  RunSweep(state, SweepAlgorithm::kIntervalTreeSweep);
}
BENCHMARK(BM_IntervalTreeSweep)
    ->Args({1000, 2})
    ->Args({10000, 2})
    ->Args({100000, 2})
    ->Args({10000, 20});

void BM_NestedLoopsJoin(benchmark::State& state) {
  RunSweep(state, SweepAlgorithm::kNestedLoops);
}
BENCHMARK(BM_NestedLoopsJoin)->Args({1000, 2})->Args({10000, 2});

}  // namespace
}  // namespace pbsm

BENCHMARK_MAIN();
