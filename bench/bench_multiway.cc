// Multi-way join and materialized-view benchmark, two experiments:
//
// 1. Pipelined 3-way join (road x hydrography x rail through one operator
//    tree: the SpatialJoinOp stage holds only encoded OID rows in memory)
//    against the classic materialize-between-joins plan, which writes the
//    road x hydrography result to a temporary heap relation, rescans it,
//    and runs a second full join against rail. The intermediate carries
//    one tuple per base PAIR — duplicated geometry — so the second join
//    pays serialization, a rescan, and a candidate set inflated by the
//    duplication factor. Gate (CI perf-smoke): pipelined >= 1.3x faster.
//
// 2. Warm MaterializedJoinView lookup against re-running the same join
//    through the facade on a warm buffer pool. A view lookup is an
//    in-memory set walk; the gate is >= 10x.
//
// Emits one MULTIWAY_JOIN_JSON line, schema pbsm.multiway_join.v1; the
// checked-in reference numbers live at
// bench/results/multiway_join_baseline.json. Exit status is nonzero (and
// METRICS_JSON is tagged failed) if the pipelined and materialized triple
// sets disagree or the view count drifts from the re-run join — the
// speedup floors themselves are asserted by the CI job, not the binary.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/loader.h"
#include "exec/plan_builder.h"
#include "exec/view_maintainer.h"

namespace pbsm {
namespace {

using Triple = std::array<uint64_t, 3>;
using TripleSet = std::set<Triple>;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Base join spec shared by every plan in this bench, so the 3-way
/// comparison isolates the materialization strategy and nothing else.
JoinSpec BaseSpec(size_t budget_bytes) {
  JoinSpec spec;
  spec.method = JoinMethod::kPbsm;
  spec.options.memory_budget_bytes = budget_bytes;
  return spec;
}

struct ThreeWayRun {
  double ms = 1e300;     ///< Best-of-reps wall time.
  uint64_t triples = 0;  ///< Result cardinality (identical across reps).
  uint64_t base_pairs = 0;
  TripleSet set;  ///< Captured on the first timed rep, for the match gate.
};

/// One operator tree, no intermediate storage: road x hydro (PBSM filter +
/// refine) feeding a SpatialJoinOp stage that joins the hydro column
/// (column 1) against rail.
ThreeWayRun RunPipelined(BufferPool* pool, const JoinInput& roads,
                         const JoinInput& hydro, const JoinInput& rail,
                         size_t budget_bytes, int reps) {
  ThreeWayRun run;
  for (int rep = 0; rep <= reps; ++rep) {
    MultiwayJoinSpec spec;
    spec.first = roads;
    spec.second = hydro;
    spec.base = BaseSpec(budget_bytes);
    spec.stages.push_back(
        MultiwayStage{rail, SpatialPredicate::kIntersects, 1});
    std::unique_ptr<Operator> tree = BuildMultiwayTree(spec);

    TripleSet set;
    uint64_t count = 0;
    const bool capture = rep == 1;
    const auto start = Clock::now();
    ExecContext ctx{pool};
    const Status status = DriveTree(
        tree.get(), &ctx,
        [&](const uint64_t* row, uint32_t arity) {
          PBSM_CHECK(arity == 3);
          ++count;
          if (capture) set.insert({row[0], row[1], row[2]});
        });
    const double ms = MsSince(start);
    PBSM_CHECK(status.ok()) << status.ToString();
    if (rep == 0) continue;  // Warm-up.
    run.ms = std::min(run.ms, ms);
    run.triples = count;
    if (capture) run.set = std::move(set);
  }
  return run;
}

/// The baseline: run road x hydro through the facade, materialize one
/// intermediate tuple per result pair (carrying the hydro geometry) into a
/// fresh heap relation, rescan it for the OID -> pair mapping, and join it
/// against rail. The hydro OID -> tuple map is prebuilt OUTSIDE the timer,
/// which only favors this baseline — the gate stays conservative.
ThreeWayRun RunMaterialized(BufferPool* pool, const JoinInput& roads,
                            const JoinInput& hydro, const JoinInput& rail,
                            const std::unordered_map<uint64_t, Tuple>& hydro_by_oid,
                            size_t budget_bytes, int reps) {
  ThreeWayRun run;
  for (int rep = 0; rep <= reps; ++rep) {
    const auto start = Clock::now();

    // Stage 1: base join, pairs buffered.
    std::vector<OidPair> pairs;
    JoinSpec spec = BaseSpec(budget_bytes);
    spec.sink = [&pairs](Oid ro, Oid so) {
      pairs.push_back(OidPair{ro.Encode(), so.Encode()});
    };
    auto base = SpatialJoin(pool, roads, hydro, spec);
    PBSM_CHECK(base.ok()) << base.status().ToString();

    // Stage 2: materialize the intermediate — one tuple per pair, id =
    // pair index, geometry = the hydro side's (the next join's column).
    std::vector<Tuple> inter;
    inter.reserve(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      const auto it = hydro_by_oid.find(pairs[i].s);
      PBSM_CHECK(it != hydro_by_oid.end());
      Tuple t;
      t.id = i;
      t.geometry = it->second.geometry;
      inter.push_back(std::move(t));
    }
    auto stored = LoadRelation(pool, nullptr,
                               "inter_rep" + std::to_string(rep),
                               std::move(inter));
    PBSM_CHECK(stored.ok()) << stored.status().ToString();

    // Stage 3: rescan for the OID -> pair-index mapping the final sink
    // needs (the heap assigns OIDs; the join reports them, not tuple ids).
    std::unordered_map<uint64_t, uint64_t> oid_to_pair;
    oid_to_pair.reserve(pairs.size());
    PBSM_CHECK(stored->heap
                   .Scan([&](Oid oid, const char* data, size_t size) {
                     auto t = Tuple::Parse(data, size);
                     PBSM_RETURN_IF_ERROR(t.status());
                     oid_to_pair.emplace(oid.Encode(), t->id);
                     return Status::OK();
                   })
                   .ok());

    // Stage 4: second full join, intermediate x rail.
    TripleSet set;
    uint64_t count = 0;
    const bool capture = rep == 1;
    JoinSpec second = BaseSpec(budget_bytes);
    second.sink = [&](Oid io, Oid to) {
      const OidPair& p = pairs[oid_to_pair.at(io.Encode())];
      ++count;
      if (capture) set.insert({p.r, p.s, to.Encode()});
    };
    auto result = SpatialJoin(pool, stored->AsInput(), rail, second);
    const double ms = MsSince(start);
    PBSM_CHECK(result.ok()) << result.status().ToString();
    if (rep == 0) continue;  // Warm-up.
    run.ms = std::min(run.ms, ms);
    run.triples = count;
    run.base_pairs = pairs.size();
    if (capture) run.set = std::move(set);
  }
  return run;
}

struct ViewRun {
  double build_ms = 0.0;
  double lookup_ms = 1e300;  ///< Best-of-reps warm Emit() walk.
  double rerun_ms = 1e300;   ///< Best-of-reps facade re-join, warm pool.
  uint64_t pairs = 0;
  uint64_t rerun_pairs = 0;
};

ViewRun RunViewLookup(BufferPool* pool, const JoinInput& roads,
                      const JoinInput& hydro, size_t budget_bytes) {
  ViewRun run;
  MaterializedJoinView::Config config;
  config.name = "bench_road_x_hydro";
  config.base = BaseSpec(budget_bytes);

  auto build_start = Clock::now();
  auto view = MaterializedJoinView::Build(pool, roads, hydro, config);
  run.build_ms = MsSince(build_start);
  PBSM_CHECK(view.ok()) << view.status().ToString();
  run.pairs = (*view)->num_pairs();

  // Warm lookup: stream every pair through a sink, like a client would.
  constexpr int kLookupReps = 10;
  for (int rep = 0; rep <= kLookupReps; ++rep) {
    uint64_t streamed = 0;
    const auto start = Clock::now();
    (*view)->Emit([&streamed](Oid, Oid) { ++streamed; });
    const double ms = MsSince(start);
    PBSM_CHECK(streamed == run.pairs);
    if (rep > 0) run.lookup_ms = std::min(run.lookup_ms, ms);
  }

  // The alternative a view replaces: re-run the join (warm buffer pool).
  constexpr int kJoinReps = 3;
  for (int rep = 0; rep <= kJoinReps; ++rep) {
    uint64_t streamed = 0;
    JoinSpec spec = BaseSpec(budget_bytes);
    spec.sink = [&streamed](Oid, Oid) { ++streamed; };
    const auto start = Clock::now();
    auto result = SpatialJoin(pool, roads, hydro, spec);
    const double ms = MsSince(start);
    PBSM_CHECK(result.ok()) << result.status().ToString();
    run.rerun_pairs = streamed;
    if (rep > 0) run.rerun_ms = std::min(run.rerun_ms, ms);
  }
  return run;
}

int Run() {
  const double scale = bench::ScaleFromEnv();
  const bench::TigerData tiger = bench::GenTiger(scale);
  const size_t pool_bytes = bench::PoolSizes(scale).back().second;

  // The pool is oversized so eviction thrash does not drown the effect
  // under measurement (the dedup/refine micro benches do the same); the
  // materialization penalty measured here is serialization + rescan +
  // duplicated refinement work, all of which survive a big pool.
  bench::Workspace ws(std::max<size_t>(pool_bytes, 128u << 20));
  auto roads = LoadRelation(ws.pool(), nullptr, "road", tiger.roads);
  PBSM_CHECK(roads.ok()) << roads.status().ToString();
  auto hydro = LoadRelation(ws.pool(), nullptr, "hydrography", tiger.hydro);
  PBSM_CHECK(hydro.ok()) << hydro.status().ToString();
  auto rail = LoadRelation(ws.pool(), nullptr, "rail", tiger.rail);
  PBSM_CHECK(rail.ok()) << rail.status().ToString();

  std::unordered_map<uint64_t, Tuple> hydro_by_oid;
  PBSM_CHECK(hydro->heap
                 .Scan([&](Oid oid, const char* data, size_t size) {
                   auto t = Tuple::Parse(data, size);
                   PBSM_RETURN_IF_ERROR(t.status());
                   hydro_by_oid.emplace(oid.Encode(), std::move(*t));
                   return Status::OK();
                 })
                 .ok());

  std::printf("Multi-way join: pipelined tree vs materialize-between-joins\n");
  std::printf("  scale=%.2f r=%zu s=%zu t=%zu pool_pages=%zu\n", scale,
              tiger.roads.size(), tiger.hydro.size(), tiger.rail.size(),
              std::max<size_t>(pool_bytes, 128u << 20) / kPageSize);

  constexpr int kReps = 3;
  const ThreeWayRun pipelined =
      RunPipelined(ws.pool(), roads->AsInput(), hydro->AsInput(),
                   rail->AsInput(), pool_bytes, kReps);
  const ThreeWayRun materialized = RunMaterialized(
      ws.pool(), roads->AsInput(), hydro->AsInput(), rail->AsInput(),
      hydro_by_oid, pool_bytes, kReps);

  const bool triples_match = pipelined.set == materialized.set &&
                             pipelined.triples == materialized.triples;
  const double pipeline_speedup =
      pipelined.ms > 0 ? materialized.ms / pipelined.ms : 0.0;
  std::printf(
      "  3-way: triples=%llu base_pairs=%llu pipelined=%9.2fms "
      "materialized=%9.2fms speedup=%5.2fx %s\n",
      static_cast<unsigned long long>(pipelined.triples),
      static_cast<unsigned long long>(materialized.base_pairs),
      pipelined.ms, materialized.ms, pipeline_speedup,
      triples_match ? "MATCH" : "MISMATCH");

  const ViewRun view = RunViewLookup(ws.pool(), roads->AsInput(),
                                     hydro->AsInput(), pool_bytes);
  const bool view_match = view.pairs == view.rerun_pairs;
  const double view_speedup =
      view.lookup_ms > 0 ? view.rerun_ms / view.lookup_ms : 0.0;
  std::printf(
      "  view:  pairs=%llu build=%9.2fms lookup=%9.4fms rerun=%9.2fms "
      "speedup=%7.1fx %s\n",
      static_cast<unsigned long long>(view.pairs), view.build_ms,
      view.lookup_ms, view.rerun_ms, view_speedup,
      view_match ? "MATCH" : "MISMATCH");

  const bool all_match = triples_match && view_match;
  if (!all_match) bench::MarkBenchFailed();
  std::printf("  %s\n", all_match ? "(all result sets match)"
                                  : "(RESULT SET MISMATCH)");
  std::printf(
      "MULTIWAY_JOIN_JSON {\"schema\":\"pbsm.multiway_join.v1\","
      "\"host\":%s,\"scale\":%.2f,\"all_match\":%s,"
      "\"three_way\":{\"r_n\":%zu,\"s_n\":%zu,\"t_n\":%zu,"
      "\"triples\":%llu,\"base_pairs\":%llu,\"pipelined_ms\":%.3f,"
      "\"materialized_ms\":%.3f,\"pipeline_speedup\":%.3f,"
      "\"match\":%s},"
      "\"view\":{\"pairs\":%llu,\"build_ms\":%.3f,\"lookup_ms\":%.4f,"
      "\"rerun_join_ms\":%.3f,\"view_speedup\":%.3f,\"match\":%s}}\n",
      bench::HostInfoJson().c_str(), scale, all_match ? "true" : "false",
      tiger.roads.size(), tiger.hydro.size(), tiger.rail.size(),
      static_cast<unsigned long long>(pipelined.triples),
      static_cast<unsigned long long>(materialized.base_pairs),
      pipelined.ms, materialized.ms, pipeline_speedup,
      triples_match ? "true" : "false",
      static_cast<unsigned long long>(view.pairs), view.build_ms,
      view.lookup_ms, view.rerun_ms, view_speedup,
      view_match ? "true" : "false");
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace pbsm

int main(int argc, char** argv) {
  pbsm::bench::ParseBenchArgs(argc, argv);
  return pbsm::Run();
}
