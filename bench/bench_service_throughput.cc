// Closed-loop throughput/latency driver for the join service (see
// DESIGN.md "Service layer" and "Sharded service"). Four experiments:
//
//   1. Planner validation: on the Figure 7 (road x hydrography) and
//      Figure 8 (road x rail) pairs, measure every method cold through the
//      service, then let the planner choose — it must land within 20% of
//      the fastest measured method (the PR's acceptance bar).
//   2. Index-cache speedup: a repeated rtree-method query must run in
//      under 0.5x its cold time once the service's index cache is warm.
//   3. Closed-loop throughput: 1/4/8 client threads issue a mixed
//      workload (alternating dataset pairs, priorities, planner-routed and
//      forced-method queries) back-to-back; reports queries/sec and
//      p50/p95/p99 latency, cold vs warm cache. Admission-rejected
//      attempts (kResourceExhausted) are retried after a backoff and are
//      counted but EXCLUDED from the latency percentiles — a rejection
//      returns in microseconds and would otherwise drag the tail metrics
//      toward zero exactly when the service is saturated.
//   4. Sharded scatter-gather sweep (--shards=1,4): the same closed loop
//      through a JoinRouter over N spatial shards. Reports wall-clock
//      throughput (ungated — a single-core host serializes the shard
//      workers) and critical-path throughput (completed / sum of per-query
//      max slice execution time, the wall-clock a host with >= N cores
//      would approach). Gate: the largest shard count's critical-path
//      throughput must be >= 1.5x the 1-shard run's.
//
// Emits one SERVICE_THROUGHPUT_JSON line, schema
// pbsm.service_throughput.v2 (recorded baselines:
// bench/results/service_throughput_baseline.json and
// bench/results/sharded_service_baseline.json) plus the standard
// METRICS_JSON exit blob. Violating experiment 1, 2 or 4 marks the bench
// failed (non-zero exit, METRICS_JSON status "failed").

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "service/join_router.h"
#include "service/join_service.h"
#include "service/shard_manager.h"

namespace pbsm {
namespace bench {

/// Shard counts for experiment 4, settable via --shards=1,4.
std::vector<uint32_t>& ShardCounts() {
  static std::vector<uint32_t> counts = {1, 4};
  return counts;
}

namespace {

struct Latencies {
  std::vector<double> seconds;

  void Add(double s) { seconds.push_back(s); }
  double Percentile(double q) {
    if (seconds.empty()) return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(seconds.size() - 1) + 0.5);
    return seconds[std::min(idx, seconds.size() - 1)];
  }
};

constexpr JoinMethod kAllMethods[] = {
    JoinMethod::kPbsm,   JoinMethod::kParallelPbsm, JoinMethod::kInl,
    JoinMethod::kRtree,  JoinMethod::kSpatialHash,  JoinMethod::kZOrder,
};

/// One synchronous query through the service; aborts the bench on error
/// (this driver's queries must all succeed).
JoinResponse MustExecute(JoinService* service, JoinRequest request) {
  auto response = service->Execute(std::move(request));
  PBSM_CHECK(response.ok()) << response.status().ToString();
  return std::move(response).value();
}

/// Closed-loop client accounting: completion latencies plus the number of
/// admission rejections retried along the way.
struct ClientStats {
  Latencies lat;
  uint64_t rejected = 0;
};

/// Executes `request` until it is admitted and completes, retrying
/// admission rejections after a short backoff. Only the successful
/// attempt's latency is recorded: a rejection never entered the queue, so
/// its (near-zero) turnaround is not service latency and would corrupt the
/// percentiles. Any other error aborts the bench.
template <typename Target>
JoinResponse ExecuteClosedLoop(Target* target, const JoinRequest& request,
                               ClientStats* stats) {
  for (;;) {
    Stopwatch watch;
    auto response = target->Execute(request);
    if (response.ok()) {
      stats->lat.Add(watch.ElapsedSeconds());
      return std::move(response).value();
    }
    PBSM_CHECK(response.status().code() == StatusCode::kResourceExhausted)
        << response.status().ToString();
    ++stats->rejected;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}


int Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Service throughput: scheduler + planner + index cache");
  PrintScaleBanner(scale);

  const TigerData data = GenTiger(scale);
  Workspace ws(/*pool_bytes=*/96ull << 20);
  Catalog catalog;
  auto road = LoadRelation(ws.pool(), &catalog, "road", data.roads);
  auto hydro = LoadRelation(ws.pool(), &catalog, "hydro", data.hydro);
  auto rail = LoadRelation(ws.pool(), &catalog, "rail", data.rail);
  PBSM_CHECK(road.ok() && hydro.ok() && rail.ok());

  JoinServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 128;
  config.join_defaults.memory_budget_bytes = 8ull << 20;
  JoinService service(ws.pool(), config);
  PBSM_CHECK(service.RegisterDataset("road", &road->heap, road->info).ok());
  PBSM_CHECK(
      service.RegisterDataset("hydro", &hydro->heap, hydro->info).ok());
  PBSM_CHECK(service.RegisterDataset("rail", &rail->heap, rail->info).ok());

  std::string json = "{\"schema\":\"pbsm.service_throughput.v2\",";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "\"scale\":%.3f,\"workers\":%u,", scale,
                config.num_workers);
  json += buf;
  bool ok = true;

  // -------------------------------------------------------------------
  // 1. Planner validation on the paper's two TIGER join pairs.
  // -------------------------------------------------------------------
  json += "\"planner\":{";
  const struct {
    const char* label;
    const char* r;
    const char* s;
  } kPairs[] = {{"fig07_road_hydro", "road", "hydro"},
                {"fig08_road_rail", "road", "rail"}};
  for (size_t p = 0; p < 2; ++p) {
    PrintTitle(std::string("planner validation: ") + kPairs[p].label);
    double best = 1e30;
    std::string_view best_name;
    std::string methods_json = "{";
    for (const JoinMethod method : kAllMethods) {
      service.cache().Clear();  // Every method measured cold.
      JoinRequest request;
      request.r_dataset = kPairs[p].r;
      request.s_dataset = kPairs[p].s;
      request.method = method;
      Stopwatch watch;
      const JoinResponse response = MustExecute(&service, request);
      const double sec = watch.ElapsedSeconds();
      std::printf("  %-14.*s %.3fs  (%llu results)\n",
                  (int)JoinMethodName(method).size(),
                  JoinMethodName(method).data(), sec,
                  (unsigned long long)response.num_results);
      std::snprintf(buf, sizeof(buf), "%s\"%.*s\":%.4f",
                    methods_json.size() > 1 ? "," : "",
                    (int)JoinMethodName(method).size(),
                    JoinMethodName(method).data(), sec);
      methods_json += buf;
      if (sec < best) {
        best = sec;
        best_name = JoinMethodName(method);
      }
    }
    service.cache().Clear();
    JoinRequest request;
    request.r_dataset = kPairs[p].r;
    request.s_dataset = kPairs[p].s;  // No method: planner chooses.
    Stopwatch watch;
    const JoinResponse planned = MustExecute(&service, request);
    const double planned_sec = watch.ElapsedSeconds();
    const bool within =
        planned_sec <= best * 1.20 + 0.005;  // +5ms noise floor on tiny runs.
    std::printf("  planner chose %.*s: %.3fs vs best %.*s %.3fs -> %s\n",
                (int)JoinMethodName(planned.method).size(),
                JoinMethodName(planned.method).data(), planned_sec,
                (int)best_name.size(), best_name.data(), best,
                within ? "within 20%" : "VIOLATION (>20% off best)");
    std::printf("  plan: %s\n", planned.plan.c_str());
    if (!within) ok = false;
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\":{\"methods\":%s},\"chosen\":\"%.*s\",\"chosen_seconds\""
        ":%.4f,\"best_seconds\":%.4f,\"within_20pct\":%s}",
        p > 0 ? "," : "", kPairs[p].label, methods_json.c_str(),
        (int)JoinMethodName(planned.method).size(),
        JoinMethodName(planned.method).data(), planned_sec, best,
        within ? "true" : "false");
    json += buf;
  }
  json += "},";

  // -------------------------------------------------------------------
  // 2. Cold vs warm rtree queries through the index cache.
  // -------------------------------------------------------------------
  json += "\"cache\":{";
  PrintTitle("index cache: cold vs warm rtree queries");
  for (size_t p = 0; p < 2; ++p) {
    service.cache().Clear();
    JoinRequest request;
    request.r_dataset = kPairs[p].r;
    request.s_dataset = kPairs[p].s;
    request.method = JoinMethod::kRtree;
    Stopwatch cold_watch;
    (void)MustExecute(&service, request);
    const double cold = cold_watch.ElapsedSeconds();
    constexpr int kWarmRuns = 3;
    double warm_total = 0;
    for (int i = 0; i < kWarmRuns; ++i) {
      Stopwatch warm_watch;
      (void)MustExecute(&service, request);
      warm_total += warm_watch.ElapsedSeconds();
    }
    const double warm = warm_total / kWarmRuns;
    const bool fast_enough = warm < 0.5 * cold;
    std::printf("  %s: cold %.3fs, warm %.3fs (%.2fx) -> %s\n",
                kPairs[p].label, cold, warm, warm / cold,
                fast_enough ? "under 0.5x" : "VIOLATION (>= 0.5x cold)");
    if (!fast_enough) ok = false;
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"cold_seconds\":%.4f,\"warm_seconds\":%.4f,"
                  "\"ratio\":%.3f,\"under_half\":%s}",
                  p > 0 ? "," : "", kPairs[p].label, cold, warm, warm / cold,
                  fast_enough ? "true" : "false");
    json += buf;
  }
  json += "},";

  // -------------------------------------------------------------------
  // 3. Closed-loop mixed workload at 1/4/8 client threads.
  // -------------------------------------------------------------------
  json += "\"closed_loop\":[";
  PrintTitle("closed-loop mixed workload");
  constexpr int kQueriesPerClient = 4;
  bool first_config = true;
  for (const int clients : {1, 4, 8}) {
    for (const bool warm : {false, true}) {
      if (!warm) service.cache().Clear();
      std::vector<ClientStats> per_client(clients);
      Stopwatch wall;
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (int q = 0; q < kQueriesPerClient; ++q) {
            // Mixed workload: alternate the small pairs, priorities, and
            // planner-vs-forced routing so every scheduler path is hot.
            JoinRequest request;
            const int kind = (c + q) % 3;
            request.r_dataset = kind == 0 ? "hydro" : "road";
            request.s_dataset = "rail";
            if (kind == 1) request.method = JoinMethod::kRtree;
            request.priority = (c + q) % 2 == 0 ? QueryPriority::kInteractive
                                                : QueryPriority::kBatch;
            (void)ExecuteClosedLoop(&service, request, &per_client[c]);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double elapsed = wall.ElapsedSeconds();

      Latencies all;
      uint64_t rejected = 0;
      for (ClientStats& s : per_client) {
        for (double sec : s.lat.seconds) all.Add(sec);
        rejected += s.rejected;
      }
      const double qps =
          static_cast<double>(clients * kQueriesPerClient) / elapsed;
      const double p50 = all.Percentile(0.50);
      const double p95 = all.Percentile(0.95);
      const double p99 = all.Percentile(0.99);
      std::printf("  %d client(s), %s cache: %5.2f q/s  p50=%.3fs "
                  "p95=%.3fs p99=%.3fs  (%llu rejected)\n",
                  clients, warm ? "warm" : "cold", qps, p50, p95, p99,
                  (unsigned long long)rejected);
      std::snprintf(buf, sizeof(buf),
                    "%s{\"clients\":%d,\"warm\":%s,\"queries\":%d,"
                    "\"throughput_qps\":%.3f,\"p50_s\":%.4f,\"p95_s\":%.4f,"
                    "\"p99_s\":%.4f,\"rejected\":%llu}",
                    first_config ? "" : ",", clients,
                    warm ? "true" : "false", clients * kQueriesPerClient,
                    qps, p50, p95, p99, (unsigned long long)rejected);
      json += buf;
      first_config = false;
    }
  }
  json += "],";

  // -------------------------------------------------------------------
  // 4. Sharded scatter-gather sweep: the closed loop through a JoinRouter.
  // -------------------------------------------------------------------
  json += "\"sharded\":[";
  PrintTitle("sharded scatter-gather sweep (road x hydro, pbsm)");
  constexpr int kShardClients = 2;
  constexpr int kQueriesPerShardClient = 3;
  struct SweepPoint {
    uint32_t shards = 0;
    double wall_qps = 0.0;
    double critical_qps = 0.0;
  };
  std::vector<SweepPoint> sweep;
  for (const uint32_t num_shards : ShardCounts()) {
    ShardManagerConfig shard_config;
    shard_config.num_shards = num_shards;
    ShardManager shards(shard_config);
    PBSM_CHECK(shards.RegisterDataset("road", &road->heap, road->info).ok());
    PBSM_CHECK(
        shards.RegisterDataset("hydro", &hydro->heap, hydro->info).ok());
    JoinRouterConfig router_config;
    router_config.queue_capacity = 128;
    router_config.join_defaults.memory_budget_bytes = 8ull << 20;
    JoinRouter router(&shards, router_config);

    struct PerShard {
      uint64_t subjoins = 0;
      uint64_t results = 0;
      uint64_t stolen = 0;
      double exec_seconds = 0.0;
      double cpu_seconds = 0.0;
    };
    std::vector<PerShard> per_shard(num_shards);
    std::vector<ClientStats> stats(kShardClients);
    double critical_seconds = 0.0;
    std::mutex agg_mutex;
    Stopwatch wall;
    std::vector<std::thread> threads;
    threads.reserve(kShardClients);
    for (int c = 0; c < kShardClients; ++c) {
      threads.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerShardClient; ++q) {
          JoinRequest request;
          request.r_dataset = "road";
          request.s_dataset = "hydro";
          request.method = JoinMethod::kPbsm;
          const JoinResponse response =
              ExecuteClosedLoop(&router, request, &stats[c]);
          std::lock_guard<std::mutex> lock(agg_mutex);
          // Critical path = the query's slowest slice, measured in worker
          // CPU time: wall time is inflated by time-sharing when the host
          // has fewer cores than shards (slice cpu_seconds is exact with
          // the router's serial sub-join default).
          double critical = 0.0;
          for (const ShardSliceStats& slice : response.shard_slices) {
            critical = std::max(critical, slice.cpu_seconds);
            PerShard& agg = per_shard[slice.shard];
            ++agg.subjoins;
            agg.results += slice.num_results;
            agg.stolen += slice.stolen ? 1 : 0;
            agg.exec_seconds += slice.exec_seconds;
            agg.cpu_seconds += slice.cpu_seconds;
          }
          critical_seconds += critical;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double elapsed = wall.ElapsedSeconds();
    router.Shutdown(/*drain=*/true);

    const int completed = kShardClients * kQueriesPerShardClient;
    uint64_t rejected = 0;
    for (const ClientStats& s : stats) rejected += s.rejected;
    SweepPoint point;
    point.shards = num_shards;
    point.wall_qps = static_cast<double>(completed) / elapsed;
    point.critical_qps =
        critical_seconds > 0.0
            ? static_cast<double>(completed) / critical_seconds
            : 0.0;
    sweep.push_back(point);
    std::printf("  %u shard(s): wall %5.2f q/s, critical-path %5.2f q/s "
                "(%llu rejected)\n",
                num_shards, point.wall_qps, point.critical_qps,
                (unsigned long long)rejected);
    std::snprintf(buf, sizeof(buf),
                  "%s{\"shards\":%u,\"queries\":%d,"
                  "\"throughput_wall_qps\":%.3f,"
                  "\"throughput_critical_qps\":%.3f,\"rejected\":%llu,"
                  "\"per_shard\":[",
                  sweep.size() > 1 ? "," : "", num_shards, completed,
                  point.wall_qps, point.critical_qps,
                  (unsigned long long)rejected);
    json += buf;
    for (uint32_t i = 0; i < num_shards; ++i) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"shard\":%u,\"subjoins\":%llu,\"results\":%llu,"
                    "\"stolen\":%llu,\"exec_seconds\":%.4f,"
                    "\"cpu_seconds\":%.4f}",
                    i > 0 ? "," : "", i,
                    (unsigned long long)per_shard[i].subjoins,
                    (unsigned long long)per_shard[i].results,
                    (unsigned long long)per_shard[i].stolen,
                    per_shard[i].exec_seconds, per_shard[i].cpu_seconds);
      json += buf;
    }
    json += "]}";
  }
  json += "],";

  // The gate compares the largest shard count against the 1-shard run on
  // CRITICAL-PATH throughput: wall-clock on a single-core host serializes
  // the shard workers and says nothing about scatter-gather scaling.
  json += "\"sharded_gate\":";
  const SweepPoint* base = nullptr;
  for (const SweepPoint& p : sweep) {
    if (p.shards == 1) base = &p;
  }
  if (base != nullptr && sweep.size() > 1 && sweep.back().shards > 1) {
    const SweepPoint& top = sweep.back();
    const double critical_ratio =
        base->critical_qps > 0.0 ? top.critical_qps / base->critical_qps
                                 : 0.0;
    const double wall_ratio =
        base->wall_qps > 0.0 ? top.wall_qps / base->wall_qps : 0.0;
    const bool pass = critical_ratio >= 1.5;
    std::printf("  gate: %u-shard critical-path throughput %.2fx 1-shard "
                "(wall %.2fx, ungated) -> %s\n",
                top.shards, critical_ratio, wall_ratio,
                pass ? "ok (>= 1.5x)" : "VIOLATION (< 1.5x)");
    if (!pass) ok = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"baseline_shards\":1,\"target_shards\":%u,"
                  "\"critical_ratio\":%.3f,\"wall_ratio\":%.3f,"
                  "\"threshold\":1.5,\"pass\":%s},",
                  top.shards, critical_ratio, wall_ratio,
                  pass ? "true" : "false");
    json += buf;
  } else {
    json += "{\"skipped\":true},";
  }
  std::snprintf(buf, sizeof(buf),
                "\"cache_hits\":%llu,\"cache_misses\":%llu,\"status\":"
                "\"%s\"}",
                (unsigned long long)service.cache().hits(),
                (unsigned long long)service.cache().misses(),
                ok ? "ok" : "failed");
  json += buf;

  std::printf("\nSERVICE_THROUGHPUT_JSON %s\n", json.c_str());
  service.Shutdown(/*drain=*/true);
  if (!ok) MarkBenchFailed();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main(int argc, char** argv) {
  pbsm::bench::ParseBenchArgs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--shards=";
    if (arg.rfind(prefix, 0) != 0) continue;
    std::vector<uint32_t> counts;
    std::string list = arg.substr(prefix.size());
    size_t pos = 0;
    while (pos < list.size()) {
      const size_t comma = list.find(',', pos);
      const std::string item =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      const int n = std::atoi(item.c_str());
      PBSM_CHECK(n > 0) << "bad --shards entry: " << item;
      counts.push_back(static_cast<uint32_t>(n));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    PBSM_CHECK(!counts.empty()) << "empty --shards list";
    pbsm::bench::ShardCounts() = std::move(counts);
  }
  return pbsm::bench::Run();
}
