// Closed-loop throughput/latency driver for the join service (see
// DESIGN.md "Service layer"). Three experiments:
//
//   1. Planner validation: on the Figure 7 (road x hydrography) and
//      Figure 8 (road x rail) pairs, measure every method cold through the
//      service, then let the planner choose — it must land within 20% of
//      the fastest measured method (the PR's acceptance bar).
//   2. Index-cache speedup: a repeated rtree-method query must run in
//      under 0.5x its cold time once the service's index cache is warm.
//   3. Closed-loop throughput: 1/4/8 client threads issue a mixed
//      workload (alternating dataset pairs, priorities, planner-routed and
//      forced-method queries) back-to-back; reports queries/sec and
//      p50/p95/p99 latency, cold vs warm cache.
//
// Emits one SERVICE_THROUGHPUT_JSON line (the recorded baseline lives in
// bench/results/service_throughput_baseline.json) plus the standard
// METRICS_JSON exit blob. Violating experiment 1 or 2 marks the bench
// failed (non-zero exit, METRICS_JSON status "failed").

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "service/join_service.h"

namespace pbsm {
namespace bench {
namespace {

struct Latencies {
  std::vector<double> seconds;

  void Add(double s) { seconds.push_back(s); }
  double Percentile(double q) {
    if (seconds.empty()) return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(seconds.size() - 1) + 0.5);
    return seconds[std::min(idx, seconds.size() - 1)];
  }
};

constexpr JoinMethod kAllMethods[] = {
    JoinMethod::kPbsm,   JoinMethod::kParallelPbsm, JoinMethod::kInl,
    JoinMethod::kRtree,  JoinMethod::kSpatialHash,  JoinMethod::kZOrder,
};

/// One synchronous query through the service; aborts the bench on error
/// (this driver's queries must all succeed).
JoinResponse MustExecute(JoinService* service, JoinRequest request) {
  auto response = service->Execute(std::move(request));
  PBSM_CHECK(response.ok()) << response.status().ToString();
  return std::move(response).value();
}

int Run() {
  const double scale = ScaleFromEnv();
  PrintTitle("Service throughput: scheduler + planner + index cache");
  PrintScaleBanner(scale);

  const TigerData data = GenTiger(scale);
  Workspace ws(/*pool_bytes=*/96ull << 20);
  Catalog catalog;
  auto road = LoadRelation(ws.pool(), &catalog, "road", data.roads);
  auto hydro = LoadRelation(ws.pool(), &catalog, "hydro", data.hydro);
  auto rail = LoadRelation(ws.pool(), &catalog, "rail", data.rail);
  PBSM_CHECK(road.ok() && hydro.ok() && rail.ok());

  JoinServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 128;
  config.join_defaults.memory_budget_bytes = 8ull << 20;
  JoinService service(ws.pool(), config);
  PBSM_CHECK(service.RegisterDataset("road", &road->heap, road->info).ok());
  PBSM_CHECK(
      service.RegisterDataset("hydro", &hydro->heap, hydro->info).ok());
  PBSM_CHECK(service.RegisterDataset("rail", &rail->heap, rail->info).ok());

  std::string json = "{\"schema\":\"pbsm.service_throughput.v1\",";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "\"scale\":%.3f,\"workers\":%u,", scale,
                config.num_workers);
  json += buf;
  bool ok = true;

  // -------------------------------------------------------------------
  // 1. Planner validation on the paper's two TIGER join pairs.
  // -------------------------------------------------------------------
  json += "\"planner\":{";
  const struct {
    const char* label;
    const char* r;
    const char* s;
  } kPairs[] = {{"fig07_road_hydro", "road", "hydro"},
                {"fig08_road_rail", "road", "rail"}};
  for (size_t p = 0; p < 2; ++p) {
    PrintTitle(std::string("planner validation: ") + kPairs[p].label);
    double best = 1e30;
    std::string_view best_name;
    std::string methods_json = "{";
    for (const JoinMethod method : kAllMethods) {
      service.cache().Clear();  // Every method measured cold.
      JoinRequest request;
      request.r_dataset = kPairs[p].r;
      request.s_dataset = kPairs[p].s;
      request.method = method;
      Stopwatch watch;
      const JoinResponse response = MustExecute(&service, request);
      const double sec = watch.ElapsedSeconds();
      std::printf("  %-14.*s %.3fs  (%llu results)\n",
                  (int)JoinMethodName(method).size(),
                  JoinMethodName(method).data(), sec,
                  (unsigned long long)response.num_results);
      std::snprintf(buf, sizeof(buf), "%s\"%.*s\":%.4f",
                    methods_json.size() > 1 ? "," : "",
                    (int)JoinMethodName(method).size(),
                    JoinMethodName(method).data(), sec);
      methods_json += buf;
      if (sec < best) {
        best = sec;
        best_name = JoinMethodName(method);
      }
    }
    service.cache().Clear();
    JoinRequest request;
    request.r_dataset = kPairs[p].r;
    request.s_dataset = kPairs[p].s;  // No method: planner chooses.
    Stopwatch watch;
    const JoinResponse planned = MustExecute(&service, request);
    const double planned_sec = watch.ElapsedSeconds();
    const bool within =
        planned_sec <= best * 1.20 + 0.005;  // +5ms noise floor on tiny runs.
    std::printf("  planner chose %.*s: %.3fs vs best %.*s %.3fs -> %s\n",
                (int)JoinMethodName(planned.method).size(),
                JoinMethodName(planned.method).data(), planned_sec,
                (int)best_name.size(), best_name.data(), best,
                within ? "within 20%" : "VIOLATION (>20% off best)");
    std::printf("  plan: %s\n", planned.plan.c_str());
    if (!within) ok = false;
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\":{\"methods\":%s},\"chosen\":\"%.*s\",\"chosen_seconds\""
        ":%.4f,\"best_seconds\":%.4f,\"within_20pct\":%s}",
        p > 0 ? "," : "", kPairs[p].label, methods_json.c_str(),
        (int)JoinMethodName(planned.method).size(),
        JoinMethodName(planned.method).data(), planned_sec, best,
        within ? "true" : "false");
    json += buf;
  }
  json += "},";

  // -------------------------------------------------------------------
  // 2. Cold vs warm rtree queries through the index cache.
  // -------------------------------------------------------------------
  json += "\"cache\":{";
  PrintTitle("index cache: cold vs warm rtree queries");
  for (size_t p = 0; p < 2; ++p) {
    service.cache().Clear();
    JoinRequest request;
    request.r_dataset = kPairs[p].r;
    request.s_dataset = kPairs[p].s;
    request.method = JoinMethod::kRtree;
    Stopwatch cold_watch;
    (void)MustExecute(&service, request);
    const double cold = cold_watch.ElapsedSeconds();
    constexpr int kWarmRuns = 3;
    double warm_total = 0;
    for (int i = 0; i < kWarmRuns; ++i) {
      Stopwatch warm_watch;
      (void)MustExecute(&service, request);
      warm_total += warm_watch.ElapsedSeconds();
    }
    const double warm = warm_total / kWarmRuns;
    const bool fast_enough = warm < 0.5 * cold;
    std::printf("  %s: cold %.3fs, warm %.3fs (%.2fx) -> %s\n",
                kPairs[p].label, cold, warm, warm / cold,
                fast_enough ? "under 0.5x" : "VIOLATION (>= 0.5x cold)");
    if (!fast_enough) ok = false;
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"cold_seconds\":%.4f,\"warm_seconds\":%.4f,"
                  "\"ratio\":%.3f,\"under_half\":%s}",
                  p > 0 ? "," : "", kPairs[p].label, cold, warm, warm / cold,
                  fast_enough ? "true" : "false");
    json += buf;
  }
  json += "},";

  // -------------------------------------------------------------------
  // 3. Closed-loop mixed workload at 1/4/8 client threads.
  // -------------------------------------------------------------------
  json += "\"closed_loop\":[";
  PrintTitle("closed-loop mixed workload");
  constexpr int kQueriesPerClient = 4;
  bool first_config = true;
  for (const int clients : {1, 4, 8}) {
    for (const bool warm : {false, true}) {
      if (!warm) service.cache().Clear();
      std::vector<Latencies> per_client(clients);
      Stopwatch wall;
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (int q = 0; q < kQueriesPerClient; ++q) {
            // Mixed workload: alternate the small pairs, priorities, and
            // planner-vs-forced routing so every scheduler path is hot.
            JoinRequest request;
            const int kind = (c + q) % 3;
            request.r_dataset = kind == 0 ? "hydro" : "road";
            request.s_dataset = "rail";
            if (kind == 1) request.method = JoinMethod::kRtree;
            request.priority = (c + q) % 2 == 0 ? QueryPriority::kInteractive
                                                : QueryPriority::kBatch;
            Stopwatch watch;
            (void)MustExecute(&service, request);
            per_client[c].Add(watch.ElapsedSeconds());
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double elapsed = wall.ElapsedSeconds();

      Latencies all;
      for (Latencies& l : per_client) {
        for (double s : l.seconds) all.Add(s);
      }
      const double qps =
          static_cast<double>(clients * kQueriesPerClient) / elapsed;
      const double p50 = all.Percentile(0.50);
      const double p95 = all.Percentile(0.95);
      const double p99 = all.Percentile(0.99);
      std::printf("  %d client(s), %s cache: %5.2f q/s  p50=%.3fs "
                  "p95=%.3fs p99=%.3fs\n",
                  clients, warm ? "warm" : "cold", qps, p50, p95, p99);
      std::snprintf(buf, sizeof(buf),
                    "%s{\"clients\":%d,\"warm\":%s,\"queries\":%d,"
                    "\"throughput_qps\":%.3f,\"p50_s\":%.4f,\"p95_s\":%.4f,"
                    "\"p99_s\":%.4f}",
                    first_config ? "" : ",", clients,
                    warm ? "true" : "false", clients * kQueriesPerClient,
                    qps, p50, p95, p99);
      json += buf;
      first_config = false;
    }
  }
  json += "],";
  std::snprintf(buf, sizeof(buf),
                "\"cache_hits\":%llu,\"cache_misses\":%llu,\"status\":"
                "\"%s\"}",
                (unsigned long long)service.cache().hits(),
                (unsigned long long)service.cache().misses(),
                ok ? "ok" : "failed");
  json += buf;

  std::printf("\nSERVICE_THROUGHPUT_JSON %s\n", json.c_str());
  service.Shutdown(/*drain=*/true);
  if (!ok) MarkBenchFailed();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main(int argc, char** argv) {
  pbsm::bench::ParseBenchArgs(argc, argv);
  return pbsm::bench::Run();
}
