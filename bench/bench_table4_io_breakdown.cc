// Reproduces Table 4: detailed per-component total cost, I/O cost, and I/O
// contribution percentage for Road JOIN Hydrography at 24/8/2 MB buffer
// pools, for all three algorithms.
//
// Paper values (total s / I/O s / I/O %):
//   PBSM TOTAL:    24MB 539.0/130.0/24.1%  8MB 591.6/171.0/28.9%
//                   2MB 889.9/280.2/31.5%
//   R-tree TOTAL:  24MB 1069.0/226.6/21.2% 8MB 1221.7/276.1/22.6%
//                   2MB 1315.8/351.7/26.7%
//   INL TOTAL:     24MB 1044.7/133.1/12.7% 8MB 1288.2/370.7/28.8%
//                   2MB 3730.5/2404.9/64.5%
// Headline finding: CPU costs dominate I/O costs for all algorithms (the
// refinement geometry and the sweeps are computationally intensive, and
// SHORE writes dirty pages in sorted runs).

#include "bench/join_bench.h"

namespace pbsm {
namespace bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const TigerData tiger = GenTiger(scale);

  PrintTitle("Table 4: cost / I/O breakdown, Road JOIN Hydrography");
  PrintScaleBanner(scale);
  PrintNote("paper TOTAL rows (total/io/io%): PBSM 539.0/130.0/24.1 @24MB, "
            "591.6/171.0/28.9 @8MB, 889.9/280.2/31.5 @2MB; R-tree "
            "1069.0/226.6/21.2, 1221.7/276.1/22.6, 1315.8/351.7/26.7; INL "
            "1044.7/133.1/12.7, 1288.2/370.7/28.8, 3730.5/2404.9/64.5");
  PrintNote("expected shape: CPU dominates I/O everywhere except INL @2MB, "
            "where random fetches blow up the I/O share");

  static const char* kAlgoNames[] = {"PBSM", "R-tree join", "Idx nested loops"};
  // Paper presents 24MB first.
  auto pools = PoolSizes(scale);
  for (auto it = pools.rbegin(); it != pools.rend(); ++it) {
    std::printf("\n  ---- buffer pool %s ----\n", it->first.c_str());
    for (int algo = 0; algo < 3; ++algo) {
      JoinBenchSpec spec;
      spec.r_tuples = &tiger.roads;
      spec.s_tuples = &tiger.hydro;
      spec.r_name = "road";
      spec.s_name = "hydrography";
      const JoinCostBreakdown cost = RunOneJoin(spec, it->second, algo);
      PrintBreakdown(kAlgoNames[algo], cost);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace pbsm

int main() {
  pbsm::bench::Run();
  return 0;
}
