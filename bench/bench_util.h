#ifndef PBSM_BENCH_BENCH_UTIL_H_
#define PBSM_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/join_cost.h"
#include "core/sweep_kernel.h"
#include "core/spatial_join.h"
#include "core/spatial_partitioner.h"
#include "datagen/loader.h"
#include "datagen/sequoia_gen.h"
#include "datagen/tiger_gen.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace pbsm {
namespace bench {

// ---------------------------------------------------------------------------
// Scale handling.
//
// The paper's data sets (Table 2/3): Road 456,613 / Hydrography 122,149 /
// Rail 16,844 / Sequoia polygons 58,115 / islands (count not reported;
// 20,000 assumed). Benchmarks run at PBSM_SCALE (default 0.15) of those
// cardinalities, and the 2/8/24 MB buffer pools are scaled by the same
// factor so the pool-to-data ratios — which drive every figure — match the
// paper. Set PBSM_SCALE=1.0 to run at full paper size.
// ---------------------------------------------------------------------------

/// Calibration factor converting measured CPU seconds on this machine into
/// 1996 Paradise-on-SPARCstation-10/51 CPU seconds, so paper-comparable
/// totals (cpu1996 + modeled I/O) keep the paper's CPU-vs-I/O balance
/// (Table 4: CPU dominates, I/O is ~13-32% of total). The factor folds
/// together raw single-thread speedup (~50-100x vs the 50 MHz SuperSPARC)
/// and Paradise's interpreted-ADT overhead; 300x reproduces Table 4's PBSM
/// I/O share at the 24 MB point. Override with PBSM_CPU_SCALE.
inline double CpuScale() {
  const char* env = std::getenv("PBSM_CPU_SCALE");
  if (env == nullptr) return 300.0;
  return std::atof(env);
}

/// Paper-comparable cost of a phase: 1996-calibrated CPU + modeled I/O.
inline double PaperSeconds(const PhaseCost& cost) {
  return cost.cpu_seconds * CpuScale() + cost.io.modeled_seconds;
}

inline double ScaleFromEnv() {
  const char* env = std::getenv("PBSM_SCALE");
  if (env == nullptr) return 0.15;
  const double s = std::atof(env);
  PBSM_CHECK(s > 0.0 && s <= 4.0) << "PBSM_SCALE out of range: " << env;
  return s;
}

struct PaperCardinalities {
  uint64_t road = 456613;
  uint64_t hydro = 122149;
  uint64_t rail = 16844;
  uint64_t sequoia_polygons = 58115;
  uint64_t sequoia_islands = 20000;  // Assumed; not reported in the paper.
};

inline uint64_t Scaled(uint64_t full, double scale) {
  const uint64_t n = static_cast<uint64_t>(static_cast<double>(full) * scale);
  return n < 10 ? 10 : n;
}

/// Paper buffer-pool sizes in bytes, scaled. The extra 1.5x corrects for
/// our tuples being ~1.5x the paper's bytes-per-tuple (Paradise packed
/// coordinates more tightly), keeping the pool-to-data ratio — the variable
/// the figures sweep — aligned with the paper.
inline std::vector<std::pair<std::string, size_t>> PoolSizes(double scale) {
  auto mb = [scale](double m) {
    size_t bytes = static_cast<size_t>(m * 1024 * 1024 * scale * 1.5);
    if (bytes < 16 * kPageSize) bytes = 16 * kPageSize;
    return bytes;
  };
  return {{"2MB", mb(2)}, {"8MB", mb(8)}, {"24MB", mb(24)}};
}

// ---------------------------------------------------------------------------
// Fault profile plumbing (resilience experiments; see EXPERIMENTS.md).
//
// A scenario spec in FaultInjector::Parse syntax, e.g.
// "seed=42;read=0.01;torn=0.001", arms a deterministic fault injector on
// every Workspace the bench creates — loads included, exactly like a flaky
// device. Set via `--fault-profile=SPEC` (call ParseBenchArgs in main) or
// the PBSM_FAULT_PROFILE environment variable; the flag wins.
// ---------------------------------------------------------------------------

inline std::string& FaultProfileSpec() {
  static std::string spec = [] {
    const char* env = std::getenv("PBSM_FAULT_PROFILE");
    return env != nullptr ? std::string(env) : std::string();
  }();
  return spec;
}

/// Handles the common bench flags (currently just --fault-profile=SPEC).
/// Benches that take no other arguments call this at the top of main().
inline void ParseBenchArgs(int argc, char** argv) {
  const std::string prefix = "--fault-profile=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      FaultProfileSpec() = arg.substr(prefix.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Workspace: a scratch directory with a DiskManager + BufferPool.
// ---------------------------------------------------------------------------

class Workspace {
 public:
  explicit Workspace(size_t pool_bytes) {
    char tmpl[] = "/tmp/pbsm_bench_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    dir_ = dir != nullptr ? dir : "/tmp/pbsm_bench_fallback";
    disk_ = std::make_unique<DiskManager>(dir_);
    if (!FaultProfileSpec().empty()) {
      auto injector = FaultInjector::Parse(FaultProfileSpec());
      PBSM_CHECK(injector.ok()) << "bad --fault-profile: "
                                << injector.status().ToString();
      disk_->set_fault_injector(std::move(*injector));
    }
    pool_ = std::make_unique<BufferPool>(disk_.get(), pool_bytes);
  }
  ~Workspace() {
    pool_.reset();
    disk_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  DiskManager* disk() { return disk_.get(); }
  BufferPool* pool() { return pool_.get(); }

 private:
  std::string dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

// ---------------------------------------------------------------------------
// Data generation at benchmark scale.
// ---------------------------------------------------------------------------

struct TigerData {
  std::vector<Tuple> roads;
  std::vector<Tuple> hydro;
  std::vector<Tuple> rail;
};

inline TigerData GenTiger(double scale) {
  const PaperCardinalities card;
  TigerGenerator gen(TigerGenerator::Params{});
  TigerData d;
  d.roads = gen.GenerateRoads(Scaled(card.road, scale));
  d.hydro = gen.GenerateHydrography(Scaled(card.hydro, scale));
  d.rail = gen.GenerateRail(Scaled(card.rail, scale));
  return d;
}

struct SequoiaData {
  std::vector<Tuple> polygons;
  std::vector<Tuple> islands;
};

inline SequoiaData GenSequoia(double scale) {
  const PaperCardinalities card;
  SequoiaGenerator gen(SequoiaGenerator::Params{});
  SequoiaData d;
  d.polygons = gen.GeneratePolygons(Scaled(card.sequoia_polygons, scale));
  d.islands = gen.GenerateIslands(Scaled(card.sequoia_islands, scale));
  return d;
}

// ---------------------------------------------------------------------------
// Output helpers. Every bench prints the paper's numbers next to measured
// ones so EXPERIMENTS.md can be regenerated by reading the bench output.
// ---------------------------------------------------------------------------

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

inline void PrintScaleBanner(double scale) {
  std::printf(
      "  [scale=%.2f of paper cardinalities; pools scaled by the same "
      "factor; totals = cpu x %.0f (1996 CPU calibration) + modeled 1996 "
      "disk I/O]\n",
      scale, CpuScale());
}

/// One join execution summary line.
inline void PrintJoinRow(const std::string& label,
                         const JoinCostBreakdown& cost) {
  const PhaseCost total = cost.Total();
  const double cpu96 = total.cpu_seconds * CpuScale();
  const double t96 = PaperSeconds(total);
  std::printf(
      "  %-28s total=%9.2fs  (cpu96=%9.2fs io=%8.2fs io%%=%4.1f)  "
      "cand=%8llu dup=%7llu res=%8llu\n",
      label.c_str(), t96, cpu96, total.io_seconds(),
      t96 == 0 ? 0.0 : 100.0 * total.io_seconds() / t96,
      static_cast<unsigned long long>(cost.candidates),
      static_cast<unsigned long long>(cost.duplicates_removed),
      static_cast<unsigned long long>(cost.results));
}

/// Summary line for a facade JoinResult (same columns as the breakdown
/// overload, labelled with the method name when no label is given).
inline void PrintJoinRow(const std::string& label, const JoinResult& result) {
  PrintJoinRow(label.empty() ? std::string(JoinMethodName(result.method))
                             : label,
               result.breakdown);
}

/// Full component breakdown (Figures 10-12 / Table 4 format).
inline void PrintBreakdown(const std::string& label,
                           const JoinCostBreakdown& cost) {
  std::printf("  %s:\n", label.c_str());
  auto row = [](const std::string& name, const PhaseCost& phase) {
    const double t96 = PaperSeconds(phase);
    std::printf(
        "    %-26s total=%9.2fs cpu96=%9.2fs io=%8.2fs io%%=%5.1f  "
        "reads=%7llu (seq %7llu) writes=%7llu (seq %7llu)\n",
        name.c_str(), t96, phase.cpu_seconds * CpuScale(),
        phase.io_seconds(),
        t96 == 0 ? 0.0 : 100.0 * phase.io_seconds() / t96,
        static_cast<unsigned long long>(phase.io.reads),
        static_cast<unsigned long long>(phase.io.sequential_reads),
        static_cast<unsigned long long>(phase.io.writes),
        static_cast<unsigned long long>(phase.io.sequential_writes));
  };
  for (const auto& [name, phase] : cost.phases) row(name, phase);
  row("TOTAL", cost.Total());
}

/// Percentage of extra key-pointer copies created by the tiled partitioning
/// function (Figures 5/6 metric).
inline double ReplicationPercent(const std::vector<Tuple>& tuples,
                                 const Rect& universe, uint32_t tiles,
                                 uint32_t partitions, TileMapping mapping) {
  const SpatialPartitioner part(universe, tiles, partitions, mapping);
  uint64_t copies = 0;
  std::vector<uint32_t> targets;
  for (const Tuple& t : tuples) {
    targets.clear();
    part.PartitionsFor(t.geometry.Mbr(), &targets);
    copies += targets.size();
  }
  return 100.0 *
         (static_cast<double>(copies) / static_cast<double>(tuples.size()) -
          1.0);
}

/// Prints a Figures-5/6-style replication table for `tuples`.
inline void RunReplicationBench(const char* title,
                                const std::vector<Tuple>& tuples,
                                const char* paper_note, double scale) {
  PrintTitle(title);
  PrintScaleBanner(scale);
  PrintNote(paper_note);

  Rect universe;
  for (const Tuple& t : tuples) universe.Expand(t.geometry.Mbr());

  constexpr uint32_t kPartitions = 16;
  std::printf("  %14s   %-14s %-14s\n", "", "hash(+%)", "round robin(+%)");
  for (const uint32_t tiles :
       {100u, 256u, 529u, 1024u, 1600u, 2048u, 3072u, 4096u}) {
    const double h = ReplicationPercent(tuples, universe, tiles, kPartitions,
                                        TileMapping::kHash);
    const double r = ReplicationPercent(tuples, universe, tiles, kPartitions,
                                        TileMapping::kRoundRobin);
    std::printf("  %8u tiles:  %-14.3f %-14.3f\n", tiles, h, r);
  }
}

// ---------------------------------------------------------------------------
// Uniform metrics export. Every bench binary (all of them include this
// header, directly or via join_bench.h) prints one machine-readable line at
// exit:
//
//   METRICS_JSON {"schema":"pbsm.metrics.v1","metrics":{...},
//                 "derived":{...},"spans":{...}}
//
// `metrics` is the full MetricsSnapshot (counters/gauges/histograms),
// `derived` holds ready-made ratios (buffer-pool hit rate, refinement
// filter efficiency), `spans` is the nested phase-span tree. Disable with
// PBSM_NO_METRICS_JSON=1.
//
// The blob carries a "status" field ("ok" / "failed") and is emitted even
// when the bench dies on a PBSM_CHECK (SIGABRT): the abort handler below
// prints the blob tagged failed before re-raising, so harnesses that
// collect METRICS_JSON lines still get the partial run's counters instead
// of nothing. A bench that detects failure itself but wants a normal exit
// calls MarkBenchFailed() before returning non-zero.
// ---------------------------------------------------------------------------

/// Filter-kernel provenance for the METRICS_JSON blob: which kernel the
/// auto dispatcher resolves to on this host, the CPU/build capability bits
/// behind that decision, and any PBSM_SIMD override in effect. Perf numbers
/// without this block are unattributable across machines.
inline std::string HostInfoJson() {
  const char* env = std::getenv("PBSM_SIMD");
  const std::string_view kernel = KernelKindName(ResolveKernel(SimdMode::kAuto));
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"resolved_kernel\":\"%.*s\","
                "\"avx2_compiled_in\":%s,\"avx2_supported\":%s,"
                "\"pbsm_simd_env\":\"%s\"}",
                static_cast<int>(kernel.size()), kernel.data(),
                Avx2CompiledIn() ? "true" : "false",
                Avx2Supported() ? "true" : "false", env != nullptr ? env : "");
  return buf;
}

/// The status the exit-hook blob reports. Sticky: once failed, stays
/// failed (a bench may hit several assertion paths before exiting).
inline const char*& BenchStatusRef() {
  static const char* status = "ok";
  return status;
}

inline void MarkBenchFailed() { BenchStatusRef() = "failed"; }

inline std::string MetricsJsonBlob() {
  // The blob may be taken mid-join (SIGABRT handler, cancellation exit):
  // materialize still-open spans so the tree below keeps their sub-spans.
  Tracer::Global().FlushOpenSpans();
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const uint64_t hits = snap.counter("storage.bufferpool.hits");
  const uint64_t misses = snap.counter("storage.bufferpool.misses");
  const uint64_t tp = snap.counter("join.refine.true_positives");
  const uint64_t fp = snap.counter("join.refine.false_positives");
  auto rate = [](uint64_t num, uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  char derived[160];
  std::snprintf(derived, sizeof(derived),
                "{\"bufferpool_hit_rate\":%.6f,"
                "\"refine_true_positive_rate\":%.6f}",
                rate(hits, hits + misses), rate(tp, tp + fp));
  std::string out = "{\"schema\":\"pbsm.metrics.v1\",\"status\":\"";
  out += BenchStatusRef();
  out += "\",\"host\":";
  out += HostInfoJson();
  out += ",\"metrics\":";
  out += snap.ToJson();
  out += ",\"derived\":";
  out += derived;
  out += ",\"spans\":";
  out += Tracer::Global().SpanTreeJson();
  out += "}";
  return out;
}

inline void EmitMetricsJson() {
  const char* off = std::getenv("PBSM_NO_METRICS_JSON");
  if (off != nullptr && off[0] == '1') return;
  std::printf("METRICS_JSON %s\n", MetricsJsonBlob().c_str());
  std::fflush(stdout);
}

namespace bench_internal {

/// Single-shot guard: the blob must appear exactly once whether the bench
/// exits normally (static destructor) or aborts (signal handler).
inline bool EmitMetricsJsonOnce() {
  static std::atomic<bool> emitted{false};
  if (emitted.exchange(true)) return false;
  EmitMetricsJson();
  return true;
}

/// SIGABRT path: a PBSM_CHECK failure calls abort(), which skips static
/// destructors — without this handler a crashed bench emits nothing and
/// the harness cannot tell "crashed" from "never ran". Building the JSON
/// here is not async-signal-safe in the letter of POSIX, but SIGABRT is
/// raised synchronously by the failing thread and the process is dying
/// regardless; a garbled line is strictly better than a missing one.
inline void AbortEmitHandler(int) {
  MarkBenchFailed();
  (void)EmitMetricsJsonOnce();
  std::signal(SIGABRT, SIG_DFL);
  std::abort();
}

/// One instance per bench binary: the constructor arms the abort handler,
/// the destructor runs after main() returns, when all workspaces are torn
/// down and the metric writers have quiesced.
struct MetricsJsonAtExit {
  MetricsJsonAtExit() { std::signal(SIGABRT, AbortEmitHandler); }
  ~MetricsJsonAtExit() { (void)EmitMetricsJsonOnce(); }
};
inline MetricsJsonAtExit g_metrics_json_at_exit;

}  // namespace bench_internal

}  // namespace bench
}  // namespace pbsm

#endif  // PBSM_BENCH_BENCH_UTIL_H_
