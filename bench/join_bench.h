#ifndef PBSM_BENCH_JOIN_BENCH_H_
#define PBSM_BENCH_JOIN_BENCH_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/index_build.h"
#include "core/spatial_join.h"

namespace pbsm {
namespace bench {

/// Workload description for the Figure 7/8/9/13-style sweeps: one join
/// query run by all three algorithms across the paper's buffer-pool sizes.
struct JoinBenchSpec {
  std::string title;
  std::string paper_note;
  const std::vector<Tuple>* r_tuples = nullptr;  // Larger input (e.g. Road).
  const std::vector<Tuple>* s_tuples = nullptr;  // Smaller input.
  std::string r_name;
  std::string s_name;
  SpatialPredicate pred = SpatialPredicate::kIntersects;
  bool clustered = false;
};

inline JoinOptions MakeJoinOptions(size_t pool_bytes) {
  JoinOptions opts;
  // The operator memory budget is the buffer-pool grant, as in Paradise.
  opts.memory_budget_bytes = pool_bytes;
  opts.num_tiles = 1024;  // The paper's default tile count (§4.3).
  return opts;
}

/// Runs one join method through the SpatialJoin facade in a fresh (cold)
/// workspace, as the paper did, and returns the uniform JoinResult.
inline JoinResult RunOneJoinMethod(const JoinBenchSpec& spec,
                                   size_t pool_bytes, JoinMethod method) {
  Workspace ws(pool_bytes);
  // Containment workloads store precomputed MERs with the polygons.
  const bool mers = spec.pred == SpatialPredicate::kContains;
  auto r = LoadRelation(ws.pool(), nullptr, spec.r_name, *spec.r_tuples,
                        spec.clustered, mers);
  PBSM_CHECK(r.ok()) << r.status().ToString();
  auto s = LoadRelation(ws.pool(), nullptr, spec.s_name, *spec.s_tuples,
                        spec.clustered);
  PBSM_CHECK(s.ok()) << s.status().ToString();
  ws.disk()->ResetStats();

  JoinSpec join_spec;
  join_spec.method = method;
  join_spec.predicate = spec.pred;
  join_spec.options = MakeJoinOptions(pool_bytes);
  // INL indexes the smaller input (S here) and probes it with the larger
  // one, per §4.1 — the facade picks that side by cardinality.
  auto result = SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), join_spec);
  PBSM_CHECK(result.ok()) << result.status().ToString();
  return std::move(*result);
}

/// Legacy int-coded variant: 0 = PBSM, 1 = R-tree join, 2 = INL.
inline JoinCostBreakdown RunOneJoin(const JoinBenchSpec& spec,
                                    size_t pool_bytes, int algo) {
  static const JoinMethod kMethods[] = {JoinMethod::kPbsm, JoinMethod::kRtree,
                                        JoinMethod::kInl};
  PBSM_CHECK(algo >= 0 && algo < 3) << "bad algo " << algo;
  return RunOneJoinMethod(spec, pool_bytes, kMethods[algo]).breakdown;
}

/// The Figure 7/8/9/13 harness: all three algorithms at 2/8/24 MB pools.
inline void RunJoinSweep(const JoinBenchSpec& spec, double scale) {
  PrintTitle(spec.title);
  PrintScaleBanner(scale);
  PrintNote(spec.paper_note);
  static const char* kAlgoNames[] = {"PBSM", "R-tree join", "Idx nested loops"};
  for (const auto& [pool_label, pool_bytes] : PoolSizes(scale)) {
    std::printf("  -- buffer pool %s (scaled: %zu pages) --\n",
                pool_label.c_str(), pool_bytes / kPageSize);
    for (int algo = 0; algo < 3; ++algo) {
      const JoinCostBreakdown cost = RunOneJoin(spec, pool_bytes, algo);
      PrintJoinRow(kAlgoNames[algo], cost);
    }
  }
}

/// The Figures 14/15 harness: pre-existing-index variants. `r` is the
/// larger input, `s` the smaller, matching the paper's Road/Hyd and
/// Road/Rail labels.
inline void RunPreexistingIndexSweep(const JoinBenchSpec& spec,
                                     double scale) {
  PrintTitle(spec.title);
  PrintScaleBanner(scale);
  PrintNote(spec.paper_note);

  struct Variant {
    const char* label;
    bool idx_on_large;
    bool idx_on_small;
    int algo;  // 0 = PBSM, 1 = R-tree join, 2 = INL.
  };
  static const Variant kVariants[] = {
      {"PBSM", false, false, 0},
      {"Rtree-2-Indices", true, true, 1},
      {"Rtree-1-LargeIdx", true, false, 1},
      {"INL-1-LargeIdx", true, false, 2},
      {"Rtree-1-SmallIdx", false, true, 1},
      {"INL-1-SmallIdx", false, true, 2},
  };

  for (const auto& [pool_label, pool_bytes] : PoolSizes(scale)) {
    std::printf("  -- buffer pool %s --\n", pool_label.c_str());
    for (const Variant& v : kVariants) {
      Workspace ws(pool_bytes);
      auto r = LoadRelation(ws.pool(), nullptr, spec.r_name, *spec.r_tuples);
      PBSM_CHECK(r.ok()) << r.status().ToString();
      auto s = LoadRelation(ws.pool(), nullptr, spec.s_name, *spec.s_tuples);
      PBSM_CHECK(s.ok()) << s.status().ToString();

      // Pre-existing indices are built before measurement starts.
      std::optional<RStarTree> large_idx, small_idx;
      JoinSpec join_spec;
      join_spec.predicate = spec.pred;
      join_spec.options = MakeJoinOptions(pool_bytes);
      if (v.idx_on_large) {
        auto idx = BuildIndexByBulkLoad(ws.pool(), r->AsInput(),
                                        "pre_large.rtree",
                                        join_spec.options.index_fill_factor);
        PBSM_CHECK(idx.ok()) << idx.status().ToString();
        large_idx.emplace(std::move(*idx));
        join_spec.r_index = &*large_idx;
      }
      if (v.idx_on_small) {
        auto idx = BuildIndexByBulkLoad(ws.pool(), s->AsInput(),
                                        "pre_small.rtree",
                                        join_spec.options.index_fill_factor);
        PBSM_CHECK(idx.ok()) << idx.status().ToString();
        small_idx.emplace(std::move(*idx));
        join_spec.s_index = &*small_idx;
      }
      ws.disk()->ResetStats();

      // INL probes the pre-existing index with the other input (§4.5);
      // the facade picks the indexed side from which index is set.
      static const JoinMethod kMethods[] = {
          JoinMethod::kPbsm, JoinMethod::kRtree, JoinMethod::kInl};
      join_spec.method = kMethods[v.algo];
      auto result =
          SpatialJoin(ws.pool(), r->AsInput(), s->AsInput(), join_spec);
      PBSM_CHECK(result.ok()) << result.status().ToString();
      PrintJoinRow(v.label, *result);
    }
  }
}

}  // namespace bench
}  // namespace pbsm

#endif  // PBSM_BENCH_JOIN_BENCH_H_
