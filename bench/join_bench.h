#ifndef PBSM_BENCH_JOIN_BENCH_H_
#define PBSM_BENCH_JOIN_BENCH_H_

#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/inl_join.h"
#include "core/pbsm_join.h"
#include "core/index_build.h"
#include "core/rtree_join.h"

namespace pbsm {
namespace bench {

/// Workload description for the Figure 7/8/9/13-style sweeps: one join
/// query run by all three algorithms across the paper's buffer-pool sizes.
struct JoinBenchSpec {
  std::string title;
  std::string paper_note;
  const std::vector<Tuple>* r_tuples = nullptr;  // Larger input (e.g. Road).
  const std::vector<Tuple>* s_tuples = nullptr;  // Smaller input.
  std::string r_name;
  std::string s_name;
  SpatialPredicate pred = SpatialPredicate::kIntersects;
  bool clustered = false;
};

inline JoinOptions MakeJoinOptions(size_t pool_bytes) {
  JoinOptions opts;
  // The operator memory budget is the buffer-pool grant, as in Paradise.
  opts.memory_budget_bytes = pool_bytes;
  opts.num_tiles = 1024;  // The paper's default tile count (§4.3).
  return opts;
}

/// Runs one algorithm in a fresh (cold) workspace, as the paper did, and
/// returns its cost breakdown. `algo`: 0 = PBSM, 1 = R-tree join, 2 = INL.
inline JoinCostBreakdown RunOneJoin(const JoinBenchSpec& spec,
                                    size_t pool_bytes, int algo) {
  Workspace ws(pool_bytes);
  // Containment workloads store precomputed MERs with the polygons.
  const bool mers = spec.pred == SpatialPredicate::kContains;
  auto r = LoadRelation(ws.pool(), nullptr, spec.r_name, *spec.r_tuples,
                        spec.clustered, mers);
  PBSM_CHECK(r.ok()) << r.status().ToString();
  auto s = LoadRelation(ws.pool(), nullptr, spec.s_name, *spec.s_tuples,
                        spec.clustered);
  PBSM_CHECK(s.ok()) << s.status().ToString();
  ws.disk()->ResetStats();

  const JoinOptions opts = MakeJoinOptions(pool_bytes);
  Result<JoinCostBreakdown> result = Status::Internal("unset");
  switch (algo) {
    case 0:
      result = PbsmJoin(ws.pool(), r->AsInput(), s->AsInput(), spec.pred,
                        opts);
      break;
    case 1:
      result = RtreeJoin(ws.pool(), r->AsInput(), s->AsInput(), spec.pred,
                         opts);
      break;
    case 2:
      // INL builds the index on the smaller input (S) and probes it with
      // the larger one, per §4.1. The join condition is pred(R, S), so the
      // indexed input plays the predicate's right side.
      result = IndexedNestedLoopsJoin(ws.pool(), s->AsInput(), r->AsInput(),
                                      spec.pred, opts, /*sink=*/{},
                                      /*preexisting_index=*/nullptr,
                                      /*indexed_is_left=*/false);
      break;
  }
  PBSM_CHECK(result.ok()) << result.status().ToString();
  return *result;
}

/// The Figure 7/8/9/13 harness: all three algorithms at 2/8/24 MB pools.
inline void RunJoinSweep(const JoinBenchSpec& spec, double scale) {
  PrintTitle(spec.title);
  PrintScaleBanner(scale);
  PrintNote(spec.paper_note);
  static const char* kAlgoNames[] = {"PBSM", "R-tree join", "Idx nested loops"};
  for (const auto& [pool_label, pool_bytes] : PoolSizes(scale)) {
    std::printf("  -- buffer pool %s (scaled: %zu pages) --\n",
                pool_label.c_str(), pool_bytes / kPageSize);
    for (int algo = 0; algo < 3; ++algo) {
      const JoinCostBreakdown cost = RunOneJoin(spec, pool_bytes, algo);
      PrintJoinRow(kAlgoNames[algo], cost);
    }
  }
}

/// The Figures 14/15 harness: pre-existing-index variants. `r` is the
/// larger input, `s` the smaller, matching the paper's Road/Hyd and
/// Road/Rail labels.
inline void RunPreexistingIndexSweep(const JoinBenchSpec& spec,
                                     double scale) {
  PrintTitle(spec.title);
  PrintScaleBanner(scale);
  PrintNote(spec.paper_note);

  struct Variant {
    const char* label;
    bool idx_on_large;
    bool idx_on_small;
    int algo;  // 0 = PBSM, 1 = R-tree join, 2 = INL.
  };
  static const Variant kVariants[] = {
      {"PBSM", false, false, 0},
      {"Rtree-2-Indices", true, true, 1},
      {"Rtree-1-LargeIdx", true, false, 1},
      {"INL-1-LargeIdx", true, false, 2},
      {"Rtree-1-SmallIdx", false, true, 1},
      {"INL-1-SmallIdx", false, true, 2},
  };

  for (const auto& [pool_label, pool_bytes] : PoolSizes(scale)) {
    std::printf("  -- buffer pool %s --\n", pool_label.c_str());
    for (const Variant& v : kVariants) {
      Workspace ws(pool_bytes);
      auto r = LoadRelation(ws.pool(), nullptr, spec.r_name, *spec.r_tuples);
      PBSM_CHECK(r.ok()) << r.status().ToString();
      auto s = LoadRelation(ws.pool(), nullptr, spec.s_name, *spec.s_tuples);
      PBSM_CHECK(s.ok()) << s.status().ToString();

      // Pre-existing indices are built before measurement starts.
      std::optional<RStarTree> large_idx, small_idx;
      const JoinOptions opts = MakeJoinOptions(pool_bytes);
      if (v.idx_on_large) {
        auto idx = BuildIndexByBulkLoad(ws.pool(), r->AsInput(),
                                        "pre_large.rtree",
                                        opts.index_fill_factor);
        PBSM_CHECK(idx.ok()) << idx.status().ToString();
        large_idx.emplace(std::move(*idx));
      }
      if (v.idx_on_small) {
        auto idx = BuildIndexByBulkLoad(ws.pool(), s->AsInput(),
                                        "pre_small.rtree",
                                        opts.index_fill_factor);
        PBSM_CHECK(idx.ok()) << idx.status().ToString();
        small_idx.emplace(std::move(*idx));
      }
      ws.disk()->ResetStats();

      Result<JoinCostBreakdown> result = Status::Internal("unset");
      switch (v.algo) {
        case 0:
          result = PbsmJoin(ws.pool(), r->AsInput(), s->AsInput(), spec.pred,
                            opts);
          break;
        case 1:
          result = RtreeJoin(ws.pool(), r->AsInput(), s->AsInput(),
                             spec.pred, opts,
                             /*sink=*/{},
                             large_idx ? &*large_idx : nullptr,
                             small_idx ? &*small_idx : nullptr);
          break;
        case 2:
          // INL probes the pre-existing index with the other input (§4.5).
          if (v.idx_on_large) {
            result = IndexedNestedLoopsJoin(ws.pool(), r->AsInput(),
                                            s->AsInput(), spec.pred, opts,
                                            /*sink=*/{}, &*large_idx,
                                            /*indexed_is_left=*/true);
          } else {
            result = IndexedNestedLoopsJoin(ws.pool(), s->AsInput(),
                                            r->AsInput(), spec.pred, opts,
                                            /*sink=*/{}, &*small_idx,
                                            /*indexed_is_left=*/false);
          }
          break;
      }
      PBSM_CHECK(result.ok()) << result.status().ToString();
      PrintJoinRow(v.label, *result);
    }
  }
}

}  // namespace bench
}  // namespace pbsm

#endif  // PBSM_BENCH_JOIN_BENCH_H_
