file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bulkload.dir/bench_ablation_bulkload.cc.o"
  "CMakeFiles/bench_ablation_bulkload.dir/bench_ablation_bulkload.cc.o.d"
  "bench_ablation_bulkload"
  "bench_ablation_bulkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bulkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
