# Empty dependencies file for bench_ablation_bulkload.
# This may be replaced when dependencies are built.
