file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_curves.dir/bench_ablation_curves.cc.o"
  "CMakeFiles/bench_ablation_curves.dir/bench_ablation_curves.cc.o.d"
  "bench_ablation_curves"
  "bench_ablation_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
