# Empty dependencies file for bench_ablation_curves.
# This may be replaced when dependencies are built.
