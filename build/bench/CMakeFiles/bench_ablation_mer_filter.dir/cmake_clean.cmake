file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mer_filter.dir/bench_ablation_mer_filter.cc.o"
  "CMakeFiles/bench_ablation_mer_filter.dir/bench_ablation_mer_filter.cc.o.d"
  "bench_ablation_mer_filter"
  "bench_ablation_mer_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mer_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
