# Empty compiler generated dependencies file for bench_ablation_mer_filter.
# This may be replaced when dependencies are built.
