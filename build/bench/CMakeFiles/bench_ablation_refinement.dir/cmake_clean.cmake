file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_refinement.dir/bench_ablation_refinement.cc.o"
  "CMakeFiles/bench_ablation_refinement.dir/bench_ablation_refinement.cc.o.d"
  "bench_ablation_refinement"
  "bench_ablation_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
