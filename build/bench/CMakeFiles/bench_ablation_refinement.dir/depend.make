# Empty dependencies file for bench_ablation_refinement.
# This may be replaced when dependencies are built.
