file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tiles_runtime.dir/bench_ablation_tiles_runtime.cc.o"
  "CMakeFiles/bench_ablation_tiles_runtime.dir/bench_ablation_tiles_runtime.cc.o.d"
  "bench_ablation_tiles_runtime"
  "bench_ablation_tiles_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tiles_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
