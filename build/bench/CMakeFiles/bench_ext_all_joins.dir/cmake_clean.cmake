file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_all_joins.dir/bench_ext_all_joins.cc.o"
  "CMakeFiles/bench_ext_all_joins.dir/bench_ext_all_joins.cc.o.d"
  "bench_ext_all_joins"
  "bench_ext_all_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_all_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
