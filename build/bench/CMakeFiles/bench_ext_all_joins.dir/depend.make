# Empty dependencies file for bench_ext_all_joins.
# This may be replaced when dependencies are built.
