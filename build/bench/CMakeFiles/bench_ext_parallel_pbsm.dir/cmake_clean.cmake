file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_parallel_pbsm.dir/bench_ext_parallel_pbsm.cc.o"
  "CMakeFiles/bench_ext_parallel_pbsm.dir/bench_ext_parallel_pbsm.cc.o.d"
  "bench_ext_parallel_pbsm"
  "bench_ext_parallel_pbsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_parallel_pbsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
