# Empty compiler generated dependencies file for bench_ext_parallel_pbsm.
# This may be replaced when dependencies are built.
