file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_selectivity.dir/bench_ext_selectivity.cc.o"
  "CMakeFiles/bench_ext_selectivity.dir/bench_ext_selectivity.cc.o.d"
  "bench_ext_selectivity"
  "bench_ext_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
