# Empty compiler generated dependencies file for bench_ext_selectivity.
# This may be replaced when dependencies are built.
