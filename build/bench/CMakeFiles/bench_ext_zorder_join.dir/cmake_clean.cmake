file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_zorder_join.dir/bench_ext_zorder_join.cc.o"
  "CMakeFiles/bench_ext_zorder_join.dir/bench_ext_zorder_join.cc.o.d"
  "bench_ext_zorder_join"
  "bench_ext_zorder_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_zorder_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
