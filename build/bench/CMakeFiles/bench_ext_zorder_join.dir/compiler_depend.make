# Empty compiler generated dependencies file for bench_ext_zorder_join.
# This may be replaced when dependencies are built.
