file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_partition_balance.dir/bench_fig04_partition_balance.cc.o"
  "CMakeFiles/bench_fig04_partition_balance.dir/bench_fig04_partition_balance.cc.o.d"
  "bench_fig04_partition_balance"
  "bench_fig04_partition_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_partition_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
