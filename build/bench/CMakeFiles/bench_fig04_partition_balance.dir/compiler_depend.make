# Empty compiler generated dependencies file for bench_fig04_partition_balance.
# This may be replaced when dependencies are built.
