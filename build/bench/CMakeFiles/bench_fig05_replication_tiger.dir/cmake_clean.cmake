file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_replication_tiger.dir/bench_fig05_replication_tiger.cc.o"
  "CMakeFiles/bench_fig05_replication_tiger.dir/bench_fig05_replication_tiger.cc.o.d"
  "bench_fig05_replication_tiger"
  "bench_fig05_replication_tiger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_replication_tiger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
