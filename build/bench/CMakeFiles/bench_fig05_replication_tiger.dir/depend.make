# Empty dependencies file for bench_fig05_replication_tiger.
# This may be replaced when dependencies are built.
