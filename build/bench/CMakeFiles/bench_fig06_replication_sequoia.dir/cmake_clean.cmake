file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_replication_sequoia.dir/bench_fig06_replication_sequoia.cc.o"
  "CMakeFiles/bench_fig06_replication_sequoia.dir/bench_fig06_replication_sequoia.cc.o.d"
  "bench_fig06_replication_sequoia"
  "bench_fig06_replication_sequoia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_replication_sequoia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
