# Empty dependencies file for bench_fig06_replication_sequoia.
# This may be replaced when dependencies are built.
