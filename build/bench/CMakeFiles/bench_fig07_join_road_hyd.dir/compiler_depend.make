# Empty compiler generated dependencies file for bench_fig07_join_road_hyd.
# This may be replaced when dependencies are built.
