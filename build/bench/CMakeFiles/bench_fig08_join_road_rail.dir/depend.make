# Empty dependencies file for bench_fig08_join_road_rail.
# This may be replaced when dependencies are built.
