file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_clustered_join.dir/bench_fig09_clustered_join.cc.o"
  "CMakeFiles/bench_fig09_clustered_join.dir/bench_fig09_clustered_join.cc.o.d"
  "bench_fig09_clustered_join"
  "bench_fig09_clustered_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_clustered_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
