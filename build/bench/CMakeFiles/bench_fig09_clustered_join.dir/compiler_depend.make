# Empty compiler generated dependencies file for bench_fig09_clustered_join.
# This may be replaced when dependencies are built.
