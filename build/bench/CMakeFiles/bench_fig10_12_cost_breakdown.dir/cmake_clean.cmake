file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_12_cost_breakdown.dir/bench_fig10_12_cost_breakdown.cc.o"
  "CMakeFiles/bench_fig10_12_cost_breakdown.dir/bench_fig10_12_cost_breakdown.cc.o.d"
  "bench_fig10_12_cost_breakdown"
  "bench_fig10_12_cost_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_12_cost_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
