# Empty dependencies file for bench_fig10_12_cost_breakdown.
# This may be replaced when dependencies are built.
