# Empty dependencies file for bench_fig13_sequoia_join.
# This may be replaced when dependencies are built.
