file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_preexisting_road_hyd.dir/bench_fig14_preexisting_road_hyd.cc.o"
  "CMakeFiles/bench_fig14_preexisting_road_hyd.dir/bench_fig14_preexisting_road_hyd.cc.o.d"
  "bench_fig14_preexisting_road_hyd"
  "bench_fig14_preexisting_road_hyd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_preexisting_road_hyd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
