# Empty compiler generated dependencies file for bench_fig14_preexisting_road_hyd.
# This may be replaced when dependencies are built.
