file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_preexisting_road_rail.dir/bench_fig15_preexisting_road_rail.cc.o"
  "CMakeFiles/bench_fig15_preexisting_road_rail.dir/bench_fig15_preexisting_road_rail.cc.o.d"
  "bench_fig15_preexisting_road_rail"
  "bench_fig15_preexisting_road_rail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_preexisting_road_rail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
