# Empty dependencies file for bench_fig15_preexisting_road_rail.
# This may be replaced when dependencies are built.
