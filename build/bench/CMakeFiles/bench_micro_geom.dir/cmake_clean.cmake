file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_geom.dir/bench_micro_geom.cc.o"
  "CMakeFiles/bench_micro_geom.dir/bench_micro_geom.cc.o.d"
  "bench_micro_geom"
  "bench_micro_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
