# Empty dependencies file for bench_micro_geom.
# This may be replaced when dependencies are built.
