file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_rtree.dir/bench_micro_rtree.cc.o"
  "CMakeFiles/bench_micro_rtree.dir/bench_micro_rtree.cc.o.d"
  "bench_micro_rtree"
  "bench_micro_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
