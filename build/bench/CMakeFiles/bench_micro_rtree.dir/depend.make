# Empty dependencies file for bench_micro_rtree.
# This may be replaced when dependencies are built.
