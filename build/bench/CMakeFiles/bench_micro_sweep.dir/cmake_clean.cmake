file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sweep.dir/bench_micro_sweep.cc.o"
  "CMakeFiles/bench_micro_sweep.dir/bench_micro_sweep.cc.o.d"
  "bench_micro_sweep"
  "bench_micro_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
