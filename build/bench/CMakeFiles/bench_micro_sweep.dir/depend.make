# Empty dependencies file for bench_micro_sweep.
# This may be replaced when dependencies are built.
