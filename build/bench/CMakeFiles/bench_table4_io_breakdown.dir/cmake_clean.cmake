file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_io_breakdown.dir/bench_table4_io_breakdown.cc.o"
  "CMakeFiles/bench_table4_io_breakdown.dir/bench_table4_io_breakdown.cc.o.d"
  "bench_table4_io_breakdown"
  "bench_table4_io_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_io_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
