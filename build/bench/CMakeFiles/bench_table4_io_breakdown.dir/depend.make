# Empty dependencies file for bench_table4_io_breakdown.
# This may be replaced when dependencies are built.
