file(REMOVE_RECURSE
  "CMakeFiles/map_overlay.dir/map_overlay.cpp.o"
  "CMakeFiles/map_overlay.dir/map_overlay.cpp.o.d"
  "map_overlay"
  "map_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
