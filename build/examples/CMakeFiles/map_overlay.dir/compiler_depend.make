# Empty compiler generated dependencies file for map_overlay.
# This may be replaced when dependencies are built.
