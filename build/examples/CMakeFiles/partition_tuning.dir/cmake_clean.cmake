file(REMOVE_RECURSE
  "CMakeFiles/partition_tuning.dir/partition_tuning.cpp.o"
  "CMakeFiles/partition_tuning.dir/partition_tuning.cpp.o.d"
  "partition_tuning"
  "partition_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
