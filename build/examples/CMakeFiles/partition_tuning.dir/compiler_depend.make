# Empty compiler generated dependencies file for partition_tuning.
# This may be replaced when dependencies are built.
