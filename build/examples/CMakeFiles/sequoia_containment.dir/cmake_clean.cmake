file(REMOVE_RECURSE
  "CMakeFiles/sequoia_containment.dir/sequoia_containment.cpp.o"
  "CMakeFiles/sequoia_containment.dir/sequoia_containment.cpp.o.d"
  "sequoia_containment"
  "sequoia_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequoia_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
