# Empty dependencies file for sequoia_containment.
# This may be replaced when dependencies are built.
