file(REMOVE_RECURSE
  "CMakeFiles/spatial_join_cli.dir/spatial_join_cli.cpp.o"
  "CMakeFiles/spatial_join_cli.dir/spatial_join_cli.cpp.o.d"
  "spatial_join_cli"
  "spatial_join_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_join_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
