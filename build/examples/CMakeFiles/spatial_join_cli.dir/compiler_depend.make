# Empty compiler generated dependencies file for spatial_join_cli.
# This may be replaced when dependencies are built.
