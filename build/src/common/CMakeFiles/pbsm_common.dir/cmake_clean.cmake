file(REMOVE_RECURSE
  "CMakeFiles/pbsm_common.dir/rng.cc.o"
  "CMakeFiles/pbsm_common.dir/rng.cc.o.d"
  "CMakeFiles/pbsm_common.dir/stats.cc.o"
  "CMakeFiles/pbsm_common.dir/stats.cc.o.d"
  "CMakeFiles/pbsm_common.dir/status.cc.o"
  "CMakeFiles/pbsm_common.dir/status.cc.o.d"
  "libpbsm_common.a"
  "libpbsm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbsm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
