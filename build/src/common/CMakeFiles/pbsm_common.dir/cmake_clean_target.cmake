file(REMOVE_RECURSE
  "libpbsm_common.a"
)
