# Empty dependencies file for pbsm_common.
# This may be replaced when dependencies are built.
