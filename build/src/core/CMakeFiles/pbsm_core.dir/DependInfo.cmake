
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/index_build.cc" "src/core/CMakeFiles/pbsm_core.dir/index_build.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/index_build.cc.o.d"
  "/root/repo/src/core/inl_join.cc" "src/core/CMakeFiles/pbsm_core.dir/inl_join.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/inl_join.cc.o.d"
  "/root/repo/src/core/interval_tree.cc" "src/core/CMakeFiles/pbsm_core.dir/interval_tree.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/interval_tree.cc.o.d"
  "/root/repo/src/core/parallel_pbsm.cc" "src/core/CMakeFiles/pbsm_core.dir/parallel_pbsm.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/parallel_pbsm.cc.o.d"
  "/root/repo/src/core/pbsm_join.cc" "src/core/CMakeFiles/pbsm_core.dir/pbsm_join.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/pbsm_join.cc.o.d"
  "/root/repo/src/core/plane_sweep_join.cc" "src/core/CMakeFiles/pbsm_core.dir/plane_sweep_join.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/plane_sweep_join.cc.o.d"
  "/root/repo/src/core/refinement.cc" "src/core/CMakeFiles/pbsm_core.dir/refinement.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/refinement.cc.o.d"
  "/root/repo/src/core/rtree_join.cc" "src/core/CMakeFiles/pbsm_core.dir/rtree_join.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/rtree_join.cc.o.d"
  "/root/repo/src/core/selectivity.cc" "src/core/CMakeFiles/pbsm_core.dir/selectivity.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/selectivity.cc.o.d"
  "/root/repo/src/core/spatial_hash_join.cc" "src/core/CMakeFiles/pbsm_core.dir/spatial_hash_join.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/spatial_hash_join.cc.o.d"
  "/root/repo/src/core/spatial_partitioner.cc" "src/core/CMakeFiles/pbsm_core.dir/spatial_partitioner.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/spatial_partitioner.cc.o.d"
  "/root/repo/src/core/window_select.cc" "src/core/CMakeFiles/pbsm_core.dir/window_select.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/window_select.cc.o.d"
  "/root/repo/src/core/zorder_join.cc" "src/core/CMakeFiles/pbsm_core.dir/zorder_join.cc.o" "gcc" "src/core/CMakeFiles/pbsm_core.dir/zorder_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pbsm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pbsm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/pbsm_rtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
