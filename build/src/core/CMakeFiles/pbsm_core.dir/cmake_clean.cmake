file(REMOVE_RECURSE
  "CMakeFiles/pbsm_core.dir/index_build.cc.o"
  "CMakeFiles/pbsm_core.dir/index_build.cc.o.d"
  "CMakeFiles/pbsm_core.dir/inl_join.cc.o"
  "CMakeFiles/pbsm_core.dir/inl_join.cc.o.d"
  "CMakeFiles/pbsm_core.dir/interval_tree.cc.o"
  "CMakeFiles/pbsm_core.dir/interval_tree.cc.o.d"
  "CMakeFiles/pbsm_core.dir/parallel_pbsm.cc.o"
  "CMakeFiles/pbsm_core.dir/parallel_pbsm.cc.o.d"
  "CMakeFiles/pbsm_core.dir/pbsm_join.cc.o"
  "CMakeFiles/pbsm_core.dir/pbsm_join.cc.o.d"
  "CMakeFiles/pbsm_core.dir/plane_sweep_join.cc.o"
  "CMakeFiles/pbsm_core.dir/plane_sweep_join.cc.o.d"
  "CMakeFiles/pbsm_core.dir/refinement.cc.o"
  "CMakeFiles/pbsm_core.dir/refinement.cc.o.d"
  "CMakeFiles/pbsm_core.dir/rtree_join.cc.o"
  "CMakeFiles/pbsm_core.dir/rtree_join.cc.o.d"
  "CMakeFiles/pbsm_core.dir/selectivity.cc.o"
  "CMakeFiles/pbsm_core.dir/selectivity.cc.o.d"
  "CMakeFiles/pbsm_core.dir/spatial_hash_join.cc.o"
  "CMakeFiles/pbsm_core.dir/spatial_hash_join.cc.o.d"
  "CMakeFiles/pbsm_core.dir/spatial_partitioner.cc.o"
  "CMakeFiles/pbsm_core.dir/spatial_partitioner.cc.o.d"
  "CMakeFiles/pbsm_core.dir/window_select.cc.o"
  "CMakeFiles/pbsm_core.dir/window_select.cc.o.d"
  "CMakeFiles/pbsm_core.dir/zorder_join.cc.o"
  "CMakeFiles/pbsm_core.dir/zorder_join.cc.o.d"
  "libpbsm_core.a"
  "libpbsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
