file(REMOVE_RECURSE
  "libpbsm_core.a"
)
