# Empty compiler generated dependencies file for pbsm_core.
# This may be replaced when dependencies are built.
