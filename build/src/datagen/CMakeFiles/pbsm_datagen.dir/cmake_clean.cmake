file(REMOVE_RECURSE
  "CMakeFiles/pbsm_datagen.dir/loader.cc.o"
  "CMakeFiles/pbsm_datagen.dir/loader.cc.o.d"
  "CMakeFiles/pbsm_datagen.dir/sequoia_gen.cc.o"
  "CMakeFiles/pbsm_datagen.dir/sequoia_gen.cc.o.d"
  "CMakeFiles/pbsm_datagen.dir/tiger_gen.cc.o"
  "CMakeFiles/pbsm_datagen.dir/tiger_gen.cc.o.d"
  "libpbsm_datagen.a"
  "libpbsm_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbsm_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
