file(REMOVE_RECURSE
  "libpbsm_datagen.a"
)
