# Empty dependencies file for pbsm_datagen.
# This may be replaced when dependencies are built.
