
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/geometry.cc" "src/geom/CMakeFiles/pbsm_geom.dir/geometry.cc.o" "gcc" "src/geom/CMakeFiles/pbsm_geom.dir/geometry.cc.o.d"
  "/root/repo/src/geom/hilbert.cc" "src/geom/CMakeFiles/pbsm_geom.dir/hilbert.cc.o" "gcc" "src/geom/CMakeFiles/pbsm_geom.dir/hilbert.cc.o.d"
  "/root/repo/src/geom/mer.cc" "src/geom/CMakeFiles/pbsm_geom.dir/mer.cc.o" "gcc" "src/geom/CMakeFiles/pbsm_geom.dir/mer.cc.o.d"
  "/root/repo/src/geom/predicates.cc" "src/geom/CMakeFiles/pbsm_geom.dir/predicates.cc.o" "gcc" "src/geom/CMakeFiles/pbsm_geom.dir/predicates.cc.o.d"
  "/root/repo/src/geom/segment.cc" "src/geom/CMakeFiles/pbsm_geom.dir/segment.cc.o" "gcc" "src/geom/CMakeFiles/pbsm_geom.dir/segment.cc.o.d"
  "/root/repo/src/geom/wkt.cc" "src/geom/CMakeFiles/pbsm_geom.dir/wkt.cc.o" "gcc" "src/geom/CMakeFiles/pbsm_geom.dir/wkt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
