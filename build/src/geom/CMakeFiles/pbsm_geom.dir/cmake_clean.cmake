file(REMOVE_RECURSE
  "CMakeFiles/pbsm_geom.dir/geometry.cc.o"
  "CMakeFiles/pbsm_geom.dir/geometry.cc.o.d"
  "CMakeFiles/pbsm_geom.dir/hilbert.cc.o"
  "CMakeFiles/pbsm_geom.dir/hilbert.cc.o.d"
  "CMakeFiles/pbsm_geom.dir/mer.cc.o"
  "CMakeFiles/pbsm_geom.dir/mer.cc.o.d"
  "CMakeFiles/pbsm_geom.dir/predicates.cc.o"
  "CMakeFiles/pbsm_geom.dir/predicates.cc.o.d"
  "CMakeFiles/pbsm_geom.dir/segment.cc.o"
  "CMakeFiles/pbsm_geom.dir/segment.cc.o.d"
  "CMakeFiles/pbsm_geom.dir/wkt.cc.o"
  "CMakeFiles/pbsm_geom.dir/wkt.cc.o.d"
  "libpbsm_geom.a"
  "libpbsm_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbsm_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
