file(REMOVE_RECURSE
  "libpbsm_geom.a"
)
