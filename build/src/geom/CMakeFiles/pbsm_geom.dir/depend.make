# Empty dependencies file for pbsm_geom.
# This may be replaced when dependencies are built.
