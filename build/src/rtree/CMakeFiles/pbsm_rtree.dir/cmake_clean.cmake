file(REMOVE_RECURSE
  "CMakeFiles/pbsm_rtree.dir/rstar_tree.cc.o"
  "CMakeFiles/pbsm_rtree.dir/rstar_tree.cc.o.d"
  "libpbsm_rtree.a"
  "libpbsm_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbsm_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
