file(REMOVE_RECURSE
  "libpbsm_rtree.a"
)
