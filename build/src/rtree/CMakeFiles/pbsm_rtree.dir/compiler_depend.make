# Empty compiler generated dependencies file for pbsm_rtree.
# This may be replaced when dependencies are built.
