
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/pbsm_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/pbsm_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/storage/CMakeFiles/pbsm_storage.dir/disk_manager.cc.o" "gcc" "src/storage/CMakeFiles/pbsm_storage.dir/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/storage/CMakeFiles/pbsm_storage.dir/heap_file.cc.o" "gcc" "src/storage/CMakeFiles/pbsm_storage.dir/heap_file.cc.o.d"
  "/root/repo/src/storage/spool_file.cc" "src/storage/CMakeFiles/pbsm_storage.dir/spool_file.cc.o" "gcc" "src/storage/CMakeFiles/pbsm_storage.dir/spool_file.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/storage/CMakeFiles/pbsm_storage.dir/tuple.cc.o" "gcc" "src/storage/CMakeFiles/pbsm_storage.dir/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pbsm_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
