file(REMOVE_RECURSE
  "CMakeFiles/pbsm_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/pbsm_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/pbsm_storage.dir/disk_manager.cc.o"
  "CMakeFiles/pbsm_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/pbsm_storage.dir/heap_file.cc.o"
  "CMakeFiles/pbsm_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/pbsm_storage.dir/spool_file.cc.o"
  "CMakeFiles/pbsm_storage.dir/spool_file.cc.o.d"
  "CMakeFiles/pbsm_storage.dir/tuple.cc.o"
  "CMakeFiles/pbsm_storage.dir/tuple.cc.o.d"
  "libpbsm_storage.a"
  "libpbsm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbsm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
