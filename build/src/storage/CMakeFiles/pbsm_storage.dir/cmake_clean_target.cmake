file(REMOVE_RECURSE
  "libpbsm_storage.a"
)
