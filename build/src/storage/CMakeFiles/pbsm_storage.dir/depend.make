# Empty dependencies file for pbsm_storage.
# This may be replaced when dependencies are built.
