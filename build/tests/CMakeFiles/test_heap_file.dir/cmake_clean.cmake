file(REMOVE_RECURSE
  "CMakeFiles/test_heap_file.dir/test_heap_file.cc.o"
  "CMakeFiles/test_heap_file.dir/test_heap_file.cc.o.d"
  "test_heap_file"
  "test_heap_file.pdb"
  "test_heap_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heap_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
