# Empty dependencies file for test_heap_file.
# This may be replaced when dependencies are built.
