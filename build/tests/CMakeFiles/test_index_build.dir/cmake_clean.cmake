file(REMOVE_RECURSE
  "CMakeFiles/test_index_build.dir/test_index_build.cc.o"
  "CMakeFiles/test_index_build.dir/test_index_build.cc.o.d"
  "test_index_build"
  "test_index_build.pdb"
  "test_index_build[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
