# Empty compiler generated dependencies file for test_index_build.
# This may be replaced when dependencies are built.
