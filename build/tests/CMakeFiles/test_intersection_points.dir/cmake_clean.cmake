file(REMOVE_RECURSE
  "CMakeFiles/test_intersection_points.dir/test_intersection_points.cc.o"
  "CMakeFiles/test_intersection_points.dir/test_intersection_points.cc.o.d"
  "test_intersection_points"
  "test_intersection_points.pdb"
  "test_intersection_points[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intersection_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
