# Empty dependencies file for test_intersection_points.
# This may be replaced when dependencies are built.
