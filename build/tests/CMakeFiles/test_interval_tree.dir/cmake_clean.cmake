file(REMOVE_RECURSE
  "CMakeFiles/test_interval_tree.dir/test_interval_tree.cc.o"
  "CMakeFiles/test_interval_tree.dir/test_interval_tree.cc.o.d"
  "test_interval_tree"
  "test_interval_tree.pdb"
  "test_interval_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
