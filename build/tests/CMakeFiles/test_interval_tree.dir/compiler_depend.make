# Empty compiler generated dependencies file for test_interval_tree.
# This may be replaced when dependencies are built.
