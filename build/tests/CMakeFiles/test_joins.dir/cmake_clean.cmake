file(REMOVE_RECURSE
  "CMakeFiles/test_joins.dir/test_joins.cc.o"
  "CMakeFiles/test_joins.dir/test_joins.cc.o.d"
  "test_joins"
  "test_joins.pdb"
  "test_joins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
