# Empty dependencies file for test_joins.
# This may be replaced when dependencies are built.
