file(REMOVE_RECURSE
  "CMakeFiles/test_mer.dir/test_mer.cc.o"
  "CMakeFiles/test_mer.dir/test_mer.cc.o.d"
  "test_mer"
  "test_mer.pdb"
  "test_mer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
