# Empty compiler generated dependencies file for test_mer.
# This may be replaced when dependencies are built.
