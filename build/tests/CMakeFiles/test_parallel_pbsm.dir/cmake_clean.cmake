file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_pbsm.dir/test_parallel_pbsm.cc.o"
  "CMakeFiles/test_parallel_pbsm.dir/test_parallel_pbsm.cc.o.d"
  "test_parallel_pbsm"
  "test_parallel_pbsm.pdb"
  "test_parallel_pbsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_pbsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
