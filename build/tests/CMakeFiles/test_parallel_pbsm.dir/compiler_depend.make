# Empty compiler generated dependencies file for test_parallel_pbsm.
# This may be replaced when dependencies are built.
