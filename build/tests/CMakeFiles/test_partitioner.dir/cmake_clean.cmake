file(REMOVE_RECURSE
  "CMakeFiles/test_partitioner.dir/test_partitioner.cc.o"
  "CMakeFiles/test_partitioner.dir/test_partitioner.cc.o.d"
  "test_partitioner"
  "test_partitioner.pdb"
  "test_partitioner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
