# Empty compiler generated dependencies file for test_partitioner.
# This may be replaced when dependencies are built.
