file(REMOVE_RECURSE
  "CMakeFiles/test_plane_sweep_join.dir/test_plane_sweep_join.cc.o"
  "CMakeFiles/test_plane_sweep_join.dir/test_plane_sweep_join.cc.o.d"
  "test_plane_sweep_join"
  "test_plane_sweep_join.pdb"
  "test_plane_sweep_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plane_sweep_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
