# Empty dependencies file for test_plane_sweep_join.
# This may be replaced when dependencies are built.
