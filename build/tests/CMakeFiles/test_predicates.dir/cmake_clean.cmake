file(REMOVE_RECURSE
  "CMakeFiles/test_predicates.dir/test_predicates.cc.o"
  "CMakeFiles/test_predicates.dir/test_predicates.cc.o.d"
  "test_predicates"
  "test_predicates.pdb"
  "test_predicates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
