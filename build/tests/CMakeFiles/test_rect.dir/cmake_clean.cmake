file(REMOVE_RECURSE
  "CMakeFiles/test_rect.dir/test_rect.cc.o"
  "CMakeFiles/test_rect.dir/test_rect.cc.o.d"
  "test_rect"
  "test_rect.pdb"
  "test_rect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
