# Empty dependencies file for test_rect.
# This may be replaced when dependencies are built.
