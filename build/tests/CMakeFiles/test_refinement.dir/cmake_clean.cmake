file(REMOVE_RECURSE
  "CMakeFiles/test_refinement.dir/test_refinement.cc.o"
  "CMakeFiles/test_refinement.dir/test_refinement.cc.o.d"
  "test_refinement"
  "test_refinement.pdb"
  "test_refinement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
