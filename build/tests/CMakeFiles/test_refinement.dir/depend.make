# Empty dependencies file for test_refinement.
# This may be replaced when dependencies are built.
