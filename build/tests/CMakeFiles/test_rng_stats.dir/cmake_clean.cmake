file(REMOVE_RECURSE
  "CMakeFiles/test_rng_stats.dir/test_rng_stats.cc.o"
  "CMakeFiles/test_rng_stats.dir/test_rng_stats.cc.o.d"
  "test_rng_stats"
  "test_rng_stats.pdb"
  "test_rng_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
