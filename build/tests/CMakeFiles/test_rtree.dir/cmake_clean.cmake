file(REMOVE_RECURSE
  "CMakeFiles/test_rtree.dir/test_rtree.cc.o"
  "CMakeFiles/test_rtree.dir/test_rtree.cc.o.d"
  "test_rtree"
  "test_rtree.pdb"
  "test_rtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
