# Empty dependencies file for test_rtree.
# This may be replaced when dependencies are built.
