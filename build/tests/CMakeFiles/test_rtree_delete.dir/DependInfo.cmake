
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rtree_delete.cc" "tests/CMakeFiles/test_rtree_delete.dir/test_rtree_delete.cc.o" "gcc" "tests/CMakeFiles/test_rtree_delete.dir/test_rtree_delete.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/pbsm_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pbsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/pbsm_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pbsm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pbsm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pbsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
