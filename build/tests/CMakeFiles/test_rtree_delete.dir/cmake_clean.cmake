file(REMOVE_RECURSE
  "CMakeFiles/test_rtree_delete.dir/test_rtree_delete.cc.o"
  "CMakeFiles/test_rtree_delete.dir/test_rtree_delete.cc.o.d"
  "test_rtree_delete"
  "test_rtree_delete.pdb"
  "test_rtree_delete[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtree_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
