# Empty dependencies file for test_rtree_delete.
# This may be replaced when dependencies are built.
