file(REMOVE_RECURSE
  "CMakeFiles/test_segment.dir/test_segment.cc.o"
  "CMakeFiles/test_segment.dir/test_segment.cc.o.d"
  "test_segment"
  "test_segment.pdb"
  "test_segment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
