# Empty compiler generated dependencies file for test_segment.
# This may be replaced when dependencies are built.
