file(REMOVE_RECURSE
  "CMakeFiles/test_selectivity.dir/test_selectivity.cc.o"
  "CMakeFiles/test_selectivity.dir/test_selectivity.cc.o.d"
  "test_selectivity"
  "test_selectivity.pdb"
  "test_selectivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
