# Empty dependencies file for test_selectivity.
# This may be replaced when dependencies are built.
