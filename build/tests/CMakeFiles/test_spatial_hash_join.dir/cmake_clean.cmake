file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_hash_join.dir/test_spatial_hash_join.cc.o"
  "CMakeFiles/test_spatial_hash_join.dir/test_spatial_hash_join.cc.o.d"
  "test_spatial_hash_join"
  "test_spatial_hash_join.pdb"
  "test_spatial_hash_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_hash_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
