# Empty dependencies file for test_spatial_hash_join.
# This may be replaced when dependencies are built.
