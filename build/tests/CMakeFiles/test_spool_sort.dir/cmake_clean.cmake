file(REMOVE_RECURSE
  "CMakeFiles/test_spool_sort.dir/test_spool_sort.cc.o"
  "CMakeFiles/test_spool_sort.dir/test_spool_sort.cc.o.d"
  "test_spool_sort"
  "test_spool_sort.pdb"
  "test_spool_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spool_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
