# Empty compiler generated dependencies file for test_spool_sort.
# This may be replaced when dependencies are built.
