file(REMOVE_RECURSE
  "CMakeFiles/test_window_select.dir/test_window_select.cc.o"
  "CMakeFiles/test_window_select.dir/test_window_select.cc.o.d"
  "test_window_select"
  "test_window_select.pdb"
  "test_window_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
