# Empty dependencies file for test_window_select.
# This may be replaced when dependencies are built.
