file(REMOVE_RECURSE
  "CMakeFiles/test_wkt.dir/test_wkt.cc.o"
  "CMakeFiles/test_wkt.dir/test_wkt.cc.o.d"
  "test_wkt"
  "test_wkt.pdb"
  "test_wkt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
