# Empty dependencies file for test_wkt.
# This may be replaced when dependencies are built.
