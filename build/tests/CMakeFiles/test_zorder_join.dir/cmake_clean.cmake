file(REMOVE_RECURSE
  "CMakeFiles/test_zorder_join.dir/test_zorder_join.cc.o"
  "CMakeFiles/test_zorder_join.dir/test_zorder_join.cc.o.d"
  "test_zorder_join"
  "test_zorder_join.pdb"
  "test_zorder_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zorder_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
