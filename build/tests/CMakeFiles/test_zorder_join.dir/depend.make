# Empty dependencies file for test_zorder_join.
# This may be replaced when dependencies are built.
