# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_datagen[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_heap_file[1]_include.cmake")
include("/root/repo/build/tests/test_hilbert[1]_include.cmake")
include("/root/repo/build/tests/test_index_build[1]_include.cmake")
include("/root/repo/build/tests/test_intersection_points[1]_include.cmake")
include("/root/repo/build/tests/test_interval_tree[1]_include.cmake")
include("/root/repo/build/tests/test_joins[1]_include.cmake")
include("/root/repo/build/tests/test_mer[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_pbsm[1]_include.cmake")
include("/root/repo/build/tests/test_partitioner[1]_include.cmake")
include("/root/repo/build/tests/test_plane_sweep_join[1]_include.cmake")
include("/root/repo/build/tests/test_predicates[1]_include.cmake")
include("/root/repo/build/tests/test_rect[1]_include.cmake")
include("/root/repo/build/tests/test_refinement[1]_include.cmake")
include("/root/repo/build/tests/test_rng_stats[1]_include.cmake")
include("/root/repo/build/tests/test_rtree[1]_include.cmake")
include("/root/repo/build/tests/test_rtree_delete[1]_include.cmake")
include("/root/repo/build/tests/test_segment[1]_include.cmake")
include("/root/repo/build/tests/test_selectivity[1]_include.cmake")
include("/root/repo/build/tests/test_spatial_hash_join[1]_include.cmake")
include("/root/repo/build/tests/test_spool_sort[1]_include.cmake")
include("/root/repo/build/tests/test_status[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_window_select[1]_include.cmake")
include("/root/repo/build/tests/test_wkt[1]_include.cmake")
include("/root/repo/build/tests/test_zorder_join[1]_include.cmake")
