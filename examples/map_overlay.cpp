// Map overlay — the paper's §1 motivating workload: combine two maps based
// on a spatial relationship and materialize a third. This example joins a
// road map with a hydrography map, materializes a "bridges" relation (one
// tuple per road/water crossing), and cross-checks all three join
// algorithms against each other on the same inputs.
//
//   ./examples/map_overlay [num_roads] [num_rivers]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/spatial_join.h"
#include "geom/predicates.h"
#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "storage/tuple.h"

int main(int argc, char** argv) {
  using namespace pbsm;
  const uint64_t num_roads = argc > 1 ? std::atoll(argv[1]) : 30000;
  const uint64_t num_rivers = argc > 2 ? std::atoll(argv[2]) : 8000;

  const std::string dir = "/tmp/pbsm_map_overlay";
  std::filesystem::remove_all(dir);
  DiskManager disk(dir);
  BufferPool pool(&disk, 16 << 20);

  TigerGenerator gen(TigerGenerator::Params{});
  Catalog catalog;
  auto roads =
      LoadRelation(&pool, &catalog, "roads", gen.GenerateRoads(num_roads));
  auto rivers = LoadRelation(&pool, &catalog, "rivers",
                             gen.GenerateHydrography(num_rivers));
  if (!roads.ok() || !rivers.ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  // Materialize the overlay: a "bridges" relation holding, for each
  // crossing, the names of both features and the crossing's rough location
  // (the centroid of the MBR intersection).
  auto bridges_or = HeapFile::Create(&pool, "bridges");
  if (!bridges_or.ok()) return 1;
  HeapFile bridges = std::move(bridges_or).value();

  JoinSpec spec;
  spec.options.memory_budget_bytes = 4 << 20;
  uint64_t next_bridge_id = 0;
  spec.sink = [&](Oid road_oid, Oid river_oid) {
        std::string r_rec, s_rec;
        if (!roads->heap.Fetch(road_oid, &r_rec).ok() ||
            !rivers->heap.Fetch(river_oid, &s_rec).ok()) {
          return;
        }
        auto road = Tuple::Parse(r_rec.data(), r_rec.size());
        auto river = Tuple::Parse(s_rec.data(), s_rec.size());
        if (!road.ok() || !river.ok()) return;
        // The exact crossing location (first witness point of the boundary
        // intersection; falls back to the MBR overlap center if the
        // geometries touch without a segment crossing).
        std::vector<Point> crossings;
        BoundaryIntersectionPoints(road->geometry, river->geometry,
                                   /*max_points=*/1, &crossings);
        const Point where =
            crossings.empty()
                ? Rect::Intersection(road->geometry.Mbr(),
                                     river->geometry.Mbr())
                      .Center()
                : crossings[0];
        Tuple bridge;
        bridge.id = next_bridge_id++;
        bridge.feature_class = 1;  // "bridge"
        bridge.name = road->name + " over " + river->name;
        bridge.geometry = Geometry::MakePoint(where);
        (void)bridges.Append(bridge.Serialize());
      };
  auto result = SpatialJoin(&pool, roads->AsInput(), rivers->AsInput(), spec);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("overlay produced %llu bridges (%u pages)\n",
              (unsigned long long)bridges.num_records(),
              bridges.num_pages());

  // Show a few materialized tuples in WKT.
  uint64_t shown = 0;
  (void)bridges.Scan([&](Oid, const char* data, size_t size) -> Status {
    if (shown++ < 3) {
      PBSM_ASSIGN_OR_RETURN(const Tuple t, Tuple::Parse(data, size));
      std::printf("  %s  %s\n", t.geometry.ToWkt().c_str(), t.name.c_str());
    }
    return Status::OK();
  });

  // Cross-check: three algorithms must agree on the result count.
  JoinSpec check = spec;
  check.sink = {};
  check.method = JoinMethod::kInl;
  auto inl = SpatialJoin(&pool, roads->AsInput(), rivers->AsInput(), check);
  check.method = JoinMethod::kRtree;
  auto rtj = SpatialJoin(&pool, roads->AsInput(), rivers->AsInput(), check);
  if (!inl.ok() || !rtj.ok()) return 1;
  std::printf("\nresult counts: PBSM=%llu  INL=%llu  R-tree=%llu  -> %s\n",
              (unsigned long long)result->num_results,
              (unsigned long long)inl->num_results,
              (unsigned long long)rtj->num_results,
              (result->num_results == inl->num_results &&
               inl->num_results == rtj->num_results)
                  ? "AGREE"
                  : "MISMATCH");
  std::filesystem::remove_all(dir);
  return result->num_results == inl->num_results &&
                 inl->num_results == rtj->num_results
             ? 0
             : 1;
}
