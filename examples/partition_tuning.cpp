// Partition-function tuning (the paper's §3.4 design space): explore how
// the number of tiles and the tile-to-partition mapping trade partition
// balance against replication for a data set, and what Equation 1 says the
// partition count should be for a given memory budget.
//
//   ./examples/partition_tuning [num_features]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stats.h"
#include "core/spatial_partitioner.h"
#include "datagen/tiger_gen.h"

int main(int argc, char** argv) {
  using namespace pbsm;
  const uint64_t n = argc > 1 ? std::atoll(argv[1]) : 50000;

  TigerGenerator gen(TigerGenerator::Params{});
  const auto features = gen.GenerateRoads(n);
  Rect universe;
  for (const Tuple& t : features) universe.Expand(t.geometry.Mbr());

  // Equation 1: partitions needed so one R+S partition pair fits in memory.
  for (const size_t mb : {1, 4, 16}) {
    std::printf("Equation 1: |R|=|S|=%llu, M=%zuMB -> P=%u\n",
                (unsigned long long)n, mb,
                SpatialPartitioner::EstimatePartitionCount(n, n,
                                                           mb << 20));
  }

  std::printf("\n%8s %12s  %-10s %-12s %-10s %-12s\n", "tiles", "",
              "hash CoV", "hash repl%", "rr CoV", "rr repl%");
  constexpr uint32_t kPartitions = 8;
  for (const uint32_t tiles : {16u, 64u, 256u, 1024u, 4096u}) {
    double cov[2], repl[2];
    int i = 0;
    for (const auto mapping :
         {TileMapping::kHash, TileMapping::kRoundRobin}) {
      const SpatialPartitioner part(universe, tiles, kPartitions, mapping);
      std::vector<uint64_t> counts(kPartitions, 0);
      uint64_t copies = 0;
      std::vector<uint32_t> targets;
      for (const Tuple& t : features) {
        targets.clear();
        part.PartitionsFor(t.geometry.Mbr(), &targets);
        copies += targets.size();
        for (const uint32_t p : targets) ++counts[p];
      }
      cov[i] = ComputeStats(counts).CoefficientOfVariation();
      repl[i] = 100.0 * (static_cast<double>(copies) / n - 1.0);
      ++i;
    }
    std::printf("%8u %12s  %-10.4f %-12.3f %-10.4f %-12.3f\n", tiles, "",
                cov[0], repl[0], cov[1], repl[1]);
  }
  std::printf(
      "\nreading: more tiles -> better balance (lower CoV) but more "
      "replication; hashing avoids round robin's column-aliasing spikes\n");
  return 0;
}
