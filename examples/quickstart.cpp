// Quickstart: build two small spatial relations, run the PBSM spatial join,
// and inspect the result and its cost breakdown.
//
//   ./examples/quickstart
//
// This walks the whole public API surface: storage (DiskManager/BufferPool/
// HeapFile), data loading with catalog statistics, and the SpatialJoin call.

#include <cstdio>
#include <filesystem>

#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "storage/tuple.h"

int main() {
  using namespace pbsm;

  // 1. A workspace: one directory, one simulated disk, one buffer pool.
  const std::string dir = "/tmp/pbsm_quickstart";
  std::filesystem::remove_all(dir);
  DiskManager disk(dir);
  BufferPool pool(&disk, /*pool_bytes=*/8 << 20);

  // 2. Two spatial relations. The TIGER-like generator produces polyline
  //    features over a Wisconsin-shaped universe; LoadRelation stores them
  //    in heap files and registers catalog statistics (cardinality and the
  //    spatial universe) that the join will consult.
  TigerGenerator gen(TigerGenerator::Params{});
  Catalog catalog;
  auto roads = LoadRelation(&pool, &catalog, "roads", gen.GenerateRoads(20000));
  auto rivers =
      LoadRelation(&pool, &catalog, "rivers", gen.GenerateHydrography(6000));
  if (!roads.ok() || !rivers.ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("loaded %llu roads (%u pages), %llu rivers (%u pages)\n",
              (unsigned long long)roads->info.cardinality,
              roads->heap.num_pages(),
              (unsigned long long)rivers->info.cardinality,
              rivers->heap.num_pages());

  // 3. Run the Partition Based Spatial-Merge join: which roads cross which
  //    rivers? The sink receives each result pair's OIDs.
  JoinSpec spec;
  spec.method = JoinMethod::kPbsm;
  spec.predicate = SpatialPredicate::kIntersects;
  spec.options.memory_budget_bytes = 2 << 20;
  uint64_t shown = 0;
  spec.sink = [&](Oid road_oid, Oid river_oid) {
        if (shown++ >= 3) return;  // Print just a few.
        std::string r_rec, s_rec;
        if (roads->heap.Fetch(road_oid, &r_rec).ok() &&
            rivers->heap.Fetch(river_oid, &s_rec).ok()) {
          auto road = Tuple::Parse(r_rec.data(), r_rec.size());
          auto river = Tuple::Parse(s_rec.data(), s_rec.size());
          if (road.ok() && river.ok()) {
            std::printf("  crossing: %-12s x %s\n", road->name.c_str(),
                        river->name.c_str());
          }
        }
      };
  auto result = SpatialJoin(&pool, roads->AsInput(), rivers->AsInput(), spec);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. The cost breakdown mirrors the paper's Figures 10-12 components.
  const JoinCostBreakdown& cost = result->breakdown;
  std::printf("\nPBSM: %llu candidates -> %llu results "
              "(%llu duplicates removed), %u partitions over %u tiles\n",
              (unsigned long long)cost.candidates,
              (unsigned long long)cost.results,
              (unsigned long long)cost.duplicates_removed,
              cost.num_partitions, cost.num_tiles);
  for (const auto& [phase, phase_cost] : cost.phases) {
    std::printf("  %-20s cpu=%7.3fs  physical I/O: %llu reads, %llu writes\n",
                phase.c_str(), phase_cost.cpu_seconds,
                (unsigned long long)phase_cost.io.reads,
                (unsigned long long)phase_cost.io.writes);
  }

  // 5. The join's metrics delta: observability without extra bookkeeping.
  std::printf("buffer pool: %llu hits, %llu misses during the join\n",
              (unsigned long long)result->metrics.counter(
                  "storage.bufferpool.hits"),
              (unsigned long long)result->metrics.counter(
                  "storage.bufferpool.misses"));
  std::filesystem::remove_all(dir);
  return 0;
}
