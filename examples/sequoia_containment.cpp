// Sequoia-style containment query (the paper's §4.3 third workload): find
// every island polygon contained in a landuse polygon — e.g. lakes inside
// parks — including swiss-cheese landuse polygons whose holes must exclude
// islands that fall inside them.
//
// Demonstrates the kContains predicate and the BKSS94 MER refinement
// pre-filter (§4.4), printing how much work the filter saves.
//
//   ./examples/sequoia_containment [num_polygons] [num_islands]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/stopwatch.h"
#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "datagen/sequoia_gen.h"
#include "geom/mer.h"

int main(int argc, char** argv) {
  using namespace pbsm;
  const uint64_t num_polygons = argc > 1 ? std::atoll(argv[1]) : 6000;
  const uint64_t num_islands = argc > 2 ? std::atoll(argv[2]) : 2000;

  const std::string dir = "/tmp/pbsm_sequoia";
  std::filesystem::remove_all(dir);
  DiskManager disk(dir);
  BufferPool pool(&disk, 16 << 20);

  SequoiaGenerator gen(SequoiaGenerator::Params{});
  Catalog catalog;
  auto polys = LoadRelation(&pool, &catalog, "landuse",
                            gen.GeneratePolygons(num_polygons),
                            /*clustered=*/false, /*precompute_mers=*/true);
  auto islands = LoadRelation(&pool, &catalog, "islands",
                              gen.GenerateIslands(num_islands));
  if (!polys.ok() || !islands.ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("landuse polygons: %llu (avg %.1f vertices)\n",
              (unsigned long long)polys->info.cardinality,
              polys->info.avg_points());
  std::printf("islands:          %llu (avg %.1f vertices)\n",
              (unsigned long long)islands->info.cardinality,
              islands->info.avg_points());

  // Show the MER machinery on one swiss-cheese polygon.
  (void)polys->heap.Scan([&](Oid, const char* data, size_t size) -> Status {
    PBSM_ASSIGN_OR_RETURN(const Tuple t, Tuple::Parse(data, size));
    if (t.geometry.num_holes() > 0) {
      const Rect mer = ComputeMer(t.geometry);
      std::printf(
          "\nexample swiss-cheese polygon '%s': %zu holes, MBR area %.4f, "
          "MER area %.4f (%.0f%% of MBR)\n",
          t.name.c_str(), t.geometry.num_holes(), t.geometry.Mbr().Area(),
          mer.Area(), 100.0 * mer.Area() / t.geometry.Mbr().Area());
      return Status::Internal("done");  // Abort the scan early.
    }
    return Status::OK();
  });

  JoinSpec spec;
  spec.predicate = SpatialPredicate::kContains;
  spec.options.memory_budget_bytes = 4 << 20;

  for (const bool use_mer : {false, true}) {
    JoinSpec s = spec;
    s.options.use_mer_filter = use_mer;
    Stopwatch watch;
    auto result = SpatialJoin(&pool, polys->AsInput(), islands->AsInput(), s);
    if (!result.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "contains join (MER filter %s): %llu islands-in-polygons, "
        "%.3fs wall, %llu candidates\n",
        use_mer ? "on " : "off", (unsigned long long)result->num_results,
        watch.ElapsedSeconds(),
        (unsigned long long)result->breakdown.candidates);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
