// Command-line spatial join over WKT files — the "downstream user" entry
// point: bring your own data, no generators involved.
//
// One-shot join:
//   ./examples/spatial_join_cli R.wkt S.wkt [intersects|contains]
//                               [pbsm|parallel_pbsm|rtree|inl|spatial_hash|zorder|auto]
//                               [--refine-mode=exact|adaptive|approximate]
//                               [--fault-profile=SPEC] [--shards=N]
//                               [--explain]
//
// --explain prints the planned operator tree with per-operator cost
// estimates (the planner's cost table plus the exec-layer tree that would
// run) and exits WITHOUT executing the join. The method operand may be
// `auto` here, showing what the cost-based planner would pick.
//
// Service mode (long-running, planner + index cache; see DESIGN.md
// "Service layer" and "Sharded service"):
//   ./examples/spatial_join_cli serve R.wkt S.wkt [--workers=N] [--queue=N]
//                               [--shards=N]
// then issue commands on stdin, one per line:
//   join <intersects|contains> [auto|pbsm|...] [timeout_seconds]
//   explain <intersects|contains> [auto|pbsm|...]
//   stats
//   quit
//
// --shards=N > 1 runs the join through the sharded scatter-gather path
// (ShardManager + JoinRouter): the universe is cut into N spatial strips,
// each with its own buffer pool and index cache, and every query scatters
// one sub-join per strip. Results and exit codes are identical to the
// single-shard path — sharding is a throughput/isolation knob, not a
// semantic one. In serve mode --workers then means workers PER SHARD.
//
// Each input file holds one WKT geometry per line (POINT / LINESTRING /
// POLYGON; '#' lines are comments). One-shot mode prints the result as
// "<r_line> <s_line>" pairs of 1-based input line numbers, followed by the
// cost breakdown. With no arguments, a small built-in demo runs.
//
// --fault-profile arms a deterministic storage fault injector (see
// FaultInjector::Parse for the spec syntax, e.g. "seed=42;read=0.01"):
// transient faults are retried transparently by the buffer pool; permanent
// ones make the join fail with a clean non-OK status.
//
// Exit codes: 0 success, 1 runtime failure (I/O, bad input data, join
// error), 2 usage error (unknown flag/predicate/method, missing operand).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <algorithm>
#include <mutex>

#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "exec/plan_builder.h"
#include "geom/wkt.h"
#include "service/join_planner.h"
#include "service/join_router.h"
#include "service/join_service.h"
#include "service/shard_manager.h"

int RunCli(int argc, const char** argv);

namespace {

using namespace pbsm;

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: spatial_join_cli R.wkt S.wkt [intersects|contains]\n"
      "                        [pbsm|parallel_pbsm|rtree|inl|spatial_hash|"
      "zorder|auto]\n"
      "                        [--refine-mode=exact|adaptive|approximate]\n"
      "                        [--fault-profile=SPEC] [--shards=N] "
      "[--explain]\n"
      "       spatial_join_cli serve R.wkt S.wkt [--workers=N] [--queue=N]\n"
      "                        [--refine-mode=MODE] [--fault-profile=SPEC]\n"
      "                        [--shards=N]\n");
}

/// Flags shared by both modes, parsed strictly: any unrecognised --flag is
/// a usage error (exit 2) instead of being silently treated as a file name.
struct CliFlags {
  std::string fault_profile;
  uint32_t workers = 2;
  size_t queue_capacity = 64;
  /// > 1 routes the join through the sharded scatter-gather path.
  uint32_t shards = 1;
  /// Refinement strategy: unset = the library default (exact). In serve
  /// mode this becomes each request's refine_mode override, so the
  /// planner's cost model follows it too.
  std::optional<RefineMode> refine_mode;
  /// One-shot mode: print the planned operator tree with per-operator cost
  /// estimates and exit without executing.
  bool explain = false;
};

/// Splits argv into flags and positionals; false (usage error) on any
/// unknown flag or malformed value.
bool ParseArgs(int argc, const char** argv, CliFlags* flags,
               std::vector<const char*>* positional) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional->push_back(argv[i]);
      continue;
    }
    const size_t eq = arg.find('=');
    const std::string name = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (name == "--fault-profile") {
      flags->fault_profile = value;
    } else if (name == "--explain") {
      if (eq != std::string::npos) {
        std::fprintf(stderr, "--explain takes no value\n");
        return false;
      }
      flags->explain = true;
    } else if (name == "--refine-mode") {
      auto mode = ParseRefineMode(value);
      if (!mode.ok()) {
        std::fprintf(stderr, "bad value for --refine-mode: %s\n",
                     mode.status().message().c_str());
        return false;
      }
      flags->refine_mode = *mode;
    } else if (name == "--workers" || name == "--queue" ||
               name == "--shards") {
      char* end = nullptr;
      const unsigned long n = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "bad value for %s: '%s'\n", name.c_str(),
                     value.c_str());
        return false;
      }
      if (name == "--workers") {
        flags->workers = static_cast<uint32_t>(n);
      } else if (name == "--queue") {
        flags->queue_capacity = static_cast<size_t>(n);
      } else {
        flags->shards = static_cast<uint32_t>(n);
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", name.c_str());
      return false;
    }
  }
  return true;
}

/// Reads one-geometry-per-line WKT into tuples (id = 1-based line number).
Result<std::vector<Tuple>> ReadWktFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<Tuple> tuples;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blanks and comments.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    auto geometry = ParseWkt(line);
    if (!geometry.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + geometry.status().message());
    }
    Tuple t;
    t.id = line_no;
    t.name = path + ":" + std::to_string(line_no);
    t.geometry = std::move(geometry).value();
    tuples.push_back(std::move(t));
  }
  return tuples;
}

int RunDemo() {
  PrintUsage(stdout);
  std::printf("\nrunning built-in demo instead:\n");
  const std::string dir = "/tmp/pbsm_cli_demo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream r(dir + "/parks.wkt");
    r << "# two parks\n"
      << "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))\n"
      << "POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))\n";
    std::ofstream s(dir + "/lakes.wkt");
    s << "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))\n"      // In park 1.
      << "POLYGON ((25 25, 27 25, 27 27, 25 27, 25 25))\n"  // In park 2.
      << "POLYGON ((50 50, 52 50, 52 52, 50 52, 50 50))\n";  // Nowhere.
  }
  const char* argv[] = {"demo", "/tmp/pbsm_cli_demo/parks.wkt",
                        "/tmp/pbsm_cli_demo/lakes.wkt", "contains", "pbsm"};
  return RunCli(5, argv);
}

/// Sharded serve loop: joins scatter over a JoinRouter instead of queueing
/// on a JoinService. `auto` still routes through the cost-based planner —
/// but per shard, so methods can differ across strips of one query.
int ServeSharded(const CliFlags& flags, const StoredRelation& r,
                 const StoredRelation& s) {
  ShardManagerConfig shard_config;
  shard_config.num_shards = flags.shards;
  ShardManager shards(shard_config);
  Status reg = shards.RegisterDataset("R", &r.heap, r.info);
  if (reg.ok()) reg = shards.RegisterDataset("S", &s.heap, s.info);
  if (!reg.ok()) {
    std::fprintf(stderr, "register failed: %s\n", reg.ToString().c_str());
    return kExitRuntime;
  }
  JoinRouterConfig router_config;
  router_config.workers_per_shard = flags.workers;
  router_config.queue_capacity = flags.queue_capacity;
  JoinRouter router(&shards, router_config);

  std::printf("sharded layout: %s\n", shards.layout().ToString().c_str());
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "stats") {
      for (uint32_t i = 0; i < shards.num_shards(); ++i) {
        const ShardManager::Shard& shard = shards.shard(i);
        std::printf("shard %u: cache %zu entries, %llu hits, %llu misses; "
                    "queue depth %zu\n",
                    i, shard.cache->size(),
                    (unsigned long long)shard.cache->hits(),
                    (unsigned long long)shard.cache->misses(),
                    router.queue_depth(i));
      }
      std::fflush(stdout);
      continue;
    }

    if (cmd != "join") {
      std::printf("ERR unknown command '%s'\n", cmd.c_str());
      std::fflush(stdout);
      continue;
    }

    std::string pred_name = "intersects", method_name = "auto";
    double timeout = 0.0;
    iss >> pred_name >> method_name >> timeout;

    JoinRequest request;
    request.r_dataset = "R";
    request.s_dataset = "S";
    request.timeout_seconds = timeout;
    request.refine_mode = flags.refine_mode;
    if (pred_name == "intersects") {
      request.predicate = SpatialPredicate::kIntersects;
    } else if (pred_name == "contains") {
      request.predicate = SpatialPredicate::kContains;
    } else {
      std::printf("ERR unknown predicate '%s'\n", pred_name.c_str());
      std::fflush(stdout);
      continue;
    }
    if (method_name != "auto") {
      const auto method = ParseJoinMethod(method_name);
      if (!method.has_value()) {
        std::printf("ERR unknown method '%s'\n", method_name.c_str());
        std::fflush(stdout);
        continue;
      }
      request.method = *method;
    }

    auto response = router.Execute(std::move(request));
    if (!response.ok()) {
      std::printf("ERR %s\n", response.status().ToString().c_str());
    } else {
      double critical = 0.0;
      for (const ShardSliceStats& slice : response->shard_slices) {
        critical = std::max(critical, slice.exec_seconds);
      }
      std::printf("OK %llu results shards=%zu%s exec=%.4fs critical=%.4fs\n",
                  (unsigned long long)response->num_results,
                  response->shard_slices.size(),
                  response->planner_chosen ? " (planned)" : "",
                  response->exec_seconds, critical);
      for (const ShardSliceStats& slice : response->shard_slices) {
        std::printf("  shard %u: %llu results method=%.*s %.4fs%s%s\n",
                    slice.shard, (unsigned long long)slice.num_results,
                    (int)JoinMethodName(slice.method).size(),
                    JoinMethodName(slice.method).data(), slice.exec_seconds,
                    slice.stolen ? " (stolen)" : "",
                    slice.speculative ? " (speculative)" : "");
      }
    }
    std::fflush(stdout);
  }

  router.Shutdown(/*drain=*/true);
  return kExitOk;
}

/// `serve` mode: loads both relations once, then answers join commands
/// from stdin through a JoinService — repeated index-method joins hit the
/// service's index cache, and `auto` routes through the cost-based planner.
int RunServe(const CliFlags& flags, const std::string& r_path,
             const std::string& s_path) {
  auto r_tuples = ReadWktFile(r_path);
  auto s_tuples = ReadWktFile(s_path);
  if (!r_tuples.ok() || !s_tuples.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!r_tuples.ok() ? r_tuples.status() : s_tuples.status())
                     .ToString()
                     .c_str());
    return kExitRuntime;
  }

  const std::string dir = "/tmp/pbsm_cli_serve";
  std::filesystem::remove_all(dir);
  DiskManager disk(dir);
  if (!flags.fault_profile.empty()) {
    auto injector = FaultInjector::Parse(flags.fault_profile);
    if (!injector.ok()) {
      std::fprintf(stderr, "bad --fault-profile: %s\n",
                   injector.status().ToString().c_str());
      return kExitUsage;
    }
    disk.set_fault_injector(std::move(*injector));
  }
  BufferPool pool(&disk, 64 << 20);
  Catalog catalog;
  auto r = LoadRelation(&pool, &catalog, "R", std::move(r_tuples).value());
  auto s = LoadRelation(&pool, &catalog, "S", std::move(s_tuples).value());
  if (!r.ok() || !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 (!r.ok() ? r.status() : s.status()).ToString().c_str());
    return kExitRuntime;
  }

  if (flags.shards > 1) {
    std::printf("serving R=%s (%llu) S=%s (%llu) over %u shards; commands: "
                "join <pred> [method|auto] [timeout_s] | stats | quit\n",
                r_path.c_str(), (unsigned long long)r->info.cardinality,
                s_path.c_str(), (unsigned long long)s->info.cardinality,
                flags.shards);
    std::fflush(stdout);
    const int rc = ServeSharded(flags, *r, *s);
    std::filesystem::remove_all(dir);
    return rc;
  }

  JoinServiceConfig config;
  config.num_workers = flags.workers;
  config.queue_capacity = flags.queue_capacity;
  JoinService service(&pool, config);
  Status reg = service.RegisterDataset("R", &r->heap, r->info);
  if (reg.ok()) reg = service.RegisterDataset("S", &s->heap, s->info);
  if (!reg.ok()) {
    std::fprintf(stderr, "register failed: %s\n", reg.ToString().c_str());
    return kExitRuntime;
  }

  std::printf("serving R=%s (%llu) S=%s (%llu); commands: "
              "join <pred> [method|auto] [timeout_s] | "
              "explain <pred> [method|auto] | stats | quit\n",
              r_path.c_str(), (unsigned long long)r->info.cardinality,
              s_path.c_str(), (unsigned long long)s->info.cardinality);
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "stats") {
      std::printf("cache: %zu entries, %llu hits, %llu misses, %llu "
                  "evictions; queue depth %zu\n",
                  service.cache().size(),
                  (unsigned long long)service.cache().hits(),
                  (unsigned long long)service.cache().misses(),
                  (unsigned long long)service.cache().evictions(),
                  service.queue_depth());
      std::fflush(stdout);
      continue;
    }

    if (cmd != "join" && cmd != "explain") {
      std::printf("ERR unknown command '%s'\n", cmd.c_str());
      std::fflush(stdout);
      continue;
    }

    std::string pred_name = "intersects", method_name = "auto";
    double timeout = 0.0;
    iss >> pred_name >> method_name >> timeout;

    JoinRequest request;
    request.r_dataset = "R";
    request.s_dataset = "S";
    request.timeout_seconds = timeout;
    request.refine_mode = flags.refine_mode;
    if (pred_name == "intersects") {
      request.predicate = SpatialPredicate::kIntersects;
    } else if (pred_name == "contains") {
      request.predicate = SpatialPredicate::kContains;
    } else {
      std::printf("ERR unknown predicate '%s'\n", pred_name.c_str());
      std::fflush(stdout);
      continue;
    }
    if (method_name != "auto") {
      const auto method = ParseJoinMethod(method_name);
      if (!method.has_value()) {
        std::printf("ERR unknown method '%s'\n", method_name.c_str());
        std::fflush(stdout);
        continue;
      }
      request.method = *method;
    }

    if (cmd == "explain") {
      // Plan without executing: cost table, costed tree, exec-layer tree.
      auto explained = service.Explain(request);
      if (!explained.ok()) {
        std::printf("ERR %s\n", explained.status().ToString().c_str());
      } else {
        std::printf("EXPLAIN method=%.*s%s\nplan: %s\n",
                    (int)JoinMethodName(explained->method).size(),
                    JoinMethodName(explained->method).data(),
                    explained->planner_chosen ? " (planned)" : " (forced)",
                    explained->plan.c_str());
        if (!explained->cost_tree.empty()) {
          std::printf("costed tree:\n%s\n", explained->cost_tree.c_str());
        }
        std::printf("operator tree:\n%s", explained->tree.c_str());
      }
      std::fflush(stdout);
      continue;
    }

    auto response = service.Execute(std::move(request));
    if (!response.ok()) {
      std::printf("ERR %s\n", response.status().ToString().c_str());
    } else {
      std::printf("OK %llu results method=%.*s%s exec=%.4fs queue=%.4fs\n",
                  (unsigned long long)response->num_results,
                  (int)JoinMethodName(response->method).size(),
                  JoinMethodName(response->method).data(),
                  response->planner_chosen ? " (planned)" : "",
                  response->exec_seconds, response->queue_seconds);
      if (response->planner_chosen) {
        std::printf("plan: %s\n", response->plan.c_str());
      }
    }
    std::fflush(stdout);
  }

  service.Shutdown(/*drain=*/true);
  std::filesystem::remove_all(dir);
  return kExitOk;
}

}  // namespace

int RunCli(int argc, const char** argv) {
  CliFlags flags;
  std::vector<const char*> positional;
  if (!ParseArgs(argc, argv, &flags, &positional)) {
    PrintUsage(stderr);
    return kExitUsage;
  }
  argc = static_cast<int>(positional.size());
  argv = positional.data();

  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    if (argc != 4) {
      std::fprintf(stderr, "serve needs exactly two WKT files\n");
      PrintUsage(stderr);
      return kExitUsage;
    }
    return RunServe(flags, argv[2], argv[3]);
  }
  if (argc < 3 || argc > 5) {
    PrintUsage(stderr);
    return kExitUsage;
  }

  const std::string r_path = argv[1];
  const std::string s_path = argv[2];
  const std::string pred_name = argc > 3 ? argv[3] : "intersects";
  const std::string algo = argc > 4 ? argv[4] : "pbsm";

  SpatialPredicate pred;
  if (pred_name == "intersects") {
    pred = SpatialPredicate::kIntersects;
  } else if (pred_name == "contains") {
    pred = SpatialPredicate::kContains;
  } else {
    std::fprintf(stderr, "unknown predicate '%s'\n", pred_name.c_str());
    return kExitUsage;
  }
  std::optional<JoinMethod> method;
  if (algo == "auto") {
    // The one-shot join path runs a fixed method; `auto` only makes sense
    // when just planning (--explain) or in serve mode (planner per query).
    if (!flags.explain) {
      std::fprintf(stderr,
                   "method 'auto' needs --explain or serve mode\n");
      return kExitUsage;
    }
  } else {
    method = ParseJoinMethod(algo);
    if (!method.has_value()) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
      return kExitUsage;
    }
  }

  auto r_tuples = ReadWktFile(r_path);
  auto s_tuples = ReadWktFile(s_path);
  if (!r_tuples.ok() || !s_tuples.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!r_tuples.ok() ? r_tuples.status() : s_tuples.status())
                     .ToString()
                     .c_str());
    return kExitRuntime;
  }

  const std::string dir = "/tmp/pbsm_cli_work";
  std::filesystem::remove_all(dir);
  DiskManager disk(dir);
  if (!flags.fault_profile.empty()) {
    auto injector = FaultInjector::Parse(flags.fault_profile);
    if (!injector.ok()) {
      std::fprintf(stderr, "bad --fault-profile: %s\n",
                   injector.status().ToString().c_str());
      return kExitUsage;
    }
    disk.set_fault_injector(std::move(*injector));
  }
  BufferPool pool(&disk, 32 << 20);
  Catalog catalog;
  auto r = LoadRelation(&pool, &catalog, "R", std::move(r_tuples).value(),
                        false, pred == SpatialPredicate::kContains);
  auto s = LoadRelation(&pool, &catalog, "S", std::move(s_tuples).value());
  if (!r.ok() || !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 (!r.ok() ? r.status() : s.status()).ToString().c_str());
    return kExitRuntime;
  }

  if (flags.explain) {
    // Plan only: the cost table, the planner's costed operator tree, and
    // the exec-layer tree that would be driven. Nothing executes — no
    // index builds, no heap scans beyond the load above.
    JoinSpec spec;
    spec.predicate = pred;
    spec.options.memory_budget_bytes = 8 << 20;
    spec.options.use_mer_filter = pred == SpatialPredicate::kContains;
    if (flags.refine_mode.has_value()) {
      spec.options.refine.mode = *flags.refine_mode;
    }
    PlannerCosts costs;
    costs.dedup_mode = spec.options.dedup_mode;
    costs.refine_mode = spec.options.refine.mode;
    const PlannerSide pr{&r->info, nullptr, false};
    const PlannerSide ps{&s->info, nullptr, false};
    const PlanChoice plan = PlanJoin(pr, ps, 0, costs);
    spec.method = method.value_or(plan.method);
    std::printf("plan: %s\n", plan.ToString().c_str());
    if (spec.method == plan.method) {
      std::printf("costed tree:\n%s\n", plan.TreeString().c_str());
    }
    const std::unique_ptr<Operator> tree =
        BuildJoinTree(r->AsInput(), s->AsInput(), spec);
    std::printf("operator tree (%.*s):\n%s",
                (int)JoinMethodName(spec.method).size(),
                JoinMethodName(spec.method).data(),
                DescribeTree(*tree).c_str());
    std::filesystem::remove_all(dir);
    return kExitOk;
  }

  // Result pairs are reported as input line numbers (tuple ids).
  ResultSink sink = [&](Oid ro, Oid so) {
    std::string rec;
    uint64_t r_line = 0, s_line = 0;
    if (r->heap.Fetch(ro, &rec).ok()) {
      auto t = Tuple::Parse(rec.data(), rec.size());
      if (t.ok()) r_line = t->id;
    }
    if (s->heap.Fetch(so, &rec).ok()) {
      auto t = Tuple::Parse(rec.data(), rec.size());
      if (t.ok()) s_line = t->id;
    }
    std::printf("%llu %llu\n", (unsigned long long)r_line,
                (unsigned long long)s_line);
  };

  if (flags.shards > 1) {
    // Sharded one-shot: scatter over a router. The router's sinks hand back
    // GLOBAL oids (local->global translation), so the line-number sink works
    // unchanged — but it may now be called from several shard workers at
    // once, hence the lock.
    ShardManagerConfig shard_config;
    shard_config.num_shards = flags.shards;
    ShardManager shards(shard_config);
    Status reg = shards.RegisterDataset("R", &r->heap, r->info);
    if (reg.ok()) reg = shards.RegisterDataset("S", &s->heap, s->info);
    if (!reg.ok()) {
      std::fprintf(stderr, "register failed: %s\n", reg.ToString().c_str());
      return kExitRuntime;
    }
    JoinRouterConfig router_config;
    JoinRouter router(&shards, router_config);
    std::mutex sink_mutex;
    JoinRequest request;
    request.r_dataset = "R";
    request.s_dataset = "S";
    request.predicate = pred;
    request.method = *method;
    request.refine_mode = flags.refine_mode;
    request.sink = [&](Oid ro, Oid so) {
      std::lock_guard<std::mutex> lock(sink_mutex);
      sink(ro, so);
    };
    auto response = router.Execute(std::move(request));
    router.Shutdown(/*drain=*/true);
    if (!response.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   response.status().ToString().c_str());
      return kExitRuntime;
    }
    std::fprintf(stderr, "# %s %s: %llu results over %zu shards\n",
                 algo.c_str(), pred_name.c_str(),
                 (unsigned long long)response->num_results,
                 response->shard_slices.size());
    for (const ShardSliceStats& slice : response->shard_slices) {
      std::fprintf(stderr, "#   shard %-4u %llu results, %.4fs%s\n",
                   slice.shard, (unsigned long long)slice.num_results,
                   slice.exec_seconds, slice.stolen ? " (stolen)" : "");
    }
    std::filesystem::remove_all(dir);
    return kExitOk;
  }

  JoinSpec spec;
  spec.method = *method;
  spec.predicate = pred;
  spec.options.memory_budget_bytes = 8 << 20;
  spec.options.use_mer_filter = pred == SpatialPredicate::kContains;
  if (flags.refine_mode.has_value()) {
    spec.options.refine.mode = *flags.refine_mode;
  }
  spec.sink = sink;
  auto result = SpatialJoin(&pool, r->AsInput(), s->AsInput(), spec);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return kExitRuntime;
  }
  std::fprintf(stderr, "# %s %s: %llu results from %llu candidates\n",
               algo.c_str(), pred_name.c_str(),
               (unsigned long long)result->num_results,
               (unsigned long long)result->breakdown.candidates);
  for (const auto& [phase, c] : result->breakdown.phases) {
    std::fprintf(stderr, "#   %-24s %.4fs cpu, %llu I/Os\n", phase.c_str(),
                 c.cpu_seconds, (unsigned long long)c.io.total());
  }
  std::fprintf(
      stderr,
      "# pool: %llu hits / %llu misses; refinement: %llu true / %llu false "
      "positives\n",
      (unsigned long long)result->metrics.counter("storage.bufferpool.hits"),
      (unsigned long long)result->metrics.counter(
          "storage.bufferpool.misses"),
      (unsigned long long)result->metrics.counter(
          "join.refine.true_positives"),
      (unsigned long long)result->metrics.counter(
          "join.refine.false_positives"));
  std::filesystem::remove_all(dir);
  return kExitOk;
}

int main(int argc, char** argv) {
  if (argc < 2) return RunDemo();
  return RunCli(argc, const_cast<const char**>(argv));
}
