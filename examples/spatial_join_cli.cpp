// Command-line spatial join over WKT files — the "downstream user" entry
// point: bring your own data, no generators involved.
//
//   ./examples/spatial_join_cli R.wkt S.wkt [intersects|contains]
//                               [pbsm|parallel_pbsm|rtree|inl|spatial_hash|zorder]
//                               [--fault-profile=SPEC]
//
// Each input file holds one WKT geometry per line (POINT / LINESTRING /
// POLYGON; '#' lines are comments). The join result is printed as
// "<r_line> <s_line>" pairs of 1-based input line numbers, followed by the
// cost breakdown. With no arguments, a small built-in demo runs.
//
// --fault-profile arms a deterministic storage fault injector (see
// FaultInjector::Parse for the spec syntax, e.g. "seed=42;read=0.01"):
// transient faults are retried transparently by the buffer pool; permanent
// ones make the join fail with a clean non-OK status (exit code 1).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "geom/wkt.h"

int RunCli(int argc, const char** argv);

namespace {

using namespace pbsm;

/// Reads one-geometry-per-line WKT into tuples (id = 1-based line number).
Result<std::vector<Tuple>> ReadWktFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<Tuple> tuples;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blanks and comments.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    auto geometry = ParseWkt(line);
    if (!geometry.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + geometry.status().message());
    }
    Tuple t;
    t.id = line_no;
    t.name = path + ":" + std::to_string(line_no);
    t.geometry = std::move(geometry).value();
    tuples.push_back(std::move(t));
  }
  return tuples;
}

int RunDemo() {
  std::printf(
      "usage: spatial_join_cli R.wkt S.wkt [intersects|contains] "
      "[pbsm|parallel_pbsm|rtree|inl|spatial_hash|zorder]\n\n"
      "running built-in demo instead:\n");
  const std::string dir = "/tmp/pbsm_cli_demo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream r(dir + "/parks.wkt");
    r << "# two parks\n"
      << "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))\n"
      << "POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))\n";
    std::ofstream s(dir + "/lakes.wkt");
    s << "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))\n"      // In park 1.
      << "POLYGON ((25 25, 27 25, 27 27, 25 27, 25 25))\n"  // In park 2.
      << "POLYGON ((50 50, 52 50, 52 52, 50 52, 50 50))\n";  // Nowhere.
  }
  const char* argv[] = {"demo", "/tmp/pbsm_cli_demo/parks.wkt",
                        "/tmp/pbsm_cli_demo/lakes.wkt", "contains", "pbsm"};
  return RunCli(5, argv);
}

}  // namespace

int RunCli(int argc, const char** argv) {
  // Strip flag arguments; the rest are positional.
  std::string fault_profile;
  std::vector<const char*> positional;
  const std::string fault_prefix = "--fault-profile=";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(fault_prefix, 0) == 0) {
      fault_profile = arg.substr(fault_prefix.size());
    } else {
      positional.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(positional.size());
  argv = positional.data();

  const std::string r_path = argv[1];
  const std::string s_path = argv[2];
  const std::string pred_name = argc > 3 ? argv[3] : "intersects";
  const std::string algo = argc > 4 ? argv[4] : "pbsm";

  SpatialPredicate pred;
  if (pred_name == "intersects") {
    pred = SpatialPredicate::kIntersects;
  } else if (pred_name == "contains") {
    pred = SpatialPredicate::kContains;
  } else {
    std::fprintf(stderr, "unknown predicate '%s'\n", pred_name.c_str());
    return 2;
  }

  auto r_tuples = ReadWktFile(r_path);
  auto s_tuples = ReadWktFile(s_path);
  if (!r_tuples.ok() || !s_tuples.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!r_tuples.ok() ? r_tuples.status() : s_tuples.status())
                     .ToString()
                     .c_str());
    return 2;
  }

  const std::string dir = "/tmp/pbsm_cli_work";
  std::filesystem::remove_all(dir);
  DiskManager disk(dir);
  if (!fault_profile.empty()) {
    auto injector = FaultInjector::Parse(fault_profile);
    if (!injector.ok()) {
      std::fprintf(stderr, "bad --fault-profile: %s\n",
                   injector.status().ToString().c_str());
      return 2;
    }
    disk.set_fault_injector(std::move(*injector));
  }
  BufferPool pool(&disk, 32 << 20);
  Catalog catalog;
  auto r = LoadRelation(&pool, &catalog, "R", std::move(r_tuples).value(),
                        false, pred == SpatialPredicate::kContains);
  auto s = LoadRelation(&pool, &catalog, "S", std::move(s_tuples).value());
  if (!r.ok() || !s.ok()) {
    std::fprintf(stderr, "load failed\n");
    return 2;
  }

  // Result pairs are reported as input line numbers (tuple ids).
  ResultSink sink = [&](Oid ro, Oid so) {
    std::string rec;
    uint64_t r_line = 0, s_line = 0;
    if (r->heap.Fetch(ro, &rec).ok()) {
      auto t = Tuple::Parse(rec.data(), rec.size());
      if (t.ok()) r_line = t->id;
    }
    if (s->heap.Fetch(so, &rec).ok()) {
      auto t = Tuple::Parse(rec.data(), rec.size());
      if (t.ok()) s_line = t->id;
    }
    std::printf("%llu %llu\n", (unsigned long long)r_line,
                (unsigned long long)s_line);
  };

  JoinSpec spec;
  const auto method = ParseJoinMethod(algo);
  if (!method.has_value()) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    return 2;
  }
  spec.method = *method;
  spec.predicate = pred;
  spec.options.memory_budget_bytes = 8 << 20;
  spec.options.use_mer_filter = pred == SpatialPredicate::kContains;
  spec.sink = sink;
  auto result = SpatialJoin(&pool, r->AsInput(), s->AsInput(), spec);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# %s %s: %llu results from %llu candidates\n",
               algo.c_str(), pred_name.c_str(),
               (unsigned long long)result->num_results,
               (unsigned long long)result->breakdown.candidates);
  for (const auto& [phase, c] : result->breakdown.phases) {
    std::fprintf(stderr, "#   %-24s %.4fs cpu, %llu I/Os\n", phase.c_str(),
                 c.cpu_seconds, (unsigned long long)c.io.total());
  }
  std::fprintf(
      stderr,
      "# pool: %llu hits / %llu misses; refinement: %llu true / %llu false "
      "positives\n",
      (unsigned long long)result->metrics.counter("storage.bufferpool.hits"),
      (unsigned long long)result->metrics.counter(
          "storage.bufferpool.misses"),
      (unsigned long long)result->metrics.counter(
          "join.refine.true_positives"),
      (unsigned long long)result->metrics.counter(
          "join.refine.false_positives"));
  std::filesystem::remove_all(dir);
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 3) return RunDemo();
  return RunCli(argc, const_cast<const char**>(argv));
}
