#ifndef PBSM_COMMON_BOUNDED_QUEUE_H_
#define PBSM_COMMON_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace pbsm {

/// Bounded multi-producer / multi-consumer queue with a small number of
/// strict priority levels — the admission queue of the join service.
///
/// Design points, driven by the service's backpressure contract:
///  * TryPush never blocks: when the queue holds `capacity` items the push
///    is refused and the caller maps that to kResourceExhausted. A blocking
///    push would hide overload from clients instead of surfacing it.
///  * Pop blocks until an item, draining higher-priority levels first
///    (strict priority; FIFO within a level). Bounded capacity keeps strict
///    priority safe: a full queue rejects instead of starving producers.
///  * Close() wakes every blocked consumer. Pop then drains what is queued
///    and returns nullopt afterwards — the graceful-shutdown path. Drain()
///    instead empties the queue immediately, returning the items so the
///    caller can complete them as cancelled — the fast-shutdown path.
///
/// All operations take the one queue mutex; the queue is a scheduling
/// point, not a hot path (items are whole join queries).
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` bounds the total item count across all priority levels.
  explicit BoundedQueue(size_t capacity, size_t num_priorities = 2)
      : capacity_(capacity == 0 ? 1 : capacity),
        levels_(num_priorities == 0 ? 1 : num_priorities) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues at `priority` (0 = most urgent; clamped to the last level).
  /// Returns false — without blocking — when the queue is full or closed.
  bool TryPush(T item, size_t priority = 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || size_ >= capacity_) return false;
    if (priority >= levels_.size()) priority = levels_.size() - 1;
    levels_[priority].push_back(std::move(item));
    ++size_;
    lock.unlock();
    ready_cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available (highest priority first) or the
  /// queue is closed and empty (returns nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_cv_.wait(lock, [this] { return size_ > 0 || closed_; });
    return PopLocked();
  }

  /// Non-blocking Pop: nullopt when nothing is queued.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    return PopLocked();
  }

  /// Pop with a bounded wait: blocks up to `timeout` for an item, then
  /// returns whatever is available (nullopt on timeout, or once closed and
  /// empty). This is the shard workers' idle beat — a short wait on the home
  /// queue before scanning sibling queues for work to steal, so an idle
  /// worker neither spins nor sleeps through a steal opportunity.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_cv_.wait_for(lock, timeout, [this] { return size_ > 0 || closed_; });
    return PopLocked();
  }

  /// Refuses further pushes and wakes all blocked consumers. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  /// Empties the queue, returning the removed items in pop order. Usually
  /// preceded by Close(); the caller completes the items as cancelled.
  std::vector<T> Drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<T> out;
    out.reserve(size_);
    for (auto& level : levels_) {
      while (!level.empty()) {
        out.push_back(std::move(level.front()));
        level.pop_front();
      }
    }
    size_ = 0;
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  std::optional<T> PopLocked() {
    for (auto& level : levels_) {
      if (level.empty()) continue;
      T item = std::move(level.front());
      level.pop_front();
      --size_;
      return item;
    }
    return std::nullopt;
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::vector<std::deque<T>> levels_;
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace pbsm

#endif  // PBSM_COMMON_BOUNDED_QUEUE_H_
