#ifndef PBSM_COMMON_CANCELLER_H_
#define PBSM_COMMON_CANCELLER_H_

#include <atomic>
#include <mutex>
#include <utility>

#include "common/status.h"

namespace pbsm {

/// Shared cancellation state of one unit of work (a join, a service query).
///
/// Two things trip it:
///  * an internal error — the first worker to hit a real error records it
///    with Report() and siblings bail out with kCancelled, which carries no
///    information and is filtered in favour of the recorded first error
///    (this is what turns one failed partition worker into a prompt, clean
///    join abort instead of N workers independently grinding through doomed
///    I/O);
///  * an external Cancel() — a timeout watchdog or a client abandoning the
///    query. The supplied status (kCancelled) becomes the work's result.
///
/// A Canceller may have a parent (the service's per-query canceller chains
/// above the executor's internal one): is_cancelled() observes the parent,
/// and the parent's reason wins when both are set, so a service timeout
/// surfaces as "query timeout" and not as a sibling-task artefact.
///
/// Thread-safe; is_cancelled() is one relaxed-acquire load per level and is
/// meant to be polled from inner loops.
class Canceller {
 public:
  Canceller() = default;
  explicit Canceller(const Canceller* parent) : parent_(parent) {}

  Canceller(const Canceller&) = delete;
  Canceller& operator=(const Canceller&) = delete;

  bool is_cancelled() const {
    return cancelled_.load(std::memory_order_acquire) ||
           (parent_ != nullptr && parent_->is_cancelled());
  }

  /// Records `s` as the work's error if it is the first real one (OK and
  /// kCancelled are ignored) and cancels all siblings.
  void Report(const Status& s) {
    if (s.ok() || s.code() == StatusCode::kCancelled) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_.ok()) first_error_ = s;
    }
    cancelled_.store(true, std::memory_order_release);
  }

  /// External cancellation (timeout, client disconnect). The first call's
  /// reason sticks; later calls and calls after Report() are no-ops. The
  /// reason must be a kCancelled status so error filtering keeps treating
  /// it as "no information" relative to real errors.
  void Cancel(Status reason = Status::Cancelled("cancelled")) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (cancel_reason_.ok()) cancel_reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  /// The first real error reported, or OK.
  Status FirstError() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_error_;
  }

  /// What a worker that observed is_cancelled() should return, in priority
  /// order: the chain's first real error, else the external cancel reason
  /// (parent's first — the outermost actor decided), else a generic
  /// kCancelled.
  Status CancellationStatus() const {
    if (parent_ != nullptr) {
      const Status parent_status = parent_->CancellationStatus();
      if (!parent_status.ok() &&
          parent_status.code() != StatusCode::kCancelled) {
        return parent_status;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_.ok()) return first_error_;
      if (!parent_status.ok()) return parent_status;
      if (!cancel_reason_.ok()) return cancel_reason_;
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_.ok()) return first_error_;
      if (!cancel_reason_.ok()) return cancel_reason_;
    }
    return Status::Cancelled("cancelled");
  }

 private:
  const Canceller* parent_ = nullptr;
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mutex_;
  Status first_error_;   // Real errors only (never kCancelled).
  Status cancel_reason_; // kCancelled with the external caller's message.
};

}  // namespace pbsm

#endif  // PBSM_COMMON_CANCELLER_H_
