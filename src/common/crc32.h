#ifndef PBSM_COMMON_CRC32_H_
#define PBSM_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace pbsm {

namespace crc32_internal {

/// CRC-32C (Castagnoli) lookup table, built once at compile time. The
/// Castagnoli polynomial is the one storage systems use for block checksums
/// (iSCSI, ext4, LevelDB); software table lookup is plenty for 8 KiB pages.
constexpr uint32_t kPoly = 0x82f63b78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace crc32_internal

/// CRC-32C of `n` bytes at `data`. Deterministic across platforms.
inline uint32_t Crc32c(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ crc32_internal::kTable[(crc ^ p[i]) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

}  // namespace pbsm

#endif  // PBSM_COMMON_CRC32_H_
