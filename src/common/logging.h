#ifndef PBSM_COMMON_LOGGING_H_
#define PBSM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pbsm {
namespace internal_logging {

/// Streams a message and aborts when a PBSM_CHECK fails.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "PBSM_CHECK failed at " << file << ":" << line << ": "
            << condition << " ";
  }
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace pbsm

/// Invariant check, active in all build types. Use for programmer errors
/// (violated preconditions), never for data-dependent failures — those
/// return Status.
#define PBSM_CHECK(condition)                                              \
  if (!(condition))                                                        \
  ::pbsm::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)   \
      .stream()

#define PBSM_DCHECK(condition) PBSM_CHECK(condition)

#endif  // PBSM_COMMON_LOGGING_H_
