#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace pbsm {

namespace metrics_internal {

size_t ThreadShard() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

}  // namespace metrics_internal

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

uint64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= kBuckets - 1) return UINT64_MAX;
  return (1ull << b) - 1;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& c : cells_) total += c.load(std::memory_order_relaxed);
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const auto& s : sums_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kBuckets, 0);
  for (size_t shard = 0; shard < metrics_internal::kShards; ++shard) {
    for (size_t b = 0; b < kBuckets; ++b) {
      out[b] += cells_[shard * kBuckets + b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::Reset() {
  for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  for (auto& s : sums_) s.value.store(0, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::PercentileUpperBound(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (const auto& [ub, n] : buckets) {
    seen += n;
    if (static_cast<double>(seen) >= target) return ub;
  }
  return buckets.empty() ? 0 : buckets.back().first;
}

// ---------------------------------------------------------------------------
// Snapshot.
// ---------------------------------------------------------------------------

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    const uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    out.counters[name] = value >= base ? value - base : 0;
  }
  out.gauges = gauges;
  for (const auto& [name, hist] : histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      out.histograms[name] = hist;
      continue;
    }
    HistogramSnapshot d;
    d.count = hist.count >= it->second.count ? hist.count - it->second.count : 0;
    d.sum = hist.sum >= it->second.sum ? hist.sum - it->second.sum : 0;
    std::map<uint64_t, uint64_t> base;
    for (const auto& [ub, n] : it->second.buckets) base[ub] = n;
    for (const auto& [ub, n] : hist.buckets) {
      auto bit = base.find(ub);
      const uint64_t b = bit == base.end() ? 0 : bit->second;
      if (n > b) d.buckets.emplace_back(ub, n - b);
    }
    out.histograms[name] = std::move(d);
  }
  return out;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendU64(&out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendI64(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":";
    AppendU64(&out, hist.count);
    out += ",\"sum\":";
    AppendU64(&out, hist.sum);
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [ub, n] : hist.buckets) {
      if (!bfirst) out.push_back(',');
      bfirst = false;
      out.push_back('[');
      AppendU64(&out, ub);
      out.push_back(',');
      AppendU64(&out, n);
      out.push_back(']');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instrumented statics destroyed after main can still report.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.count = hist->Count();
    h.sum = hist->Sum();
    const std::vector<uint64_t> buckets = hist->BucketCounts();
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] != 0) {
        h.buckets.emplace_back(Histogram::BucketUpperBound(b), buckets[b]);
      }
    }
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace pbsm
