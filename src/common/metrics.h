#ifndef PBSM_COMMON_METRICS_H_
#define PBSM_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pbsm {

// ---------------------------------------------------------------------------
// Metric primitives.
//
// The hot-path operations (Counter::Add, Gauge::Set, Histogram::Record) are
// lock-free: relaxed atomic read-modify-writes on state that is sharded
// across cache lines, so concurrent workers never contend on one word.
// Reads (Value(), Snapshot()) sum the shards and may observe a value that is
// slightly stale with respect to in-flight increments — exact once the
// writers have quiesced, which is when snapshots are taken.
//
// Metric objects are owned by a MetricsRegistry and live as long as the
// registry; instrumented components look their metrics up once (by name) and
// keep the raw pointer, so steady-state instrumentation does no lookups.
// ---------------------------------------------------------------------------

namespace metrics_internal {

/// Number of cache-line-padded shards per metric. A power of two so the
/// thread-to-shard mapping is a mask, sized to cover more hardware threads
/// than the executors ever run.
inline constexpr size_t kShards = 16;

/// Stable per-thread shard index (threads are striped round-robin).
size_t ThreadShard();

struct alignas(64) PaddedAtomic {
  std::atomic<uint64_t> value{0};
};

}  // namespace metrics_internal

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[metrics_internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<metrics_internal::PaddedAtomic, metrics_internal::kShards>
      shards_;
};

/// Last-write-wins instantaneous value (e.g. pool capacity, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-scale (power-of-two bucket) histogram of non-negative integer samples.
///
/// Bucket b counts samples whose value v satisfies
///   b == 0             : v == 0
///   1 <= b < kBuckets-1: 2^(b-1) <= v < 2^b
///   b == kBuckets-1    : v >= 2^(kBuckets-2)   (overflow bucket)
/// so bucket upper bounds are 0, 1, 2, 4, 8, ... Record() is a single
/// relaxed fetch_add on a sharded slot; count and sum are derived at read
/// time.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value) {
    const size_t shard = metrics_internal::ThreadShard();
    cells_[shard * kBuckets + BucketFor(value)].fetch_add(
        1, std::memory_order_relaxed);
    sums_[shard].value.fetch_add(value, std::memory_order_relaxed);
  }

  /// Index of the bucket `value` lands in.
  static size_t BucketFor(uint64_t value) {
    if (value == 0) return 0;
    const size_t bit = 64 - static_cast<size_t>(__builtin_clzll(value));
    return bit < kBuckets - 1 ? bit : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `b` (UINT64_MAX for the overflow one).
  static uint64_t BucketUpperBound(size_t b);

  uint64_t Count() const;
  uint64_t Sum() const;
  /// Per-bucket counts, summed over shards (size kBuckets).
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

 private:
  // [shard][bucket], flattened; sharded like Counter to avoid contention.
  std::array<std::atomic<uint64_t>, metrics_internal::kShards * kBuckets>
      cells_{};
  std::array<metrics_internal::PaddedAtomic, metrics_internal::kShards> sums_;
};

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Non-empty buckets only, as (inclusive upper bound, count), ascending.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket containing quantile q in [0, 1] — an
  /// order-of-magnitude estimate, which is what log-scale buckets buy.
  uint64_t PercentileUpperBound(double q) const;
};

/// Point-in-time copy of every metric in a registry. Deterministically
/// ordered (std::map) so exported JSON is stable.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// This snapshot minus an earlier one: counters and histogram counts
  /// subtract (saturating at 0); gauges keep this snapshot's value. Used to
  /// scope cumulative process-wide metrics to one operation.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  /// Compact (single-line) JSON: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count":..,"sum":..,"buckets":[[ub,n],...]}}}.
  std::string ToJson() const;
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// Named metric directory. Lookup (GetCounter/GetGauge/GetHistogram) takes a
/// mutex and is meant for component construction time; the returned pointer
/// is stable for the registry's lifetime and lock-free to operate on.
///
/// Naming scheme (see DESIGN.md "Observability"): dot-separated
/// <layer>.<component>.<event>, e.g. "storage.bufferpool.hits",
/// "join.refine.true_positives".
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in component reports to.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (names stay registered).
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace pbsm

#endif  // PBSM_COMMON_METRICS_H_
