#include "common/rng.h"

#include <cmath>

namespace pbsm {

double Rng::Sqrt(double x) { return std::sqrt(x); }
double Rng::Log(double x) { return std::log(x); }

}  // namespace pbsm
