#ifndef PBSM_COMMON_RNG_H_
#define PBSM_COMMON_RNG_H_

#include <cstdint>

namespace pbsm {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Used by the data generators and the property tests so every run is
/// reproducible from a single 64-bit seed, independent of the standard
/// library implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = Sqrt(-2.0 * Log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  // Tiny wrappers so the header does not pull in <cmath> for every client.
  static double Sqrt(double x);
  static double Log(double x);

  uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace pbsm

#endif  // PBSM_COMMON_RNG_H_
