#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace pbsm {

SampleStats ComputeStats(const std::vector<double>& values) {
  SampleStats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

SampleStats ComputeStats(const std::vector<uint64_t>& values) {
  std::vector<double> d(values.begin(), values.end());
  return ComputeStats(d);
}

}  // namespace pbsm
