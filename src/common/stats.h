#ifndef PBSM_COMMON_STATS_H_
#define PBSM_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbsm {

/// Summary statistics over a sample.
struct SampleStats {
  size_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  double min = 0.0;
  double max = 0.0;

  /// stddev / mean — the paper's Figure 4 metric. 0 when mean == 0.
  double CoefficientOfVariation() const {
    return mean == 0.0 ? 0.0 : stddev / mean;
  }
};

/// Computes SampleStats over `values`; all-zero stats for an empty sample.
SampleStats ComputeStats(const std::vector<double>& values);

/// Convenience overload for counters (e.g. tuples per partition).
SampleStats ComputeStats(const std::vector<uint64_t>& values);

}  // namespace pbsm

#endif  // PBSM_COMMON_STATS_H_
