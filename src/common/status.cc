#include "common/status.h"

namespace pbsm {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pbsm
