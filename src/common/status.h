#ifndef PBSM_COMMON_STATUS_H_
#define PBSM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace pbsm {

/// Error taxonomy for all fallible operations in the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kNotSupported,
  /// Work abandoned because a sibling task already failed; carries no
  /// information of its own and is filtered out in favour of the sibling's
  /// first real error (see ParallelPbsmJoin).
  kCancelled,
};

/// Returns a stable human-readable name for `code` (e.g. "IoError").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus, for errors, a message.
///
/// The library never throws; every operation that can fail returns a Status
/// (or a Result<T>, below). The OK status carries no allocation.
///
/// [[nodiscard]]: silently dropping a Status is how I/O errors turn into
/// wrong join results; callers that genuinely cannot act on a failure
/// (destructors, shutdown paths) must say so with an explicit void cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result / absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return SomeErrorStatus();` works.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

}  // namespace pbsm

/// Propagates a non-OK Status from `expr` out of the enclosing function.
#define PBSM_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::pbsm::Status _pbsm_status = (expr);           \
    if (!_pbsm_status.ok()) return _pbsm_status;    \
  } while (false)

/// Evaluates a Result-returning `expr`; on success binds the value to `lhs`,
/// on error propagates the Status out of the enclosing function.
#define PBSM_ASSIGN_OR_RETURN(lhs, expr)                   \
  PBSM_ASSIGN_OR_RETURN_IMPL_(                             \
      PBSM_STATUS_CONCAT_(_pbsm_result, __LINE__), lhs, expr)

#define PBSM_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#define PBSM_STATUS_CONCAT_(a, b) PBSM_STATUS_CONCAT_IMPL_(a, b)
#define PBSM_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // PBSM_COMMON_STATUS_H_
