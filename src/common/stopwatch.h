#ifndef PBSM_COMMON_STOPWATCH_H_
#define PBSM_COMMON_STOPWATCH_H_

#include <chrono>

namespace pbsm {

/// Wall-clock stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed seconds so far.
  double Restart() {
    const double s = ElapsedSeconds();
    start_ = Clock::now();
    return s;
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple timed sections.
class TimeAccumulator {
 public:
  /// RAII guard: adds the guarded scope's duration to the accumulator.
  class Scope {
   public:
    explicit Scope(TimeAccumulator* acc) : acc_(acc) {}
    ~Scope() { acc_->seconds_ += watch_.ElapsedSeconds(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TimeAccumulator* acc_;
    Stopwatch watch_;
  };

  double seconds() const { return seconds_; }
  void Add(double s) { seconds_ += s; }
  void Reset() { seconds_ = 0.0; }

 private:
  double seconds_ = 0.0;
};

}  // namespace pbsm

#endif  // PBSM_COMMON_STOPWATCH_H_
