#include "common/thread_pool.h"

#include <utility>

#include "common/metrics.h"

namespace pbsm {

namespace {
thread_local int t_current_worker = -1;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  static Counter* const tasks =
      MetricsRegistry::Global().GetCounter("common.threadpool.tasks");
  tasks->Add();
  const size_t home = next_queue_.fetch_add(1) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[home]->mutex);
    queues_[home]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++queued_;
    ++pending_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryRunOneTask(size_t worker_index) {
  std::function<void()> task;
  // Own queue first, newest task (back).
  {
    WorkQueue& own = *queues_[worker_index];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  // Steal the oldest task (front) of the first non-empty sibling.
  if (!task) {
    static Counter* const steals =
        MetricsRegistry::Global().GetCounter("common.threadpool.steals");
    const size_t n = queues_.size();
    for (size_t off = 1; off < n && !task; ++off) {
      WorkQueue& victim = *queues_[(worker_index + off) % n];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        steals->Add();
      }
    }
  }
  if (!task) return false;

  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    --queued_;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    --pending_;
    if (pending_ == 0) done_cv_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  t_current_worker = static_cast<int>(worker_index);
  while (true) {
    if (TryRunOneTask(worker_index)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

int ThreadPool::CurrentWorker() { return t_current_worker; }

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace pbsm
