#ifndef PBSM_COMMON_THREAD_POOL_H_
#define PBSM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pbsm {

/// A small work-stealing thread pool for the parallel join executors.
///
/// Each worker owns a deque of tasks. Submit() distributes tasks round-robin
/// across the worker deques; a worker pops from the back of its own deque
/// (newest first, cache-hot) and, when it runs dry, steals from the front of
/// a sibling's deque (oldest first), so long-running tasks submitted early
/// migrate to idle workers instead of serialising behind their home worker.
///
/// Tasks must not throw. Use Wait() to join a batch of submitted tasks; the
/// pool itself stays alive for the next batch (phases reuse one pool).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Must not be
  /// called from inside a pool task.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Index of the pool worker executing the current task, or -1 when called
  /// from a thread outside this pool. Lets callers keep per-worker
  /// accumulators without locks (a worker runs its tasks serially).
  static int CurrentWorker();

  /// std::thread::hardware_concurrency with a fallback of 1.
  static size_t DefaultThreads();

 private:
  struct WorkQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t worker_index);
  bool TryRunOneTask(size_t worker_index);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;

  // Guards the sleep/wake protocol; queued_/pending_ are modified under it
  // so notifications cannot be lost between a predicate check and the wait.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;   ///< Signals "work available" / "stop".
  std::condition_variable done_cv_;   ///< Signals "all tasks finished".
  size_t queued_ = 0;    ///< Tasks enqueued but not yet picked up.
  size_t pending_ = 0;   ///< Tasks submitted but not yet finished.
  bool stop_ = false;
  std::atomic<size_t> next_queue_{0};
};

}  // namespace pbsm

#endif  // PBSM_COMMON_THREAD_POOL_H_
