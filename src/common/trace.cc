#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

namespace pbsm {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

}  // namespace

namespace {
std::atomic<uint64_t> g_next_tracer_key{1};
}  // namespace

Tracer::Tracer()
    : tracer_key_(g_next_tracer_key.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  // Leaked so spans closing during static destruction still have a tracer.
  static Tracer* g = new Tracer();
  return *g;
}

Tracer::ThreadLog* Tracer::GetThreadLog() {
  // Per-thread cache: tracer key -> shared_ptr<ThreadLog>. The tracer also
  // holds the shared_ptr, so records survive thread exit.
  static thread_local std::unordered_map<uint64_t, std::shared_ptr<ThreadLog>>
      cache;
  auto it = cache.find(tracer_key_);
  if (it != cache.end()) return it->second.get();

  auto log = std::make_shared<ThreadLog>();
  log->thread_id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(logs_mutex_);
    logs_.push_back(log);
  }
  cache.emplace(tracer_key_, log);
  return log.get();
}

std::pair<uint32_t, uint32_t> Tracer::OpenSpan(std::string_view name) {
  ThreadLog* log = GetThreadLog();
  const uint32_t id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(log->mutex);
  const uint32_t parent =
      log->open_stack.empty() ? 0 : log->open_stack.back().span_id;
  OpenEntry entry;
  entry.span_id = id;
  entry.name = std::string(name);
  entry.start_us = now;
  log->open_stack.push_back(std::move(entry));
  return {id, parent};
}

void Tracer::CloseSpan(std::string_view name, uint32_t span_id,
                       uint32_t parent_id, uint64_t start_us) {
  const uint64_t end_us = NowMicros();
  ThreadLog* log = GetThreadLog();
  std::lock_guard<std::mutex> lock(log->mutex);
  // Spans close LIFO per thread (they are scoped), so span_id is the top.
  size_t flushed_index = SIZE_MAX;
  if (!log->open_stack.empty() && log->open_stack.back().span_id == span_id) {
    flushed_index = log->open_stack.back().flushed_index;
    log->open_stack.pop_back();
  }
  if (flushed_index != SIZE_MAX && flushed_index < log->finished.size() &&
      log->finished[flushed_index].span_id == span_id) {
    // FlushOpenSpans already materialized this span: finalize the
    // provisional record in place instead of appending a duplicate.
    log->finished[flushed_index].start_us = start_us;
    log->finished[flushed_index].end_us = end_us;
    return;
  }
  if (log->finished.size() >= kMaxSpansPerThread) {
    ++log->dropped;
    return;
  }
  SpanRecord rec;
  rec.name = std::string(name);
  rec.start_us = start_us;
  rec.end_us = end_us;
  rec.thread_id = log->thread_id;
  rec.span_id = span_id;
  rec.parent_id = parent_id;
  log->finished.push_back(std::move(rec));
}

void Tracer::FlushOpenSpans() {
  const uint64_t now = NowMicros();
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(logs_mutex_);
    logs = logs_;
  }
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> lock(log->mutex);
    for (size_t i = 0; i < log->open_stack.size(); ++i) {
      OpenEntry& entry = log->open_stack[i];
      if (entry.flushed_index != SIZE_MAX &&
          entry.flushed_index < log->finished.size() &&
          log->finished[entry.flushed_index].span_id == entry.span_id) {
        // Flushed before and still open: extend the provisional end time.
        log->finished[entry.flushed_index].end_us = now;
        continue;
      }
      if (log->finished.size() >= kMaxSpansPerThread) {
        ++log->dropped;
        continue;
      }
      SpanRecord rec;
      rec.name = entry.name;
      rec.start_us = entry.start_us;
      rec.end_us = now;
      rec.thread_id = log->thread_id;
      rec.span_id = entry.span_id;
      rec.parent_id = i == 0 ? 0 : log->open_stack[i - 1].span_id;
      entry.flushed_index = log->finished.size();
      log->finished.push_back(std::move(rec));
    }
  }
}

std::vector<SpanRecord> Tracer::FinishedSpans() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(logs_mutex_);
    logs = logs_;
  }
  std::vector<SpanRecord> out;
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> lock(log->mutex);
    out.insert(out.end(), log->finished.begin(), log->finished.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.span_id < b.span_id;
            });
  return out;
}

uint64_t Tracer::dropped_spans() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(logs_mutex_);
    logs = logs_;
  }
  uint64_t dropped = 0;
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> lock(log->mutex);
    dropped += log->dropped;
  }
  return dropped;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(logs_mutex_);
    logs = logs_;
  }
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> lock(log->mutex);
    log->finished.clear();
    log->dropped = 0;
    // Provisional records of flushed-but-open spans are gone; closing them
    // must append fresh records, not index into the cleared vector.
    for (OpenEntry& entry : log->open_stack) entry.flushed_index = SIZE_MAX;
  }
}

namespace {

void AppendSpanNode(std::string* out, const SpanRecord& rec,
                    const std::unordered_map<uint32_t, std::vector<size_t>>&
                        children,
                    const std::vector<SpanRecord>& all) {
  *out += "{\"name\":";
  AppendJsonString(out, rec.name);
  *out += ",\"start_us\":";
  AppendU64(out, rec.start_us);
  *out += ",\"dur_us\":";
  AppendU64(out, rec.end_us - rec.start_us);
  *out += ",\"tid\":";
  AppendU64(out, rec.thread_id);
  auto it = children.find(rec.span_id);
  if (it != children.end()) {
    *out += ",\"children\":[";
    bool first = true;
    for (const size_t child : it->second) {
      if (!first) out->push_back(',');
      first = false;
      AppendSpanNode(out, all[child], children, all);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

}  // namespace

std::string Tracer::SpanTreeJson() const {
  const std::vector<SpanRecord> spans = FinishedSpans();
  // parent span_id -> indices of children, in (tid, start) order.
  std::unordered_map<uint32_t, std::vector<size_t>> children;
  std::unordered_map<uint32_t, bool> known;
  for (const SpanRecord& s : spans) known[s.span_id] = true;
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    // A span whose parent never finished (still open, or dropped) is
    // reported as a root rather than lost.
    if (spans[i].parent_id != 0 && known.count(spans[i].parent_id) > 0) {
      children[spans[i].parent_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out = "[";
  bool first = true;
  for (const size_t r : roots) {
    if (!first) out.push_back(',');
    first = false;
    AppendSpanNode(&out, spans[r], children, spans);
  }
  out.push_back(']');
  return out;
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<SpanRecord> spans = FinishedSpans();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, s.name);
    out += ",\"ph\":\"X\",\"ts\":";
    AppendU64(&out, s.start_us);
    out += ",\"dur\":";
    AppendU64(&out, s.end_us - s.start_us);
    out += ",\"pid\":1,\"tid\":";
    AppendU64(&out, s.thread_id);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

TraceSpan::TraceSpan(std::string_view name, Tracer* tracer) {
  Tracer* t = tracer != nullptr ? tracer : &Tracer::Global();
  if (!t->enabled()) return;
  tracer_ = t;
  name_ = std::string(name);
  const auto [id, parent] = t->OpenSpan(name);
  span_id_ = id;
  parent_id_ = parent;
  start_us_ = t->NowMicros();  // After bookkeeping: span times the work.
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  tracer_->CloseSpan(name_, span_id_, parent_id_, start_us_);
}

}  // namespace pbsm
