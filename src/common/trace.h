#ifndef PBSM_COMMON_TRACE_H_
#define PBSM_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pbsm {

/// One finished span: a named, nested interval on one thread.
struct SpanRecord {
  std::string name;
  uint64_t start_us = 0;  ///< Microseconds since the tracer epoch.
  uint64_t end_us = 0;
  uint32_t thread_id = 0;  ///< Small sequential id, first-span order.
  uint32_t span_id = 0;    ///< Unique, > 0.
  uint32_t parent_id = 0;  ///< 0 = root (no enclosing span on this thread).

  double duration_seconds() const {
    return static_cast<double>(end_us - start_us) * 1e-6;
  }
};

/// Collects TraceSpan records from all threads.
///
/// Each thread owns a log (created on its first span) holding its open-span
/// stack and finished records; opening/closing a span touches only that log
/// under its own (uncontended) mutex, so tracing never serialises workers
/// against each other. Nesting is per thread: a span opened on a worker
/// thread roots a new tree there — cross-thread phases are correlated by
/// wall-clock overlap, exactly how the Chrome trace viewer renders them.
///
/// Logs are bounded (kMaxSpansPerThread); beyond the cap spans are counted
/// as dropped instead of recorded, so long-running processes cannot grow
/// without bound.
class Tracer {
 public:
  static constexpr size_t kMaxSpansPerThread = 1 << 16;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every built-in component reports to.
  static Tracer& Global();

  /// When disabled, TraceSpan construction is a no-op (one relaxed load).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Copies out every finished span, ordered by (thread_id, start_us).
  /// Threads with spans still open contribute only their finished ones.
  std::vector<SpanRecord> FinishedSpans() const;

  /// Spans not recorded because a per-thread log hit its cap.
  uint64_t dropped_spans() const;

  /// Discards all finished spans (open spans keep their identity).
  void Clear();

  /// Materializes every still-open span (on every thread) as a finished
  /// record ending now, so exports taken mid-work — an abort-time
  /// METRICS_JSON emitter, a Canceller-triggered early exit with sibling
  /// tasks still unwinding — report a complete tree instead of orphaning
  /// the sub-spans of open ancestors. When a flushed span later closes
  /// normally, its provisional record is finalized in place (no
  /// duplicate); a second flush extends the provisional end time.
  void FlushOpenSpans();

  /// Nested span tree as JSON:
  /// [{"name":..,"start_us":..,"dur_us":..,"tid":..,
  ///   "children":[...]}, ...] — roots ordered by (tid, start).
  std::string SpanTreeJson() const;

  /// Chrome trace_event format (load in chrome://tracing or Perfetto):
  /// {"traceEvents":[{"name":..,"ph":"X","ts":..,"dur":..,"pid":1,
  ///                  "tid":..},...]}.
  std::string ChromeTraceJson() const;

  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  friend class TraceSpan;

  /// One open (not yet closed) span on a thread's stack. Carries enough to
  /// materialize a provisional record if an export happens before the span
  /// closes; `flushed_index` points at that record in `finished` (SIZE_MAX
  /// when the span has not been flushed).
  struct OpenEntry {
    uint32_t span_id = 0;
    std::string name;
    uint64_t start_us = 0;
    size_t flushed_index = SIZE_MAX;
  };

  struct ThreadLog {
    mutable std::mutex mutex;
    uint32_t thread_id = 0;
    std::vector<OpenEntry> open_stack;  ///< Open spans, bottom to top.
    std::vector<SpanRecord> finished;
    uint64_t dropped = 0;
  };

  /// This thread's log in this tracer, created on first use.
  ThreadLog* GetThreadLog();

  /// Returns (span_id, parent_id) for a span opening now on this thread.
  std::pair<uint32_t, uint32_t> OpenSpan(std::string_view name);
  void CloseSpan(std::string_view name, uint32_t span_id, uint32_t parent_id,
                 uint64_t start_us);

  std::atomic<bool> enabled_{true};
  /// Process-unique id: keys the per-thread log cache, so a new tracer
  /// reusing a destroyed tracer's address never inherits its logs.
  const uint64_t tracer_key_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint32_t> next_span_id_{1};
  std::atomic<uint32_t> next_thread_id_{0};

  mutable std::mutex logs_mutex_;
  std::vector<std::shared_ptr<ThreadLog>> logs_;
};

/// RAII phase marker: records a SpanRecord on the owning thread covering the
/// guarded scope. Nested TraceSpans on the same thread form a tree.
///
///   { TraceSpan span("join.pbsm/partition R"); ...work... }
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, Tracer* tracer = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  ///< Null when tracing was disabled at entry.
  std::string name_;
  uint64_t start_us_ = 0;
  uint32_t span_id_ = 0;
  uint32_t parent_id_ = 0;
};

}  // namespace pbsm

#endif  // PBSM_COMMON_TRACE_H_
