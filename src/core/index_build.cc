#include "core/index_build.h"

#include "geom/hilbert.h"
#include "storage/external_sort.h"
#include "storage/tuple.h"

namespace pbsm {

namespace {

/// A key-pointer tagged with its spatial sort key, the unit of the bulk
/// loader's external sort.
struct KeyedEntry {
  uint64_t key = 0;
  RTreeEntry entry;
};
static_assert(std::is_trivially_copyable_v<KeyedEntry>);

struct KeyedLess {
  bool operator()(const KeyedEntry& a, const KeyedEntry& b) const {
    return a.key < b.key;
  }
};

}  // namespace

Result<std::vector<RTreeEntry>> ExtractKeyPointers(const HeapFile& heap) {
  std::vector<RTreeEntry> entries;
  entries.reserve(heap.num_records());
  const Status s =
      heap.Scan([&](Oid oid, const char* data, size_t size) -> Status {
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        entries.push_back(RTreeEntry{tuple.geometry.Mbr(), oid.Encode()});
        return Status::OK();
      });
  if (!s.ok()) return s;
  return entries;
}

Result<RStarTree> BuildIndexByBulkLoad(BufferPool* pool,
                                       const JoinInput& input,
                                       const std::string& index_name,
                                       double fill_factor,
                                       size_t memory_budget,
                                       NodeLayout layout) {
  if (input.heap->num_records() == 0) {
    return RStarTree::BulkLoad(pool, index_name, {}, fill_factor, layout);
  }

  // The spatial sort key comes from the catalog universe (computed here if
  // the caller did not provide catalog statistics).
  Rect universe = input.info.universe;
  if (universe.empty()) {
    PBSM_RETURN_IF_ERROR(input.heap->Scan(
        [&](Oid, const char* data, size_t size) -> Status {
          PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
          universe.Expand(tuple.geometry.Mbr());
          return Status::OK();
        }));
  }
  const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kHilbert, universe);

  // Pass 1: is the relation already in spatial (Hilbert) order? Clustered
  // inputs are, and then the sort — the dominant bulk-load cost the paper
  // measures in Figure 10 — is skipped entirely.
  bool already_sorted = true;
  {
    uint64_t prev_key = 0;
    bool first = true;
    PBSM_RETURN_IF_ERROR(input.heap->Scan(
        [&](Oid, const char* data, size_t size) -> Status {
          PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
          const uint64_t key = curve.Key(tuple.geometry.Mbr());
          if (!first && key < prev_key) already_sorted = false;
          prev_key = key;
          first = false;
          return Status::OK();
        }));
  }

  if (already_sorted) {
    // Pass 2a: stream the heap straight into the bottom-up packer.
    HeapFile::Cursor cursor = input.heap->NewCursor();
    std::string record;
    return RStarTree::BulkLoadSorted(
        pool, index_name,
        [&](RTreeEntry* out) -> Result<bool> {
          Oid oid;
          PBSM_ASSIGN_OR_RETURN(const bool has, cursor.Next(&oid, &record));
          if (!has) return false;
          PBSM_ASSIGN_OR_RETURN(const Tuple tuple,
                                Tuple::Parse(record.data(), record.size()));
          *out = RTreeEntry{tuple.geometry.Mbr(), oid.Encode()};
          return true;
        },
        fill_factor, layout);
  }

  // Pass 2b: external sort of the key-pointers under the operator's memory
  // budget (spilling runs through the buffer pool, as Paradise did), then
  // stream the sorted run into the packer.
  ExternalSorter<KeyedEntry, KeyedLess> sorter(pool, memory_budget,
                                               KeyedLess{});
  PBSM_RETURN_IF_ERROR(input.heap->Scan(
      [&](Oid oid, const char* data, size_t size) -> Status {
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        KeyedEntry keyed;
        keyed.key = curve.Key(tuple.geometry.Mbr());
        keyed.entry = RTreeEntry{tuple.geometry.Mbr(), oid.Encode()};
        return sorter.Add(keyed);
      }));
  PBSM_RETURN_IF_ERROR(sorter.Finish());
  return RStarTree::BulkLoadSorted(
      pool, index_name,
      [&sorter](RTreeEntry* out) -> Result<bool> {
        KeyedEntry keyed;
        PBSM_ASSIGN_OR_RETURN(const bool has, sorter.Next(&keyed));
        if (!has) return false;
        *out = keyed.entry;
        return true;
      },
      fill_factor, layout);
}

Result<RStarTree> BuildIndexByInserts(BufferPool* pool,
                                      const JoinInput& input,
                                      const std::string& index_name) {
  PBSM_ASSIGN_OR_RETURN(RStarTree tree, RStarTree::Create(pool, index_name));
  PBSM_RETURN_IF_ERROR(input.heap->Scan(
      [&](Oid oid, const char* data, size_t size) -> Status {
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        return tree.Insert(tuple.geometry.Mbr(), oid.Encode());
      }));
  return tree;
}

}  // namespace pbsm
