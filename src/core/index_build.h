#ifndef PBSM_CORE_INDEX_BUILD_H_
#define PBSM_CORE_INDEX_BUILD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/join_options.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// Scans a relation and extracts one (MBR, OID) key-pointer per tuple —
/// the first stage of bulk loading and of the PBSM filter step.
Result<std::vector<RTreeEntry>> ExtractKeyPointers(const HeapFile& heap);

/// Builds an R*-tree on `input` using the Paradise bulk-loading mechanism
/// (§4.1): extract key-pointers, spatially sort by the Hilbert value of the
/// MBR center, pack bottom-up. The sort is an external sort bounded by
/// `memory_budget` (runs spill through the buffer pool); when the relation
/// is already in Hilbert order — a clustered load — the sort is skipped,
/// which is the clustering saving of Figure 10. `layout` selects the
/// in-memory node representation (rtree/node_layout.h).
Result<RStarTree> BuildIndexByBulkLoad(BufferPool* pool,
                                       const JoinInput& input,
                                       const std::string& index_name,
                                       double fill_factor,
                                       size_t memory_budget = 64ull << 20,
                                       NodeLayout layout = NodeLayout::kAuto);

/// Builds an R*-tree on `input` with one Insert per tuple — the expensive
/// construction path the paper contrasts with bulk loading (§1).
Result<RStarTree> BuildIndexByInserts(BufferPool* pool,
                                      const JoinInput& input,
                                      const std::string& index_name);

}  // namespace pbsm

#endif  // PBSM_CORE_INDEX_BUILD_H_
