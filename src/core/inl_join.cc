#include "core/join_methods_internal.h"

#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/index_build.h"
#include "core/sweep_kernel.h"
#include "storage/tuple.h"

namespace pbsm {

Result<JoinCostBreakdown> IndexedNestedLoopsJoin(
    BufferPool* pool, const JoinInput& indexed, const JoinInput& probing,
    SpatialPredicate pred, const JoinOptions& opts, const ResultSink& sink,
    const RStarTree* preexisting_index, bool indexed_is_left) {
  JoinCostBreakdown breakdown;
  DiskManager* disk = pool->disk();

  std::optional<RStarTree> built;
  const RStarTree* index = preexisting_index;
  if (index == nullptr) {
    const std::string phase = "build index " + indexed.info.name;
    PhaseCost& cost = breakdown.AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_ASSIGN_OR_RETURN(
        RStarTree tree,
        BuildIndexByBulkLoad(pool, indexed,
                             "inl_idx_" + indexed.info.name + ".rtree",
                             opts.index_fill_factor,
                             opts.memory_budget_bytes, opts.rtree_layout));
    built.emplace(std::move(tree));
    index = &*built;
  }

  {
    PhaseCost& cost = breakdown.AddPhase("probe index");
    PhaseTimer timer(disk, &cost, "probe index");
    // INL evaluates the exact predicate inline, so its probe loop is also
    // its refinement step for true/false-positive accounting.
    static Counter* const true_positives =
        MetricsRegistry::Global().GetCounter("join.refine.true_positives");
    static Counter* const false_positives =
        MetricsRegistry::Global().GetCounter("join.refine.false_positives");
    uint64_t tp = 0, fp = 0;
    std::vector<uint64_t> hits;
    std::string record;
    const Status scan_status = probing.heap->Scan(
        [&](Oid s_oid, const char* data, size_t size) -> Status {
          PBSM_ASSIGN_OR_RETURN(const Tuple s_tuple,
                                Tuple::Parse(data, size));
          hits.clear();
          PBSM_RETURN_IF_ERROR(
              index->WindowQuery(s_tuple.geometry.Mbr(), &hits, opts.simd));
          breakdown.candidates += hits.size();
          for (const uint64_t r_encoded : hits) {
            // Fetch the matching indexed tuple and check the predicate
            // right away (no separate refinement pass).
            PBSM_RETURN_IF_ERROR(
                indexed.heap->Fetch(Oid::Decode(r_encoded), &record));
            PBSM_ASSIGN_OR_RETURN(const Tuple r_tuple,
                                  Tuple::Parse(record.data(), record.size()));
            const bool matches =
                indexed_is_left
                    ? EvaluatePredicate(pred, r_tuple.geometry,
                                        s_tuple.geometry,
                                        opts.refinement_mode)
                    : EvaluatePredicate(pred, s_tuple.geometry,
                                        r_tuple.geometry,
                                        opts.refinement_mode);
            if (matches) {
              ++tp;
              ++breakdown.results;
              if (sink) sink(Oid::Decode(r_encoded), s_oid);
            } else {
              ++fp;
            }
          }
          return Status::OK();
        });
    true_positives->Add(tp);
    false_positives->Add(fp);
    PBSM_RETURN_IF_ERROR(scan_status);
  }

  if (built.has_value()) {
    PBSM_RETURN_IF_ERROR(pool->DropFile(built->file()));
  }
  return breakdown;
}

Status InlFilter(BufferPool* pool, const JoinInput& indexed,
                 const JoinInput& probing, const JoinOptions& opts,
                 CandidateSorter* sorter, JoinCostBreakdown* breakdown,
                 const RStarTree* preexisting_index, bool emit_indexed_first) {
  DiskManager* disk = pool->disk();

  std::optional<RStarTree> built;
  const RStarTree* index = preexisting_index;
  if (index == nullptr) {
    const std::string phase = "build index " + indexed.info.name;
    PhaseCost& cost = breakdown->AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_ASSIGN_OR_RETURN(
        RStarTree tree,
        BuildIndexByBulkLoad(pool, indexed,
                             "inl_idx_" + indexed.info.name + ".rtree",
                             opts.index_fill_factor,
                             opts.memory_budget_bytes, opts.rtree_layout));
    built.emplace(std::move(tree));
    index = &*built;
  }

  {
    PhaseCost& cost = breakdown->AddPhase("probe index");
    PhaseTimer timer(disk, &cost, "probe index");
    // Unlike the monolithic INL, probe hits become candidate pairs for a
    // downstream refinement operator instead of being tested inline — the
    // indexed tuples are never fetched here.
    Status append_status;
    std::vector<OidPair> buf;
    buf.reserve(kPairBufferCap);
    auto flush = [&] {
      if (buf.empty() || !append_status.ok()) return;
      append_status = sorter->AddBatch(buf.data(), buf.size());
      buf.clear();
    };
    std::vector<uint64_t> hits;
    const Status scan_status = probing.heap->Scan(
        [&](Oid p_oid, const char* data, size_t size) -> Status {
          if (opts.cancel != nullptr && opts.cancel->is_cancelled()) {
            Tracer::Global().FlushOpenSpans();
            return opts.cancel->CancellationStatus();
          }
          PBSM_ASSIGN_OR_RETURN(const Tuple p_tuple,
                                Tuple::Parse(data, size));
          hits.clear();
          PBSM_RETURN_IF_ERROR(
              index->WindowQuery(p_tuple.geometry.Mbr(), &hits, opts.simd));
          breakdown->candidates += hits.size();
          for (const uint64_t i_encoded : hits) {
            buf.push_back(emit_indexed_first
                              ? OidPair{i_encoded, p_oid.Encode()}
                              : OidPair{p_oid.Encode(), i_encoded});
            if (buf.size() == kPairBufferCap) flush();
          }
          return append_status;
        });
    flush();
    PBSM_RETURN_IF_ERROR(scan_status);
    PBSM_RETURN_IF_ERROR(append_status);
  }

  if (built.has_value()) {
    PBSM_RETURN_IF_ERROR(pool->DropFile(built->file()));
  }
  return Status::OK();
}

}  // namespace pbsm
