#ifndef PBSM_CORE_INL_JOIN_H_
#define PBSM_CORE_INL_JOIN_H_

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// Indexed nested loops spatial join (the paper's §4.1).
///
/// `indexed` is the input carrying (or receiving) the R*-tree — the paper
/// always indexes the smaller input when building from scratch; `probing`
/// is scanned and probes the index tuple by tuple. For every probe hit the
/// matching indexed tuple is fetched (a random I/O unless cached) and the
/// exact predicate is evaluated immediately — INL has no separate
/// refinement pass.
///
/// When `preexisting_index` is non-null the build phase is skipped
/// (Figures 14/15's INL-1-* variants); otherwise the index is bulk loaded
/// and its cost appears as the "build index" component.
///
/// Predicate orientation: the join condition is written pred(L, R) over
/// logical inputs; because INL may index either physical input, the caller
/// states which side the indexed input plays. With `indexed_is_left` (the
/// default) the exact test runs as pred(indexed, probing); otherwise as
/// pred(probing, indexed). Symmetric predicates (kIntersects) are
/// unaffected; containment joins must set this correctly.
///
/// Result pairs are emitted as (indexed, probing) regardless.
/// Deprecated for new callers: use SpatialJoin() in core/spatial_join.h,
/// which wraps this entry point behind the unified JoinSpec/JoinResult
/// API and adds tracing + metrics capture.
Result<JoinCostBreakdown> IndexedNestedLoopsJoin(
    BufferPool* pool, const JoinInput& indexed, const JoinInput& probing,
    SpatialPredicate pred, const JoinOptions& opts,
    const ResultSink& sink = {}, const RStarTree* preexisting_index = nullptr,
    bool indexed_is_left = true);

}  // namespace pbsm

#endif  // PBSM_CORE_INL_JOIN_H_
