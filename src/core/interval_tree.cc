#include "core/interval_tree.h"

#include <algorithm>

namespace pbsm {

double IntervalTree::MaxHi(const Node* n) {
  return n == nullptr ? -1e300 : n->max_hi;
}

void IntervalTree::Pull(Node* n) {
  n->max_hi = std::max({n->hi, MaxHi(n->left), MaxHi(n->right)});
}

IntervalTree::Node* IntervalTree::Merge(Node* a, Node* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->priority > b->priority) {
    a->right = Merge(a->right, b);
    Pull(a);
    return a;
  }
  b->left = Merge(a, b->left);
  Pull(b);
  return b;
}

void IntervalTree::Split(Node* n, double klo, uint64_t khandle, Node** left,
                         Node** right) {
  if (n == nullptr) {
    *left = nullptr;
    *right = nullptr;
    return;
  }
  const bool goes_left =
      n->lo < klo || (n->lo == klo && n->handle < khandle);
  if (goes_left) {
    Split(n->right, klo, khandle, &n->right, right);
    *left = n;
    Pull(n);
  } else {
    Split(n->left, klo, khandle, left, &n->left);
    *right = n;
    Pull(n);
  }
}

void IntervalTree::FreeRec(Node* n) {
  if (n == nullptr) return;
  FreeRec(n->left);
  FreeRec(n->right);
  delete n;
}

void IntervalTree::Clear() {
  FreeRec(root_);
  root_ = nullptr;
  size_ = 0;
  handle_keys_.clear();
}

uint64_t IntervalTree::Insert(double lo, double hi, uint64_t payload) {
  // xorshift32 priorities keep the treap balanced in expectation.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 17;
  rng_state_ ^= rng_state_ << 5;

  Node* n = new Node;
  n->lo = lo;
  n->hi = hi;
  n->max_hi = hi;
  n->payload = payload;
  n->handle = next_handle_++;
  n->priority = rng_state_;

  Node *left, *right;
  Split(root_, lo, n->handle, &left, &right);
  root_ = Merge(Merge(left, n), right);
  handle_keys_.emplace(n->handle, lo);
  ++size_;
  return n->handle;
}

bool IntervalTree::Remove(uint64_t handle) {
  auto it = handle_keys_.find(handle);
  if (it == handle_keys_.end()) return false;
  const double lo = it->second;
  handle_keys_.erase(it);

  Node *left, *mid, *right;
  Split(root_, lo, handle, &left, &mid);
  Split(mid, lo, handle + 1, &mid, &right);
  // `mid` is now exactly the node with key (lo, handle).
  if (mid != nullptr) {
    delete mid;
    --size_;
  }
  root_ = Merge(left, right);
  return mid != nullptr;
}

}  // namespace pbsm
