#ifndef PBSM_CORE_INTERVAL_TREE_H_
#define PBSM_CORE_INTERVAL_TREE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>

namespace pbsm {

/// Dynamic set of closed 1-D intervals supporting O(log n + k) overlap
/// queries — the interval tree the paper's §3.1 footnote suggests for
/// accelerating the y-overlap test during the plane sweep.
///
/// Implemented as a treap keyed on (lo, sequence number) with a max-hi
/// augmentation. Each interval carries an opaque 64-bit payload.
class IntervalTree {
 public:
  IntervalTree() = default;
  ~IntervalTree() { Clear(); }
  IntervalTree(const IntervalTree&) = delete;
  IntervalTree& operator=(const IntervalTree&) = delete;

  /// Inserts [lo, hi] with `payload`; returns a handle usable with Remove.
  uint64_t Insert(double lo, double hi, uint64_t payload);

  /// Removes the interval previously returned by Insert. Returns false if
  /// the handle is unknown (already removed).
  bool Remove(uint64_t handle);

  /// Invokes `fn(payload)` for every stored interval overlapping [lo, hi]
  /// (closed-boundary semantics: touching intervals overlap).
  template <typename Fn>
  void QueryOverlaps(double lo, double hi, Fn fn) const {
    QueryRec(root_, lo, hi, fn);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

 private:
  struct Node {
    double lo;
    double hi;
    double max_hi;  // Max hi in this subtree.
    uint64_t payload;
    uint64_t handle;
    uint32_t priority;
    Node* left = nullptr;
    Node* right = nullptr;
  };

  static double MaxHi(const Node* n);
  static void Pull(Node* n);
  static Node* Merge(Node* a, Node* b);
  /// Splits by (lo, handle) key: keys < (klo, khandle) go left.
  static void Split(Node* n, double klo, uint64_t khandle, Node** left,
                    Node** right);
  static void FreeRec(Node* n);

  template <typename Fn>
  static void QueryRec(const Node* n, double lo, double hi, Fn fn) {
    if (n == nullptr || n->max_hi < lo) return;
    QueryRec(n->left, lo, hi, fn);
    if (n->lo <= hi && lo <= n->hi) fn(n->payload);
    // Right subtree keys have lo >= n->lo; prune when past the query.
    if (n->lo <= hi) QueryRec(n->right, lo, hi, fn);
  }

  Node* root_ = nullptr;
  size_t size_ = 0;
  uint64_t next_handle_ = 1;
  uint32_t rng_state_ = 0x9e3779b9u;
  // handle -> lo key, needed to locate a node for removal.
  std::unordered_map<uint64_t, double> handle_keys_;
};

}  // namespace pbsm

#endif  // PBSM_CORE_INTERVAL_TREE_H_
