#ifndef PBSM_CORE_JOIN_COST_H_
#define PBSM_CORE_JOIN_COST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "storage/disk_manager.h"

namespace pbsm {

/// Cost of one join component (the rows of the paper's Table 4 and the bar
/// segments of Figures 10-12).
///
/// `cpu_seconds` is measured wall time of the component; because the working
/// files sit in the OS page cache, measured time is effectively pure CPU.
/// `io` holds the physical page I/O the component issued, and
/// `io.modeled_seconds` converts those I/Os to 1996-disk seconds. The
/// paper-comparable total cost of a component is cpu + modeled I/O.
struct PhaseCost {
  double cpu_seconds = 0.0;
  IoStats io;

  double io_seconds() const { return io.modeled_seconds; }
  double total_seconds() const { return cpu_seconds + io.modeled_seconds; }
  /// Table 4's "I/O contribution" column.
  double io_fraction() const {
    const double t = total_seconds();
    return t == 0.0 ? 0.0 : io.modeled_seconds / t;
  }

  PhaseCost& operator+=(const PhaseCost& o) {
    cpu_seconds += o.cpu_seconds;
    io.reads += o.io.reads;
    io.writes += o.io.writes;
    io.sequential_reads += o.io.sequential_reads;
    io.sequential_writes += o.io.sequential_writes;
    io.modeled_seconds += o.io.modeled_seconds;
    return *this;
  }
};

/// RAII capture of one component's cost: wall time plus the DiskManager
/// stats delta over the guarded scope, accumulated into `*cost`. When a
/// `span_name` is given the scope is also recorded as a TraceSpan in the
/// global tracer, so every join phase shows up in the span tree / Chrome
/// trace without separate instrumentation.
class PhaseTimer {
 public:
  PhaseTimer(DiskManager* disk, PhaseCost* cost, std::string_view span_name)
      : disk_(disk), cost_(cost), start_io_(disk->stats()), span_(span_name) {}
  PhaseTimer(DiskManager* disk, PhaseCost* cost)
      : disk_(disk), cost_(cost), start_io_(disk->stats()), span_("phase") {}
  ~PhaseTimer() {
    cost_->cpu_seconds += watch_.ElapsedSeconds();
    const IoStats delta = disk_->stats() - start_io_;
    cost_->io.reads += delta.reads;
    cost_->io.writes += delta.writes;
    cost_->io.sequential_reads += delta.sequential_reads;
    cost_->io.sequential_writes += delta.sequential_writes;
    cost_->io.modeled_seconds += delta.modeled_seconds;
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  DiskManager* disk_;
  PhaseCost* cost_;
  IoStats start_io_;
  TraceSpan span_;
  Stopwatch watch_;
};

/// Per-component cost breakdown plus filter/refinement counters for one
/// join execution.
struct JoinCostBreakdown {
  /// Ordered (component name, cost) pairs, e.g. ("partition R", ...).
  std::vector<std::pair<std::string, PhaseCost>> phases;

  uint64_t candidates = 0;          ///< Filter-step output pairs (with dups).
  uint64_t duplicates_removed = 0;  ///< Dropped by the refinement sort.
  uint64_t results = 0;             ///< Pairs satisfying the exact predicate.
  uint32_t num_partitions = 0;      ///< PBSM only.
  uint32_t num_tiles = 0;           ///< PBSM only.
  uint64_t replicated = 0;          ///< Extra key-pointer copies (PBSM only).
  uint64_t repartitioned_pairs = 0; ///< §3.5 overflow handling activations.

  PhaseCost& AddPhase(const std::string& name) {
    phases.emplace_back(name, PhaseCost());
    return phases.back().second;
  }

  PhaseCost Total() const {
    PhaseCost t;
    for (const auto& [name, cost] : phases) t += cost;
    return t;
  }
};

}  // namespace pbsm

#endif  // PBSM_CORE_JOIN_COST_H_
