#ifndef PBSM_CORE_JOIN_METHODS_INTERNAL_H_
#define PBSM_CORE_JOIN_METHODS_INTERNAL_H_

// Implementation-internal entry points of the six join algorithms. These
// are the functions the SpatialJoin facade (core/spatial_join.h) dispatches
// to; they carry no tracing, metrics capture, or orientation handling of
// their own. External callers — tests, benches, examples, the service —
// go through the facade; only src/core/*.cc and the operator engine in
// src/exec/*.cc include this header.
//
// Each method exists in two granularities: the XxxJoin functions run
// filter + refinement end to end (the legacy monolithic entry points), and
// the XxxFilter functions run the filter step only, appending candidate
// OID pairs to a caller-owned CandidateSorter — the form the exec layer's
// FilterJoinOp wraps so refinement can live behind its own operator.

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "core/parallel_stats.h"
#include "core/refinement.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// The Partition Based Spatial-Merge join (the paper's §3).
///
/// Filter step: both inputs are scanned once; each tuple's key-pointer
/// (<MBR, OID>) is routed by the tiled spatial partitioning function into
/// one or more of P on-disk partitions (P from Equation 1 unless
/// overridden). Each partition pair is then merged in memory with a
/// plane-sweep rectangle join, producing candidate OID pairs.
///
/// Refinement step: candidates are sorted on (OID_R, OID_S) with duplicate
/// elimination, tuples are fetched block-wise (R in physical order, S
/// sequentially per block) and the candidate is settled exactly or through
/// the adaptive cell-cover engine (opts.refine).
///
/// Partition pairs that exceed the memory budget are handled per §3.5:
/// dynamically repartitioned with a finer tile grid (when
/// opts.dynamic_repartition, an extension over the paper's implementation),
/// falling back to chunked sweeps with S re-reads once the recursion depth
/// is exhausted.
///
/// Returns the per-component cost breakdown; result pairs go to `sink`
/// (which may be empty when only counts are needed).
Result<JoinCostBreakdown> PbsmJoin(BufferPool* pool, const JoinInput& r,
                                   const JoinInput& s, SpatialPredicate pred,
                                   const JoinOptions& opts,
                                   const ResultSink& sink = {});

/// Real shared-memory parallel PBSM join (the threaded counterpart of the
/// cost-model-only SimulateParallelPbsm). The phase structure depends on
/// opts.dedup_mode.
///
/// kTwoLayer (default; duplicate-free, see core/two_layer_filter.h):
///  * "partition inputs": page ranges of both inputs split across scan
///    tasks, each replicating tuples into per-partition buffers as
///    corner-classed tile copies (no locks);
///  * "filter partitions": each partition is an independent task running
///    the class-pair mini-joins — globally, every candidate pair is
///    emitted exactly once, so each task just sorts its own run into the
///    executing worker's arena;
///  * "refinement": each non-empty partition run is a shard, refined
///    concurrently. No merge phase exists in this mode.
///
/// kMerge (the paper's replicate-then-dedup scheme):
///  * "partition inputs": as above, but with plain key-pointer copies;
///  * "sweep partitions": each partition pair is an independent task —
///    gather the thread-local buffers for that partition, plane-sweep them
///    (recursive in-memory repartition on budget overflow, §3.5), sort the
///    emitted candidates;
///  * "merge candidates": the sorted per-partition candidate runs are
///    k-way merged with duplicate elimination (serial);
///  * "refinement": the de-duplicated array is sharded on OID_R boundaries
///    and refined concurrently (each shard fetches disjoint R tuples
///    through the now thread-safe buffer pool).
///
/// Produces exactly the de-duplicated result pairs of the serial PbsmJoin.
/// `sink` may be called concurrently from worker threads (calls are
/// serialised internally, but arrival order is nondeterministic).
///
/// In the returned breakdown, each phase's cpu_seconds is the phase's
/// *wall-clock* time (workers run concurrently) and its io counters are the
/// aggregate physical I/O of the phase; per-task busy times live in
/// `*stats` (optional).
Result<JoinCostBreakdown> ParallelPbsmJoin(BufferPool* pool,
                                           const JoinInput& r,
                                           const JoinInput& s,
                                           SpatialPredicate pred,
                                           const JoinOptions& opts,
                                           const ResultSink& sink = {},
                                           ParallelJoinStats* stats = nullptr);

/// Indexed nested loops spatial join (the paper's §4.1).
///
/// `indexed` is the input carrying (or receiving) the R*-tree — the paper
/// always indexes the smaller input when building from scratch; `probing`
/// is scanned and probes the index tuple by tuple. For every probe hit the
/// matching indexed tuple is fetched (a random I/O unless cached) and the
/// exact predicate is evaluated immediately — INL has no separate
/// refinement pass (and therefore ignores opts.refine).
///
/// When `preexisting_index` is non-null the build phase is skipped
/// (Figures 14/15's INL-1-* variants); otherwise the index is bulk loaded
/// and its cost appears as the "build index" component.
///
/// Predicate orientation: the join condition is written pred(L, R) over
/// logical inputs; because INL may index either physical input, the caller
/// states which side the indexed input plays. With `indexed_is_left` (the
/// default) the exact test runs as pred(indexed, probing); otherwise as
/// pred(probing, indexed). Symmetric predicates (kIntersects) are
/// unaffected; containment joins must set this correctly.
///
/// Result pairs are emitted as (indexed, probing) regardless.
Result<JoinCostBreakdown> IndexedNestedLoopsJoin(
    BufferPool* pool, const JoinInput& indexed, const JoinInput& probing,
    SpatialPredicate pred, const JoinOptions& opts,
    const ResultSink& sink = {}, const RStarTree* preexisting_index = nullptr,
    bool indexed_is_left = true);

/// R-tree based spatial join (Brinkhoff, Kriegel, Seeger — SIGMOD '93),
/// the paper's §4.2 baseline.
///
/// Bulk loads an R*-tree on each input that lacks one (pass non-null
/// `r_index`/`s_index` for the Figures 14/15 pre-existing-index variants),
/// then performs a synchronized depth-first traversal of the two trees:
/// at each step the entries of one R node and one S node are joined with
/// the same plane-sweep technique PBSM uses, and matching child pairs are
/// traversed in tandem. Leaf-level matches become candidate OID pairs,
/// which run through the shared refinement step (§3.2 semantics, identical
/// to PBSM's).
Result<JoinCostBreakdown> RtreeJoin(BufferPool* pool, const JoinInput& r,
                                    const JoinInput& s, SpatialPredicate pred,
                                    const JoinOptions& opts,
                                    const ResultSink& sink = {},
                                    const RStarTree* r_index = nullptr,
                                    const RStarTree* s_index = nullptr);

/// Options for the spatial hash join (the facade builds one from
/// JoinSpec::hash).
struct SpatialHashJoinOptions {
  /// Number of buckets; 0 derives it from Equation 1 like PBSM.
  uint32_t num_buckets = 0;
  /// R tuples sampled to seed the bucket extents (fraction of |R|).
  double sample_fraction = 0.01;
  JoinOptions join;
};

/// Spatial hash join (Lo & Ravishankar, SIGMOD '96) — the concurrent
/// no-index algorithm the paper's §2 and Table 1 discuss, implemented as a
/// fourth join for comparison.
///
/// Where PBSM partitions *both* inputs with one space-regular tiling and
/// replicates any object spanning tiles, the spatial hash join is
/// asymmetric:
///  1. a sample of R seeds the bucket extents (here: a Hilbert-sorted
///     sample cut into equal runs, each run's cover is one seed — standing
///     in for LR96's seeded-tree levels);
///  2. every R tuple goes to exactly ONE bucket — the one whose extent
///     needs the least enlargement (the bucket extent grows to cover it),
///     so R is never replicated;
///  3. every S tuple is replicated to ALL buckets whose (final) extents
///     its MBR overlaps; S tuples overlapping no bucket are dropped by the
///     filter (they cannot join);
///  4. each bucket pair is plane-sweep joined and candidates run through
///     the shared refinement (LR96 itself "ignores the very expensive
///     refinement step" — the paper's words; here it is included so totals
///     are comparable).
Result<JoinCostBreakdown> SpatialHashJoin(
    BufferPool* pool, const JoinInput& r, const JoinInput& s,
    SpatialPredicate pred, const SpatialHashJoinOptions& options,
    const ResultSink& sink = {});

/// Options for the z-value transform join (the facade builds one from
/// JoinSpec::zorder).
struct ZOrderJoinOptions {
  /// Quadtree depth: the universe is a 2^max_level x 2^max_level pixel
  /// grid. Orenstein's grid-choice sensitivity ([Ore89], discussed in the
  /// paper's §2): finer grids filter better but need more z-elements per
  /// object.
  uint32_t max_level = 8;
  /// Cap on quadtree cells approximating one MBR (the space/precision
  /// knob). The decomposition stops refining once it would exceed this.
  uint32_t max_cells_per_object = 4;

  JoinOptions join;  ///< Memory budget, refinement mode, etc.
};

/// Orenstein-style z-value spatial join ([Ore86, OM88] — the
/// "transform the approximation into another dimension" family of the
/// paper's Table 1, built as an additional comparison baseline).
///
/// Filter: each tuple's MBR is approximated by up to
/// `max_cells_per_object` quadtree cells; each cell is a z-order interval
/// [lo, hi). Both inputs become z-interval lists, externally sorted by
/// (lo asc, hi desc). Because quadtree intervals are either nested or
/// disjoint, a single merge pass with one containment stack per input
/// finds every R/S pair with overlapping intervals — the 1-D "merge" the
/// transform approach buys. The filter never misses a truly intersecting
/// pair (cell covers are supersets of the MBRs) but produces more false
/// positives than the MBR filter, which is the drawback the paper cites.
///
/// Refinement: identical to PBSM's (shared RefineCandidates), including
/// duplicate elimination — one object pair can meet through several cells.
Result<JoinCostBreakdown> ZOrderJoin(BufferPool* pool, const JoinInput& r,
                                     const JoinInput& s,
                                     SpatialPredicate pred,
                                     const ZOrderJoinOptions& options,
                                     const ResultSink& sink = {});

// --- Filter-only entry points (candidate producers) ---
//
// Each runs its method's filter phases (recorded into `*breakdown` under
// the same phase names the monolithic function uses) and appends candidate
// OID pairs to `*sorter` without calling Finish() on it. Pairs are in the
// caller's (r, s) orientation. Cancellation is polled at the same points
// as the monolithic paths.

/// PBSM filter: partition both inputs, merge each partition pair with the
/// plane sweep (§3.1/§3.4/§3.5). Phases "partition <r>", "partition <s>",
/// "merge partitions".
Status PbsmFilter(BufferPool* pool, const JoinInput& r, const JoinInput& s,
                  const JoinOptions& opts, CandidateSorter* sorter,
                  JoinCostBreakdown* breakdown);

/// BKS93 tree-join filter: bulk loads missing indexes, runs the
/// synchronized traversal, and drops any index it built before returning.
/// Phases "build index <name>" (per missing side), "join trees".
Status RtreeFilter(BufferPool* pool, const JoinInput& r, const JoinInput& s,
                   const JoinOptions& opts, CandidateSorter* sorter,
                   JoinCostBreakdown* breakdown,
                   const RStarTree* r_index = nullptr,
                   const RStarTree* s_index = nullptr);

/// INL filter: builds (or reuses) the index over `indexed`, probes it with
/// every `probing` tuple, and emits each window-query hit as a candidate
/// pair — WITHOUT the inline exact test the monolithic INL performs, so
/// the exec layer can refine behind the operator boundary. Pairs are
/// emitted as (indexed, probing) when `emit_indexed_first`, else flipped —
/// the caller passes the flag restoring its own (r, s) orientation. Any
/// index built here is dropped before returning. Phases
/// "build index <name>" (when building), "probe index".
Status InlFilter(BufferPool* pool, const JoinInput& indexed,
                 const JoinInput& probing, const JoinOptions& opts,
                 CandidateSorter* sorter, JoinCostBreakdown* breakdown,
                 const RStarTree* preexisting_index = nullptr,
                 bool emit_indexed_first = true);

/// Spatial hash filter (LR96): sample R, build bucket extents, partition
/// both inputs, sweep each bucket pair. Phases "sample <r>",
/// "partition <r>", "partition <s>", "merge buckets".
Status SpatialHashFilter(BufferPool* pool, const JoinInput& r,
                         const JoinInput& s,
                         const SpatialHashJoinOptions& options,
                         CandidateSorter* sorter,
                         JoinCostBreakdown* breakdown);

/// Z-order filter (Ore86/OM88): quadtree-decompose both inputs into sorted
/// z-interval lists, merge with containment stacks. Phases
/// "transform <r>", "transform <s>", "merge z-lists".
Status ZOrderFilter(BufferPool* pool, const JoinInput& r, const JoinInput& s,
                    const ZOrderJoinOptions& options, CandidateSorter* sorter,
                    JoinCostBreakdown* breakdown);

}  // namespace pbsm

#endif  // PBSM_CORE_JOIN_METHODS_INTERNAL_H_
