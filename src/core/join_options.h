#ifndef PBSM_CORE_JOIN_OPTIONS_H_
#define PBSM_CORE_JOIN_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/canceller.h"
#include "common/logging.h"
#include "core/plane_sweep_join.h"
#include "core/refinement_engine.h"
#include "core/spatial_partitioner.h"
#include "geom/predicates.h"
#include "rtree/node_layout.h"
#include "storage/catalog.h"
#include "storage/heap_file.h"

namespace pbsm {

/// Exact join predicate evaluated by the refinement step.
enum class SpatialPredicate {
  kIntersects,  ///< R.geometry shares at least one point with S.geometry.
  kContains,    ///< R.geometry (a polygon) fully contains S.geometry.
};

/// Receives every result pair (after refinement). May be empty when the
/// caller only needs counts.
using ResultSink = std::function<void(Oid r, Oid s)>;

/// One join input: a stored relation plus its catalog entry.
struct JoinInput {
  const HeapFile* heap = nullptr;
  RelationInfo info;
};

/// Knobs shared by all three join algorithms.
struct JoinOptions {
  /// Operator memory budget (Equation 1's M and the refinement block size).
  size_t memory_budget_bytes = 4ull << 20;

  // --- PBSM filter step (§3.1, §3.4) ---
  uint32_t num_tiles = 1024;  ///< Requested NT (the paper's default).
  TileMapping mapping = TileMapping::kHash;
  SweepAlgorithm sweep = SweepAlgorithm::kForwardSweep;
  /// Filter-kernel selection for plane sweeps and R-tree node scans. kAuto
  /// consults the PBSM_SIMD environment variable, then CPUID.
  SimdMode simd = SimdMode::kAuto;
  /// 0 = use Equation 1; otherwise forces the partition count.
  uint32_t num_partitions_override = 0;
  /// How pbsm/parallel_pbsm avoid emitting replicated candidates twice.
  /// kTwoLayer (default) tags tile copies with corner classes and runs
  /// duplicate-free per-tile mini-joins — no merge-dedup stage at all.
  /// kMerge is the paper's replicate-then-merge-dedup scheme, kept as the
  /// differential reference; it is also the only mode with the §3.5
  /// dynamic repartition path (two-layer partitions are processed whole).
  /// Other join methods ignore this knob.
  DedupMode dedup_mode = DedupMode::kTwoLayer;

  // --- Partition overflow handling (§3.5; extension, on by default) ---
  bool dynamic_repartition = true;
  uint32_t max_repartition_depth = 3;

  // --- Refinement step (§3.2, §4.4) ---
  SegmentTestMode refinement_mode = SegmentTestMode::kPlaneSweep;
  /// BKSS94 MBR/MER pre-filter for containment refinement.
  bool use_mer_filter = false;
  /// Adaptive true-hit filtering (ROADMAP item 4, arXiv 1802.09488):
  /// refine.mode picks exact / adaptive / approximate, refine.grid_order
  /// the cell precision (0 = auto from catalog stats, or planner-chosen
  /// when the join runs through the service). INL evaluates its predicate
  /// inline during the index probe and ignores this knob.
  RefineOptions refine;

  // --- Index construction (INL / R-tree join) ---
  double index_fill_factor = 0.75;
  /// In-memory node layout of bulk-loaded trees (SoA ribbons / quantized
  /// prefilter lanes; see rtree/node_layout.h). kAuto consults the
  /// PBSM_RTREE_LAYOUT environment variable, defaulting to quantized.
  NodeLayout rtree_layout = NodeLayout::kAuto;

  // --- Parallel execution (ParallelPbsmJoin; serial joins ignore it) ---
  /// Worker threads for the parallel executor. 0 = hardware concurrency.
  uint32_t num_threads = 0;

  // --- Cooperative cancellation (service timeouts, client aborts) ---
  /// Observed-only: the join polls it at phase and block boundaries and
  /// returns its CancellationStatus() when tripped. The executors chain
  /// their internal error-propagation canceller below it, so one flag stops
  /// both serial loops and parallel sibling tasks. Must outlive the join.
  Canceller* cancel = nullptr;
};

/// Evaluates the exact predicate on two geometries. The switch is
/// exhaustive; an out-of-range enum value (memory corruption, an
/// unhandled new predicate) aborts instead of silently returning false and
/// dropping result pairs.
[[nodiscard]] inline bool EvaluatePredicate(SpatialPredicate pred,
                                            const Geometry& r,
                                            const Geometry& s,
                                            SegmentTestMode mode) {
  switch (pred) {
    case SpatialPredicate::kIntersects:
      return Intersects(r, s, mode);
    case SpatialPredicate::kContains:
      return Contains(r, s, mode);
  }
  PBSM_CHECK(false) << "unknown SpatialPredicate "
                    << static_cast<int>(pred);
}

}  // namespace pbsm

#endif  // PBSM_CORE_JOIN_OPTIONS_H_
