#ifndef PBSM_CORE_KEY_POINTER_H_
#define PBSM_CORE_KEY_POINTER_H_

#include <cstdint>

#include "geom/rect.h"

namespace pbsm {

/// The paper's key-pointer element: the MBR of a tuple's spatial join
/// attribute plus the tuple's OID. 40 bytes; the unit of all filter-step
/// I/O and of Equation 1's partition sizing.
struct KeyPointer {
  Rect mbr;
  uint64_t oid = 0;
};
static_assert(sizeof(KeyPointer) == 40);

/// A key-pointer copy tagged for two-layer duplicate-free filtering: the
/// tile the copy was replicated into plus its corner class within that
/// tile (a TileClass value; stored as uint32_t to keep this header free of
/// partitioner includes). Trivially copyable so it can ride the same spool
/// files as KeyPointer. The members keep KeyPointer's `.mbr`/`.oid` names
/// so SoaRects::Assign works on either element type.
struct ClassedKeyPointer {
  Rect mbr;
  uint64_t oid = 0;
  uint32_t tile = 0;
  uint32_t cls = 0;
};
static_assert(sizeof(ClassedKeyPointer) == 48);

/// A candidate produced by the filter step: OIDs of an R tuple and an S
/// tuple whose MBRs overlap.
struct OidPair {
  uint64_t r = 0;
  uint64_t s = 0;

  friend bool operator==(const OidPair& a, const OidPair& b) {
    return a.r == b.r && a.s == b.s;
  }
  /// Primary key OID_R, secondary OID_S — the refinement sort order (§3.2).
  friend bool operator<(const OidPair& a, const OidPair& b) {
    if (a.r != b.r) return a.r < b.r;
    return a.s < b.s;
  }
};
static_assert(sizeof(OidPair) == 16);

}  // namespace pbsm

#endif  // PBSM_CORE_KEY_POINTER_H_
