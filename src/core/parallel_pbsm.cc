#include "core/parallel_pbsm.h"

#include <cmath>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/plane_sweep_join.h"
#include "core/spatial_join.h"
#include "core/refinement.h"
#include "core/spatial_partitioner.h"
#include "core/sweep_kernel.h"
#include "storage/tuple.h"

namespace pbsm {

namespace {

/// Per-worker staging produced by declustering.
struct WorkerInput {
  /// Full-replication mode: a private heap per worker (tuple.id rewritten
  /// to the encoded OID in the *original* relation, for global dedup).
  std::optional<HeapFile> r_heap;
  std::optional<HeapFile> s_heap;
  /// MBR-only mode: key-pointers carrying original-relation OIDs.
  std::vector<KeyPointer> r_kps;
  std::vector<KeyPointer> s_kps;
};

/// Declusters one input across the workers.
Status Decluster(BufferPool* pool, const HeapFile& heap,
                 const SpatialPartitioner& part, bool full_objects,
                 bool is_r, std::vector<WorkerInput>* workers,
                 uint64_t* replicated) {
  std::vector<uint32_t> targets;
  return heap.Scan([&](Oid oid, const char* data, size_t size) -> Status {
    PBSM_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Parse(data, size));
    const Rect mbr = tuple.geometry.Mbr();
    targets.clear();
    part.PartitionsFor(mbr, &targets);
    *replicated += targets.size() - 1;
    if (full_objects) {
      // Carry the original identity for global result de-duplication.
      tuple.id = oid.Encode();
      const std::string record = tuple.Serialize();
      for (const uint32_t w : targets) {
        HeapFile& dest = is_r ? *(*workers)[w].r_heap : *(*workers)[w].s_heap;
        PBSM_ASSIGN_OR_RETURN(const Oid dest_oid, dest.Append(record));
        (void)dest_oid;
      }
    } else {
      const KeyPointer kp{mbr, oid.Encode()};
      for (const uint32_t w : targets) {
        auto& kps = is_r ? (*workers)[w].r_kps : (*workers)[w].s_kps;
        kps.push_back(kp);
      }
    }
    return Status::OK();
  });
}

}  // namespace

namespace {

double ScaledSeconds(const PhaseCost& cost, double cpu_scale) {
  return cost.cpu_seconds * cpu_scale + cost.io.modeled_seconds;
}

}  // namespace

double ParallelPbsmReport::ParallelSeconds(double cpu_scale) const {
  double slowest = 0.0;
  for (const WorkerReport& w : workers) {
    slowest = std::max(slowest, ScaledSeconds(w.cost, cpu_scale));
  }
  return ScaledSeconds(decluster_cost, cpu_scale) + slowest;
}

double ParallelPbsmReport::TotalWorkSeconds(double cpu_scale) const {
  double sum = ScaledSeconds(decluster_cost, cpu_scale);
  for (const WorkerReport& w : workers) {
    sum += ScaledSeconds(w.cost, cpu_scale);
  }
  return sum;
}

double ParallelPbsmReport::Speedup(double cpu_scale) const {
  const double p = ParallelSeconds(cpu_scale);
  return p == 0.0 ? 1.0 : TotalWorkSeconds(cpu_scale) / p;
}

double ParallelPbsmReport::WorkerCostCov(double cpu_scale) const {
  std::vector<double> costs;
  costs.reserve(workers.size());
  for (const WorkerReport& w : workers) {
    costs.push_back(ScaledSeconds(w.cost, cpu_scale));
  }
  return ComputeStats(costs).CoefficientOfVariation();
}

static Result<ParallelPbsmReport> SimulateParallelPbsmImpl(
    BufferPool* pool, const JoinInput& r, const JoinInput& s,
    SpatialPredicate pred, const ParallelPbsmOptions& options,
    const ResultSink& sink) {
  if (options.num_workers == 0) {
    return Status::InvalidArgument("need at least one worker");
  }
  const Rect universe = Rect::Union(r.info.universe, s.info.universe);
  if (universe.empty()) {
    return Status::InvalidArgument("join inputs have an empty universe");
  }
  DiskManager* disk = pool->disk();
  const uint32_t tiles =
      std::max(options.num_tiles, options.num_workers);
  const SpatialPartitioner decluster(universe, tiles, options.num_workers,
                                     options.mapping);

  ParallelPbsmReport report;
  report.workers.resize(options.num_workers);

  // ---- Decluster both inputs (a scan + split, as a parallel loader or
  // dynamic redistribution would do). ----
  std::vector<WorkerInput> inputs(options.num_workers);
  {
    PhaseTimer timer(disk, &report.decluster_cost);
    if (options.replicate_full_objects) {
      for (uint32_t w = 0; w < options.num_workers; ++w) {
        PBSM_ASSIGN_OR_RETURN(
            HeapFile rh,
            HeapFile::Create(pool, "pw_r_" + std::to_string(w)));
        PBSM_ASSIGN_OR_RETURN(
            HeapFile sh,
            HeapFile::Create(pool, "pw_s_" + std::to_string(w)));
        inputs[w].r_heap.emplace(std::move(rh));
        inputs[w].s_heap.emplace(std::move(sh));
      }
    }
    PBSM_RETURN_IF_ERROR(Decluster(pool, *r.heap, decluster,
                                   options.replicate_full_objects,
                                   /*is_r=*/true, &inputs,
                                   &report.replicated_r));
    PBSM_RETURN_IF_ERROR(Decluster(pool, *s.heap, decluster,
                                   options.replicate_full_objects,
                                   /*is_r=*/false, &inputs,
                                   &report.replicated_s));
  }

  // ---- Run each worker's filter + refinement, accounted separately. ----
  std::set<std::pair<uint64_t, uint64_t>> global_results;
  for (uint32_t w = 0; w < options.num_workers; ++w) {
    WorkerReport& wr = report.workers[w];
    PhaseTimer timer(disk, &wr.cost);

    // Filter: local plane-sweep over the worker's key-pointers.
    std::vector<KeyPointer> r_kps, s_kps;
    if (options.replicate_full_objects) {
      PBSM_RETURN_IF_ERROR(inputs[w].r_heap->Scan(
          [&](Oid oid, const char* data, size_t size) -> Status {
            PBSM_ASSIGN_OR_RETURN(const Tuple t, Tuple::Parse(data, size));
            r_kps.push_back(KeyPointer{t.geometry.Mbr(), oid.Encode()});
            return Status::OK();
          }));
      PBSM_RETURN_IF_ERROR(inputs[w].s_heap->Scan(
          [&](Oid oid, const char* data, size_t size) -> Status {
            PBSM_ASSIGN_OR_RETURN(const Tuple t, Tuple::Parse(data, size));
            s_kps.push_back(KeyPointer{t.geometry.Mbr(), oid.Encode()});
            return Status::OK();
          }));
    } else {
      r_kps = std::move(inputs[w].r_kps);
      s_kps = std::move(inputs[w].s_kps);
    }
    wr.r_tuples = r_kps.size();
    wr.s_tuples = s_kps.size();

    CandidateSorter sorter(pool, options.join.memory_budget_bytes,
                           OidPairLess{});
    Status append_status;
    wr.candidates += PlaneSweepJoinBatch(
        &r_kps, &s_kps,
        SorterBatchSink<CandidateSorter>{&sorter, &append_status},
        options.join.sweep, options.join.simd);
    PBSM_RETURN_IF_ERROR(append_status);

    // Refinement. Full mode reads the worker's private heaps; MBR-only
    // mode reads the *original* relations ("remote" fetches).
    const HeapFile& r_src =
        options.replicate_full_objects ? *inputs[w].r_heap : *r.heap;
    const HeapFile& s_src =
        options.replicate_full_objects ? *inputs[w].s_heap : *s.heap;

    JoinCostBreakdown worker_breakdown;
    std::string record;
    ResultSink worker_sink = [&](Oid ro, Oid so) {
      ++wr.results;
      std::pair<uint64_t, uint64_t> key;
      if (options.replicate_full_objects) {
        // Recover the original identities stored in the tuple ids.
        Tuple rt, st;
        if (r_src.Fetch(ro, &record).ok()) {
          auto parsed = Tuple::Parse(record.data(), record.size());
          if (parsed.ok()) rt = std::move(parsed).value();
        }
        if (s_src.Fetch(so, &record).ok()) {
          auto parsed = Tuple::Parse(record.data(), record.size());
          if (parsed.ok()) st = std::move(parsed).value();
        }
        key = {rt.id, st.id};
      } else {
        key = {ro.Encode(), so.Encode()};
      }
      if (global_results.insert(key).second) {
        ++report.results;
        if (sink) sink(Oid::Decode(key.first), Oid::Decode(key.second));
      }
    };
    PBSM_RETURN_IF_ERROR(RefineCandidates(&sorter, JoinInput{&r_src, r.info},
                                          JoinInput{&s_src, s.info}, pred,
                                          options.join, worker_sink,
                                          &worker_breakdown));
    if (!options.replicate_full_objects) {
      // Model the network cost of fetching tuples from their home sites:
      // one remote fetch per tuple access the refinement performed.
      wr.remote_fetches =
          wr.candidates - worker_breakdown.duplicates_removed;
      wr.cost.io.modeled_seconds +=
          static_cast<double>(wr.remote_fetches) *
          options.remote_fetch_seconds;
    }
  }

  // ---- Cleanup worker staging. ----
  for (uint32_t w = 0; w < options.num_workers; ++w) {
    if (inputs[w].r_heap.has_value()) {
      PBSM_RETURN_IF_ERROR(pool->DropFile(inputs[w].r_heap->file()));
    }
    if (inputs[w].s_heap.has_value()) {
      PBSM_RETURN_IF_ERROR(pool->DropFile(inputs[w].s_heap->file()));
    }
  }
  return report;
}

Result<ParallelPbsmReport> SimulateParallelPbsm(
    BufferPool* pool, const JoinInput& r, const JoinInput& s,
    SpatialPredicate pred, const ParallelPbsmOptions& options,
    const ResultSink& sink) {
  Result<ParallelPbsmReport> report =
      SimulateParallelPbsmImpl(pool, r, s, pred, options, sink);
  // This legacy entry point bypasses the SpatialJoin facade, so it must
  // do the facade's failure accounting itself or failed simulations
  // vanish from join.failures.* dashboards.
  if (!report.ok()) {
    CountJoinFailure(JoinMethod::kParallelPbsm, report.status());
  }
  return report;
}

}  // namespace pbsm
