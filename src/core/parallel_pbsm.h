#ifndef PBSM_CORE_PARALLEL_PBSM_H_
#define PBSM_CORE_PARALLEL_PBSM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// Options for the shared-nothing parallel PBSM simulation (the paper's §5
/// future-work direction, implemented here as an extension).
struct ParallelPbsmOptions {
  uint32_t num_workers = 4;

  /// The declustering function is the PBSM spatial partitioning function
  /// itself: the universe is tiled and tiles are mapped to workers — the
  /// paper's proposed "spatial equivalent of virtual processor round robin".
  uint32_t num_tiles = 1024;
  TileMapping mapping = TileMapping::kHash;

  /// §5 tradeoff: replicate whole objects to every worker whose tiles they
  /// touch (no remote fetches, more storage), or replicate only the
  /// key-pointer (MBR + OID) and fetch the full tuples remotely during
  /// refinement.
  bool replicate_full_objects = true;

  /// Modeled cost of one remote tuple fetch in the MBR-only scheme
  /// (network round trip + remote read), in seconds.
  double remote_fetch_seconds = 0.002;

  /// Per-worker join knobs (sweep algorithm, refinement mode, ...).
  JoinOptions join;
};

/// Cost and counters of one simulated worker.
struct WorkerReport {
  uint64_t r_tuples = 0;      ///< R tuples (or key-pointers) received.
  uint64_t s_tuples = 0;
  uint64_t candidates = 0;    ///< Filter-step output at this worker.
  uint64_t results = 0;       ///< Refined results at this worker (pre-dedup).
  uint64_t remote_fetches = 0;
  PhaseCost cost;             ///< CPU + I/O this worker performed.
};

/// Outcome of the simulated parallel join.
struct ParallelPbsmReport {
  std::vector<WorkerReport> workers;
  PhaseCost decluster_cost;  ///< Scanning + splitting both inputs.
  uint64_t results = 0;      ///< Globally de-duplicated result pairs.
  uint64_t replicated_r = 0; ///< Extra R copies created by declustering.
  uint64_t replicated_s = 0;

  /// Wall-clock of the simulated cluster: the decluster scan plus the
  /// slowest worker (workers run concurrently). `cpu_scale` multiplies
  /// measured CPU seconds (e.g. a 1996-hardware calibration factor) before
  /// adding modeled I/O seconds.
  double ParallelSeconds(double cpu_scale = 1.0) const;
  /// Total work: decluster plus the sum over workers (1-worker equivalent).
  double TotalWorkSeconds(double cpu_scale = 1.0) const;
  /// TotalWorkSeconds / ParallelSeconds — the achieved speedup.
  double Speedup(double cpu_scale = 1.0) const;
  /// Coefficient of variation of per-worker total cost (load balance).
  double WorkerCostCov(double cpu_scale = 1.0) const;
};

/// Simulates a shared-nothing parallel PBSM join of `r` and `s` on
/// `num_workers` workers, executing each worker's filter + refinement
/// serially on this machine while accounting each worker's CPU and I/O
/// separately. Results are de-duplicated globally (an object pair can meet
/// at several workers when both objects are replicated).
///
/// Legacy (deprecated for production use): this predates the SpatialJoin
/// facade and is kept for the §5 cost-model benches. It carries no facade
/// tracing or metrics of its own, except failure accounting — non-OK
/// returns count into join.failures.parallel_pbsm /
/// join.cancelled.parallel_pbsm via CountJoinFailure, like every
/// facade-dispatched join.
Result<ParallelPbsmReport> SimulateParallelPbsm(
    BufferPool* pool, const JoinInput& r, const JoinInput& s,
    SpatialPredicate pred, const ParallelPbsmOptions& options,
    const ResultSink& sink = {});

}  // namespace pbsm

#endif  // PBSM_CORE_PARALLEL_PBSM_H_
