#include "core/join_methods_internal.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <queue>
#include <utility>
#include <vector>

#include "common/canceller.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/plane_sweep_join.h"
#include "core/refinement.h"
#include "core/spatial_partitioner.h"
#include "core/sweep_kernel.h"
#include "core/two_layer_filter.h"
#include "storage/tuple.h"

namespace pbsm {

namespace {

/// Wraps a status returned from inside a phase: flushes every thread's
/// still-open trace spans first, so an error or cancellation export (the
/// METRICS_JSON span tree, a Chrome trace) keeps the phase spans that were
/// open at exit instead of orphaning their finished sub-spans.
Status EarlyExit(const Status& status) {
  Tracer::Global().FlushOpenSpans();
  return status;
}

/// A phase's failure, in reporting priority: first real task error (the
/// root cause), then an external cancellation with the canceller's own
/// reason, then any remaining per-task status (sibling kCancelled noise).
Status PhaseStatus(const Canceller& cancel,
                   const std::vector<Status>& task_status) {
  PBSM_RETURN_IF_ERROR(cancel.FirstError());
  if (cancel.is_cancelled()) return cancel.CancellationStatus();
  for (const Status& ts : task_status) PBSM_RETURN_IF_ERROR(ts);
  return Status::OK();
}

/// Key-pointer buffers one scan task routed into: one vector per partition.
using PartitionBuffers = std::vector<std::vector<KeyPointer>>;

/// Scans pages [first, end) of `heap`, routing each tuple's key-pointer
/// into `bufs` (one bucket per partition).
Status ScanRangeIntoBuffers(const HeapFile& heap, uint32_t first,
                            uint32_t end, const SpatialPartitioner& part,
                            const Canceller& cancel, PartitionBuffers* bufs,
                            uint64_t* replicated) {
  std::vector<uint32_t> targets;
  return heap.ScanPages(
      first, end, [&](Oid oid, const char* data, size_t size) -> Status {
        if (cancel.is_cancelled()) {
          return Status::Cancelled("sibling scan task failed");
        }
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        const KeyPointer kp{tuple.geometry.Mbr(), oid.Encode()};
        targets.clear();
        part.PartitionsFor(kp.mbr, &targets);
        *replicated += targets.size() - 1;
        for (const uint32_t p : targets) {
          (*bufs)[p].push_back(kp);
        }
        return Status::OK();
      });
}

/// Sweeps one in-memory partition pair into `out`, recursively
/// repartitioning with a finer grid when the pair exceeds the memory
/// budget (§3.5, the in-memory analogue of the serial MergePair).
void SweepPartitionPair(std::vector<KeyPointer>* r,
                        std::vector<KeyPointer>* s, const Rect& universe,
                        const JoinOptions& opts, uint32_t depth,
                        InputOrder order, std::vector<OidPair>* out,
                        uint64_t* candidates, uint64_t* repartitioned) {
  if (r->empty() || s->empty()) return;
  const uint64_t pair_bytes = (r->size() + s->size()) * sizeof(KeyPointer);
  if (pair_bytes <= opts.memory_budget_bytes || !opts.dynamic_repartition ||
      depth >= opts.max_repartition_depth) {
    *candidates += PlaneSweepJoinBatch(r, s, VectorBatchSink{out}, opts.sweep,
                                       opts.simd, order);
    return;
  }

  ++*repartitioned;
  if (opts.sweep == SweepAlgorithm::kForwardSweep &&
      order != InputOrder::kSortedByXlo) {
    // Sort once at the overflowing parent: routing below preserves order,
    // so every recursive sub-sweep can skip its own std::sort.
    auto by_xlo = [](const KeyPointer& a, const KeyPointer& b) {
      return a.mbr.xlo < b.mbr.xlo;
    };
    std::sort(r->begin(), r->end(), by_xlo);
    std::sort(s->begin(), s->end(), by_xlo);
    order = InputOrder::kSortedByXlo;
  }
  uint32_t sub_parts = SpatialPartitioner::EstimatePartitionCount(
      r->size(), s->size(), opts.memory_budget_bytes);
  if (sub_parts < 2) sub_parts = 2;
  const uint32_t sub_tiles = sub_parts * 16 + 7;  // Off the parent shape.
  const SpatialPartitioner sub(universe, sub_tiles, sub_parts, opts.mapping);

  auto route = [&](std::vector<KeyPointer>* in,
                   std::vector<std::vector<KeyPointer>>* subs) {
    subs->resize(sub_parts);
    std::vector<uint32_t> targets;
    for (const KeyPointer& kp : *in) {
      targets.clear();
      sub.PartitionsFor(kp.mbr, &targets);
      for (const uint32_t p : targets) (*subs)[p].push_back(kp);
    }
    in->clear();
    in->shrink_to_fit();
  };
  std::vector<std::vector<KeyPointer>> r_subs, s_subs;
  route(r, &r_subs);
  route(s, &s_subs);
  for (uint32_t p = 0; p < sub_parts; ++p) {
    SweepPartitionPair(&r_subs[p], &s_subs[p], universe, opts, depth + 1,
                       order, out, candidates, repartitioned);
    r_subs[p] = {};
    s_subs[p] = {};
  }
  // Sub-partitioning can replicate pairs across sub-partitions; the
  // candidate merge removes them like any other duplicate.
}

/// Splits [0, total) into `chunks` near-equal contiguous ranges.
std::vector<std::pair<uint32_t, uint32_t>> SplitRange(uint32_t total,
                                                      uint32_t chunks) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (chunks == 0) chunks = 1;
  const uint32_t base = total / chunks;
  const uint32_t extra = total % chunks;
  uint32_t begin = 0;
  for (uint32_t c = 0; c < chunks; ++c) {
    const uint32_t len = base + (c < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

/// Records a task's busy seconds into the per-task slot and the executing
/// worker's accumulator (a worker runs its tasks serially, so the
/// per-worker slot needs no lock).
class TaskTimer {
 public:
  TaskTimer(double* task_slot, std::vector<double>* worker_busy)
      : task_slot_(task_slot), worker_busy_(worker_busy) {}
  ~TaskTimer() {
    const double s = watch_.ElapsedSeconds();
    *task_slot_ += s;
    const int w = ThreadPool::CurrentWorker();
    if (w >= 0 && static_cast<size_t>(w) < worker_busy_->size()) {
      (*worker_busy_)[static_cast<size_t>(w)] += s;
    }
  }

 private:
  double* task_slot_;
  std::vector<double>* worker_busy_;
  Stopwatch watch_;
};

// ---------------------------------------------------------------------------
// Two-layer (duplicate-free) executor. See core/two_layer_filter.h for the
// scheme; here it replaces phases 2+3a of the merge path with one "filter
// partitions" phase whose output needs no k-way dedup merge.
// ---------------------------------------------------------------------------

/// Classed-copy buffers one scan task routed into: one vector per partition.
using ClassedBuffers = std::vector<std::vector<ClassedKeyPointer>>;

/// Scans pages [first, end) of `heap`, replicating each tuple into every
/// tile its MBR overlaps with the copy's corner class, routed to the tile's
/// partition bucket. `class_counts` accumulates per-class copy counts
/// (indexed by TileClass) for the partition.class_* metrics.
Status ScanRangeIntoClassedBuffers(const HeapFile& heap, uint32_t first,
                                   uint32_t end,
                                   const SpatialPartitioner& part,
                                   const Canceller& cancel,
                                   ClassedBuffers* bufs, uint64_t* replicated,
                                   uint64_t* class_counts) {
  std::vector<TileAssignment> targets;
  return heap.ScanPages(
      first, end, [&](Oid oid, const char* data, size_t size) -> Status {
        if (cancel.is_cancelled()) {
          return Status::Cancelled("sibling scan task failed");
        }
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        ClassedKeyPointer ckp;
        ckp.mbr = tuple.geometry.Mbr();
        ckp.oid = oid.Encode();
        targets.clear();
        part.ClassifyTiles(ckp.mbr, &targets);
        *replicated += targets.size() - 1;
        for (const TileAssignment& ta : targets) {
          ckp.tile = ta.tile;
          ckp.cls = static_cast<uint32_t>(ta.cls);
          ++class_counts[ckp.cls];
          (*bufs)[part.PartitionOfTile(ta.tile)].push_back(ckp);
        }
        return Status::OK();
      });
}

/// The two-layer executor body: phase 1 routes classed copies, phase 2 runs
/// the per-partition mini-joins (no dedup merge exists — every candidate
/// pair is emitted exactly once globally), phase 3 concatenates the worker
/// arenas, sorts once for refinement I/O order, and refines OID_R-aligned
/// shards exactly like the merge path — minus its k-way dedup merge.
/// Unlike the merge path there is no §3.5 repartition:
/// partitions are processed whole (the mini-join is an out-of-place sweep
/// whose footprint is the partition itself, already sized by Equation 1).
Result<JoinCostBreakdown> ParallelTwoLayerJoin(
    BufferPool* pool, const JoinInput& r, const JoinInput& s,
    SpatialPredicate pred, const JoinOptions& opts, const ResultSink& sink,
    ParallelJoinStats& st, const SpatialPartitioner& partitioner,
    uint32_t threads, JoinCostBreakdown breakdown) {
  DiskManager* disk = pool->disk();
  const uint32_t num_partitions = partitioner.num_partitions();

  Stopwatch total_watch;
  ThreadPool tp(threads);
  Canceller cancel(opts.cancel);
  static Counter* const cancelled_tasks =
      MetricsRegistry::Global().GetCounter("join.parallel.cancelled_tasks");

  // ---- Phase 1: parallel classed filter scan. As in the merge path, but
  // each copy additionally carries (tile, class). ----
  const auto r_ranges = SplitRange(r.heap->num_pages(), threads);
  const auto s_ranges = SplitRange(s.heap->num_pages(), threads);
  std::vector<ClassedBuffers> r_bufs(threads), s_bufs(threads);
  std::vector<uint64_t> task_replicated(2 * threads, 0);
  std::vector<std::array<uint64_t, 4>> task_classes(
      2 * threads, std::array<uint64_t, 4>{0, 0, 0, 0});
  std::vector<Status> task_status(2 * threads);
  st.partition_task_seconds.assign(2 * threads, 0.0);
  {
    PhaseCost& cost = breakdown.AddPhase("partition inputs");
    PhaseTimer timer(disk, &cost, "partition inputs");
    Stopwatch wall;
    for (uint32_t t = 0; t < threads; ++t) {
      tp.Submit([&, t] {
        TaskTimer tt(&st.partition_task_seconds[t],
                     &st.worker_busy_seconds);
        if (cancel.is_cancelled()) {
          cancelled_tasks->Add();
          task_status[t] = Status::Cancelled("sibling scan task failed");
          return;
        }
        r_bufs[t].resize(num_partitions);
        task_status[t] = ScanRangeIntoClassedBuffers(
            *r.heap, r_ranges[t].first, r_ranges[t].second, partitioner,
            cancel, &r_bufs[t], &task_replicated[t], task_classes[t].data());
        cancel.Report(task_status[t]);
      });
      tp.Submit([&, t] {
        TaskTimer tt(&st.partition_task_seconds[threads + t],
                     &st.worker_busy_seconds);
        if (cancel.is_cancelled()) {
          cancelled_tasks->Add();
          task_status[threads + t] =
              Status::Cancelled("sibling scan task failed");
          return;
        }
        s_bufs[t].resize(num_partitions);
        task_status[threads + t] = ScanRangeIntoClassedBuffers(
            *s.heap, s_ranges[t].first, s_ranges[t].second, partitioner,
            cancel, &s_bufs[t], &task_replicated[threads + t],
            task_classes[threads + t].data());
        cancel.Report(task_status[threads + t]);
      });
    }
    tp.Wait();
    st.partition_wall_seconds = wall.ElapsedSeconds();
  }
  {
    const Status ps = PhaseStatus(cancel, task_status);
    if (!ps.ok()) return EarlyExit(ps);
  }
  for (const uint64_t rep : task_replicated) breakdown.replicated += rep;
  {
    uint64_t classes[4] = {0, 0, 0, 0};
    for (const auto& tc : task_classes) {
      for (size_t c = 0; c < 4; ++c) classes[c] += tc[c];
    }
    two_layer_internal::FlushClassCounts(classes);
  }

  // ---- Phase 2: concurrent duplicate-free mini-joins, one task per
  // partition. Each task gathers its partition's classed copies into
  // thread-local scratch and appends its candidate run to the executing
  // worker's arena — no cross-worker writes, no dedup merge. ----
  std::vector<std::vector<OidPair>> arenas(threads);
  std::vector<uint64_t> task_candidates(num_partitions, 0);
  st.sweep_task_seconds.assign(num_partitions, 0.0);
  const KernelKind kind = ResolveKernel(opts.simd);
  {
    PhaseCost& cost = breakdown.AddPhase("filter partitions");
    PhaseTimer timer(disk, &cost, "filter partitions");
    Stopwatch wall;
    for (uint32_t p = 0; p < num_partitions; ++p) {
      tp.Submit([&, p] {
        TaskTimer tt(&st.sweep_task_seconds[p], &st.worker_busy_seconds);
        if (cancel.is_cancelled()) {
          cancelled_tasks->Add();
          return;
        }
        size_t r_total = 0, s_total = 0;
        for (uint32_t t = 0; t < threads; ++t) {
          r_total += r_bufs[t][p].size();
          s_total += s_bufs[t][p].size();
        }
        if (r_total == 0 || s_total == 0) return;
        // Thread-local gather buffers: partitions handled by the same
        // worker reuse their capacity, so steady state performs no
        // per-partition allocations (asserted by the zero-alloc test).
        thread_local std::vector<ClassedKeyPointer> r_kps, s_kps;
        r_kps.clear();
        s_kps.clear();
        r_kps.reserve(r_total);
        s_kps.reserve(s_total);
        for (uint32_t t = 0; t < threads; ++t) {
          auto& rb = r_bufs[t][p];
          r_kps.insert(r_kps.end(), rb.begin(), rb.end());
          rb = {};
          auto& sb = s_bufs[t][p];
          s_kps.insert(s_kps.end(), sb.begin(), sb.end());
          sb = {};
        }
        const int w = ThreadPool::CurrentWorker();
        PBSM_CHECK(w >= 0 && static_cast<size_t>(w) < arenas.size())
            << "filter task executed outside the pool";
        task_candidates[p] = TwoLayerPartitionJoinBatch(
            &r_kps, &s_kps, kind,
            VectorBatchSink{&arenas[static_cast<size_t>(w)]});
      });
    }
    tp.Wait();
    st.sweep_wall_seconds = wall.ElapsedSeconds();
  }
  if (cancel.is_cancelled()) return EarlyExit(cancel.CancellationStatus());
  for (uint32_t p = 0; p < num_partitions; ++p) {
    breakdown.candidates += task_candidates[p];
  }
  // st.merge_wall_seconds stays 0: there is no merge phase to pay for.

  // ---- Phase 3: one global refinement order, then parallel refinement
  // over OID_R-aligned shards, as in the merge path's phase 3b. The runs
  // are duplicate-free across partitions, so preparing the stream is a
  // plain concatenate + sort for refinement I/O locality (each R page is
  // fetched by exactly one shard) — no k-way merge, no dedup compare. ----
  {
    PhaseCost& cost = breakdown.AddPhase("refinement");
    PhaseTimer timer(disk, &cost, "refinement");
    Stopwatch wall;

    std::vector<OidPair> candidates;
    candidates.reserve(static_cast<size_t>(breakdown.candidates));
    for (std::vector<OidPair>& arena : arenas) {
      candidates.insert(candidates.end(), arena.begin(), arena.end());
      arena = {};
    }
    std::sort(candidates.begin(), candidates.end(), OidPairLess{});

    std::vector<std::pair<size_t, size_t>> shards;
    const size_t n = candidates.size();
    const size_t target = (n + threads - 1) / std::max<uint32_t>(threads, 1);
    size_t begin = 0;
    while (begin < n) {
      size_t end = std::min(n, begin + std::max<size_t>(target, 1));
      while (end < n && candidates[end].r == candidates[end - 1].r) ++end;
      shards.emplace_back(begin, end);
      begin = end;
    }

    std::mutex sink_mutex;
    std::vector<JoinCostBreakdown> shard_breakdowns(shards.size());
    std::vector<Status> shard_status(shards.size());
    st.refine_task_seconds.assign(shards.size(), 0.0);
    for (size_t i = 0; i < shards.size(); ++i) {
      tp.Submit([&, i] {
        TaskTimer tt(&st.refine_task_seconds[i], &st.worker_busy_seconds);
        if (cancel.is_cancelled()) {
          cancelled_tasks->Add();
          shard_status[i] = Status::Cancelled("sibling refine shard failed");
          return;
        }
        size_t cursor = shards[i].first;
        const size_t end = shards[i].second;
        const SortedPairStream next = [&candidates, &cursor, end,
                                       &cancel](OidPair* out) -> Result<bool> {
          if (cancel.is_cancelled()) {
            return Status::Cancelled("sibling refine shard failed");
          }
          if (cursor >= end) return false;
          *out = candidates[cursor++];
          return true;
        };
        ResultSink shard_sink;
        if (sink) {
          shard_sink = [&sink, &sink_mutex](Oid ro, Oid so) {
            std::lock_guard<std::mutex> lock(sink_mutex);
            sink(ro, so);
          };
        }
        shard_status[i] =
            RefinePairStream(next, r, s, pred, opts, shard_sink,
                             &shard_breakdowns[i]);
        cancel.Report(shard_status[i]);
      });
    }
    tp.Wait();
    st.refine_wall_seconds = wall.ElapsedSeconds();
    const Status ps = PhaseStatus(cancel, shard_status);
    if (!ps.ok()) return EarlyExit(ps);
    for (const JoinCostBreakdown& sb : shard_breakdowns) {
      breakdown.results += sb.results;
    }
  }

  st.total_wall_seconds = total_watch.ElapsedSeconds();
  return breakdown;
}

}  // namespace

double ParallelJoinStats::SweepBalanceCov() const {
  std::vector<double> busy;
  busy.reserve(sweep_task_seconds.size());
  for (const double s : sweep_task_seconds) {
    if (s > 0.0) busy.push_back(s);
  }
  return ComputeStats(busy).CoefficientOfVariation();
}

double ParallelJoinStats::TotalBusySeconds() const {
  double sum = 0.0;
  for (const double s : partition_task_seconds) sum += s;
  for (const double s : sweep_task_seconds) sum += s;
  for (const double s : refine_task_seconds) sum += s;
  return sum;
}

double ParallelJoinStats::CriticalPathSpeedup() const {
  double slowest = 0.0;
  for (const double s : worker_busy_seconds) {
    slowest = std::max(slowest, s);
  }
  const double total = TotalBusySeconds();
  return slowest == 0.0 ? 1.0 : total / slowest;
}

Result<JoinCostBreakdown> ParallelPbsmJoin(BufferPool* pool,
                                           const JoinInput& r,
                                           const JoinInput& s,
                                           SpatialPredicate pred,
                                           const JoinOptions& opts,
                                           const ResultSink& sink,
                                           ParallelJoinStats* stats) {
  JoinCostBreakdown breakdown;
  DiskManager* disk = pool->disk();
  const uint32_t threads = opts.num_threads != 0
                               ? opts.num_threads
                               : static_cast<uint32_t>(
                                     ThreadPool::DefaultThreads());

  const Rect universe = Rect::Union(r.info.universe, s.info.universe);
  if (universe.empty()) {
    return Status::InvalidArgument("join inputs have an empty universe");
  }

  // Equation 1 sizes partitions for the memory budget; the executor
  // additionally wants enough partitions to keep every worker busy in the
  // sweep phase, so it raises the count to 4 tasks per thread (an explicit
  // override is respected verbatim).
  uint32_t num_partitions =
      opts.num_partitions_override != 0
          ? opts.num_partitions_override
          : std::max(SpatialPartitioner::EstimatePartitionCount(
                         r.info.cardinality, s.info.cardinality,
                         opts.memory_budget_bytes),
                     threads * 4);
  const uint32_t num_tiles = std::max(opts.num_tiles, num_partitions);
  const SpatialPartitioner partitioner(universe, num_tiles, num_partitions,
                                       opts.mapping);
  breakdown.num_partitions = num_partitions;
  breakdown.num_tiles = partitioner.num_tiles();

  ParallelJoinStats local_stats;
  ParallelJoinStats& st = stats != nullptr ? *stats : local_stats;
  st = ParallelJoinStats();
  st.num_threads = threads;
  st.worker_busy_seconds.assign(threads, 0.0);

  if (opts.dedup_mode == DedupMode::kTwoLayer) {
    return ParallelTwoLayerJoin(pool, r, s, pred, opts, sink, st, partitioner,
                                threads, std::move(breakdown));
  }

  Stopwatch total_watch;
  ThreadPool tp(threads);
  // Error propagation between sibling tasks, chained below the caller's
  // cancel flag (service timeout / client abort) when one is supplied: a
  // tripped parent stops every task at its next poll, exactly like a
  // sibling failure, but the parent's reason wins in the returned status.
  Canceller cancel(opts.cancel);
  static Counter* const cancelled_tasks =
      MetricsRegistry::Global().GetCounter("join.parallel.cancelled_tasks");

  // ---- Phase 1: parallel filter scan. Each task owns a page range of one
  // input and private per-partition buffers; the barrier makes them visible
  // to the sweep tasks without locks. ----
  const auto r_ranges = SplitRange(r.heap->num_pages(), threads);
  const auto s_ranges = SplitRange(s.heap->num_pages(), threads);
  std::vector<PartitionBuffers> r_bufs(threads), s_bufs(threads);
  std::vector<uint64_t> task_replicated(2 * threads, 0);
  std::vector<Status> task_status(2 * threads);
  st.partition_task_seconds.assign(2 * threads, 0.0);
  {
    PhaseCost& cost = breakdown.AddPhase("partition inputs");
    PhaseTimer timer(disk, &cost, "partition inputs");
    Stopwatch wall;
    for (uint32_t t = 0; t < threads; ++t) {
      tp.Submit([&, t] {
        TaskTimer tt(&st.partition_task_seconds[t],
                     &st.worker_busy_seconds);
        if (cancel.is_cancelled()) {
          cancelled_tasks->Add();
          task_status[t] = Status::Cancelled("sibling scan task failed");
          return;
        }
        r_bufs[t].resize(num_partitions);
        task_status[t] = ScanRangeIntoBuffers(
            *r.heap, r_ranges[t].first, r_ranges[t].second, partitioner,
            cancel, &r_bufs[t], &task_replicated[t]);
        cancel.Report(task_status[t]);
      });
      tp.Submit([&, t] {
        TaskTimer tt(&st.partition_task_seconds[threads + t],
                     &st.worker_busy_seconds);
        if (cancel.is_cancelled()) {
          cancelled_tasks->Add();
          task_status[threads + t] =
              Status::Cancelled("sibling scan task failed");
          return;
        }
        s_bufs[t].resize(num_partitions);
        task_status[threads + t] = ScanRangeIntoBuffers(
            *s.heap, s_ranges[t].first, s_ranges[t].second, partitioner,
            cancel, &s_bufs[t], &task_replicated[threads + t]);
        cancel.Report(task_status[threads + t]);
      });
    }
    tp.Wait();
    st.partition_wall_seconds = wall.ElapsedSeconds();
  }
  // The first real error wins; sibling kCancelled statuses are noise, and
  // an external cancellation surfaces with the canceller's own reason.
  {
    const Status ps = PhaseStatus(cancel, task_status);
    if (!ps.ok()) return EarlyExit(ps);
  }
  for (const uint64_t rep : task_replicated) breakdown.replicated += rep;

  // ---- Phase 2: concurrent plane-sweep, one task per partition pair.
  // Each task gathers the scan tasks' buckets for its partition, sweeps
  // them, and leaves a sorted candidate run. ----
  std::vector<std::vector<OidPair>> partition_candidates(num_partitions);
  std::vector<uint64_t> task_candidates(num_partitions, 0);
  std::vector<uint64_t> task_repartitioned(num_partitions, 0);
  st.sweep_task_seconds.assign(num_partitions, 0.0);
  {
    PhaseCost& cost = breakdown.AddPhase("sweep partitions");
    PhaseTimer timer(disk, &cost, "sweep partitions");
    Stopwatch wall;
    for (uint32_t p = 0; p < num_partitions; ++p) {
      tp.Submit([&, p] {
        TaskTimer tt(&st.sweep_task_seconds[p], &st.worker_busy_seconds);
        // Pure-CPU phase: no per-task status, but an external cancellation
        // (timeout) should not grind through the remaining partitions. The
        // post-phase is_cancelled() check below reports it.
        if (cancel.is_cancelled()) {
          cancelled_tasks->Add();
          return;
        }
        size_t r_total = 0, s_total = 0;
        for (uint32_t t = 0; t < threads; ++t) {
          r_total += r_bufs[t][p].size();
          s_total += s_bufs[t][p].size();
        }
        if (r_total == 0 || s_total == 0) return;
        std::vector<KeyPointer> r_kps, s_kps;
        r_kps.reserve(r_total);
        s_kps.reserve(s_total);
        for (uint32_t t = 0; t < threads; ++t) {
          auto& rb = r_bufs[t][p];
          r_kps.insert(r_kps.end(), rb.begin(), rb.end());
          rb = {};
          auto& sb = s_bufs[t][p];
          s_kps.insert(s_kps.end(), sb.begin(), sb.end());
          sb = {};
        }
        SweepPartitionPair(&r_kps, &s_kps, universe, opts, /*depth=*/0,
                           InputOrder::kUnsorted, &partition_candidates[p],
                           &task_candidates[p], &task_repartitioned[p]);
        std::sort(partition_candidates[p].begin(),
                  partition_candidates[p].end(), OidPairLess{});
      });
    }
    tp.Wait();
    st.sweep_wall_seconds = wall.ElapsedSeconds();
  }
  if (cancel.is_cancelled()) return EarlyExit(cancel.CancellationStatus());
  for (uint32_t p = 0; p < num_partitions; ++p) {
    breakdown.candidates += task_candidates[p];
    breakdown.repartitioned_pairs += task_repartitioned[p];
  }

  // ---- Phase 3a: k-way merge of the sorted candidate runs with duplicate
  // elimination (serial; O(N log P) on in-memory runs). ----
  std::vector<OidPair> deduped;
  {
    PhaseCost& cost = breakdown.AddPhase("merge candidates");
    PhaseTimer timer(disk, &cost, "merge candidates");
    Stopwatch wall;
    deduped.reserve(breakdown.candidates);
    struct RunCursor {
      const std::vector<OidPair>* run;
      size_t index;
    };
    auto greater = [](const std::pair<OidPair, size_t>& a,
                      const std::pair<OidPair, size_t>& b) {
      return b.first < a.first;
    };
    std::priority_queue<std::pair<OidPair, size_t>,
                        std::vector<std::pair<OidPair, size_t>>,
                        decltype(greater)>
        heap(greater);
    std::vector<RunCursor> cursors;
    cursors.reserve(num_partitions);
    for (uint32_t p = 0; p < num_partitions; ++p) {
      if (partition_candidates[p].empty()) continue;
      cursors.push_back(RunCursor{&partition_candidates[p], 0});
      heap.emplace(partition_candidates[p][0], cursors.size() - 1);
    }
    while (!heap.empty()) {
      const auto [pair, c] = heap.top();
      heap.pop();
      if (deduped.empty() || !(deduped.back() == pair)) {
        deduped.push_back(pair);
      } else {
        ++breakdown.duplicates_removed;
      }
      RunCursor& cur = cursors[c];
      if (++cur.index < cur.run->size()) {
        heap.emplace((*cur.run)[cur.index], c);
      }
    }
    partition_candidates.clear();
    st.merge_wall_seconds = wall.ElapsedSeconds();
  }

  // ---- Phase 3b: parallel refinement over OID_R-aligned shards. Keeping
  // every pair of one R tuple in a single shard means shards fetch disjoint
  // R pages (near-sequential reads, as in the serial §3.2 step). ----
  {
    PhaseCost& cost = breakdown.AddPhase("refinement");
    PhaseTimer timer(disk, &cost, "refinement");
    Stopwatch wall;

    std::vector<std::pair<size_t, size_t>> shards;
    const size_t n = deduped.size();
    const size_t target = (n + threads - 1) / std::max<uint32_t>(threads, 1);
    size_t begin = 0;
    while (begin < n) {
      size_t end = std::min(n, begin + std::max<size_t>(target, 1));
      // Advance to the next OID_R boundary.
      while (end < n && deduped[end].r == deduped[end - 1].r) ++end;
      shards.emplace_back(begin, end);
      begin = end;
    }

    std::mutex sink_mutex;
    std::vector<JoinCostBreakdown> shard_breakdowns(shards.size());
    std::vector<Status> shard_status(shards.size());
    st.refine_task_seconds.assign(shards.size(), 0.0);
    for (size_t i = 0; i < shards.size(); ++i) {
      tp.Submit([&, i] {
        TaskTimer tt(&st.refine_task_seconds[i], &st.worker_busy_seconds);
        if (cancel.is_cancelled()) {
          cancelled_tasks->Add();
          shard_status[i] = Status::Cancelled("sibling refine shard failed");
          return;
        }
        size_t cursor = shards[i].first;
        const size_t end = shards[i].second;
        // The stream is the shard's inner loop; polling the cancellation
        // flag here bounds how much doomed refinement I/O a sibling still
        // performs after the first failure.
        const SortedPairStream next = [&deduped, &cursor, end,
                                       &cancel](OidPair* out) -> Result<bool> {
          if (cancel.is_cancelled()) {
            return Status::Cancelled("sibling refine shard failed");
          }
          if (cursor >= end) return false;
          *out = deduped[cursor++];
          return true;
        };
        ResultSink shard_sink;
        if (sink) {
          shard_sink = [&sink, &sink_mutex](Oid ro, Oid so) {
            std::lock_guard<std::mutex> lock(sink_mutex);
            sink(ro, so);
          };
        }
        shard_status[i] =
            RefinePairStream(next, r, s, pred, opts, shard_sink,
                             &shard_breakdowns[i]);
        cancel.Report(shard_status[i]);
      });
    }
    tp.Wait();
    st.refine_wall_seconds = wall.ElapsedSeconds();
    const Status ps = PhaseStatus(cancel, shard_status);
    if (!ps.ok()) return EarlyExit(ps);
    for (const JoinCostBreakdown& sb : shard_breakdowns) {
      breakdown.results += sb.results;
    }
  }

  st.total_wall_seconds = total_watch.ElapsedSeconds();
  return breakdown;
}

}  // namespace pbsm
