#ifndef PBSM_CORE_PARALLEL_PBSM_EXEC_H_
#define PBSM_CORE_PARALLEL_PBSM_EXEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// Execution statistics of one ParallelPbsmJoin run, beyond the cost
/// breakdown: per-phase wall times and per-worker/per-task busy times for
/// load-balance and scalability analysis.
struct ParallelJoinStats {
  uint32_t num_threads = 0;

  double partition_wall_seconds = 0.0;  ///< Parallel filter scan + route.
  /// Concurrent per-partition filter tasks: plane sweeps (kMerge) or
  /// duplicate-free mini-joins (kTwoLayer).
  double sweep_wall_seconds = 0.0;
  /// Serial candidate merge + dedup. Always 0 under kTwoLayer — the phase
  /// does not exist there (its disappearance is the point of the scheme).
  double merge_wall_seconds = 0.0;
  double refine_wall_seconds = 0.0;     ///< Parallel sharded refinement.
  double total_wall_seconds = 0.0;

  /// Busy seconds per pool worker, summed over every task it executed
  /// (all phases). Work-stealing makes the assignment dynamic.
  std::vector<double> worker_busy_seconds;
  /// Busy seconds of each phase-1 range-scan task (2 x threads tasks:
  /// one per input chunk).
  std::vector<double> partition_task_seconds;
  /// Busy seconds of each per-partition sweep task (empty pairs included
  /// as 0 so the index matches the partition number).
  std::vector<double> sweep_task_seconds;
  /// Busy seconds of each refinement shard task.
  std::vector<double> refine_task_seconds;

  /// Coefficient of variation of the non-empty per-partition sweep times —
  /// the partition-balance metric (the parallel analogue of Figure 4).
  double SweepBalanceCov() const;

  /// Sum of all task busy seconds (the single-thread work equivalent).
  double TotalBusySeconds() const;

  /// TotalBusySeconds / max worker busy seconds: the speedup a machine with
  /// one core per worker would achieve on this task decomposition. On a
  /// host with fewer cores than workers, wall-clock speedup is capped by
  /// the hardware while this metric still reflects the decomposition.
  double CriticalPathSpeedup() const;
};

/// Real shared-memory parallel PBSM join (the threaded counterpart of the
/// cost-model-only SimulateParallelPbsm). The phase structure depends on
/// opts.dedup_mode.
///
/// kTwoLayer (default; duplicate-free, see core/two_layer_filter.h):
///  * "partition inputs": page ranges of both inputs split across scan
///    tasks, each replicating tuples into per-partition buffers as
///    corner-classed tile copies (no locks);
///  * "filter partitions": each partition is an independent task running
///    the class-pair mini-joins — globally, every candidate pair is
///    emitted exactly once, so each task just sorts its own run into the
///    executing worker's arena;
///  * "refinement": each non-empty partition run is a shard, refined
///    concurrently. No merge phase exists in this mode.
///
/// kMerge (the paper's replicate-then-dedup scheme):
///  * "partition inputs": as above, but with plain key-pointer copies;
///  * "sweep partitions": each partition pair is an independent task —
///    gather the thread-local buffers for that partition, plane-sweep them
///    (recursive in-memory repartition on budget overflow, §3.5), sort the
///    emitted candidates;
///  * "merge candidates": the sorted per-partition candidate runs are
///    k-way merged with duplicate elimination (serial);
///  * "refinement": the de-duplicated array is sharded on OID_R boundaries
///    and refined concurrently (each shard fetches disjoint R tuples
///    through the now thread-safe buffer pool).
///
/// Produces exactly the de-duplicated result pairs of the serial PbsmJoin.
/// `sink` may be called concurrently from worker threads (calls are
/// serialised internally, but arrival order is nondeterministic).
///
/// In the returned breakdown, each phase's cpu_seconds is the phase's
/// *wall-clock* time (workers run concurrently) and its io counters are the
/// aggregate physical I/O of the phase; per-task busy times live in
/// `*stats` (optional).
/// Deprecated for new callers: use SpatialJoin() in core/spatial_join.h,
/// which wraps this entry point behind the unified JoinSpec/JoinResult
/// API and adds tracing + metrics capture.
Result<JoinCostBreakdown> ParallelPbsmJoin(BufferPool* pool,
                                           const JoinInput& r,
                                           const JoinInput& s,
                                           SpatialPredicate pred,
                                           const JoinOptions& opts,
                                           const ResultSink& sink = {},
                                           ParallelJoinStats* stats = nullptr);

}  // namespace pbsm

#endif  // PBSM_CORE_PARALLEL_PBSM_EXEC_H_
