#ifndef PBSM_CORE_PARALLEL_STATS_H_
#define PBSM_CORE_PARALLEL_STATS_H_

#include <cstdint>
#include <vector>

namespace pbsm {

/// Execution statistics of one parallel PBSM run (JoinMethod::kParallelPbsm
/// through the SpatialJoin facade), beyond the cost breakdown: per-phase
/// wall times and per-worker/per-task busy times for load-balance and
/// scalability analysis. Request one via JoinSpec::parallel_stats.
struct ParallelJoinStats {
  uint32_t num_threads = 0;

  double partition_wall_seconds = 0.0;  ///< Parallel filter scan + route.
  /// Concurrent per-partition filter tasks: plane sweeps (kMerge) or
  /// duplicate-free mini-joins (kTwoLayer).
  double sweep_wall_seconds = 0.0;
  /// Serial candidate merge + dedup. Always 0 under kTwoLayer — the phase
  /// does not exist there (its disappearance is the point of the scheme).
  double merge_wall_seconds = 0.0;
  double refine_wall_seconds = 0.0;     ///< Parallel sharded refinement.
  double total_wall_seconds = 0.0;

  /// Busy seconds per pool worker, summed over every task it executed
  /// (all phases). Work-stealing makes the assignment dynamic.
  std::vector<double> worker_busy_seconds;
  /// Busy seconds of each phase-1 range-scan task (2 x threads tasks:
  /// one per input chunk).
  std::vector<double> partition_task_seconds;
  /// Busy seconds of each per-partition sweep task (empty pairs included
  /// as 0 so the index matches the partition number).
  std::vector<double> sweep_task_seconds;
  /// Busy seconds of each refinement shard task.
  std::vector<double> refine_task_seconds;

  /// Coefficient of variation of the non-empty per-partition sweep times —
  /// the partition-balance metric (the parallel analogue of Figure 4).
  double SweepBalanceCov() const;

  /// Sum of all task busy seconds (the single-thread work equivalent).
  double TotalBusySeconds() const;

  /// TotalBusySeconds / max worker busy seconds: the speedup a machine with
  /// one core per worker would achieve on this task decomposition. On a
  /// host with fewer cores than workers, wall-clock speedup is capped by
  /// the hardware while this metric still reflects the decomposition.
  double CriticalPathSpeedup() const;
};

}  // namespace pbsm

#endif  // PBSM_CORE_PARALLEL_STATS_H_
