#include "core/join_methods_internal.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/plane_sweep_join.h"
#include "core/refinement.h"
#include "core/sweep_kernel.h"
#include "core/spatial_partitioner.h"
#include "core/two_layer_filter.h"
#include "storage/spool_file.h"
#include "storage/tuple.h"

namespace pbsm {

namespace {

/// Scans `heap` and routes each tuple's key-pointer into the partition
/// spools selected by the partitioning function. Counts extra copies
/// created by replication in `*replicated`.
Status PartitionInput(const HeapFile& heap, const SpatialPartitioner& part,
                      std::vector<SpoolFile>* spools, uint64_t* replicated) {
  std::vector<uint32_t> targets;
  return heap.Scan([&](Oid oid, const char* data, size_t size) -> Status {
    PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
    const KeyPointer kp{tuple.geometry.Mbr(), oid.Encode()};
    targets.clear();
    part.PartitionsFor(kp.mbr, &targets);
    *replicated += targets.size() - 1;
    for (const uint32_t p : targets) {
      PBSM_RETURN_IF_ERROR((*spools)[p].Append(&kp));
    }
    return Status::OK();
  });
}

/// Two-layer variant of PartitionInput: one *classed* copy per overlapped
/// tile, routed to that tile's partition spool. Replication is counted per
/// tile copy — the mini-joins need tile granularity, so an object spanning
/// several tiles of one partition still spools several copies (unlike the
/// merge mode, which dedups to one copy per partition).
Status PartitionInputClassed(const HeapFile& heap,
                             const SpatialPartitioner& part,
                             std::vector<SpoolFile>* spools,
                             uint64_t* replicated) {
  std::vector<TileAssignment> targets;
  uint64_t class_counts[4] = {0, 0, 0, 0};
  const Status st =
      heap.Scan([&](Oid oid, const char* data, size_t size) -> Status {
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        ClassedKeyPointer ckp{tuple.geometry.Mbr(), oid.Encode(), 0, 0};
        targets.clear();
        part.ClassifyTiles(ckp.mbr, &targets);
        *replicated += targets.size() - 1;
        for (const TileAssignment& t : targets) {
          ckp.tile = t.tile;
          ckp.cls = static_cast<uint32_t>(t.cls);
          ++class_counts[ckp.cls];
          PBSM_RETURN_IF_ERROR(
              (*spools)[part.PartitionOfTile(t.tile)].Append(&ckp));
        }
        return Status::OK();
      });
  two_layer_internal::FlushClassCounts(class_counts);
  return st;
}

/// Reads an entire key-pointer spool into memory.
Result<std::vector<KeyPointer>> ReadSpool(const SpoolFile& spool) {
  std::vector<KeyPointer> out;
  out.reserve(spool.num_records());
  SpoolFile::Reader reader = spool.NewReader();
  KeyPointer kp;
  while (true) {
    PBSM_ASSIGN_OR_RETURN(const bool has, reader.Next(&kp));
    if (!has) break;
    out.push_back(kp);
  }
  return out;
}

/// Sweeps two in-memory partition halves into the candidate sorter,
/// flushing batched pair blocks straight into the sorter buffer.
Status SweepInto(std::vector<KeyPointer>* r, std::vector<KeyPointer>* s,
                 const JoinOptions& opts, CandidateSorter* sorter,
                 JoinCostBreakdown* breakdown) {
  Status append_status;
  breakdown->candidates += PlaneSweepJoinBatch(
      r, s, SorterBatchSink<CandidateSorter>{sorter, &append_status},
      opts.sweep, opts.simd);
  return append_status;
}

/// Reads an entire classed-key-pointer spool into memory.
Result<std::vector<ClassedKeyPointer>> ReadSpoolClassed(
    const SpoolFile& spool) {
  std::vector<ClassedKeyPointer> out;
  out.reserve(spool.num_records());
  SpoolFile::Reader reader = spool.NewReader();
  ClassedKeyPointer ckp;
  while (true) {
    PBSM_ASSIGN_OR_RETURN(const bool has, reader.Next(&ckp));
    if (!has) break;
    out.push_back(ckp);
  }
  return out;
}

/// Two-layer merge of one partition pair: per-tile class mini-joins,
/// candidates straight into the sorter (the sort orders the stream for
/// refinement I/O; there are no duplicates for it to remove). No §3.5
/// repartition path — a finer sub-grid would re-derive tile classes, so an
/// overflowing partition is processed whole instead (key-pointers only;
/// Equation 1 sizing keeps that near the budget except under extreme skew).
Status MergePairTwoLayer(SpoolFile* r_spool, SpoolFile* s_spool,
                         const JoinOptions& opts, CandidateSorter* sorter,
                         JoinCostBreakdown* breakdown) {
  if (r_spool->num_records() == 0 || s_spool->num_records() == 0) {
    return Status::OK();
  }
  PBSM_ASSIGN_OR_RETURN(std::vector<ClassedKeyPointer> r,
                        ReadSpoolClassed(*r_spool));
  PBSM_ASSIGN_OR_RETURN(std::vector<ClassedKeyPointer> s,
                        ReadSpoolClassed(*s_spool));
  Status append_status;
  breakdown->candidates += TwoLayerPartitionJoinBatch(
      &r, &s, ResolveKernel(opts.simd),
      SorterBatchSink<CandidateSorter>{sorter, &append_status});
  return append_status;
}

/// Merges one partition pair, handling memory overflow per §3.5.
Status MergePair(BufferPool* pool, SpoolFile* r_spool, SpoolFile* s_spool,
                 const Rect& universe, const JoinOptions& opts,
                 uint32_t depth, CandidateSorter* sorter,
                 JoinCostBreakdown* breakdown) {
  if (r_spool->num_records() == 0 || s_spool->num_records() == 0) {
    return Status::OK();
  }
  const uint64_t pair_bytes =
      (r_spool->num_records() + s_spool->num_records()) * sizeof(KeyPointer);

  if (pair_bytes <= opts.memory_budget_bytes) {
    PBSM_ASSIGN_OR_RETURN(std::vector<KeyPointer> r, ReadSpool(*r_spool));
    PBSM_ASSIGN_OR_RETURN(std::vector<KeyPointer> s, ReadSpool(*s_spool));
    return SweepInto(&r, &s, opts, sorter, breakdown);
  }

  if (opts.dynamic_repartition && depth < opts.max_repartition_depth) {
    // Repartition the overflowing pair with a finer grid over the same
    // universe. The grid shape changes with the tile count, so skewed
    // clusters that landed in one partition spread across the sub-grid.
    ++breakdown->repartitioned_pairs;
    static Histogram* const repartition_depth =
        MetricsRegistry::Global().GetHistogram("join.pbsm.repartition_depth");
    repartition_depth->Record(depth + 1);
    uint32_t sub_parts = SpatialPartitioner::EstimatePartitionCount(
        r_spool->num_records(), s_spool->num_records(),
        opts.memory_budget_bytes);
    if (sub_parts < 2) sub_parts = 2;
    const uint32_t sub_tiles = sub_parts * 16 + 7;  // Off the parent shape.
    const SpatialPartitioner sub(universe, sub_tiles, sub_parts,
                                 opts.mapping);

    auto repartition =
        [&](SpoolFile* parent,
            std::vector<SpoolFile>* subs) -> Status {
      for (uint32_t p = 0; p < sub_parts; ++p) {
        PBSM_ASSIGN_OR_RETURN(SpoolFile spool,
                              SpoolFile::Create(pool, sizeof(KeyPointer)));
        subs->push_back(std::move(spool));
      }
      SpoolFile::Reader reader = parent->NewReader();
      KeyPointer kp;
      std::vector<uint32_t> targets;
      while (true) {
        PBSM_ASSIGN_OR_RETURN(const bool has, reader.Next(&kp));
        if (!has) break;
        targets.clear();
        sub.PartitionsFor(kp.mbr, &targets);
        for (const uint32_t p : targets) {
          PBSM_RETURN_IF_ERROR((*subs)[p].Append(&kp));
        }
      }
      return Status::OK();
    };

    std::vector<SpoolFile> r_subs, s_subs;
    PBSM_RETURN_IF_ERROR(repartition(r_spool, &r_subs));
    PBSM_RETURN_IF_ERROR(repartition(s_spool, &s_subs));
    for (uint32_t p = 0; p < sub_parts; ++p) {
      PBSM_RETURN_IF_ERROR(MergePair(pool, &r_subs[p], &s_subs[p], universe,
                                     opts, depth + 1, sorter, breakdown));
      PBSM_RETURN_IF_ERROR(r_subs[p].Drop());
      PBSM_RETURN_IF_ERROR(s_subs[p].Drop());
    }
    // Sub-partitioning can replicate pairs across sub-partitions; the
    // refinement sort removes them like any other duplicate.
    return Status::OK();
  }

  // Chunked fallback: sweep memory-sized chunks of R against memory-sized
  // chunks of S, re-reading the S spool once per R chunk (the quadratic
  // I/O cost is why the paper prefers repartitioning).
  const uint64_t chunk_records =
      std::max<uint64_t>(1, opts.memory_budget_bytes / 2 / sizeof(KeyPointer));
  SpoolFile::Reader r_reader = r_spool->NewReader();
  while (true) {
    std::vector<KeyPointer> r_chunk;
    r_chunk.reserve(chunk_records);
    KeyPointer kp;
    while (r_chunk.size() < chunk_records) {
      PBSM_ASSIGN_OR_RETURN(const bool has, r_reader.Next(&kp));
      if (!has) break;
      r_chunk.push_back(kp);
    }
    if (r_chunk.empty()) break;
    SpoolFile::Reader s_reader = s_spool->NewReader();
    while (true) {
      std::vector<KeyPointer> s_chunk;
      s_chunk.reserve(chunk_records);
      while (s_chunk.size() < chunk_records) {
        PBSM_ASSIGN_OR_RETURN(const bool has, s_reader.Next(&kp));
        if (!has) break;
        s_chunk.push_back(kp);
      }
      if (s_chunk.empty()) break;
      PBSM_RETURN_IF_ERROR(SweepInto(&r_chunk, &s_chunk, opts, sorter,
                                     breakdown));
    }
  }
  return Status::OK();
}

}  // namespace

Status PbsmFilter(BufferPool* pool, const JoinInput& r, const JoinInput& s,
                  const JoinOptions& opts, CandidateSorter* sorter,
                  JoinCostBreakdown* breakdown) {
  DiskManager* disk = pool->disk();

  // The partitioning function must see both inputs, so the universe is the
  // combined catalog cover (§3.1's catalog estimate).
  const Rect universe = Rect::Union(r.info.universe, s.info.universe);
  if (universe.empty()) {
    return Status::InvalidArgument("join inputs have an empty universe");
  }

  uint32_t num_partitions =
      opts.num_partitions_override != 0
          ? opts.num_partitions_override
          : SpatialPartitioner::EstimatePartitionCount(
                r.info.cardinality, s.info.cardinality,
                opts.memory_budget_bytes);
  const uint32_t num_tiles = std::max(opts.num_tiles, num_partitions);
  const SpatialPartitioner partitioner(universe, num_tiles, num_partitions,
                                       opts.mapping);
  breakdown->num_partitions = num_partitions;
  breakdown->num_tiles = partitioner.num_tiles();

  // ---- Filter: partition both inputs. ----
  const bool two_layer = opts.dedup_mode == DedupMode::kTwoLayer;
  const size_t record_size =
      two_layer ? sizeof(ClassedKeyPointer) : sizeof(KeyPointer);
  std::vector<SpoolFile> r_spools, s_spools;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    PBSM_ASSIGN_OR_RETURN(SpoolFile rs, SpoolFile::Create(pool, record_size));
    PBSM_ASSIGN_OR_RETURN(SpoolFile ss, SpoolFile::Create(pool, record_size));
    r_spools.push_back(std::move(rs));
    s_spools.push_back(std::move(ss));
  }

  {
    const std::string phase = "partition " + r.info.name;
    PhaseCost& cost = breakdown->AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_RETURN_IF_ERROR(
        two_layer ? PartitionInputClassed(*r.heap, partitioner, &r_spools,
                                          &breakdown->replicated)
                  : PartitionInput(*r.heap, partitioner, &r_spools,
                                   &breakdown->replicated));
  }
  {
    const std::string phase = "partition " + s.info.name;
    PhaseCost& cost = breakdown->AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_RETURN_IF_ERROR(
        two_layer ? PartitionInputClassed(*s.heap, partitioner, &s_spools,
                                          &breakdown->replicated)
                  : PartitionInput(*s.heap, partitioner, &s_spools,
                                   &breakdown->replicated));
  }

  // ---- Filter: merge each partition pair with the plane sweep. ----
  {
    PhaseCost& cost = breakdown->AddPhase("merge partitions");
    PhaseTimer timer(disk, &cost, "merge partitions");
    for (uint32_t p = 0; p < num_partitions; ++p) {
      if (opts.cancel != nullptr && opts.cancel->is_cancelled()) {
        // Materialize the open phase spans so a caller exporting the span
        // tree after this abort sees a complete tree.
        Tracer::Global().FlushOpenSpans();
        return opts.cancel->CancellationStatus();
      }
      PBSM_RETURN_IF_ERROR(
          two_layer ? MergePairTwoLayer(&r_spools[p], &s_spools[p], opts,
                                        sorter, breakdown)
                    : MergePair(pool, &r_spools[p], &s_spools[p], universe,
                                opts, /*depth=*/0, sorter, breakdown));
      PBSM_RETURN_IF_ERROR(r_spools[p].Drop());
      PBSM_RETURN_IF_ERROR(s_spools[p].Drop());
    }
  }
  return Status::OK();
}

Result<JoinCostBreakdown> PbsmJoin(BufferPool* pool, const JoinInput& r,
                                   const JoinInput& s, SpatialPredicate pred,
                                   const JoinOptions& opts,
                                   const ResultSink& sink) {
  JoinCostBreakdown breakdown;
  DiskManager* disk = pool->disk();

  CandidateSorter sorter(pool, opts.memory_budget_bytes, OidPairLess{});
  PBSM_RETURN_IF_ERROR(PbsmFilter(pool, r, s, opts, &sorter, &breakdown));

  // ---- Refinement. ----
  {
    PhaseCost& cost = breakdown.AddPhase("refinement");
    PhaseTimer timer(disk, &cost, "refinement");
    const Status refine_status =
        RefineCandidates(&sorter, r, s, pred, opts, sink, &breakdown);
    if (!refine_status.ok()) {
      // Same contract as the merge loop above: materialize the open phase
      // spans (and the refinement sub-spans' ancestors) so a span-tree
      // export after a cancellation or I/O abort sees a complete tree.
      Tracer::Global().FlushOpenSpans();
      return refine_status;
    }
  }
  return breakdown;
}

}  // namespace pbsm
