#ifndef PBSM_CORE_PBSM_JOIN_H_
#define PBSM_CORE_PBSM_JOIN_H_

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// The Partition Based Spatial-Merge join (the paper's §3).
///
/// Filter step: both inputs are scanned once; each tuple's key-pointer
/// (<MBR, OID>) is routed by the tiled spatial partitioning function into
/// one or more of P on-disk partitions (P from Equation 1 unless
/// overridden). Each partition pair is then merged in memory with a
/// plane-sweep rectangle join, producing candidate OID pairs.
///
/// Refinement step: candidates are sorted on (OID_R, OID_S) with duplicate
/// elimination, tuples are fetched block-wise (R in physical order, S
/// sequentially per block) and the exact predicate is evaluated.
///
/// Partition pairs that exceed the memory budget are handled per §3.5:
/// dynamically repartitioned with a finer tile grid (when
/// opts.dynamic_repartition, an extension over the paper's implementation),
/// falling back to chunked sweeps with S re-reads once the recursion depth
/// is exhausted.
///
/// Returns the per-component cost breakdown; result pairs go to `sink`
/// (which may be empty when only counts are needed).
/// Deprecated for new callers: use SpatialJoin() in core/spatial_join.h,
/// which wraps this entry point behind the unified JoinSpec/JoinResult
/// API and adds tracing + metrics capture.
Result<JoinCostBreakdown> PbsmJoin(BufferPool* pool, const JoinInput& r,
                                   const JoinInput& s, SpatialPredicate pred,
                                   const JoinOptions& opts,
                                   const ResultSink& sink = {});

}  // namespace pbsm

#endif  // PBSM_CORE_PBSM_JOIN_H_
