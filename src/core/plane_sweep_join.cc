#include "core/plane_sweep_join.h"

#include <algorithm>
#include <unordered_map>

#include "core/interval_tree.h"

namespace pbsm {

namespace {

bool ByXlo(const KeyPointer& a, const KeyPointer& b) {
  return a.mbr.xlo < b.mbr.xlo;
}

uint64_t ForwardSweep(std::vector<KeyPointer>* r, std::vector<KeyPointer>* s,
                      const PairEmitter& emit) {
  std::sort(r->begin(), r->end(), ByXlo);
  std::sort(s->begin(), s->end(), ByXlo);
  uint64_t count = 0;

  // Scans `other` from `from` while x-extents overlap `head`, testing the
  // y-axis per element (§3.1). `head_is_r` keeps emitted pairs (R, S).
  auto scan = [&](const KeyPointer& head, const std::vector<KeyPointer>& other,
                  size_t from, bool head_is_r) {
    for (size_t k = from;
         k < other.size() && other[k].mbr.xlo <= head.mbr.xhi; ++k) {
      if (head.mbr.ylo <= other[k].mbr.yhi &&
          other[k].mbr.ylo <= head.mbr.yhi) {
        if (head_is_r) {
          emit(head.oid, other[k].oid);
        } else {
          emit(other[k].oid, head.oid);
        }
        ++count;
      }
    }
  };

  size_t i = 0, j = 0;
  while (i < r->size() && j < s->size()) {
    if ((*r)[i].mbr.xlo <= (*s)[j].mbr.xlo) {
      scan((*r)[i], *s, j, /*head_is_r=*/true);
      ++i;
    } else {
      scan((*s)[j], *r, i, /*head_is_r=*/false);
      ++j;
    }
  }
  return count;
}

uint64_t IntervalTreeSweep(std::vector<KeyPointer>* r,
                           std::vector<KeyPointer>* s,
                           const PairEmitter& emit) {
  // Event-driven sweep along x. Starts are processed before ends at equal
  // x so touching rectangles count as overlapping (closed semantics).
  struct Event {
    double x;
    bool is_start;
    bool is_r;
    const KeyPointer* kp;
  };
  std::vector<Event> events;
  events.reserve(2 * (r->size() + s->size()));
  for (const KeyPointer& kp : *r) {
    events.push_back({kp.mbr.xlo, true, true, &kp});
    events.push_back({kp.mbr.xhi, false, true, &kp});
  }
  for (const KeyPointer& kp : *s) {
    events.push_back({kp.mbr.xlo, true, false, &kp});
    events.push_back({kp.mbr.xhi, false, false, &kp});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.is_start > b.is_start;  // Starts first.
  });

  IntervalTree active_r, active_s;
  std::unordered_map<const KeyPointer*, uint64_t> handles;
  handles.reserve(r->size() + s->size());
  uint64_t count = 0;

  for (const Event& ev : events) {
    IntervalTree& own = ev.is_r ? active_r : active_s;
    if (!ev.is_start) {
      own.Remove(handles[ev.kp]);
      continue;
    }
    const IntervalTree& other = ev.is_r ? active_s : active_r;
    other.QueryOverlaps(ev.kp->mbr.ylo, ev.kp->mbr.yhi,
                        [&](uint64_t other_oid) {
                          if (ev.is_r) {
                            emit(ev.kp->oid, other_oid);
                          } else {
                            emit(other_oid, ev.kp->oid);
                          }
                          ++count;
                        });
    handles[ev.kp] = own.Insert(ev.kp->mbr.ylo, ev.kp->mbr.yhi, ev.kp->oid);
  }
  return count;
}

uint64_t NestedLoops(const std::vector<KeyPointer>& r,
                     const std::vector<KeyPointer>& s,
                     const PairEmitter& emit) {
  uint64_t count = 0;
  for (const KeyPointer& a : r) {
    for (const KeyPointer& b : s) {
      if (a.mbr.Intersects(b.mbr)) {
        emit(a.oid, b.oid);
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

uint64_t PlaneSweepJoin(std::vector<KeyPointer>* r,
                        std::vector<KeyPointer>* s, const PairEmitter& emit,
                        SweepAlgorithm algorithm) {
  switch (algorithm) {
    case SweepAlgorithm::kForwardSweep:
      return ForwardSweep(r, s, emit);
    case SweepAlgorithm::kIntervalTreeSweep:
      return IntervalTreeSweep(r, s, emit);
    case SweepAlgorithm::kNestedLoops:
      return NestedLoops(*r, *s, emit);
  }
  return 0;
}

}  // namespace pbsm
