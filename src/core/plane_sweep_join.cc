#include "core/plane_sweep_join.h"

#include "core/sweep_kernel.h"

namespace pbsm {

uint64_t PlaneSweepJoin(std::vector<KeyPointer>* r,
                        std::vector<KeyPointer>* s, const PairEmitter& emit,
                        SweepAlgorithm algorithm, SimdMode simd,
                        InputOrder order) {
  return PlaneSweepJoinBatch(r, s, EmitterBatchSink{emit}, algorithm, simd,
                             order);
}

}  // namespace pbsm
