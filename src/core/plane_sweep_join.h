#ifndef PBSM_CORE_PLANE_SWEEP_JOIN_H_
#define PBSM_CORE_PLANE_SWEEP_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/key_pointer.h"

namespace pbsm {

/// Algorithm used to merge one partition pair of key-pointer sets.
enum class SweepAlgorithm {
  /// The paper's §3.1 algorithm: sort both inputs on MBR.xlo, repeatedly
  /// pick the unprocessed element with the smallest xlo and scan the other
  /// input up to its xhi, testing y-overlap per element.
  kForwardSweep,
  /// The footnote's variant: an event-driven sweep that keeps the active
  /// y-intervals of each input in an interval tree, so the y-overlap test
  /// is a tree query instead of a per-element check.
  kIntervalTreeSweep,
  /// All-pairs with MBR test; only sensible for tests and tiny inputs.
  kNestedLoops,
};

/// Which data-parallel kernel the forward sweep and node scans run on.
/// kAuto consults the PBSM_SIMD environment variable (`auto|avx2|scalar`),
/// then CPUID; see core/sweep_kernel.h for the resolution rules.
enum class SimdMode { kAuto, kScalar, kAvx2 };

/// Whether a partition pair is already sorted on mbr.xlo. The §3.5
/// repartition path routes an already-sorted parent into sub-partitions in
/// order, so the recursive sweeps can skip the std::sort.
enum class InputOrder { kUnsorted, kSortedByXlo };

/// Emits every (r.oid, s.oid) pair whose MBRs overlap.
using PairEmitter = std::function<void(uint64_t r_oid, uint64_t s_oid)>;

/// In-memory rectangle join between two key-pointer sets (one partition
/// pair). Sorts `r` and `s` in place as a side effect (skipped when
/// `order` promises they are sorted on mbr.xlo already). Returns the
/// number of emitted pairs.
///
/// This is the legacy per-pair-emitter wrapper; hot paths use the batch
/// API in core/sweep_kernel.h (PlaneSweepJoinBatch) which flushes
/// OidPair blocks without a std::function call per pair.
uint64_t PlaneSweepJoin(std::vector<KeyPointer>* r,
                        std::vector<KeyPointer>* s, const PairEmitter& emit,
                        SweepAlgorithm algorithm =
                            SweepAlgorithm::kForwardSweep,
                        SimdMode simd = SimdMode::kAuto,
                        InputOrder order = InputOrder::kUnsorted);

}  // namespace pbsm

#endif  // PBSM_CORE_PLANE_SWEEP_JOIN_H_
