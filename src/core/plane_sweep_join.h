#ifndef PBSM_CORE_PLANE_SWEEP_JOIN_H_
#define PBSM_CORE_PLANE_SWEEP_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/key_pointer.h"

namespace pbsm {

/// Algorithm used to merge one partition pair of key-pointer sets.
enum class SweepAlgorithm {
  /// The paper's §3.1 algorithm: sort both inputs on MBR.xlo, repeatedly
  /// pick the unprocessed element with the smallest xlo and scan the other
  /// input up to its xhi, testing y-overlap per element.
  kForwardSweep,
  /// The footnote's variant: an event-driven sweep that keeps the active
  /// y-intervals of each input in an interval tree, so the y-overlap test
  /// is a tree query instead of a per-element check.
  kIntervalTreeSweep,
  /// All-pairs with MBR test; only sensible for tests and tiny inputs.
  kNestedLoops,
};

/// Emits every (r.oid, s.oid) pair whose MBRs overlap.
using PairEmitter = std::function<void(uint64_t r_oid, uint64_t s_oid)>;

/// In-memory rectangle join between two key-pointer sets (one partition
/// pair). Sorts `r` and `s` in place as a side effect. Returns the number
/// of emitted pairs.
uint64_t PlaneSweepJoin(std::vector<KeyPointer>* r,
                        std::vector<KeyPointer>* s, const PairEmitter& emit,
                        SweepAlgorithm algorithm =
                            SweepAlgorithm::kForwardSweep);

}  // namespace pbsm

#endif  // PBSM_CORE_PLANE_SWEEP_JOIN_H_
