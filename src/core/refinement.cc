#include "core/refinement.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "geom/mer.h"
#include "storage/tuple.h"

namespace pbsm {

namespace {

/// An R tuple held in memory for one refinement block.
struct BlockTuple {
  uint64_t oid = 0;
  Geometry geometry;
  size_t bytes = 0;  // Serialized size, for budget accounting.
  // Lazily computed MER (containment pre-filter). nullopt = not computed.
  std::optional<Rect> mer;
};

/// One candidate inside a block: index of the R tuple + the S OID.
struct BlockPair {
  size_t r_index = 0;
  uint64_t s_oid = 0;
};

}  // namespace

Status RefinePairStream(const SortedPairStream& next, const HeapFile& r_heap,
                        const HeapFile& s_heap, SpatialPredicate pred,
                        const JoinOptions& opts, const ResultSink& sink,
                        JoinCostBreakdown* breakdown) {
  // A candidate passing the exact predicate is a filter true positive; one
  // failing it was a false positive of the MBR filter (the CPU the paper's
  // §4.4 refinement discussion is about).
  static Counter* const true_positives =
      MetricsRegistry::Global().GetCounter("join.refine.true_positives");
  static Counter* const false_positives =
      MetricsRegistry::Global().GetCounter("join.refine.false_positives");
  uint64_t tp = 0, fp = 0;

  OidPair pushed_back{};
  bool pending = false;  // `pushed_back` holds an unconsumed pair.
  std::string record;

  // Reads the next pair, honouring a block-boundary push-back.
  auto pull = [&](OidPair* out) -> Result<bool> {
    if (pending) {
      pending = false;
      *out = pushed_back;
      return true;
    }
    return next(out);
  };

  while (true) {
    // Block boundary: the natural granularity to honour an external
    // cancellation (service timeout) without polling per pair.
    if (opts.cancel != nullptr && opts.cancel->is_cancelled()) {
      return opts.cancel->CancellationStatus();
    }
    // ---- Build one block of R tuples + their candidate pairs. ----
    std::vector<BlockTuple> r_tuples;
    std::vector<BlockPair> pairs;
    size_t block_bytes = 0;
    bool end_of_stream = false;

    while (true) {
      OidPair pair;
      PBSM_ASSIGN_OR_RETURN(const bool has, pull(&pair));
      if (!has) {
        end_of_stream = true;
        break;
      }
      if (r_tuples.empty() || r_tuples.back().oid != pair.r) {
        // New R tuple: check the budget *before* admitting it.
        if (!r_tuples.empty() &&
            block_bytes + sizeof(BlockPair) >= opts.memory_budget_bytes) {
          // Block full; push the pair back for the next block.
          pushed_back = pair;
          pending = true;
          break;
        }
        PBSM_RETURN_IF_ERROR(r_heap.Fetch(Oid::Decode(pair.r), &record));
        PBSM_ASSIGN_OR_RETURN(Tuple tuple,
                              Tuple::Parse(record.data(), record.size()));
        BlockTuple bt;
        bt.oid = pair.r;
        bt.geometry = std::move(tuple.geometry);
        if (!tuple.mer.empty()) bt.mer = tuple.mer;  // Stored MER (BKSS94).
        bt.bytes = record.size();
        block_bytes += bt.bytes;
        r_tuples.push_back(std::move(bt));
      }
      pairs.push_back(BlockPair{r_tuples.size() - 1, pair.s});
      block_bytes += sizeof(BlockPair);
      if (block_bytes >= opts.memory_budget_bytes) break;
    }

    if (pairs.empty()) {
      if (end_of_stream) break;
      continue;
    }

    // ---- "Swizzle": sort the block's pairs by OID_S so the S relation is
    // read sequentially. ----
    std::sort(pairs.begin(), pairs.end(),
              [](const BlockPair& a, const BlockPair& b) {
                return a.s_oid < b.s_oid;
              });

    uint64_t cached_s_oid = ~0ull;
    Geometry cached_s_geometry;
    for (const BlockPair& bp : pairs) {
      // Small blocks make the boundary check above too coarse: a timeout
      // arriving while results stream to a slow sink must still cancel the
      // query before the block finishes.
      if (opts.cancel != nullptr && opts.cancel->is_cancelled()) {
        return opts.cancel->CancellationStatus();
      }
      if (bp.s_oid != cached_s_oid) {
        PBSM_RETURN_IF_ERROR(s_heap.Fetch(Oid::Decode(bp.s_oid), &record));
        PBSM_ASSIGN_OR_RETURN(Tuple tuple,
                              Tuple::Parse(record.data(), record.size()));
        cached_s_geometry = std::move(tuple.geometry);
        cached_s_oid = bp.s_oid;
      }
      BlockTuple& rt = r_tuples[bp.r_index];

      bool is_result;
      if (pred == SpatialPredicate::kContains && opts.use_mer_filter &&
          rt.geometry.type() == GeometryType::kPolygon) {
        // BKSS94: MBR of the inner inside the MER of the outer proves
        // containment without the exact test. Uses the MER stored with the
        // tuple when the relation was loaded with precompute_mers;
        // otherwise computes (and caches) one per block.
        if (!rt.mer.has_value()) rt.mer = ComputeMer(rt.geometry);
        if (!rt.geometry.Mbr().Contains(cached_s_geometry.Mbr())) {
          is_result = false;
        } else if (!rt.mer->empty() &&
                   rt.mer->Contains(cached_s_geometry.Mbr())) {
          is_result = true;
        } else {
          is_result = EvaluatePredicate(pred, rt.geometry,
                                        cached_s_geometry,
                                        opts.refinement_mode);
        }
      } else {
        is_result = EvaluatePredicate(pred, rt.geometry, cached_s_geometry,
                                      opts.refinement_mode);
      }
      if (is_result) {
        ++tp;
        ++breakdown->results;
        if (sink) sink(Oid::Decode(rt.oid), Oid::Decode(bp.s_oid));
      } else {
        ++fp;
      }
    }

    if (end_of_stream) break;
  }
  true_positives->Add(tp);
  false_positives->Add(fp);
  return Status::OK();
}

Status RefineCandidates(CandidateSorter* candidates,
                        const HeapFile& r_heap, const HeapFile& s_heap,
                        SpatialPredicate pred, const JoinOptions& opts,
                        const ResultSink& sink,
                        JoinCostBreakdown* breakdown) {
  PBSM_RETURN_IF_ERROR(candidates->Finish());

  bool have_prev = false;
  OidPair prev{};
  // De-duplicating stream over the sorted candidates. A pair pushed back at
  // a block boundary by RefinePairStream was already de-duplicated on its
  // first read; `prev` still equals it, so genuine later duplicates are
  // still caught.
  const SortedPairStream next = [&](OidPair* out) -> Result<bool> {
    while (true) {
      OidPair pair;
      PBSM_ASSIGN_OR_RETURN(const bool has, candidates->Next(&pair));
      if (!has) return false;
      if (have_prev && pair == prev) {
        ++breakdown->duplicates_removed;
        continue;
      }
      have_prev = true;
      prev = pair;
      *out = pair;
      return true;
    }
  };
  return RefinePairStream(next, r_heap, s_heap, pred, opts, sink, breakdown);
}

}  // namespace pbsm
