#include "core/refinement.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/refinement_engine.h"
#include "geom/mer.h"
#include "storage/tuple.h"

namespace pbsm {

namespace {

/// An R tuple held in memory for one refinement block.
struct BlockTuple {
  uint64_t oid = 0;
  Geometry geometry;
  size_t bytes = 0;  // Serialized size, for budget accounting.
  // Lazily computed MER (containment pre-filter). nullopt = not computed.
  std::optional<Rect> mer;
  // Lazily built cell cover (adaptive modes); lives exactly as long as the
  // geometry it describes, so one rasterization serves every pair of the
  // block that references this R tuple.
  CellCover cover;
};

/// One candidate inside a block: index of the R tuple + the S OID.
struct BlockPair {
  size_t r_index = 0;
  uint64_t s_oid = 0;
};

/// Per-stream tallies flushed to the metrics registry exactly once, on
/// every exit path (including cancellation and I/O errors).
struct RefineStats {
  uint64_t tp = 0;              ///< Pairs emitted (hits).
  uint64_t fp = 0;              ///< Pairs dropped (filter false positives).
  uint64_t true_hits = 0;       ///< Certain hits from interior cell overlap.
  uint64_t cell_rejects = 0;    ///< Certain misses from disjoint covers.
  uint64_t exact_fallbacks = 0; ///< Boundary collisions sent to pass 2.
  uint64_t approx_accepted = 0; ///< Approximate-mode uncertain accepts.
  uint64_t cover_builds = 0;    ///< S covers rasterized (one per long run).

  void Flush() const {
    // A candidate passing the exact predicate is a filter true positive;
    // one failing it was a false positive of the MBR filter (the CPU the
    // paper's §4.4 refinement discussion is about). Cell-certain decisions
    // count toward the same pair, so tp/fp stay comparable across modes.
    static Counter* const true_positives =
        MetricsRegistry::Global().GetCounter("join.refine.true_positives");
    static Counter* const false_positives =
        MetricsRegistry::Global().GetCounter("join.refine.false_positives");
    static Counter* const true_hit_counter =
        MetricsRegistry::Global().GetCounter("refinement.true_hits");
    static Counter* const cell_reject_counter =
        MetricsRegistry::Global().GetCounter("refinement.cell_rejects");
    static Counter* const skipped_counter =
        MetricsRegistry::Global().GetCounter("refinement.skipped_exact");
    static Counter* const fallback_counter =
        MetricsRegistry::Global().GetCounter("refinement.exact_fallbacks");
    static Counter* const approx_counter =
        MetricsRegistry::Global().GetCounter("refinement.approx_accepted");
    static Counter* const build_counter =
        MetricsRegistry::Global().GetCounter("refinement.cover_builds");
    true_positives->Add(tp);
    false_positives->Add(fp);
    true_hit_counter->Add(true_hits);
    cell_reject_counter->Add(cell_rejects);
    skipped_counter->Add(true_hits + cell_rejects + approx_accepted);
    fallback_counter->Add(exact_fallbacks);
    approx_counter->Add(approx_accepted);
    build_counter->Add(cover_builds);
  }
};

/// Reads sorted candidate pairs into memory-budget-sized blocks of R tuples
/// plus their pairs, honouring the block-boundary push-back.
class BlockReader {
 public:
  BlockReader(const SortedPairStream& next, const HeapFile& r_heap,
              const JoinOptions& opts)
      : next_(next), r_heap_(r_heap), opts_(opts) {}

  /// Fills one block; returns false when the stream is exhausted and no
  /// pairs remain. On true, `pairs` is non-empty and indexes `r_tuples`.
  Result<bool> NextBlock(std::vector<BlockTuple>* r_tuples,
                         std::vector<BlockPair>* pairs) {
    r_tuples->clear();
    pairs->clear();
    size_t block_bytes = 0;
    while (true) {
      OidPair pair;
      PBSM_ASSIGN_OR_RETURN(const bool has, Pull(&pair));
      if (!has) break;
      if (r_tuples->empty() || r_tuples->back().oid != pair.r) {
        // New R tuple: check the budget *before* admitting it.
        if (!r_tuples->empty() &&
            block_bytes + sizeof(BlockPair) >= opts_.memory_budget_bytes) {
          // Block full; push the pair back for the next block.
          pushed_back_ = pair;
          pending_ = true;
          break;
        }
        PBSM_RETURN_IF_ERROR(r_heap_.Fetch(Oid::Decode(pair.r), &record_));
        PBSM_ASSIGN_OR_RETURN(Tuple tuple,
                              Tuple::Parse(record_.data(), record_.size()));
        BlockTuple bt;
        bt.oid = pair.r;
        bt.geometry = std::move(tuple.geometry);
        if (!tuple.mer.empty()) bt.mer = tuple.mer;  // Stored MER (BKSS94).
        bt.bytes = record_.size();
        block_bytes += bt.bytes;
        r_tuples->push_back(std::move(bt));
      }
      pairs->push_back(BlockPair{r_tuples->size() - 1, pair.s});
      block_bytes += sizeof(BlockPair);
      if (block_bytes >= opts_.memory_budget_bytes) break;
    }
    return !pairs->empty();
  }

 private:
  // Reads the next pair, honouring a block-boundary push-back.
  Result<bool> Pull(OidPair* out) {
    if (pending_) {
      pending_ = false;
      *out = pushed_back_;
      return true;
    }
    return next_(out);
  }

  const SortedPairStream& next_;
  const HeapFile& r_heap_;
  const JoinOptions& opts_;
  OidPair pushed_back_{};
  bool pending_ = false;  // `pushed_back_` holds an unconsumed pair.
  std::string record_;
};

/// Fetches S tuples through a one-entry cache: pairs arrive sorted on
/// OID_S, so runs of the same S tuple parse once.
class CachedSFetcher {
 public:
  explicit CachedSFetcher(const HeapFile& s_heap) : s_heap_(s_heap) {}

  Status Load(uint64_t s_oid) {
    if (s_oid == oid_) return Status::OK();
    PBSM_RETURN_IF_ERROR(s_heap_.Fetch(Oid::Decode(s_oid), &record_));
    PBSM_ASSIGN_OR_RETURN(Tuple tuple,
                          Tuple::Parse(record_.data(), record_.size()));
    geometry_ = std::move(tuple.geometry);
    oid_ = s_oid;
    return Status::OK();
  }

  const Geometry& geometry() const { return geometry_; }

 private:
  const HeapFile& s_heap_;
  uint64_t oid_ = ~0ull;
  Geometry geometry_;
  std::string record_;
};

/// The exact per-pair test, including the BKSS94 MER short-circuit for
/// containment. Uses the MER stored with the tuple when the relation was
/// loaded with precompute_mers; otherwise computes (and caches) one per
/// block.
bool ExactPairTest(BlockTuple* rt, const Geometry& s_geometry,
                   SpatialPredicate pred, const JoinOptions& opts) {
  if (pred == SpatialPredicate::kContains && opts.use_mer_filter &&
      rt->geometry.type() == GeometryType::kPolygon) {
    // BKSS94: MBR of the inner inside the MER of the outer proves
    // containment without the exact test.
    if (!rt->mer.has_value()) rt->mer = ComputeMer(rt->geometry);
    if (!rt->geometry.Mbr().Contains(s_geometry.Mbr())) return false;
    if (!rt->mer->empty() && rt->mer->Contains(s_geometry.Mbr())) return true;
  }
  return EvaluatePredicate(pred, rt->geometry, s_geometry,
                           opts.refinement_mode);
}

/// The classic single-pass loop: every pair pays the exact test.
Status ExactRefineLoop(const SortedPairStream& next, const HeapFile& r_heap,
                       const HeapFile& s_heap, SpatialPredicate pred,
                       const JoinOptions& opts, const ResultSink& sink,
                       JoinCostBreakdown* breakdown, RefineStats* stats) {
  BlockReader reader(next, r_heap, opts);
  std::vector<BlockTuple> r_tuples;
  std::vector<BlockPair> pairs;
  while (true) {
    // Block boundary: the natural granularity to honour an external
    // cancellation (service timeout) without polling per pair.
    if (opts.cancel != nullptr && opts.cancel->is_cancelled()) {
      return opts.cancel->CancellationStatus();
    }
    PBSM_ASSIGN_OR_RETURN(const bool has, reader.NextBlock(&r_tuples, &pairs));
    if (!has) break;

    // ---- "Swizzle": sort the block's pairs by OID_S so the S relation is
    // read sequentially. ----
    std::sort(pairs.begin(), pairs.end(),
              [](const BlockPair& a, const BlockPair& b) {
                return a.s_oid < b.s_oid;
              });

    CachedSFetcher s_fetch(s_heap);
    for (const BlockPair& bp : pairs) {
      // Small blocks make the boundary check above too coarse: a timeout
      // arriving while results stream to a slow sink must still cancel the
      // query before the block finishes.
      if (opts.cancel != nullptr && opts.cancel->is_cancelled()) {
        return opts.cancel->CancellationStatus();
      }
      PBSM_RETURN_IF_ERROR(s_fetch.Load(bp.s_oid));
      BlockTuple& rt = r_tuples[bp.r_index];
      if (ExactPairTest(&rt, s_fetch.geometry(), pred, opts)) {
        ++stats->tp;
        ++breakdown->results;
        if (sink) sink(Oid::Decode(rt.oid), Oid::Decode(bp.s_oid));
      } else {
        ++stats->fp;
      }
    }
  }
  return Status::OK();
}

/// The adaptive loop. The block's pairs, swizzle-sorted on OID_S, form one
/// contiguous run per S tuple — so an S cover's entire useful life is its
/// run. Each run rasterizes the (just-fetched, still-live) S geometry into
/// a single scratch cover whose vectors keep their capacity across runs:
/// no per-S allocation, no cover cache to size or thrash, and boundary
/// collisions fall back to the exact predicate inline, while the parsed S
/// geometry is still in hand.
Status AdaptiveRefineLoop(const SortedPairStream& next, const JoinInput& r,
                          const JoinInput& s, SpatialPredicate pred,
                          const JoinOptions& opts, const ResultSink& sink,
                          JoinCostBreakdown* breakdown, RefineStats* stats) {
  const Rect universe = Rect::Union(r.info.universe, s.info.universe);
  const double avg_x =
      (r.info.avg_mbr_width() + s.info.avg_mbr_width()) / 2.0;
  const double avg_y =
      (r.info.avg_mbr_height() + s.info.avg_mbr_height()) / 2.0;
  const std::unique_ptr<RefinementEngine> engine =
      RefinementEngine::Create(pred, opts.refine, universe, avg_x, avg_y);
  const bool emit_accepts = opts.refine.mode == RefineMode::kApproximate;

  BlockReader reader(next, *r.heap, opts);
  CellCover s_cover;  // Run-scoped scratch; capacities persist across runs.
  std::vector<BlockTuple> r_tuples;
  std::vector<BlockPair> pairs;
  while (true) {
    if (opts.cancel != nullptr && opts.cancel->is_cancelled()) {
      return opts.cancel->CancellationStatus();
    }
    PBSM_ASSIGN_OR_RETURN(const bool has, reader.NextBlock(&r_tuples, &pairs));
    if (!has) break;

    std::sort(pairs.begin(), pairs.end(),
              [](const BlockPair& a, const BlockPair& b) {
                return a.s_oid < b.s_oid;
              });

    // ---- Cell-level classification, one run of equal-OID_S pairs at a
    // time (the swizzle sort groups them). Each S tuple's pair multiplicity
    // is known before its cover exists: a run too short to amortize the
    // O(boundary length) rasterization skips the cell filter and pays the
    // exact predicate directly — the cost-based side of the adaptive
    // engine. Boundary collisions (kNeedExact) run the exact predicate on
    // the spot: the S geometry is already parsed, so deferring them would
    // only buy a second fetch. ----
    {
      TraceSpan span("refine/cell_filter");
      CachedSFetcher s_fetch(*s.heap);
      const size_t min_run = std::max<uint32_t>(opts.refine.min_cover_pairs, 1);
      for (size_t i = 0; i < pairs.size();) {
        size_t j = i + 1;
        while (j < pairs.size() && pairs[j].s_oid == pairs[i].s_oid) ++j;
        const uint64_t s_oid = pairs[i].s_oid;
        PBSM_RETURN_IF_ERROR(s_fetch.Load(s_oid));
        const bool use_cover = j - i >= min_run;
        if (use_cover) {
          engine->BuildCover(s_fetch.geometry(), &s_cover);
          ++stats->cover_builds;
        } else {
          // Short run: exact tests cost less than the build.
          stats->exact_fallbacks += j - i;
        }
        for (; i < j; ++i) {
          if (opts.cancel != nullptr && opts.cancel->is_cancelled()) {
            return opts.cancel->CancellationStatus();
          }
          const BlockPair& bp = pairs[i];
          BlockTuple& rt = r_tuples[bp.r_index];
          CellDecision cd = CellDecision::kNeedExact;
          if (use_cover) {
            cd = engine->Classify(rt.geometry, &rt.cover, s_fetch.geometry(),
                                  s_cover);
            if (cd == CellDecision::kNeedExact) ++stats->exact_fallbacks;
          }
          switch (cd) {
            case CellDecision::kHit:
              ++stats->true_hits;
              ++stats->tp;
              ++breakdown->results;
              if (sink) sink(Oid::Decode(rt.oid), Oid::Decode(bp.s_oid));
              break;
            case CellDecision::kAccepted:
              PBSM_CHECK(emit_accepts) << "kAccepted outside approximate mode";
              ++stats->approx_accepted;
              ++stats->tp;
              ++breakdown->results;
              if (sink) sink(Oid::Decode(rt.oid), Oid::Decode(bp.s_oid));
              break;
            case CellDecision::kMiss:
              ++stats->cell_rejects;
              ++stats->fp;
              break;
            case CellDecision::kNeedExact:
              if (ExactPairTest(&rt, s_fetch.geometry(), pred, opts)) {
                ++stats->tp;
                ++breakdown->results;
                if (sink) sink(Oid::Decode(rt.oid), Oid::Decode(bp.s_oid));
              } else {
                ++stats->fp;
              }
              break;
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status RefinePairStream(const SortedPairStream& next, const JoinInput& r,
                        const JoinInput& s, SpatialPredicate pred,
                        const JoinOptions& opts, const ResultSink& sink,
                        JoinCostBreakdown* breakdown) {
  RefineStats stats;
  const Status status =
      opts.refine.mode == RefineMode::kExact
          ? ExactRefineLoop(next, *r.heap, *s.heap, pred, opts, sink,
                            breakdown, &stats)
          : AdaptiveRefineLoop(next, r, s, pred, opts, sink, breakdown,
                               &stats);
  stats.Flush();
  return status;
}

Status RefineCandidates(CandidateSorter* candidates, const JoinInput& r,
                        const JoinInput& s, SpatialPredicate pred,
                        const JoinOptions& opts, const ResultSink& sink,
                        JoinCostBreakdown* breakdown) {
  PBSM_RETURN_IF_ERROR(candidates->Finish());

  bool have_prev = false;
  OidPair prev{};
  // De-duplicating stream over the sorted candidates. A pair pushed back at
  // a block boundary by RefinePairStream was already de-duplicated on its
  // first read; `prev` still equals it, so genuine later duplicates are
  // still caught.
  const SortedPairStream next = [&](OidPair* out) -> Result<bool> {
    while (true) {
      OidPair pair;
      PBSM_ASSIGN_OR_RETURN(const bool has, candidates->Next(&pair));
      if (!has) return false;
      if (have_prev && pair == prev) {
        ++breakdown->duplicates_removed;
        continue;
      }
      have_prev = true;
      prev = pair;
      *out = pair;
      return true;
    }
  };
  return RefinePairStream(next, r, s, pred, opts, sink, breakdown);
}

}  // namespace pbsm
