#ifndef PBSM_CORE_REFINEMENT_H_
#define PBSM_CORE_REFINEMENT_H_

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "core/key_pointer.h"
#include "storage/external_sort.h"

namespace pbsm {

/// Comparator for candidate pairs (primary OID_R, secondary OID_S).
struct OidPairLess {
  bool operator()(const OidPair& a, const OidPair& b) const { return a < b; }
};

/// External sorter over filter-step candidates.
using CandidateSorter = ExternalSorter<OidPair, OidPairLess>;

/// Pull-function producing the next already-de-duplicated candidate pair in
/// (OID_R, OID_S) order; returns false at end of stream.
using SortedPairStream = std::function<Result<bool>(OidPair*)>;

/// Core of the refinement step, driven by any sorted, de-duplicated pair
/// stream — the serial path wraps an external sorter (RefineCandidates),
/// the parallel executor wraps a contiguous shard of an in-memory sorted
/// candidate array. Steps 2-4 of the §3.2 algorithm: block-wise R fetches
/// in OID order, per-block re-sort on OID_S ("swizzling"), sequential S
/// fetches, exact predicate evaluation. Updates breakdown->results only.
///
/// With opts.refine.mode != kExact the block loop is driven by the query's
/// RefinementEngine ("refine/cell_filter" trace sub-span): each run of
/// equal-OID_S pairs rasterizes its S geometry into a scratch
/// interior/boundary cell cover (runs shorter than
/// opts.refine.min_cover_pairs skip the build), certain hits and misses are
/// settled at cell level, and boundary collisions pay the exact predicate
/// inline while the parsed S geometry is in hand. The inputs' catalog
/// entries supply the join universe and the extent statistics the auto grid
/// order derives from.
Status RefinePairStream(const SortedPairStream& next, const JoinInput& r,
                        const JoinInput& s, SpatialPredicate pred,
                        const JoinOptions& opts, const ResultSink& sink,
                        JoinCostBreakdown* breakdown);

/// The refinement step shared by PBSM and the R-tree join (§3.2):
///
///  1. externally sorts the candidate pairs on (OID_R, OID_S), dropping
///     duplicates during the merge (a tuple pair can be produced by several
///     partitions / tile overlaps);
///  2. reads as many R tuples as fit in the memory budget, in OID_R order
///     (physical order, so the reads are near-sequential);
///  3. "swizzles" each pair's OID_R to the in-memory R tuple, re-sorts the
///     block's pairs on OID_S, and fetches S tuples sequentially;
///  4. evaluates the candidate — exactly, or through the adaptive
///     true-hit-filtering engine (opts.refine) — forwarding hits to `sink`.
///
/// With opts.use_mer_filter set and a containment predicate, a precomputed
/// maximal-enclosed-rectangle test short-circuits the exact check (BKSS94,
/// discussed in §4.4).
///
/// Updates breakdown->duplicates_removed and breakdown->results; the caller
/// wraps the call in a PhaseTimer for cost capture.
Status RefineCandidates(CandidateSorter* candidates, const JoinInput& r,
                        const JoinInput& s, SpatialPredicate pred,
                        const JoinOptions& opts, const ResultSink& sink,
                        JoinCostBreakdown* breakdown);

}  // namespace pbsm

#endif  // PBSM_CORE_REFINEMENT_H_
