#include "core/refinement_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "core/join_options.h"
#include "geom/mer.h"
#include "geom/predicates.h"
#include "geom/segment.h"

namespace pbsm {

const char* RefineModeName(RefineMode mode) {
  switch (mode) {
    case RefineMode::kExact:
      return "exact";
    case RefineMode::kAdaptive:
      return "adaptive";
    case RefineMode::kApproximate:
      return "approximate";
  }
  PBSM_CHECK(false) << "unknown RefineMode " << static_cast<int>(mode);
}

Result<RefineMode> ParseRefineMode(const std::string& name) {
  if (name == "exact") return RefineMode::kExact;
  if (name == "adaptive") return RefineMode::kAdaptive;
  if (name == "approximate" || name == "approx") return RefineMode::kApproximate;
  return Status::InvalidArgument("unknown refine mode '" + name +
                                 "' (expected exact|adaptive|approximate)");
}

// ---------------------------------------------------------------------------
// CellGrid

CellGrid::CellGrid(const Rect& universe, uint32_t order,
                   SpaceFillingCurve::Kind curve)
    : universe_(universe), order_(order), curve_(curve) {
  PBSM_CHECK(order_ >= 1 && order_ <= 31) << "grid order " << order_;
  const double n = static_cast<double>(uint64_t{1} << order_);
  if (universe_.width() > 0) {
    cell_w_ = universe_.width() / n;
    inv_cell_w_ = n / universe_.width();
  }
  if (universe_.height() > 0) {
    cell_h_ = universe_.height() / n;
    inv_cell_h_ = n / universe_.height();
  }
}

uint32_t CellGrid::CellX(double x) const {
  const double f = (x - universe_.xlo) * inv_cell_w_;
  if (!(f > 0.0)) return 0;  // Also catches NaN and a degenerate axis.
  const uint64_t cap = (uint64_t{1} << order_) - 1;
  return static_cast<uint32_t>(
      std::min(static_cast<uint64_t>(f), cap));
}

uint32_t CellGrid::CellY(double y) const {
  const double f = (y - universe_.ylo) * inv_cell_h_;
  if (!(f > 0.0)) return 0;
  const uint64_t cap = (uint64_t{1} << order_) - 1;
  return static_cast<uint32_t>(
      std::min(static_cast<uint64_t>(f), cap));
}

Rect CellGrid::CellRect(uint32_t ix, uint32_t iy, uint32_t precision) const {
  const double scale = static_cast<double>(uint64_t{1} << (order_ - precision));
  const double w = cell_w_ * scale;
  const double h = cell_h_ * scale;
  return Rect(universe_.xlo + ix * w, universe_.ylo + iy * h,
              universe_.xlo + (ix + 1) * w, universe_.ylo + (iy + 1) * h);
}

uint64_t CellGrid::CellKey(uint32_t ix, uint32_t iy,
                           uint32_t precision) const {
  return curve_ == SpaceFillingCurve::Kind::kHilbert
             ? HilbertD2XY(precision, ix, iy)
             : ZOrderKey(precision, ix, iy);
}

// ---------------------------------------------------------------------------
// Rasterization

namespace {

/// Epsilon absorbing floating-point error in cell-index arithmetic, scaled
/// to both the coordinate magnitude and the cell size. Boundary tests run
/// against cells *expanded* by it (over-inclusive covers); interior
/// certification runs on the expanded rectangle too (under-inclusive).
double AxisEpsilon(double lo, double hi, double cell) {
  return (std::fabs(lo) + std::fabs(hi)) * 1e-12 + cell * 1e-9;
}

/// Sets every cell bit of a cover's bounding box (bits past nx*ny stay 0).
void FillAllCells(CellCover* cover, uint32_t nx, uint32_t ny) {
  const size_t n = static_cast<size_t>(nx) * ny;
  for (size_t w = 0; w < cover->bits.size(); ++w) {
    const size_t base = w * 64;
    cover->bits[w] = n - base >= 64
                         ? ~uint64_t{0}
                         : (uint64_t{1} << (n - base)) - 1;
  }
}

}  // namespace

void RasterizeGeometry(const Geometry& geometry, const CellGrid& grid,
                       uint32_t max_cells, CellCover* cover, bool build_runs,
                       bool build_rects, bool build_buckets) {
  cover->built = true;
  cover->has_interior = false;
  cover->geom_type = geometry.type();
  cover->runs.clear();
  cover->rects.clear();
  cover->ring_seg_off.clear();
  cover->bucket_off.clear();
  cover->bucket_seg.clear();
  cover->interior_bits.clear();
  max_cells = std::max<uint32_t>(max_cells, 4);
  // Boundary-only covers that keep neither runs nor rects (the S side of an
  // intersects query) never consult the interior pass or the flag scratch:
  // marks go straight into the occupancy bitmap.
  const bool bits_only =
      !build_runs && !build_rects && geometry.type() != GeometryType::kPolygon;

  const uint32_t order = grid.order();
  const Rect& mbr = geometry.Mbr();
  const Rect& uni = grid.universe();
  const double ex = AxisEpsilon(uni.xlo, uni.xhi, grid.cell_width());
  const double ey = AxisEpsilon(uni.ylo, uni.yhi, grid.cell_height());

  // Finest-order index range of the epsilon-expanded MBR, then the coarsest
  // shift d at which the object's span fits the cell budget. The per-object
  // precision is p = order - d (>= 1); a precision-p cell is a contiguous
  // run of 4^d finest-order keys on both curves (hierarchical prefix
  // property).
  const uint32_t ix_lo = grid.CellX(mbr.xlo - ex);
  const uint32_t ix_hi = grid.CellX(mbr.xhi + ex);
  const uint32_t iy_lo = grid.CellY(mbr.ylo - ey);
  const uint32_t iy_hi = grid.CellY(mbr.yhi + ey);
  uint32_t d = 0;
  while (d + 1 < order &&
         (uint64_t{(ix_hi >> d) - (ix_lo >> d) + 1} *
          uint64_t{(iy_hi >> d) - (iy_lo >> d) + 1}) > max_cells) {
    ++d;
  }
  const uint32_t p = order - d;
  const uint32_t cx_lo = ix_lo >> d, cx_hi = ix_hi >> d;
  const uint32_t cy_lo = iy_lo >> d, cy_hi = iy_hi >> d;
  const uint32_t nx = cx_hi - cx_lo + 1;
  const uint32_t ny = cy_hi - cy_lo + 1;

  const size_t words = (static_cast<size_t>(nx) * ny + 63) / 64;
  cover->shift = d;
  cover->bx0 = cx_lo;
  cover->by0 = cy_lo;
  cover->bnx = nx;
  cover->bny = ny;
  cover->bits.assign(words, 0);

  // 0 = untouched, 1 = boundary, 2 = certified interior. Thread-local
  // scratch: rasterization runs once per (geometry, stream) in tight loops,
  // so the bitmap allocation must not recur per call. Skipped entirely in
  // bits-only mode (marks write the occupancy bitmap directly).
  static thread_local std::vector<uint8_t> cells;
  cells.assign(bits_only ? 0 : static_cast<size_t>(nx) * ny, 0);
  auto cell_at = [&](uint32_t cx, uint32_t cy) -> uint8_t& {
    return cells[static_cast<size_t>(cy - cy_lo) * nx + (cx - cx_lo)];
  };
  auto expanded = [&](uint32_t cx, uint32_t cy) {
    Rect r = grid.CellRect(cx, cy, p);
    r.xlo -= ex;
    r.ylo -= ey;
    r.xhi += ex;
    r.yhi += ey;
    return r;
  };

  // ---- Boundary pass: every cell a segment comes within epsilon of. Per
  // segment, walk the grid columns its expanded MBR spans and mark the cell
  // rows the segment reaches within each column — pure interval arithmetic,
  // O(1) per marked cell, no per-cell intersection tests. A segment's points
  // over a column's epsilon-expanded x-interval form a sub-segment whose
  // y-range (epsilon-expanded) selects exactly the cells an expanded-rect
  // intersection test would accept. Segments are walked straight off the
  // rings (no materialized list); the flat id `si` enumerates them
  // ring-major — the id space the segment buckets and ring_seg_off expose.
  const bool closed = geometry.type() == GeometryType::kPolygon;
  size_t nsegs = 0;
  for (const auto& ring : geometry.rings()) {
    if (ring.size() >= 2) nsegs += ring.size() - 1 + (closed ? 1 : 0);
  }
  // (cell, segment) incidences collected alongside the marks when segment
  // buckets are requested. Cell indices are bitmap bit order (column-major
  // over the bounding box).
  build_buckets = build_buckets && nsegs != 0 && nsegs <= 65535;
  if (build_buckets) {
    uint32_t acc = 0;
    for (const auto& ring : geometry.rings()) {
      cover->ring_seg_off.push_back(acc);
      if (ring.size() >= 2) {
        acc += static_cast<uint32_t>(ring.size() - 1 + (closed ? 1 : 0));
      }
    }
    cover->ring_seg_off.push_back(acc);
  }
  static thread_local std::vector<std::pair<uint32_t, uint16_t>> incidences;
  incidences.clear();
  const double col_w = grid.cell_width() * static_cast<double>(uint64_t{1} << d);
  uint32_t si = 0;
  for (const auto& ring : geometry.rings()) {
    if (ring.size() < 2) continue;
    const size_t ring_segs = ring.size() - 1 + (closed ? 1 : 0);
    for (size_t e = 0; e < ring_segs; ++e, ++si) {
      const Point& pa = ring[e];
      const Point& pb = e + 1 < ring.size() ? ring[e + 1] : ring[0];
      double x0 = pa.x, y0 = pa.y, x1 = pb.x, y1 = pb.y;
      if (x0 > x1) {
        std::swap(x0, x1);
        std::swap(y0, y1);
      }
      const uint32_t sx_lo = std::max(grid.CellX(x0 - ex) >> d, cx_lo);
      const uint32_t sx_hi = std::min(grid.CellX(x1 + ex) >> d, cx_hi);
      const uint32_t sy_lo =
          std::max(grid.CellY(std::min(y0, y1) - ey) >> d, cy_lo);
      const uint32_t sy_hi =
          std::min(grid.CellY(std::max(y0, y1) + ey) >> d, cy_hi);
      auto mark = [&](uint32_t cx, uint32_t r_lo, uint32_t r_hi) {
        const uint32_t col = (cx - cx_lo) * ny - cy_lo;
        if (bits_only) {
          for (uint32_t cy = r_lo; cy <= r_hi; ++cy) {
            const uint32_t bit = col + cy;
            cover->bits[bit >> 6] |= uint64_t{1} << (bit & 63);
          }
        } else {
          for (uint32_t cy = r_lo; cy <= r_hi; ++cy) {
            uint8_t& c = cell_at(cx, cy);
            if (c == 0) c = 1;
          }
        }
        if (build_buckets) {
          for (uint32_t cy = r_lo; cy <= r_hi; ++cy) {
            incidences.emplace_back(col + cy, static_cast<uint16_t>(si));
          }
        }
      };
      const double dx = x1 - x0;
      if (sx_lo >= sx_hi || !(dx > 0.0)) {
        // Single column (or a vertical segment straddling a column boundary
        // within epsilon): the segment sweeps the full y-range in every
        // column it touches, so the MBR range *is* the touched set.
        for (uint32_t cx = sx_lo; cx <= sx_hi; ++cx) mark(cx, sy_lo, sy_hi);
        continue;
      }
      const double dydx = (y1 - y0) / dx;
      for (uint32_t cx = sx_lo; cx <= sx_hi; ++cx) {
        const double col_xlo = uni.xlo + cx * col_w - ex;
        const double col_xhi = col_xlo + col_w + 2.0 * ex;
        const double xa = std::max(x0, col_xlo);
        const double xb = std::min(x1, col_xhi);
        if (xa > xb) continue;
        const double ya = y0 + dydx * (xa - x0);
        const double yb = y0 + dydx * (xb - x0);
        const uint32_t r_lo =
            std::max(grid.CellY(std::min(ya, yb) - ey) >> d, sy_lo);
        const uint32_t r_hi =
            std::min(grid.CellY(std::max(ya, yb) + ey) >> d, sy_hi);
        if (r_lo > r_hi) continue;
        mark(cx, r_lo, r_hi);
      }
    }
  }
  if (nsegs == 0) {
    // Point geometry: its (epsilon-expanded) index range is the cover.
    if (bits_only) {
      FillAllCells(cover, nx, ny);
    } else {
      for (uint8_t& c : cells) c = 1;
    }
  }

  // ---- Interior pass (polygons): certify untouched in-range cells. A cell
  // whose center is inside the area is touched, so it must enter the cover;
  // it is flagged interior only when the expanded rectangle provably lies
  // inside (holes respected). Center-outside untouched cells are genuinely
  // disjoint from the polygon — the boundary pass would have marked any
  // cell the boundary crosses — and stay out of the cover. ----
  if (geometry.type() == GeometryType::kPolygon) {
    for (uint32_t cy = cy_lo; cy <= cy_hi; ++cy) {
      for (uint32_t cx = cx_lo; cx <= cx_hi; ++cx) {
        uint8_t& c = cell_at(cx, cy);
        if (c != 0) continue;
        const Rect r = expanded(cx, cy);
        if (!PointInPolygon(r.Center(), geometry)) continue;
        if (RectInsidePolygon(r, geometry)) {
          c = 2;
          cover->has_interior = true;
        } else {
          c = 1;
        }
      }
    }
  }

  // Degenerate safety net: the cover must never under-approximate. (Bucket
  // incidences no longer match the marks, so buckets are dropped.)
  if (bits_only) {
    if (std::all_of(cover->bits.begin(), cover->bits.end(),
                    [](uint64_t w) { return w == 0; })) {
      FillAllCells(cover, nx, ny);
      build_buckets = false;
    }
  } else {
    if (std::all_of(cells.begin(), cells.end(),
                    [](uint8_t c) { return c == 0; })) {
      for (uint8_t& c : cells) c = 1;
      build_buckets = false;
    }

    // ---- Marked cells -> column-major occupancy bitmaps (the strip-probe
    // hot path). ----
    if (cover->has_interior) cover->interior_bits.assign(words, 0);
    for (uint32_t cx = cx_lo; cx <= cx_hi; ++cx) {
      for (uint32_t cy = cy_lo; cy <= cy_hi; ++cy) {
        const uint8_t c = cell_at(cx, cy);
        if (c == 0) continue;
        const uint32_t bit = (cx - cx_lo) * ny + (cy - cy_lo);
        cover->bits[bit >> 6] |= uint64_t{1} << (bit & 63);
        if (c == 2) {
          cover->interior_bits[bit >> 6] |= uint64_t{1} << (bit & 63);
        }
      }
    }
  }

  // ---- Segment-incidence buckets (counting sort by cell). ----
  if (!build_buckets) {
    cover->ring_seg_off.clear();
  } else {
    std::vector<uint32_t>& off = cover->bucket_off;
    off.assign(static_cast<size_t>(nx) * ny + 1, 0);
    for (const auto& inc : incidences) ++off[inc.first + 1];
    for (size_t i = 1; i < off.size(); ++i) off[i] += off[i - 1];
    cover->bucket_seg.resize(incidences.size());
    static thread_local std::vector<uint32_t> cursor;
    cursor.assign(off.begin(), off.end());
    for (const auto& inc : incidences) {
      cover->bucket_seg[cursor[inc.first]++] = inc.second;
    }
  }

  // ---- Marked cells -> row-merged rectangle decomposition (polygon-vs-
  // cover intersection classification) in finest-order coordinates. Maximal
  // same-flag horizontal spans per row, fused with the previous row's rect
  // when the x-range and flag repeat. ----
  if (build_rects) {
    std::vector<CoverRect>& rects = cover->rects;
    static thread_local std::vector<size_t> prev_idx, cur_idx;
    prev_idx.clear();  // Rects whose bottom edge touched the previous row.
    for (uint32_t cy = cy_lo; cy <= cy_hi; ++cy) {
      cur_idx.clear();
      const uint32_t fy_lo = cy << d;
      const uint32_t fy_hi = ((cy + 1) << d) - 1;
      for (uint32_t cx = cx_lo; cx <= cx_hi;) {
        const uint8_t c = cell_at(cx, cy);
        if (c == 0) {
          ++cx;
          continue;
        }
        const uint32_t start = cx;
        while (cx <= cx_hi && cell_at(cx, cy) == c) ++cx;
        const CoverRect rect{start << d, (cx << d) - 1, fy_lo, fy_hi, c == 2};
        // Fuse with a vertically adjacent rect of identical span and flag.
        bool fused = false;
        for (const size_t i : prev_idx) {
          CoverRect& above = rects[i];
          if (above.x_lo == rect.x_lo && above.x_hi == rect.x_hi &&
              above.interior == rect.interior) {
            above.y_hi = rect.y_hi;
            cur_idx.push_back(i);
            fused = true;
            break;
          }
        }
        if (!fused) {
          cur_idx.push_back(rects.size());
          rects.push_back(rect);
        }
      }
      std::swap(prev_idx, cur_idx);
    }
  }

  if (!build_runs) return;

  // ---- Marked cells -> sorted merged finest-order key runs (containment
  // classification and curve-order consumers). ----
  const uint32_t shift = 2 * d;
  std::vector<CellRun>& runs = cover->runs;
  runs.reserve(16);
  for (uint32_t cy = cy_lo; cy <= cy_hi; ++cy) {
    for (uint32_t cx = cx_lo; cx <= cx_hi; ++cx) {
      const uint8_t c = cell_at(cx, cy);
      if (c == 0) continue;
      const uint64_t key = grid.CellKey(cx, cy, p);
      runs.push_back(CellRun{key << shift, (key + 1) << shift, c == 2});
    }
  }
  std::sort(runs.begin(), runs.end(),
            [](const CellRun& a, const CellRun& b) { return a.lo < b.lo; });
  size_t w = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (w > 0 && runs[w - 1].hi == runs[i].lo &&
        runs[w - 1].interior == runs[i].interior) {
      runs[w - 1].hi = runs[i].hi;
    } else {
      runs[w++] = runs[i];
    }
  }
  runs.resize(w);
}

uint32_t ChooseGridOrder(const Rect& universe, double avg_extent_x,
                         double avg_extent_y) {
  const double span = std::max(universe.width(), universe.height());
  if (!(span > 0.0)) return 4;
  // Cells about a quarter of the average feature extent: typical objects
  // rasterize to ~4x4 full-precision cells, small enough to separate
  // MBR-overlapping-but-disjoint pairs, large enough to keep covers tiny.
  double target = std::max(avg_extent_x, avg_extent_y) / 4.0;
  if (!(target > 0.0)) target = span / 4096.0;
  const double ratio = span / target;
  const int order = static_cast<int>(std::ceil(std::log2(ratio)));
  return static_cast<uint32_t>(std::clamp(order, 4, 16));
}

// ---------------------------------------------------------------------------
// Engines

namespace {

/// Two-pointer scan over two sorted disjoint run lists. Sets *interior_hit
/// when some overlapping pair of runs is interior on both sides; returns
/// whether any runs overlap at all.
bool RunsOverlap(const std::vector<CellRun>& a, const std::vector<CellRun>& b,
                 bool* interior_hit) {
  *interior_hit = false;
  bool any = false;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const CellRun& ra = a[i];
    const CellRun& rb = b[j];
    if (ra.hi <= rb.lo) {
      ++i;
    } else if (rb.hi <= ra.lo) {
      ++j;
    } else {
      any = true;
      if (ra.interior && rb.interior) {
        *interior_hit = true;
        return true;
      }
      // Advance whichever run ends first.
      if (ra.hi <= rb.hi) ++i;
      else ++j;
    }
  }
  return any;
}

/// True when every key of `inner`'s runs is covered by `outer`'s runs
/// (spanning adjacent outer runs is fine). With interior_only, only
/// interior outer runs count as coverage.
bool RunsContain(const std::vector<CellRun>& outer,
                 const std::vector<CellRun>& inner, bool interior_only) {
  size_t j = 0;
  for (const CellRun& in : inner) {
    uint64_t pos = in.lo;
    while (pos < in.hi) {
      while (j < outer.size() && outer[j].hi <= pos) ++j;
      if (j == outer.size() || outer[j].lo > pos) return false;
      if (interior_only && !outer[j].interior) return false;
      pos = outer[j].hi;
    }
  }
  return true;
}

/// Sign of Orientation(a, b, c) evaluated in double with a forward error
/// bound: +1 / -1 only when the sign is certain at double precision, 2 when
/// the determinant is too close to zero to certify.
inline int OrientationFiltered(const Point& a, const Point& b,
                               const Point& c) {
  const double l = (b.x - a.x) * (c.y - a.y);
  const double r = (b.y - a.y) * (c.x - a.x);
  const double det = l - r;
  // Forward error of det is under 4*DBL_EPSILON*(|l|+|r|); 1e-15 covers it.
  const double bound = (std::fabs(l) + std::fabs(r)) * 1e-15;
  if (det > bound) return 1;
  if (det < -bound) return -1;
  return 2;
}

/// SegmentsIntersect through a double-precision certainty filter — the
/// witness-test hot path. Identical result by construction: a certified
/// same-nonzero-side pair of endpoints excludes both the proper crossing
/// and every collinear-touch clause of the exact test, four certified signs
/// reproduce its proper-crossing decision, and anything uncertain falls
/// back to the long-double routine.
inline bool SegmentsIntersectFast(const Segment& s1, const Segment& s2) {
  const int o1 = OrientationFiltered(s1.a, s1.b, s2.a);
  const int o2 = OrientationFiltered(s1.a, s1.b, s2.b);
  if (o1 == o2 && o1 != 2) return false;  // s2 certified strictly one side.
  const int o3 = OrientationFiltered(s2.a, s2.b, s1.a);
  const int o4 = OrientationFiltered(s2.a, s2.b, s1.b);
  if (o3 == o4 && o3 != 2) return false;
  if (o1 != 2 && o2 != 2 && o3 != 2 && o4 != 2) return true;
  return SegmentsIntersect(s1, s2);
}

/// True when any bit in the inclusive range [lo, hi] is set. Covers hold at
/// most max_cells_per_object bits, so the word loop is 1-4 iterations.
inline bool AnyBitInRange(const uint64_t* bits, uint32_t lo, uint32_t hi) {
  const uint32_t w0 = lo >> 6, w1 = hi >> 6;
  const uint64_t m0 = ~uint64_t{0} << (lo & 63);
  const uint64_t m1 = ~uint64_t{0} >> (63 - (hi & 63));
  if (w0 == w1) return (bits[w0] & m0 & m1) != 0;
  if ((bits[w0] & m0) != 0) return true;
  for (uint32_t w = w0 + 1; w < w1; ++w) {
    if (bits[w] != 0) return true;
  }
  return (bits[w1] & m1) != 0;
}

class ExactRefinementEngine final : public RefinementEngine {
 public:
  CellDecision Classify(const Geometry&, CellCover*, const Geometry&,
                        const CellCover&) override {
    return CellDecision::kNeedExact;
  }
};

class AdaptiveRefinementEngine final : public RefinementEngine {
 public:
  AdaptiveRefinementEngine(SpatialPredicate pred, bool approximate,
                           const CellGrid& grid, uint32_t max_cells)
      : pred_(pred),
        approximate_(approximate),
        // Only containment classification reads curve-keyed runs; every
        // other predicate works on the rect decomposition alone.
        build_runs_(pred == SpatialPredicate::kContains),
        grid_(grid),
        max_cells_(max_cells),
        ex_(AxisEpsilon(grid.universe().xlo, grid.universe().xhi,
                        grid.cell_width())),
        ey_(AxisEpsilon(grid.universe().ylo, grid.universe().yhi,
                        grid.cell_height())) {}

  void BuildCover(const Geometry& geometry, CellCover* cover) override {
    // S-side covers: runs only for containment; rects never (intersection
    // probes S through the bitmap); segment buckets for the intersects
    // predicate's boundary-collision witness tests.
    RasterizeGeometry(geometry, grid_, max_cells_, cover, build_runs_,
                      /*build_rects=*/false,
                      /*build_buckets=*/pred_ == SpatialPredicate::kIntersects);
  }

  CellDecision Classify(const Geometry& r, CellCover* r_cover,
                        const Geometry& s, const CellCover& s_cover) override {
    if (pred_ == SpatialPredicate::kContains) {
      if (!r.Mbr().Contains(s.Mbr())) return CellDecision::kMiss;
      if (r.type() != GeometryType::kPolygon) return CellDecision::kNeedExact;
      EnsureCover(r, r_cover);
      return ClassifyContains(*r_cover, s_cover);
    }
    if (r.type() == GeometryType::kPolygon) {
      // R's interior matters (S could lie wholly inside it without any
      // boundary cell collision), so both covers are compared.
      EnsureCover(r, r_cover);
      return ClassifyIntersects(*r_cover, s_cover);
    }
    return ClassifyBoundaryVsCover(r, s, s_cover);
  }

  const CellGrid* grid() const override { return &grid_; }

 private:
  void EnsureCover(const Geometry& geometry, CellCover* cover) const {
    // R-side covers (lazily built for polygons only): rects for the
    // polygon-vs-cover walk, runs for containment, never buckets.
    if (!cover->built) {
      RasterizeGeometry(geometry, grid_, max_cells_, cover, build_runs_,
                        /*build_rects=*/true, /*build_buckets=*/false);
    }
  }

  /// Soundness: covers are over-inclusive (every touched cell is in the
  /// cover) and interior flags under-inclusive (flagged cells provably
  /// inside). Disjoint covers therefore prove disjoint geometries; an
  /// interior/interior overlap proves a shared cell of area. R's rect
  /// decomposition is probed against S's occupancy bitmap.
  CellDecision ClassifyIntersects(const CellCover& r_cover,
                                  const CellCover& s_cover) const {
    const uint32_t sh = s_cover.shift;
    const uint32_t bx0 = s_cover.bx0, by0 = s_cover.by0;
    const uint32_t bx1 = bx0 + s_cover.bnx - 1;
    const uint32_t by1 = by0 + s_cover.bny - 1;
    const uint32_t bny = s_cover.bny;
    const uint64_t* bits = s_cover.bits.data();
    const uint64_t* interior =
        s_cover.has_interior ? s_cover.interior_bits.data() : nullptr;
    bool any = false;
    for (const CoverRect& a : r_cover.rects) {
      const uint32_t sxl = std::max(a.x_lo >> sh, bx0);
      const uint32_t sxh = std::min(a.x_hi >> sh, bx1);
      const uint32_t syl = std::max(a.y_lo >> sh, by0);
      const uint32_t syh = std::min(a.y_hi >> sh, by1);
      if (sxl > sxh || syl > syh) continue;
      const uint32_t r0 = syl - by0, r1 = syh - by0;
      for (uint32_t sx = sxl; sx <= sxh; ++sx) {
        const uint32_t base = (sx - bx0) * bny;
        if (!AnyBitInRange(bits, base + r0, base + r1)) continue;
        any = true;
        if (a.interior && interior != nullptr &&
            AnyBitInRange(interior, base + r0, base + r1)) {
          return CellDecision::kHit;
        }
      }
    }
    if (!any) return CellDecision::kMiss;
    return approximate_ ? CellDecision::kAccepted : CellDecision::kNeedExact;
  }

  /// Contains(R, S), R already known to be a polygon whose MBR contains
  /// S's: disjoint covers refute any shared point (S is non-empty, so it
  /// cannot be inside R); cover(S) fully inside R's interior runs proves S
  /// subset-of R since S lies within its own cover's cells. Approximate
  /// mode accepts when cover(S) is at least within cover(R) — the inner
  /// then protrudes at most one cell diagonal — and otherwise still runs
  /// the exact test (never rejects), preserving the superset contract.
  CellDecision ClassifyContains(const CellCover& r_cover,
                                const CellCover& s_cover) const {
    bool interior_hit = false;
    if (!RunsOverlap(r_cover.runs, s_cover.runs, &interior_hit)) {
      return CellDecision::kMiss;
    }
    if (r_cover.has_interior &&
        RunsContain(r_cover.runs, s_cover.runs, /*interior_only=*/true)) {
      return CellDecision::kHit;
    }
    if (approximate_ &&
        RunsContain(r_cover.runs, s_cover.runs, /*interior_only=*/false)) {
      return CellDecision::kAccepted;
    }
    return CellDecision::kNeedExact;
  }

  /// Intersects with a polyline/point R: walks R's segments clipped to the
  /// pair's MBR overlap and probes each per-column strip of finest-order
  /// cells they touch against S's occupancy bitmap — no R cover is built,
  /// no curve keys computed, and a probe is one or two word ANDs.
  /// Soundness: any shared point p lies in the MBR overlap, on a segment
  /// of R, and in some finest cell c; the walk's strip for that column
  /// contains c (epsilon-expanded interval math, identical to the
  /// rasterizer's) and S touches c's ancestor cover cell, so that cell's
  /// bit is set. "No strip probe finds a bit" therefore proves disjoint —
  /// and an empty MBR-overlap *window* of the bitmap proves it before the
  /// segments are even visited. A strip finding an *interior* bit is a
  /// certain hit: the strip's cells hold a point of R's segment within
  /// their expanded rectangles, certified inside S's area.
  CellDecision ClassifyBoundaryVsCover(const Geometry& r, const Geometry& s,
                                       const CellCover& s_cover) const {
    const Rect& uni = grid_.universe();
    const double ex = ex_, ey = ey_;
    const Rect& rm = r.Mbr();
    const Rect& sm = s.Mbr();
    const double clip_xlo = std::max(rm.xlo, sm.xlo) - ex;
    const double clip_xhi = std::min(rm.xhi, sm.xhi) + ex;
    const double clip_ylo = std::max(rm.ylo, sm.ylo) - ey;
    const double clip_yhi = std::min(rm.yhi, sm.yhi) + ey;
    if (clip_xlo > clip_xhi || clip_ylo > clip_yhi) return CellDecision::kMiss;
    const uint32_t wx_lo = grid_.CellX(clip_xlo);
    const uint32_t wx_hi = grid_.CellX(clip_xhi);
    const uint32_t wy_lo = grid_.CellY(clip_ylo);
    const uint32_t wy_hi = grid_.CellY(clip_yhi);

    const uint32_t sh = s_cover.shift;
    const uint32_t bx0 = s_cover.bx0, by0 = s_cover.by0;
    const uint32_t bx1 = bx0 + s_cover.bnx - 1;
    const uint32_t by1 = by0 + s_cover.bny - 1;
    const uint32_t bny = s_cover.bny;
    const uint64_t* bits = s_cover.bits.data();

    // Window pre-test: S's cover restricted to the MBR-overlap window. No
    // bit there refutes any shared point outright.
    {
      const uint32_t sxl = std::max(wx_lo >> sh, bx0);
      const uint32_t sxh = std::min(wx_hi >> sh, bx1);
      const uint32_t syl = std::max(wy_lo >> sh, by0);
      const uint32_t syh = std::min(wy_hi >> sh, by1);
      if (sxl > sxh || syl > syh) return CellDecision::kMiss;
      bool window_any = false;
      const uint32_t r0 = syl - by0, r1 = syh - by0;
      for (uint32_t sx = sxl; sx <= sxh && !window_any; ++sx) {
        const uint32_t base = (sx - bx0) * bny;
        window_any = AnyBitInRange(bits, base + r0, base + r1);
      }
      if (!window_any) return CellDecision::kMiss;
    }

    const bool s_area = s_cover.geom_type == GeometryType::kPolygon;
    const bool scan_for_interior = s_cover.has_interior;
    const uint64_t* interior =
        scan_for_interior ? s_cover.interior_bits.data() : nullptr;
    const bool buckets = !s_cover.bucket_off.empty();
    // Bucketed segment ids resolve ring-major against S's live rings — the
    // cover stores no coordinates (see CellCover). Consecutive ids share a
    // vertex, so witness scans read half the memory a segment array would.
    const auto& s_rings = s.rings();
    const uint32_t* ring_off = s_cover.ring_seg_off.data();
    const size_t n_rings = s_rings.size();
    const uint32_t* b_off = s_cover.bucket_off.data();
    const uint16_t* b_seg = s_cover.bucket_seg.data();

    bool any = false;        // Some strip touched an S cover cell.
    bool unresolved = false; // ... and the touch could not be witness-tested.
    const Segment* cur = nullptr;  // R segment being walked; null = point R.
    Point pt{};                    // The point, when cur == nullptr.
    // Hoisted bbox of `cur`, for the cheap pre-reject ahead of the
    // orientation-test witness check.
    double cur_xlo = 0, cur_xhi = 0, cur_ylo = 0, cur_yhi = 0;

    // Probes cell strip [cx_lo, cx_hi] x [y_lo, y_hi] (finest-order
    // coordinates); true = certain hit (interior touch or segment witness).
    auto strip = [&](uint32_t cx_lo, uint32_t cx_hi, uint32_t y_lo,
                     uint32_t y_hi) -> bool {
      const uint32_t sxl = std::max(cx_lo >> sh, bx0);
      const uint32_t sxh = std::min(cx_hi >> sh, bx1);
      const uint32_t syl = std::max(y_lo >> sh, by0);
      const uint32_t syh = std::min(y_hi >> sh, by1);
      if (sxl > sxh || syl > syh) return false;
      const uint32_t r0 = syl - by0, r1 = syh - by0;
      for (uint32_t sx = sxl; sx <= sxh; ++sx) {
        const uint32_t base = (sx - bx0) * bny;
        const uint32_t lo = base + r0, hi = base + r1;
        if (!AnyBitInRange(bits, lo, hi)) continue;
        any = true;
        if (interior != nullptr && AnyBitInRange(interior, lo, hi)) {
          // R passes through a cell certified inside S's area.
          return true;
        }
        if (!buckets) {
          unresolved = true;
          continue;
        }
        // Witness test: R's primitive against the S segments bucketed in
        // each occupied cell of this column strip. An intersection is a
        // certain hit; refuting every candidate leaves nothing in these
        // cells for R to meet.
        for (uint32_t w = lo >> 6; w <= hi >> 6; ++w) {
          uint64_t word = bits[w];
          if (w == lo >> 6) word &= ~uint64_t{0} << (lo & 63);
          if (w == hi >> 6) word &= ~uint64_t{0} >> (63 - (hi & 63));
          while (word != 0) {
            const uint32_t cell =
                w * 64 + static_cast<uint32_t>(__builtin_ctzll(word));
            word &= word - 1;
            for (uint32_t k = b_off[cell]; k < b_off[cell + 1]; ++k) {
              const uint32_t sid = b_seg[k];
              size_t rk = 0;
              while (rk + 1 < n_rings && sid >= ring_off[rk + 1]) ++rk;
              const std::vector<Point>& ring = s_rings[rk];
              const size_t pi = sid - ring_off[rk];
              const Point& sa = ring[pi];
              const Point& sb =
                  pi + 1 < ring.size() ? ring[pi + 1] : ring[0];
              if (cur != nullptr) {
                // Bbox pre-reject before the orientation tests.
                if (std::max(sa.x, sb.x) < cur_xlo ||
                    std::min(sa.x, sb.x) > cur_xhi ||
                    std::max(sa.y, sb.y) < cur_ylo ||
                    std::min(sa.y, sb.y) > cur_yhi) {
                  continue;
                }
                if (SegmentsIntersectFast(*cur, Segment{sa, sb})) return true;
              } else if (PointOnSegment(pt, Segment{sa, sb})) {
                return true;
              }
            }
          }
        }
      }
      return false;
    };

    // R's boundary segments are walked straight off its rings — no
    // materialized segment list. Only polylines and points reach this path,
    // so a ring is an open chain of consecutive-point segments.
    bool has_segments = false;
    for (const auto& ring : r.rings()) {
      if (ring.size() >= 2) {
        has_segments = true;
        break;
      }
    }
    if (!has_segments && r.type() == GeometryType::kPolyline) {
      // A degenerate (single-vertex) polyline has no boundary segments, so
      // the exact predicate can never find a segment intersection: against
      // an area-free S it is disjoint by definition; against a polygon it
      // reduces to vertex-in-polygon, which the cover walk below answers
      // conservatively through the interior bits.
      if (!s_area) return CellDecision::kMiss;
    }
    bool hit = false;
    Segment seg;
    for (const auto& ring : r.rings()) {
      if (hit || ring.size() < 2) continue;
      for (size_t i = 0; i + 1 < ring.size() && !hit; ++i) {
        seg = Segment{ring[i], ring[i + 1]};
        cur = &seg;
        double x0 = seg.a.x, y0 = seg.a.y, x1 = seg.b.x, y1 = seg.b.y;
        if (x0 > x1) {
          std::swap(x0, x1);
          std::swap(y0, y1);
        }
        if (x1 < clip_xlo || x0 > clip_xhi || std::max(y0, y1) < clip_ylo ||
            std::min(y0, y1) > clip_yhi) {
          continue;
        }
        cur_xlo = x0;
        cur_xhi = x1;
        cur_ylo = std::min(y0, y1);
        cur_yhi = std::max(y0, y1);
        const uint32_t sx_lo = std::max(grid_.CellX(x0 - ex), wx_lo);
        const uint32_t sx_hi = std::min(grid_.CellX(x1 + ex), wx_hi);
        const uint32_t sy_lo =
            std::max(grid_.CellY(std::min(y0, y1) - ey), wy_lo);
        const uint32_t sy_hi =
            std::min(grid_.CellY(std::max(y0, y1) + ey), wy_hi);
        if (sx_lo > sx_hi || sy_lo > sy_hi) continue;
        const double dx = x1 - x0;
        if (sx_lo >= sx_hi || !(dx > 0.0)) {
          // Single column, or a vertical segment straddling a column
          // boundary within epsilon: the MBR range is the touched set.
          hit = strip(sx_lo, sx_hi, sy_lo, sy_hi);
        } else {
          const double dydx = (y1 - y0) / dx;
          for (uint32_t cx = sx_lo; cx <= sx_hi && !hit; ++cx) {
            const double col_xlo = uni.xlo + cx * grid_.cell_width() - ex;
            const double col_xhi = col_xlo + grid_.cell_width() + 2.0 * ex;
            const double xa = std::max(x0, col_xlo);
            const double xb = std::min(x1, col_xhi);
            if (xa > xb) continue;
            const double ya = y0 + dydx * (xa - x0);
            const double yb = y0 + dydx * (xb - x0);
            const uint32_t r_lo =
                std::max(grid_.CellY(std::min(ya, yb) - ey), sy_lo);
            const uint32_t r_hi =
                std::min(grid_.CellY(std::max(ya, yb) + ey), sy_hi);
            if (r_lo > r_hi) continue;
            hit = strip(cx, cx, r_lo, r_hi);
          }
        }
      }
    }
    if (!has_segments) {
      // Point geometry: probe its (epsilon-expanded) cell range.
      cur = nullptr;
      pt = r.rings()[0][0];
      const uint32_t px_lo = std::max(grid_.CellX(rm.xlo - ex), wx_lo);
      const uint32_t px_hi = std::min(grid_.CellX(rm.xhi + ex), wx_hi);
      const uint32_t py_lo = std::max(grid_.CellY(rm.ylo - ey), wy_lo);
      const uint32_t py_hi = std::min(grid_.CellY(rm.yhi + ey), wy_hi);
      if (px_lo <= px_hi && py_lo <= py_hi) {
        hit = strip(px_lo, px_hi, py_lo, py_hi);
      }
      if (s_area) {
        // A point that touched only witness-refuted boundary cells may
        // still sit inside S's area within those cells; the buckets cannot
        // refute area membership.
        unresolved = unresolved || any;
      }
    }
    if (hit) return CellDecision::kHit;
    if (!any) return CellDecision::kMiss;
    if (!s_area && buckets && !unresolved) {
      // Every boundary collision was refuted segment-by-segment and S has
      // no area: the exact predicate has nothing left to find.
      return CellDecision::kMiss;
    }
    return approximate_ ? CellDecision::kAccepted : CellDecision::kNeedExact;
  }

  const SpatialPredicate pred_;
  const bool approximate_;
  const bool build_runs_;
  const CellGrid grid_;
  const uint32_t max_cells_;
  // Rasterizer epsilons of grid_, hoisted out of the per-pair classify path.
  const double ex_;
  const double ey_;
};

}  // namespace

std::unique_ptr<RefinementEngine> RefinementEngine::Create(
    SpatialPredicate pred, const RefineOptions& opts, const Rect& universe,
    double avg_extent_x, double avg_extent_y) {
  if (opts.mode == RefineMode::kExact) {
    return std::make_unique<ExactRefinementEngine>();
  }
  const uint32_t order =
      opts.grid_order != 0
          ? std::clamp<uint32_t>(opts.grid_order, 1, 24)
          : ChooseGridOrder(universe, avg_extent_x, avg_extent_y);
  const CellGrid grid(universe, order, opts.curve);
  return std::make_unique<AdaptiveRefinementEngine>(
      pred, opts.mode == RefineMode::kApproximate, grid,
      opts.max_cells_per_object);
}

}  // namespace pbsm
