#ifndef PBSM_CORE_REFINEMENT_ENGINE_H_
#define PBSM_CORE_REFINEMENT_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "geom/geometry.h"
#include "geom/hilbert.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace pbsm {

enum class SpatialPredicate;  // core/join_options.h

/// How the refinement step decides candidate pairs (ROADMAP item 4; Kipf et
/// al., "Adaptive Geospatial Joins for Modern Hardware", arXiv 1802.09488).
enum class RefineMode : uint8_t {
  /// Every candidate pays the exact geometry predicate (the paper's §3.2).
  kExact,
  /// True-hit filtering: per-object interior/boundary cell covers decide
  /// certain hits and certain misses without an exact test; only boundary
  /// cell collisions fall back to the exact predicate. Result pair-set is
  /// identical to kExact.
  kAdaptive,
  /// Like kAdaptive, but uncertain (boundary/boundary) collisions are
  /// *accepted* without the exact test. Bounded-error contract: the result
  /// is a superset of the exact result; every extra pair has geometries
  /// within one cell diagonal (universe_extent / 2^grid_order * sqrt(2)) of
  /// intersecting (for kContains: the inner protrudes at most that far).
  kApproximate,
};

/// Canonical lowercase name ("exact" / "adaptive" / "approximate").
const char* RefineModeName(RefineMode mode);

/// Parses a mode name (as produced by RefineModeName). Accepts "approx" as
/// an alias for "approximate".
Result<RefineMode> ParseRefineMode(const std::string& name);

/// Refinement knobs, grouped for designated-initializer construction:
/// `opts.refine = {.mode = RefineMode::kAdaptive, .grid_order = 12}`.
struct RefineOptions {
  RefineMode mode = RefineMode::kExact;
  /// Cell-grid resolution: 2^grid_order cells per universe side. 0 = auto
  /// (ChooseGridOrder from catalog extent stats — or the planner's choice
  /// when the join runs through the service).
  uint32_t grid_order = 0;
  /// Rasterization budget per object: objects whose MBR spans more cells
  /// are rasterized at a coarser per-object precision (hierarchical grid,
  /// 1802.09488 §3.1), so cover size — and cover build cost — stays O(1).
  uint32_t max_cells_per_object = 256;
  /// Curve ordering the cell keys. Hilbert clusters better (fewer runs per
  /// cover); Z-order is cheaper to compute.
  SpaceFillingCurve::Kind curve = SpaceFillingCurve::Kind::kHilbert;
  /// Cost guard on cover construction: an S tuple whose run of candidate
  /// pairs (they arrive sorted on OID_S) is shorter than this pays the
  /// exact predicate directly instead of rasterizing. Building a cover is
  /// O(boundary length), so it only beats per-pair exact tests when enough
  /// pairs amortize it (the build-vs-probe tradeoff of adaptive geospatial
  /// joins). 1 = always build.
  uint32_t min_cover_pairs = 3;
};

/// A maximal run of consecutive finest-order cell keys sharing one flag.
/// Half-open [lo, hi); runs in a cover are sorted, disjoint, and merged.
/// Coarser per-object cells become runs of 4^(order-precision) keys — both
/// curves are hierarchical, so a coarse cell is one contiguous key interval
/// at the finest order.
struct CellRun {
  uint64_t lo = 0;
  uint64_t hi = 0;
  /// True: the cell rectangles are certified fully inside the polygon's
  /// area (under-inclusive certainty). False: boundary cells, conservative
  /// over-approximation — the geometry *may* touch them.
  bool interior = false;
};

/// A maximal axis-aligned block of same-flag cover cells, in *finest-order
/// grid coordinates* (inclusive bounds). The rectangle decomposition is the
/// classification hot path: strip/rect overlap is pure integer compares,
/// no curve keys. Coarser per-object cells simply become larger rects.
struct CoverRect {
  uint32_t x_lo = 0;
  uint32_t x_hi = 0;
  uint32_t y_lo = 0;
  uint32_t y_hi = 0;
  bool interior = false;
};

/// The interior/boundary cell cover of one geometry. Owns no geometry
/// coordinates: segment buckets index the source geometry's rings, so a
/// cover is only meaningful alongside the (live) geometry it was rasterized
/// from. Rebuilding into the same object reuses every vector's capacity —
/// the refine loop keeps one scratch cover per stream and rasterizes each
/// S run into it allocation-free. The occupancy bitmap is always built;
/// `rects` (the row-merged rectangle decomposition), `runs` (the
/// curve-keyed interval form, which containment tests need) and the
/// per-cell segment buckets only on request.
struct CellCover {
  bool built = false;
  bool has_interior = false;
  /// Type of the geometry the cover was rasterized from: classification
  /// needs to know whether the object has area (polygon) and whether an
  /// empty segment list means "point" or "degenerate polyline".
  GeometryType geom_type = GeometryType::kPoint;
  /// Per-object coarsening: one cover cell is 2^shift finest cells wide.
  uint32_t shift = 0;
  /// Cover bounding box in cover-cell (coarse) coordinates: origin and
  /// dimensions. bnx * bny never exceeds the rasterization cell budget.
  uint32_t bx0 = 0;
  uint32_t by0 = 0;
  uint32_t bnx = 0;
  uint32_t bny = 0;
  /// Column-major occupancy bitmap over the bounding box — bit
  /// (x-bx0)*bny + (y-by0) is set iff the cover holds cell (x, y). The
  /// classification hot path: a cell-strip probe is one or two word ANDs.
  std::vector<uint64_t> bits;
  /// Certified-interior subset of `bits`; empty for boundary-only covers.
  std::vector<uint64_t> interior_bits;
  std::vector<CellRun> runs;
  std::vector<CoverRect> rects;
  /// Per-cell segment buckets (built on request): cell i (bitmap bit order)
  /// owns segment ids bucket_seg[bucket_off[i] .. bucket_off[i+1]). They
  /// turn a boundary-cell collision into a *local exact test*: the colliding
  /// primitive is tested against only the segments sharing the cell, which
  /// either produces an intersection witness (a certain hit) or — for
  /// area-free geometries, once every collision is refuted — proves the
  /// pair disjoint. Segment ids index the source geometry's boundary
  /// segments ring-major (ring r's open-chain segments in vertex order,
  /// plus the implicit closing segment for polygons); the cover stores no
  /// coordinates of its own, so classification must be handed the same
  /// geometry the cover was rasterized from. ring_seg_off[r] is the id of
  /// ring r's first segment, with one trailing sentinel = total segments.
  /// Empty when not built (or > 65535 segments).
  std::vector<uint32_t> ring_seg_off;
  std::vector<uint32_t> bucket_off;
  std::vector<uint16_t> bucket_seg;
};

/// Outcome of the cell-level test for one candidate pair.
enum class CellDecision : uint8_t {
  kHit,        ///< Certain result pair; skip the exact test.
  kMiss,       ///< Certainly not a result pair; skip the exact test.
  kNeedExact,  ///< Boundary collision; run the exact predicate.
  kAccepted,   ///< Approximate mode only: uncertain pair accepted as-is.
};

/// The cell grid shared by every cover a query builds: the join universe
/// divided into 2^order x 2^order curve-keyed cells.
class CellGrid {
 public:
  CellGrid(const Rect& universe, uint32_t order,
           SpaceFillingCurve::Kind curve);

  const Rect& universe() const { return universe_; }
  uint32_t order() const { return order_; }
  SpaceFillingCurve::Kind curve() const { return curve_; }
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }
  /// One past the largest finest-order key: 4^order.
  uint64_t key_limit() const { return uint64_t{1} << (2 * order_); }

  /// Grid x-index of the cell column containing `x` (clamped).
  uint32_t CellX(double x) const;
  uint32_t CellY(double y) const;
  /// Geometric rectangle of cell (ix, iy) at per-object precision
  /// `precision` (cells are 2^(order-precision) finest cells wide).
  Rect CellRect(uint32_t ix, uint32_t iy, uint32_t precision) const;
  /// Curve key of cell (ix, iy) at `precision` bits per dimension.
  uint64_t CellKey(uint32_t ix, uint32_t iy, uint32_t precision) const;

 private:
  Rect universe_;
  uint32_t order_;
  SpaceFillingCurve::Kind curve_;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
  double inv_cell_w_ = 0.0;
  double inv_cell_h_ = 0.0;
};

/// Rasterizes `geometry` onto `grid` into an interior/boundary cell cover.
///
/// The per-object precision is the finest level at which the geometry's MBR
/// spans at most `max_cells` cells. Conservatism contract (what makes
/// adaptive mode exact-equivalent):
///  * every cell the geometry touches appears in the cover (boundary tests
///    use epsilon-*expanded* cell rectangles — over-inclusive);
///  * a cell is flagged interior only when its epsilon-expanded rectangle
///    is proven fully inside the polygon's area (under-inclusive).
/// Polylines and points produce boundary-only covers.
///
/// The occupancy bitmap is always built. `build_runs` adds the curve-keyed
/// run list (containment classification), `build_rects` the rectangle
/// decomposition (polygon-vs-cover intersection), `build_buckets` the
/// per-cell segment buckets (boundary-collision witness tests) — each
/// skipped by the engines when the predicate or side never reads it.
void RasterizeGeometry(const Geometry& geometry, const CellGrid& grid,
                       uint32_t max_cells, CellCover* cover,
                       bool build_runs = true, bool build_rects = true,
                       bool build_buckets = false);

/// Chooses an auto grid order for a query: cells roughly 1/4 of the average
/// feature MBR extent (so typical objects span ~4x4 cells at full
/// precision), clamped to [4, 16].
uint32_t ChooseGridOrder(const Rect& universe, double avg_extent_x,
                         double avg_extent_y);

/// Strategy interface of the refinement step: classifies one candidate pair
/// before (or instead of) the exact predicate. Stateless across pairs
/// except for the shared grid. Rasterization is deliberately asymmetric:
/// only the S side — whose cover each run of equal-OID_S pairs shares — is
/// rasterized up front; the R side rasterizes lazily and only when its
/// interior matters (polygons).
class RefinementEngine {
 public:
  virtual ~RefinementEngine() = default;

  /// Rasterizes one geometry's cover onto the engine's grid. No-op for the
  /// exact engine (which never reads covers).
  virtual void BuildCover(const Geometry& /*geometry*/, CellCover* cover) {
    cover->built = true;
  }

  /// Classifies candidate pair (r, s). `s_cover` must have been built
  /// (BuildCover) from this very `s` — covers keep no coordinates of their
  /// own; segment-bucket witness tests resolve against the live geometry's
  /// rings. The R side is classified asymmetrically: a polyline/point R
  /// walks its segments (clipped to the MBR overlap) directly against S's
  /// cover — no R cover is ever built for it — while a polygon R (whose
  /// interior matters) lazily builds `r_cover` and compares runs.
  virtual CellDecision Classify(const Geometry& r, CellCover* r_cover,
                                const Geometry& s,
                                const CellCover& s_cover) = 0;

  /// The grid in use; nullptr for the exact engine.
  virtual const CellGrid* grid() const { return nullptr; }

  /// Builds the engine for one query. `universe` is the join universe
  /// (union of both inputs); the average MBR extents drive the auto grid
  /// order when opts.grid_order == 0. The exact engine classifies every
  /// pair kNeedExact — the caller's loop degenerates to the classic path.
  static std::unique_ptr<RefinementEngine> Create(
      SpatialPredicate pred, const RefineOptions& opts, const Rect& universe,
      double avg_extent_x, double avg_extent_y);
};

}  // namespace pbsm

#endif  // PBSM_CORE_REFINEMENT_ENGINE_H_
