#include "core/join_methods_internal.h"

#include <optional>
#include <string>
#include <vector>

#include "core/index_build.h"
#include "core/plane_sweep_join.h"
#include "core/refinement.h"
#include "core/sweep_kernel.h"

namespace pbsm {

namespace {

/// Converts a node's entries into key-pointers for the entry sweep.
std::vector<KeyPointer> ToKeyPointers(const std::vector<RTreeEntry>& entries) {
  std::vector<KeyPointer> out(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    out[i] = KeyPointer{entries[i].mbr, entries[i].handle};
  }
  return out;
}

Status JoinNodes(const RStarTree& r_tree, uint32_t r_page,
                 const RStarTree& s_tree, uint32_t s_page,
                 const JoinOptions& opts, CandidateSorter* sorter,
                 JoinCostBreakdown* breakdown);

/// BKS93 node pair over in-memory ribbons: every same-level entry pairing
/// runs as masked window scans of the S ribbon (one scan per R entry, 16
/// quantized or 4 double lanes per compare) instead of the per-pair plane
/// sweep, and nothing touches the BufferPool. Matches go to `sorter` at the
/// leaf level; child pairs recurse through JoinNodes (which re-enters here
/// while ribbons exist).
Status JoinRibbonNodes(const RStarTree& r_tree, const NodeRibbon& r_rb,
                       const RStarTree& s_tree, const NodeRibbon& s_rb,
                       uint32_t r_page, uint32_t s_page,
                       const JoinOptions& opts, CandidateSorter* sorter,
                       JoinCostBreakdown* breakdown) {
  const KernelKind kind = ResolveKernel(opts.simd);
  RibbonScanStats stats;

  // Unequal heights: descend the deeper side alone, restricting to children
  // overlapping the other node's MBR (stored on the ribbon).
  if (r_rb.level() != s_rb.level()) {
    const bool r_deeper = r_rb.level() > s_rb.level();
    const NodeRibbon& deep = r_deeper ? r_rb : s_rb;
    const Rect& other_mbr = r_deeper ? s_rb.mbr() : r_rb.mbr();
    // Local (not scratch) index buffer: the recursion below re-enters this
    // function, which would clobber a shared thread-local.
    std::vector<uint32_t> idx(deep.count());
    const size_t n = ScanRibbonWindow(deep, other_mbr, kind, idx.data(),
                                      &stats);
    FlushRibbonScanStats(stats);
    const uint64_t* handles = deep.handles();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t child = static_cast<uint32_t>(handles[idx[i]]);
      PBSM_RETURN_IF_ERROR(
          r_deeper ? JoinNodes(r_tree, child, s_tree, s_page, opts, sorter,
                               breakdown)
                   : JoinNodes(r_tree, r_page, s_tree, child, opts, sorter,
                               breakdown));
    }
    return Status::OK();
  }

  const SoaView rv = r_rb.soa();
  const uint64_t* s_handles = s_rb.handles();
  std::vector<uint32_t> idx(s_rb.count());

  if (r_rb.level() == 0) {
    // Leaf-leaf: emit candidate pairs in kPairBufferCap blocks.
    Status append_status;
    SorterBatchSink<CandidateSorter> sink{sorter, &append_status};
    std::vector<OidPair> buf(kPairBufferCap);
    size_t buf_size = 0;
    for (size_t i = 0; i < rv.size; ++i) {
      const Rect head(rv.xlo[i], rv.ylo[i], rv.xhi[i], rv.yhi[i]);
      const size_t n = ScanRibbonWindow(s_rb, head, kind, idx.data(), &stats);
      stats.leaf_hits += n;
      breakdown->candidates += n;
      for (size_t j = 0; j < n; ++j) {
        if (buf_size == kPairBufferCap) {
          sink(buf.data(), buf_size);
          buf_size = 0;
        }
        buf[buf_size++] = OidPair{rv.oid[i], s_handles[idx[j]]};
      }
    }
    if (buf_size != 0) sink(buf.data(), buf_size);
    FlushRibbonScanStats(stats);
    return append_status;
  }

  // Internal-internal: collect overlapping child pairs, then recurse.
  std::vector<std::pair<uint32_t, uint32_t>> child_pairs;
  for (size_t i = 0; i < rv.size; ++i) {
    const Rect head(rv.xlo[i], rv.ylo[i], rv.xhi[i], rv.yhi[i]);
    const size_t n = ScanRibbonWindow(s_rb, head, kind, idx.data(), &stats);
    for (size_t j = 0; j < n; ++j) {
      child_pairs.emplace_back(static_cast<uint32_t>(rv.oid[i]),
                               static_cast<uint32_t>(s_handles[idx[j]]));
    }
  }
  FlushRibbonScanStats(stats);
  for (const auto& [rc, sc] : child_pairs) {
    PBSM_RETURN_IF_ERROR(
        JoinNodes(r_tree, rc, s_tree, sc, opts, sorter, breakdown));
  }
  return Status::OK();
}

/// Synchronized depth-first traversal (BKS93). Joins the nodes rooted at
/// `r_page`/`s_page`; leaf-leaf matches are appended to `sorter`.
Status JoinNodes(const RStarTree& r_tree, uint32_t r_page,
                 const RStarTree& s_tree, uint32_t s_page,
                 const JoinOptions& opts, CandidateSorter* sorter,
                 JoinCostBreakdown* breakdown) {
  // Both sides ribboned (the bulk-load default): scan in memory.
  const NodeRibbon* r_rb = r_tree.ribbon(r_page);
  const NodeRibbon* s_rb = s_tree.ribbon(s_page);
  if (r_rb != nullptr && s_rb != nullptr) {
    return JoinRibbonNodes(r_tree, *r_rb, s_tree, *s_rb, r_page, s_page,
                           opts, sorter, breakdown);
  }

  uint16_t r_level = 0, s_level = 0;
  std::vector<RTreeEntry> r_entries, s_entries;
  PBSM_RETURN_IF_ERROR(r_tree.ReadNode(r_page, &r_level, &r_entries));
  PBSM_RETURN_IF_ERROR(s_tree.ReadNode(s_page, &s_level, &s_entries));

  // Unequal heights: descend the deeper (higher-level) side alone until
  // the levels line up, restricting to children overlapping the other
  // node's MBR.
  if (r_level != s_level) {
    const KernelKind kind = ResolveKernel(opts.simd);
    std::vector<uint32_t> hits;
    if (r_level > s_level) {
      Rect s_mbr;
      for (const auto& e : s_entries) s_mbr.Expand(e.mbr);
      OverlapScan(r_entries.data(), r_entries.size(), s_mbr, kind, &hits);
      for (const uint32_t i : hits) {
        PBSM_RETURN_IF_ERROR(
            JoinNodes(r_tree, static_cast<uint32_t>(r_entries[i].handle),
                      s_tree, s_page, opts, sorter, breakdown));
      }
    } else {
      Rect r_mbr;
      for (const auto& e : r_entries) r_mbr.Expand(e.mbr);
      OverlapScan(s_entries.data(), s_entries.size(), r_mbr, kind, &hits);
      for (const uint32_t i : hits) {
        PBSM_RETURN_IF_ERROR(
            JoinNodes(r_tree, r_page, s_tree,
                      static_cast<uint32_t>(s_entries[i].handle), opts,
                      sorter, breakdown));
      }
    }
    return Status::OK();
  }

  // Same level: plane sweep over the two entry sets (the technique BKS93
  // itself borrowed for node joining, §3.1).
  std::vector<KeyPointer> r_kps = ToKeyPointers(r_entries);
  std::vector<KeyPointer> s_kps = ToKeyPointers(s_entries);

  if (r_level == 0) {
    Status append_status;
    breakdown->candidates += PlaneSweepJoinBatch(
        &r_kps, &s_kps,
        SorterBatchSink<CandidateSorter>{sorter, &append_status}, opts.sweep,
        opts.simd);
    return append_status;
  }

  std::vector<std::pair<uint32_t, uint32_t>> child_pairs;
  PlaneSweepJoinBatch(
      &r_kps, &s_kps,
      [&child_pairs](const OidPair* pairs, size_t n) {
        for (size_t i = 0; i < n; ++i) {
          child_pairs.emplace_back(static_cast<uint32_t>(pairs[i].r),
                                   static_cast<uint32_t>(pairs[i].s));
        }
      },
      opts.sweep, opts.simd);
  for (const auto& [rc, sc] : child_pairs) {
    PBSM_RETURN_IF_ERROR(
        JoinNodes(r_tree, rc, s_tree, sc, opts, sorter, breakdown));
  }
  return Status::OK();
}

}  // namespace

Status RtreeFilter(BufferPool* pool, const JoinInput& r, const JoinInput& s,
                   const JoinOptions& opts, CandidateSorter* sorter,
                   JoinCostBreakdown* breakdown, const RStarTree* r_index,
                   const RStarTree* s_index) {
  DiskManager* disk = pool->disk();

  std::optional<RStarTree> r_built, s_built;
  if (r_index == nullptr) {
    const std::string phase = "build index " + r.info.name;
    PhaseCost& cost = breakdown->AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_ASSIGN_OR_RETURN(
        RStarTree tree,
        BuildIndexByBulkLoad(pool, r, "rtj_idx_" + r.info.name + ".rtree",
                             opts.index_fill_factor,
                             opts.memory_budget_bytes, opts.rtree_layout));
    r_built.emplace(std::move(tree));
    r_index = &*r_built;
  }
  if (s_index == nullptr) {
    const std::string phase = "build index " + s.info.name;
    PhaseCost& cost = breakdown->AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_ASSIGN_OR_RETURN(
        RStarTree tree,
        BuildIndexByBulkLoad(pool, s, "rtj_idx_" + s.info.name + ".rtree",
                             opts.index_fill_factor,
                             opts.memory_budget_bytes, opts.rtree_layout));
    s_built.emplace(std::move(tree));
    s_index = &*s_built;
  }

  {
    PhaseCost& cost = breakdown->AddPhase("join trees");
    PhaseTimer timer(disk, &cost, "join trees");
    PBSM_RETURN_IF_ERROR(JoinNodes(*r_index, r_index->root_page(), *s_index,
                                   s_index->root_page(), opts, sorter,
                                   breakdown));
  }

  // Indexes built for this join are filter-local scratch: once the
  // candidates are in the sorter, nothing downstream touches them.
  if (r_built.has_value()) {
    PBSM_RETURN_IF_ERROR(pool->DropFile(r_built->file()));
  }
  if (s_built.has_value()) {
    PBSM_RETURN_IF_ERROR(pool->DropFile(s_built->file()));
  }
  return Status::OK();
}

Result<JoinCostBreakdown> RtreeJoin(BufferPool* pool, const JoinInput& r,
                                    const JoinInput& s, SpatialPredicate pred,
                                    const JoinOptions& opts,
                                    const ResultSink& sink,
                                    const RStarTree* r_index,
                                    const RStarTree* s_index) {
  JoinCostBreakdown breakdown;
  DiskManager* disk = pool->disk();

  CandidateSorter sorter(pool, opts.memory_budget_bytes, OidPairLess{});
  PBSM_RETURN_IF_ERROR(RtreeFilter(pool, r, s, opts, &sorter, &breakdown,
                                   r_index, s_index));

  {
    PhaseCost& cost = breakdown.AddPhase("refinement");
    PhaseTimer timer(disk, &cost, "refinement");
    PBSM_RETURN_IF_ERROR(RefineCandidates(&sorter, r, s, pred, opts, sink,
                                          &breakdown));
  }
  return breakdown;
}

}  // namespace pbsm
