#ifndef PBSM_CORE_RTREE_JOIN_H_
#define PBSM_CORE_RTREE_JOIN_H_

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// R-tree based spatial join (Brinkhoff, Kriegel, Seeger — SIGMOD '93),
/// the paper's §4.2 baseline.
///
/// Bulk loads an R*-tree on each input that lacks one (pass non-null
/// `r_index`/`s_index` for the Figures 14/15 pre-existing-index variants),
/// then performs a synchronized depth-first traversal of the two trees:
/// at each step the entries of one R node and one S node are joined with
/// the same plane-sweep technique PBSM uses, and matching child pairs are
/// traversed in tandem. Leaf-level matches become candidate OID pairs,
/// which run through the shared refinement step (§3.2 semantics, identical
/// to PBSM's).
/// Deprecated for new callers: use SpatialJoin() in core/spatial_join.h,
/// which wraps this entry point behind the unified JoinSpec/JoinResult
/// API and adds tracing + metrics capture.
Result<JoinCostBreakdown> RtreeJoin(BufferPool* pool, const JoinInput& r,
                                    const JoinInput& s, SpatialPredicate pred,
                                    const JoinOptions& opts,
                                    const ResultSink& sink = {},
                                    const RStarTree* r_index = nullptr,
                                    const RStarTree* s_index = nullptr);

}  // namespace pbsm

#endif  // PBSM_CORE_RTREE_JOIN_H_
