#include "core/selectivity.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/tuple.h"

namespace pbsm {

double EstimateCandidatePairs(const RelationInfo& r, const RelationInfo& s) {
  if (r.cardinality == 0 || s.cardinality == 0) return 0.0;
  Rect universe = r.universe;
  universe.Expand(s.universe);
  const double n_pairs = static_cast<double>(r.cardinality) *
                         static_cast<double>(s.cardinality);
  const double area = universe.Area();
  if (area <= 0.0) return n_pairs;  // Degenerate universe: no pruning power.
  const double overlap_window =
      (r.avg_mbr_width() + s.avg_mbr_width()) *
      (r.avg_mbr_height() + s.avg_mbr_height());
  return n_pairs * std::min(1.0, overlap_window / area);
}

SpatialHistogram::SpatialHistogram(const Rect& universe, uint32_t nx,
                                   uint32_t ny)
    : universe_(universe), nx_(nx), ny_(ny) {
  PBSM_CHECK(!universe.empty()) << "histogram needs a non-empty universe";
  PBSM_CHECK(nx >= 1 && ny >= 1);
  cell_w_ = universe_.width() / nx_;
  cell_h_ = universe_.height() / ny_;
  cells_.resize(static_cast<size_t>(nx_) * ny_);
}

size_t SpatialHistogram::CellIndex(const Point& p) const {
  auto clamp_cell = [](double v, double lo, double extent, uint32_t cells) {
    if (extent <= 0) return 0u;
    const double c = (v - lo) / extent * cells;
    if (c <= 0) return 0u;
    return std::min(static_cast<uint32_t>(c), cells - 1);
  };
  const uint32_t cx = clamp_cell(p.x, universe_.xlo, universe_.width(), nx_);
  const uint32_t cy = clamp_cell(p.y, universe_.ylo, universe_.height(), ny_);
  return static_cast<size_t>(cy) * nx_ + cx;
}

void SpatialHistogram::Add(const Rect& mbr) {
  if (mbr.empty()) return;
  Cell& cell = cells_[CellIndex(mbr.Center())];
  ++cell.count;
  cell.sum_w += mbr.width();
  cell.sum_h += mbr.height();
  ++total_count_;
}

Result<SpatialHistogram> SpatialHistogram::Build(const HeapFile& heap,
                                                 const Rect& universe,
                                                 uint32_t nx, uint32_t ny) {
  SpatialHistogram hist(universe, nx, ny);
  PBSM_RETURN_IF_ERROR(
      heap.Scan([&](Oid, const char* data, size_t size) -> Status {
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        hist.Add(tuple.geometry.Mbr());
        return Status::OK();
      }));
  return hist;
}

double SpatialHistogram::EstimateJoinCandidates(
    const SpatialHistogram& other) const {
  PBSM_CHECK(nx_ == other.nx_ && ny_ == other.ny_)
      << "histograms must share a grid";
  const double cell_area = cell_w_ * cell_h_;
  if (cell_area <= 0) return 0.0;
  double estimate = 0.0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    const Cell& a = cells_[i];
    const Cell& b = other.cells_[i];
    if (a.count == 0 || b.count == 0) continue;
    // Uniform-within-cell model: two random rectangles of the cells'
    // average extents overlap with probability proportional to the area
    // swept by their Minkowski sum, capped at 1.
    const double p = std::min(
        1.0, (a.avg_w() + b.avg_w()) * (a.avg_h() + b.avg_h()) / cell_area);
    estimate += static_cast<double>(a.count) *
                static_cast<double>(b.count) * p;
  }
  return estimate;
}

double SpatialHistogram::EstimateWindowCount(const Rect& window) const {
  if (window.empty()) return 0.0;
  double estimate = 0.0;
  for (uint32_t cy = 0; cy < ny_; ++cy) {
    for (uint32_t cx = 0; cx < nx_; ++cx) {
      const Cell& cell = cells_[static_cast<size_t>(cy) * nx_ + cx];
      if (cell.count == 0) continue;
      const Rect cell_rect(universe_.xlo + cx * cell_w_,
                           universe_.ylo + cy * cell_h_,
                           universe_.xlo + (cx + 1) * cell_w_,
                           universe_.ylo + (cy + 1) * cell_h_);
      // Grow the window by the cell's average feature extents (a feature
      // centered outside the window can still overlap it), intersect with
      // the cell, and take the covered fraction.
      const Rect grown(window.xlo - cell.avg_w() / 2,
                       window.ylo - cell.avg_h() / 2,
                       window.xhi + cell.avg_w() / 2,
                       window.yhi + cell.avg_h() / 2);
      const double overlap = Rect::OverlapArea(grown, cell_rect);
      const double cell_area = cell_rect.Area();
      if (cell_area > 0) {
        estimate += static_cast<double>(cell.count) * overlap / cell_area;
      }
    }
  }
  return estimate;
}

std::vector<double> SpatialHistogram::ColumnLoads() const {
  std::vector<double> loads(nx_, 0.0);
  for (uint32_t cy = 0; cy < ny_; ++cy) {
    for (uint32_t cx = 0; cx < nx_; ++cx) {
      const Cell& cell = cells_[static_cast<size_t>(cy) * nx_ + cx];
      if (cell.count == 0) continue;
      const double span = cell_w_ > 0 ? 1.0 + cell.avg_w() / cell_w_ : 1.0;
      loads[cx] += static_cast<double>(cell.count) * span;
    }
  }
  return loads;
}

}  // namespace pbsm
