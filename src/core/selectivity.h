#ifndef PBSM_CORE_SELECTIVITY_H_
#define PBSM_CORE_SELECTIVITY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"
#include "storage/catalog.h"
#include "storage/heap_file.h"

namespace pbsm {

/// Catalog-only estimate of the filter-step candidate pairs of R JOIN S —
/// the uniform-universe special case of the histogram estimate below, using
/// just the statistics the loader puts in every RelationInfo (cardinality,
/// universe, average MBR extents). This is what the service planner falls
/// back to before a SpatialHistogram has been built for a dataset:
///
///   E[pairs] = nR * nS * min(1, (wR+wS)(hR+hS) / area(universe))
///
/// with the universe the minimum cover of both inputs' universes. Returns 0
/// when either input is empty; degenerate (zero-area) universes fall back
/// to treating every pair as a candidate of the overlapping span.
double EstimateCandidatePairs(const RelationInfo& r, const RelationInfo& s);

/// Grid histogram of a spatial relation for join-selectivity estimation —
/// an extension of the paper's catalog (§3.1 uses only the universe MBR).
///
/// Each grid cell records how many feature MBRs are centered in it plus the
/// average MBR width/height of those features. Two histograms over the same
/// universe estimate the *filter-step* output cardinality of a spatial
/// join: per cell, the expected number of overlapping MBR pairs under a
/// uniform-within-cell assumption,
///
///   E[pairs] = n1 * n2 * min(1, (w1+w2)(h1+h2) / cell_area).
///
/// A database system would use this to budget the candidate sorter, choose
/// partition counts, or cost join orders.
class SpatialHistogram {
 public:
  /// Grid of nx x ny cells over `universe`. Precondition: non-empty
  /// universe, nx, ny >= 1.
  SpatialHistogram(const Rect& universe, uint32_t nx, uint32_t ny);

  /// Accounts one feature MBR (binned by its center).
  void Add(const Rect& mbr);

  /// Builds a histogram by scanning a stored relation.
  static Result<SpatialHistogram> Build(const HeapFile& heap,
                                        const Rect& universe, uint32_t nx,
                                        uint32_t ny);

  /// Estimated filter-step candidate pairs of joining `this` (as R) with
  /// `other` (as S). Precondition: same grid shape and universe.
  double EstimateJoinCandidates(const SpatialHistogram& other) const;

  /// Estimated number of features whose MBR overlaps `window`.
  double EstimateWindowCount(const Rect& window) const;

  /// Per-column replication-aware load, the input to spatial shard
  /// assignment (ComputeShardLayout): for each of the nx grid columns, the
  /// count of features centered there weighted by the expected number of
  /// column-width strips one feature's MBR spans (1 + avg_w / cell_w).
  /// Cutting strip boundaries so these loads balance equalizes the
  /// *replicated* tuple volume each strip receives, not just its area.
  std::vector<double> ColumnLoads() const;

  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }

  uint64_t total_count() const { return total_count_; }
  uint32_t nx() const { return nx_; }
  uint32_t ny() const { return ny_; }
  const Rect& universe() const { return universe_; }

 private:
  struct Cell {
    uint64_t count = 0;
    double sum_w = 0.0;
    double sum_h = 0.0;

    double avg_w() const { return count == 0 ? 0.0 : sum_w / count; }
    double avg_h() const { return count == 0 ? 0.0 : sum_h / count; }
  };

  size_t CellIndex(const Point& p) const;

  Rect universe_;
  uint32_t nx_;
  uint32_t ny_;
  double cell_w_;
  double cell_h_;
  std::vector<Cell> cells_;
  uint64_t total_count_ = 0;
};

}  // namespace pbsm

#endif  // PBSM_CORE_SELECTIVITY_H_
