#include "core/join_methods_internal.h"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/plane_sweep_join.h"
#include "core/refinement.h"
#include "core/sweep_kernel.h"
#include "core/spatial_partitioner.h"
#include "geom/hilbert.h"
#include "storage/spool_file.h"
#include "storage/tuple.h"

namespace pbsm {

Status SpatialHashFilter(BufferPool* pool, const JoinInput& r,
                         const JoinInput& s,
                         const SpatialHashJoinOptions& options,
                         CandidateSorter* sorter,
                         JoinCostBreakdown* bd) {
  JoinCostBreakdown& breakdown = *bd;
  DiskManager* disk = pool->disk();
  const Rect universe = Rect::Union(r.info.universe, s.info.universe);
  if (universe.empty()) {
    return Status::InvalidArgument("join inputs have an empty universe");
  }
  uint32_t num_buckets =
      options.num_buckets != 0
          ? options.num_buckets
          : SpatialPartitioner::EstimatePartitionCount(
                r.info.cardinality, s.info.cardinality,
                options.join.memory_budget_bytes);
  if (num_buckets < 1) num_buckets = 1;
  breakdown.num_partitions = num_buckets;

  // ---- Seed bucket extents from a sample of R. ----
  std::vector<Rect> extents(num_buckets);
  {
    const std::string phase = "sample " + r.info.name;
    PhaseCost& cost = breakdown.AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    size_t sample_target = static_cast<size_t>(
        static_cast<double>(r.info.cardinality) * options.sample_fraction);
    sample_target = std::max<size_t>(sample_target, num_buckets * 4);

    // Reservoir sample of R MBRs (deterministic).
    Rng rng(0x5ea7ed);
    std::vector<Rect> sample;
    sample.reserve(sample_target);
    uint64_t seen = 0;
    PBSM_RETURN_IF_ERROR(r.heap->Scan(
        [&](Oid, const char* data, size_t size) -> Status {
          PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
          ++seen;
          if (sample.size() < sample_target) {
            sample.push_back(tuple.geometry.Mbr());
          } else {
            const uint64_t j = rng.Uniform(seen);
            if (j < sample_target) sample[j] = tuple.geometry.Mbr();
          }
          return Status::OK();
        }));
    if (sample.empty()) {
      // Degenerate input; one bucket covering the universe.
      extents.assign(1, universe);
      num_buckets = 1;
      breakdown.num_partitions = 1;
    } else {
      // Hilbert-sort the sample and cut it into equal runs; each run's
      // cover seeds one bucket (a flat stand-in for LR96's seeded tree).
      const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kHilbert,
                                    universe);
      std::sort(sample.begin(), sample.end(),
                [&curve](const Rect& a, const Rect& b) {
                  return curve.Key(a) < curve.Key(b);
                });
      const size_t per_bucket =
          (sample.size() + num_buckets - 1) / num_buckets;
      for (uint32_t b = 0; b < num_buckets; ++b) {
        const size_t begin = static_cast<size_t>(b) * per_bucket;
        const size_t end = std::min(begin + per_bucket, sample.size());
        Rect cover;
        for (size_t i = begin; i < end; ++i) cover.Expand(sample[i]);
        if (cover.empty()) cover = universe;  // Surplus buckets.
        extents[b] = cover;
      }
    }
  }

  // ---- Partition R: each tuple to the one bucket needing the least
  // enlargement; the bucket extent grows to cover it. ----
  std::vector<SpoolFile> r_spools, s_spools;
  for (uint32_t b = 0; b < num_buckets; ++b) {
    PBSM_ASSIGN_OR_RETURN(SpoolFile rs,
                          SpoolFile::Create(pool, sizeof(KeyPointer)));
    PBSM_ASSIGN_OR_RETURN(SpoolFile ss,
                          SpoolFile::Create(pool, sizeof(KeyPointer)));
    r_spools.push_back(std::move(rs));
    s_spools.push_back(std::move(ss));
  }
  {
    const std::string phase = "partition " + r.info.name;
    PhaseCost& cost = breakdown.AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_RETURN_IF_ERROR(r.heap->Scan(
        [&](Oid oid, const char* data, size_t size) -> Status {
          PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
          const Rect mbr = tuple.geometry.Mbr();
          uint32_t best = 0;
          double best_growth = std::numeric_limits<double>::infinity();
          double best_area = std::numeric_limits<double>::infinity();
          for (uint32_t b = 0; b < num_buckets; ++b) {
            const double growth =
                Rect::Union(extents[b], mbr).Area() - extents[b].Area();
            const double area = extents[b].Area();
            if (growth < best_growth ||
                (growth == best_growth && area < best_area)) {
              best_growth = growth;
              best_area = area;
              best = b;
            }
          }
          extents[best].Expand(mbr);
          const KeyPointer kp{mbr, oid.Encode()};
          return r_spools[best].Append(&kp);
        }));
  }

  // ---- Partition S: replicate to every overlapping bucket extent. ----
  {
    const std::string phase = "partition " + s.info.name;
    PhaseCost& cost = breakdown.AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_RETURN_IF_ERROR(s.heap->Scan(
        [&](Oid oid, const char* data, size_t size) -> Status {
          PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
          const KeyPointer kp{tuple.geometry.Mbr(), oid.Encode()};
          uint32_t copies = 0;
          for (uint32_t b = 0; b < num_buckets; ++b) {
            if (extents[b].Intersects(kp.mbr)) {
              PBSM_RETURN_IF_ERROR(s_spools[b].Append(&kp));
              ++copies;
            }
          }
          // S tuples overlapping no bucket are filtered out entirely.
          if (copies > 1) breakdown.replicated += copies - 1;
          return Status::OK();
        }));
  }

  // ---- Join each bucket pair with the plane sweep. ----
  {
    PhaseCost& cost = breakdown.AddPhase("merge buckets");
    PhaseTimer timer(disk, &cost, "merge buckets");
    const uint64_t chunk_records = std::max<uint64_t>(
        1, options.join.memory_budget_bytes / 2 / sizeof(KeyPointer));
    for (uint32_t b = 0; b < num_buckets; ++b) {
      if (r_spools[b].num_records() > 0 && s_spools[b].num_records() > 0) {
        Status append_status;
        auto batch_sink = [&](const OidPair* pairs, size_t n) {
          if (!append_status.ok()) return;
          append_status = sorter->AddBatch(pairs, n);
          breakdown.candidates += n;
        };
        // Chunked sweep: R side in memory-bounded chunks against S chunks
        // (buckets normally fit; overflow degrades gracefully).
        SpoolFile::Reader r_reader = r_spools[b].NewReader();
        while (true) {
          std::vector<KeyPointer> r_chunk;
          KeyPointer kp;
          while (r_chunk.size() < chunk_records) {
            PBSM_ASSIGN_OR_RETURN(const bool has, r_reader.Next(&kp));
            if (!has) break;
            r_chunk.push_back(kp);
          }
          if (r_chunk.empty()) break;
          SpoolFile::Reader s_reader = s_spools[b].NewReader();
          while (true) {
            std::vector<KeyPointer> s_chunk;
            while (s_chunk.size() < chunk_records) {
              PBSM_ASSIGN_OR_RETURN(const bool has, s_reader.Next(&kp));
              if (!has) break;
              s_chunk.push_back(kp);
            }
            if (s_chunk.empty()) break;
            PlaneSweepJoinBatch(&r_chunk, &s_chunk, batch_sink,
                                options.join.sweep, options.join.simd);
          }
        }
        PBSM_RETURN_IF_ERROR(append_status);
      }
      PBSM_RETURN_IF_ERROR(r_spools[b].Drop());
      PBSM_RETURN_IF_ERROR(s_spools[b].Drop());
    }
  }
  return Status::OK();
}

Result<JoinCostBreakdown> SpatialHashJoin(
    BufferPool* pool, const JoinInput& r, const JoinInput& s,
    SpatialPredicate pred, const SpatialHashJoinOptions& options,
    const ResultSink& sink) {
  JoinCostBreakdown breakdown;
  DiskManager* disk = pool->disk();

  CandidateSorter sorter(pool, options.join.memory_budget_bytes,
                         OidPairLess{});
  PBSM_RETURN_IF_ERROR(
      SpatialHashFilter(pool, r, s, options, &sorter, &breakdown));

  // ---- Shared refinement. R is never replicated, but one S tuple can
  // meet the same R tuple through... it cannot: R lives in exactly one
  // bucket, so pairs are unique; the sort still orders fetches. ----
  {
    PhaseCost& cost = breakdown.AddPhase("refinement");
    PhaseTimer timer(disk, &cost, "refinement");
    PBSM_RETURN_IF_ERROR(RefineCandidates(&sorter, r, s, pred,
                                          options.join, sink, &breakdown));
  }
  return breakdown;
}

}  // namespace pbsm
