#ifndef PBSM_CORE_SPATIAL_HASH_JOIN_H_
#define PBSM_CORE_SPATIAL_HASH_JOIN_H_

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// Options for the spatial hash join.
struct SpatialHashJoinOptions {
  /// Number of buckets; 0 derives it from Equation 1 like PBSM.
  uint32_t num_buckets = 0;
  /// R tuples sampled to seed the bucket extents (fraction of |R|).
  double sample_fraction = 0.01;
  JoinOptions join;
};

/// Spatial hash join (Lo & Ravishankar, SIGMOD '96) — the concurrent
/// no-index algorithm the paper's §2 and Table 1 discuss, implemented as a
/// fourth join for comparison.
///
/// Where PBSM partitions *both* inputs with one space-regular tiling and
/// replicates any object spanning tiles, the spatial hash join is
/// asymmetric:
///  1. a sample of R seeds the bucket extents (here: a Hilbert-sorted
///     sample cut into equal runs, each run's cover is one seed — standing
///     in for LR96's seeded-tree levels);
///  2. every R tuple goes to exactly ONE bucket — the one whose extent
///     needs the least enlargement (the bucket extent grows to cover it),
///     so R is never replicated;
///  3. every S tuple is replicated to ALL buckets whose (final) extents
///     its MBR overlaps; S tuples overlapping no bucket are dropped by the
///     filter (they cannot join);
///  4. each bucket pair is plane-sweep joined and candidates run through
///     the shared refinement (LR96 itself "ignores the very expensive
///     refinement step" — the paper's words; here it is included so totals
///     are comparable).
/// Deprecated for new callers: use SpatialJoin() in core/spatial_join.h,
/// which wraps this entry point behind the unified JoinSpec/JoinResult
/// API and adds tracing + metrics capture.
Result<JoinCostBreakdown> SpatialHashJoin(
    BufferPool* pool, const JoinInput& r, const JoinInput& s,
    SpatialPredicate pred, const SpatialHashJoinOptions& options,
    const ResultSink& sink = {});

}  // namespace pbsm

#endif  // PBSM_CORE_SPATIAL_HASH_JOIN_H_
