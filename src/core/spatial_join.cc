#include "core/spatial_join.h"

#include <string>

#include "common/logging.h"
#include "common/metrics.h"

namespace pbsm {

std::string_view JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kPbsm:
      return "pbsm";
    case JoinMethod::kParallelPbsm:
      return "parallel_pbsm";
    case JoinMethod::kInl:
      return "inl";
    case JoinMethod::kRtree:
      return "rtree";
    case JoinMethod::kSpatialHash:
      return "spatial_hash";
    case JoinMethod::kZOrder:
      return "zorder";
  }
  PBSM_CHECK(false) << "unknown JoinMethod "
                    << static_cast<int>(method);
}

std::optional<JoinMethod> ParseJoinMethod(std::string_view name) {
  if (name == "pbsm") return JoinMethod::kPbsm;
  if (name == "parallel_pbsm" || name == "parallel") {
    return JoinMethod::kParallelPbsm;
  }
  if (name == "inl") return JoinMethod::kInl;
  if (name == "rtree") return JoinMethod::kRtree;
  if (name == "spatial_hash" || name == "hash") {
    return JoinMethod::kSpatialHash;
  }
  if (name == "zorder" || name == "z-order") return JoinMethod::kZOrder;
  return std::nullopt;
}

void CountJoinFailure(JoinMethod method, const Status& status) {
  if (status.ok()) return;
  // Cancellations are not failures: they are the service tearing down
  // work on purpose, and alerting on them as errors would be noise.
  const bool cancelled = status.code() == StatusCode::kCancelled;
  MetricsRegistry::Global()
      .GetCounter((cancelled ? "join.cancelled." : "join.failures.") +
                  std::string(JoinMethodName(method)))
      ->Add();
}

// The SpatialJoin facade itself lives in src/exec/spatial_join.cc: it
// builds and drives an operator tree (or dispatches to the monolithic
// entry points under JoinEngine::kMonolith), which the core library cannot
// do without depending on the exec layer above it.

}  // namespace pbsm
