#include "core/spatial_join.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/join_methods_internal.h"

namespace pbsm {

std::string_view JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kPbsm:
      return "pbsm";
    case JoinMethod::kParallelPbsm:
      return "parallel_pbsm";
    case JoinMethod::kInl:
      return "inl";
    case JoinMethod::kRtree:
      return "rtree";
    case JoinMethod::kSpatialHash:
      return "spatial_hash";
    case JoinMethod::kZOrder:
      return "zorder";
  }
  PBSM_CHECK(false) << "unknown JoinMethod "
                    << static_cast<int>(method);
}

std::optional<JoinMethod> ParseJoinMethod(std::string_view name) {
  if (name == "pbsm") return JoinMethod::kPbsm;
  if (name == "parallel_pbsm" || name == "parallel") {
    return JoinMethod::kParallelPbsm;
  }
  if (name == "inl") return JoinMethod::kInl;
  if (name == "rtree") return JoinMethod::kRtree;
  if (name == "spatial_hash" || name == "hash") {
    return JoinMethod::kSpatialHash;
  }
  if (name == "zorder" || name == "z-order") return JoinMethod::kZOrder;
  return std::nullopt;
}

namespace {

/// Dispatches to the internal entry point for `spec.method`.
Result<JoinCostBreakdown> Dispatch(BufferPool* pool, const JoinInput& r,
                                   const JoinInput& s, const JoinSpec& spec) {
  switch (spec.method) {
    case JoinMethod::kPbsm:
      return PbsmJoin(pool, r, s, spec.predicate, spec.options, spec.sink);

    case JoinMethod::kParallelPbsm:
      return ParallelPbsmJoin(pool, r, s, spec.predicate, spec.options,
                              spec.sink, spec.parallel_stats);

    case JoinMethod::kInl: {
      // INL indexes one side and probes with the other. Prefer a side with
      // a pre-existing index; otherwise index the smaller input (the
      // paper's choice). The facade's contract is pred(r, s) and sink
      // pairs oriented (r, s), so when s is the indexed side we flip the
      // predicate orientation flag and swap the emitted pair (INL emits
      // (indexed, probing)).
      const bool index_s =
          spec.s_index != nullptr ||
          (spec.r_index == nullptr &&
           s.info.cardinality < r.info.cardinality);
      const JoinInput& indexed = index_s ? s : r;
      const JoinInput& probing = index_s ? r : s;
      const RStarTree* index = index_s ? spec.s_index : spec.r_index;
      ResultSink oriented = spec.sink;
      if (index_s && spec.sink) {
        const ResultSink& user = spec.sink;
        oriented = [&user](Oid a, Oid b) { user(b, a); };
      }
      return IndexedNestedLoopsJoin(pool, indexed, probing, spec.predicate,
                                    spec.options, oriented, index,
                                    /*indexed_is_left=*/!index_s);
    }

    case JoinMethod::kRtree:
      return RtreeJoin(pool, r, s, spec.predicate, spec.options, spec.sink,
                       spec.r_index, spec.s_index);

    case JoinMethod::kSpatialHash: {
      SpatialHashJoinOptions options;
      options.num_buckets = spec.hash.num_buckets;
      options.sample_fraction = spec.hash.sample_fraction;
      options.join = spec.options;
      return SpatialHashJoin(pool, r, s, spec.predicate, options, spec.sink);
    }

    case JoinMethod::kZOrder: {
      ZOrderJoinOptions options;
      options.max_level = spec.zorder.max_level;
      options.max_cells_per_object = spec.zorder.max_cells_per_object;
      options.join = spec.options;
      return ZOrderJoin(pool, r, s, spec.predicate, options, spec.sink);
    }
  }
  PBSM_CHECK(false) << "unknown JoinMethod "
                    << static_cast<int>(spec.method);
}

}  // namespace

Result<JoinResult> SpatialJoin(BufferPool* pool, const JoinInput& r,
                               const JoinInput& s, const JoinSpec& spec) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const MetricsSnapshot before = metrics.Snapshot();
  const std::string span_name =
      "join/" + std::string(JoinMethodName(spec.method));
  Stopwatch watch;

  JoinResult result;
  result.method = spec.method;
  {
    TraceSpan span(span_name);
    // A query cancelled while queued (service timeout before dispatch)
    // never starts executing.
    if (spec.options.cancel != nullptr &&
        spec.options.cancel->is_cancelled()) {
      metrics
          .GetCounter("join.cancelled." +
                      std::string(JoinMethodName(spec.method)))
          ->Add();
      return spec.options.cancel->CancellationStatus();
    }
    Result<JoinCostBreakdown> dispatched = Dispatch(pool, r, s, spec);
    if (!dispatched.ok()) {
      // Cancellations are not failures: they are the service tearing down
      // work on purpose, and alerting on them as errors would be noise.
      const bool cancelled =
          dispatched.status().code() == StatusCode::kCancelled;
      metrics
          .GetCounter((cancelled ? "join.cancelled." : "join.failures.") +
                      std::string(JoinMethodName(spec.method)))
          ->Add();
      return dispatched.status();
    }
    result.breakdown = std::move(dispatched).value();
  }
  result.wall_seconds = watch.ElapsedSeconds();
  result.num_results = result.breakdown.results;

  // Mirror the breakdown's filter/refinement counters into the registry so
  // metrics consumers see them without holding a JoinResult.
  metrics.GetCounter("join.candidates")->Add(result.breakdown.candidates);
  metrics.GetCounter("join.results")->Add(result.breakdown.results);
  metrics.GetCounter("join.duplicates_removed")
      ->Add(result.breakdown.duplicates_removed);
  metrics.GetCounter("join.replicated")->Add(result.breakdown.replicated);
  metrics.GetCounter("join.repartitioned_pairs")
      ->Add(result.breakdown.repartitioned_pairs);
  metrics.GetCounter(
      "join.runs." + std::string(JoinMethodName(spec.method)))->Add();

  result.metrics = metrics.Snapshot().Delta(before);
  return result;
}

}  // namespace pbsm
