#ifndef PBSM_CORE_SPATIAL_JOIN_H_
#define PBSM_CORE_SPATIAL_JOIN_H_

#include <optional>
#include <string_view>
#include <unordered_map>

#include "common/metrics.h"
#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "core/parallel_stats.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// Every join algorithm the system implements, selectable through the one
/// SpatialJoin() facade below.
enum class JoinMethod {
  kPbsm,          ///< Partition Based Spatial-Merge join (the paper's §3).
  kParallelPbsm,  ///< Threaded PBSM executor (shared-memory parallel).
  kInl,           ///< Indexed nested loops over an R*-tree (§4.1).
  kRtree,         ///< Synchronized R*-tree traversal join (§4.2, BKS93).
  kSpatialHash,   ///< Spatial hash join (LR96).
  kZOrder,        ///< Orenstein z-value transform join (Ore86/OM88).
};

/// Stable lowercase identifier ("pbsm", "parallel_pbsm", "inl", "rtree",
/// "spatial_hash", "zorder") — used in CLI flags, metrics and trace spans.
std::string_view JoinMethodName(JoinMethod method);

/// Inverse of JoinMethodName; nullopt on an unknown identifier.
std::optional<JoinMethod> ParseJoinMethod(std::string_view name);

/// Which execution engine the facade uses.
enum class JoinEngine {
  /// Pull-based operator tree (src/exec): FilterJoinOp -> RefineOp, with
  /// selection pushdown and per-operator tracing/metrics. The default —
  /// produces the exact result-pair set of the monolithic path.
  kOperatorTree,
  /// The legacy monolithic per-method entry points, kept as the
  /// differential reference and for callers embedding the join in their
  /// own pipelines.
  kMonolith,
};

/// Window pushdown: only result pairs whose BOTH sides' MBRs intersect
/// `window` are emitted to the sink. With the operator engine this runs as
/// a SelectOp above the join; the monolithic engine applies it as a sink
/// filter. The optional MBR maps skip the tuple fetch + parse per side;
/// when null the side's MBR is read from its heap.
struct WindowFilter {
  Rect window;
  const std::unordered_map<uint64_t, Rect>* r_mbrs = nullptr;
  const std::unordered_map<uint64_t, Rect>* s_mbrs = nullptr;
};

/// Bumps "join.cancelled.<method>" for kCancelled statuses and
/// "join.failures.<method>" for every other non-OK status; no-op on OK.
/// The facade and the legacy non-facade entry points (SimulateParallelPbsm)
/// both route their failure accounting through here.
void CountJoinFailure(JoinMethod method, const Status& status);

/// The complete specification of one spatial join: the algorithm, the exact
/// predicate, the shared knobs, and per-algorithm option groups. Fields an
/// algorithm does not use are ignored. The groups are plain nested structs
/// with designated-initializer-friendly defaults:
///
///   JoinSpec spec;
///   spec.method = JoinMethod::kZOrder;
///   spec.zorder = {.max_level = 10, .max_cells_per_object = 8};
///   spec.options.refine = {.mode = RefineMode::kAdaptive};
struct JoinSpec {
  JoinMethod method = JoinMethod::kPbsm;
  SpatialPredicate predicate = SpatialPredicate::kIntersects;

  /// Execution engine; kOperatorTree builds and drives a pull-based
  /// operator tree, kMonolith calls the legacy per-method function.
  /// Result pairs are identical either way.
  JoinEngine engine = JoinEngine::kOperatorTree;

  /// Optional window pushdown over the result pairs (see WindowFilter).
  /// JoinResult.num_results still counts pre-window refined pairs; only
  /// the sink sees the filtered stream.
  std::optional<WindowFilter> window;

  /// Knobs shared by every algorithm (memory budget, tiles, thread count
  /// for the parallel executor, ...). Of note: options.dedup_mode selects
  /// the duplicate-free two-layer filter (default) or the paper's
  /// replicate-then-merge-dedup scheme for the PBSM methods, and
  /// options.refine holds the adaptive-refinement knobs — refinement is
  /// shared by every method (INL excepted, which tests inline during the
  /// probe), so its options live with the other shared knobs rather than
  /// as a per-method group here.
  JoinOptions options;

  /// Receives each (r, s) result pair. Always oriented as the facade's
  /// inputs: first OID from `r`, second from `s`, whichever side an
  /// algorithm internally indexes or probes. May be empty for counts only.
  ResultSink sink;

  // --- kInl / kRtree: pre-existing indexes (Figures 14/15 variants) ---
  /// R*-tree over the r (resp. s) input. kRtree uses both when given and
  /// builds the missing ones; kInl probes with the other side and requires
  /// at most one. Ignored by the non-index methods.
  const RStarTree* r_index = nullptr;
  const RStarTree* s_index = nullptr;

  /// kSpatialHash options.
  struct Hash {
    uint32_t num_buckets = 0;       ///< 0 derives from Equation 1.
    double sample_fraction = 0.01;  ///< R sample seeding bucket extents.
  };
  Hash hash;

  /// kZOrder options.
  struct ZOrder {
    uint32_t max_level = 8;             ///< Quadtree depth.
    uint32_t max_cells_per_object = 4;  ///< Cells approximating one MBR.
  };
  ZOrder zorder;

  // --- kParallelPbsm ---
  /// Optional sink for per-worker/per-task timing statistics.
  ParallelJoinStats* parallel_stats = nullptr;
};

/// What one SpatialJoin() execution produced: the result-pair count, the
/// per-phase cost breakdown the legacy entry points returned, and the
/// global-metrics delta attributable to this join (counters bumped and
/// histograms recorded between entry and exit — buffer-pool hits/misses,
/// refinement true/false positives, repartition depths, ...).
struct JoinResult {
  JoinMethod method = JoinMethod::kPbsm;
  uint64_t num_results = 0;      ///< == breakdown.results.
  double wall_seconds = 0.0;     ///< End-to-end facade wall time.
  JoinCostBreakdown breakdown;
  MetricsSnapshot metrics;       ///< Delta snapshot over this join.
};

/// Unified entry point: runs the join described by `spec` over inputs `r`
/// and `s` and returns a uniform JoinResult. Every execution is wrapped in
/// a "join/<method>" trace span (phases nest underneath) and bumps the
/// "join.candidates" / "join.results" / "join.duplicates_removed" /
/// "join.replicated" / "join.repartitioned_pairs" counters.
///
/// Orientation: the predicate is evaluated as pred(r, s) and result pairs
/// arrive at spec.sink as (r_oid, s_oid) for every method, including kInl
/// (which internally may index either side; the facade indexes the side
/// with a pre-existing index, else the smaller input, and restores the
/// caller's orientation).
///
/// This is the ONLY public join entry point. The per-algorithm functions
/// it dispatches to live in core/join_methods_internal.h and are reserved
/// for src/core implementation files.
Result<JoinResult> SpatialJoin(BufferPool* pool, const JoinInput& r,
                               const JoinInput& s, const JoinSpec& spec);

}  // namespace pbsm

#endif  // PBSM_CORE_SPATIAL_JOIN_H_
