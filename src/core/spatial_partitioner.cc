#include "core/spatial_partitioner.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/key_pointer.h"

namespace pbsm {

namespace {

/// 64-bit finalizer (SplitMix64) — a high-quality stateless tile hash.
uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SpatialPartitioner::SpatialPartitioner(const Rect& universe,
                                       uint32_t num_tiles,
                                       uint32_t num_partitions,
                                       TileMapping mapping)
    : universe_(universe), num_partitions_(num_partitions), mapping_(mapping) {
  PBSM_CHECK(!universe.empty()) << "partitioner needs a non-empty universe";
  PBSM_CHECK(num_partitions >= 1);
  PBSM_CHECK(num_tiles >= num_partitions)
      << "need at least as many tiles as partitions";
  nx_ = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(num_tiles))));
  if (nx_ == 0) nx_ = 1;
  ny_ = (num_tiles + nx_ - 1) / nx_;
  if (ny_ == 0) ny_ = 1;
  tile_w_ = universe_.width() / nx_;
  tile_h_ = universe_.height() / ny_;
}

uint32_t SpatialPartitioner::TileFor(double x, double y) const {
  auto clamp_cell = [](double v, double lo, double extent, uint32_t cells) {
    if (extent <= 0) return 0u;
    const double c = (v - lo) / extent * cells;
    if (c <= 0) return 0u;
    uint32_t cell = static_cast<uint32_t>(c);
    return std::min(cell, cells - 1);
  };
  const uint32_t col = clamp_cell(x, universe_.xlo, universe_.width(), nx_);
  // Row 0 is the *top* row (Figure 3 numbers tiles from the upper left).
  const uint32_t row_from_bottom =
      clamp_cell(y, universe_.ylo, universe_.height(), ny_);
  const uint32_t row = ny_ - 1 - row_from_bottom;
  return row * nx_ + col;
}

uint32_t SpatialPartitioner::PartitionOfTile(uint32_t tile) const {
  switch (mapping_) {
    case TileMapping::kRoundRobin:
      return tile % num_partitions_;
    case TileMapping::kHash:
      return static_cast<uint32_t>(MixHash(tile) % num_partitions_);
  }
  return 0;
}

void SpatialPartitioner::PartitionsFor(const Rect& mbr,
                                       std::vector<uint32_t>* out) const {
  const uint32_t t_lo = TileFor(mbr.xlo, mbr.ylo);
  const uint32_t t_hi = TileFor(mbr.xhi, mbr.yhi);
  const uint32_t col_lo = t_lo % nx_;
  const uint32_t col_hi = t_hi % nx_;
  // ylo maps to the *larger* row number (rows count from the top).
  const uint32_t row_hi = t_lo / nx_;
  const uint32_t row_lo = t_hi / nx_;
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    for (uint32_t col = col_lo; col <= col_hi; ++col) {
      out->push_back(PartitionOfTile(row * nx_ + col));
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void SpatialPartitioner::ClassifyTiles(const Rect& mbr,
                                       std::vector<TileAssignment>* out) const {
  const uint32_t t_lo = TileFor(mbr.xlo, mbr.ylo);
  const uint32_t t_hi = TileFor(mbr.xhi, mbr.yhi);
  const uint32_t col_lo = t_lo % nx_;
  const uint32_t col_hi = t_hi % nx_;
  // ylo maps to the *larger* row number (rows count from the top), so the
  // origin corner (xlo, ylo) lives in tile (col_lo, row_hi).
  const uint32_t row_hi = t_lo / nx_;
  const uint32_t row_lo = t_hi / nx_;
  for (uint32_t row = row_lo; row <= row_hi; ++row) {
    const bool origin_row = row == row_hi;
    for (uint32_t col = col_lo; col <= col_hi; ++col) {
      const bool origin_col = col == col_lo;
      TileClass cls;
      if (origin_row) {
        cls = origin_col ? TileClass::kA : TileClass::kB;
      } else {
        cls = origin_col ? TileClass::kC : TileClass::kD;
      }
      out->push_back(TileAssignment{row * nx_ + col, cls});
    }
  }
}

uint32_t SpatialPartitioner::EstimatePartitionCount(uint64_t r_cardinality,
                                                    uint64_t s_cardinality,
                                                    size_t memory_bytes) {
  PBSM_CHECK(memory_bytes > 0);
  const double bytes = static_cast<double>(r_cardinality + s_cardinality) *
                       sizeof(KeyPointer);
  const double p = std::ceil(bytes / static_cast<double>(memory_bytes));
  return p < 1.0 ? 1u : static_cast<uint32_t>(p);
}

}  // namespace pbsm
