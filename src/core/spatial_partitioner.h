#ifndef PBSM_CORE_SPATIAL_PARTITIONER_H_
#define PBSM_CORE_SPATIAL_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "geom/rect.h"

namespace pbsm {

/// Tile-to-partition mapping scheme (§3.4's two design-space axes).
enum class TileMapping {
  kRoundRobin,  ///< partition = tile_number mod P.
  kHash,        ///< partition = hash(tile_number) mod P.
};

/// How the filter phase avoids emitting a replicated candidate pair more
/// than once.
enum class DedupMode {
  /// The paper's scheme: replicate into every overlapped tile, sweep each
  /// partition, then k-way merge-dedup the per-partition candidate lists
  /// before refinement (§3.2's sort doubles as the dedup).
  kMerge,
  /// Two-layer space-oriented partitioning (Tsitsigkos et al.): each tile
  /// copy is tagged with the corner class A/B/C/D of where the MBR sits
  /// relative to the tile, and per-tile joins run only the class-pair
  /// mini-joins whose geometry guarantees each intersecting pair is
  /// produced by exactly one tile. No merge, no dedup hash.
  kTwoLayer,
};

inline const char* DedupModeName(DedupMode mode) {
  return mode == DedupMode::kMerge ? "merge" : "two_layer";
}

/// Corner class of one tile copy of an MBR (two-layer partitioning).
/// With rows numbered from the top (row 0 = top, larger row = smaller y),
/// the MBR's *origin corner* (xlo, ylo) lands in exactly one overlapped
/// tile: the lowest-column, highest-row one. Classes name the copy's
/// position relative to that origin tile:
///   A: origin tile (col == col_lo && row == row_hi) — holds the corner.
///   B: same row as the origin, column to the right (col > col_lo).
///   C: same column as the origin, row above (row < row_hi).
///   D: strictly right and above (col > col_lo && row < row_hi).
enum class TileClass : uint32_t { kA = 0, kB = 1, kC = 2, kD = 3 };

/// One tile copy produced by classification: which tile, and which class
/// the copy has inside that tile.
struct TileAssignment {
  uint32_t tile = 0;
  TileClass cls = TileClass::kA;
};

/// The paper's spatial partitioning function (§3.4).
///
/// The universe is decomposed regularly into a grid of NT tiles, numbered
/// row-major starting at the upper-left corner (as in Figure 3), and each
/// tile is mapped to one of P partitions by round robin or hashing. A
/// key-pointer element is inserted into the partition of *every* tile its
/// MBR overlaps — objects spanning tiles of multiple partitions are
/// replicated, which is the overhead Figures 5 and 6 measure.
class SpatialPartitioner {
 public:
  /// `num_tiles` is a request; the actual grid is nx x ny with
  /// nx = ceil(sqrt(NT)) columns and ny = ceil(NT / nx) rows, so the
  /// effective tile count may be slightly larger. Precondition:
  /// num_partitions >= 1, num_tiles >= num_partitions, non-empty universe.
  SpatialPartitioner(const Rect& universe, uint32_t num_tiles,
                     uint32_t num_partitions, TileMapping mapping);

  /// Appends to `out` the sorted, de-duplicated list of partitions whose
  /// tiles `mbr` overlaps. MBRs outside the universe are clamped to the
  /// border tiles (the catalog universe always covers the data, but a join
  /// partitions both inputs with the *combined* universe).
  void PartitionsFor(const Rect& mbr, std::vector<uint32_t>* out) const;

  /// Appends to `out` one TileAssignment per tile `mbr` overlaps, each
  /// tagged with its corner class (see TileClass). Unlike PartitionsFor
  /// this emits one entry per *tile*, not per partition — two-layer
  /// mini-joins are evaluated at tile granularity. Exactly one entry has
  /// class A. Same clamping rules as PartitionsFor.
  void ClassifyTiles(const Rect& mbr, std::vector<TileAssignment>* out) const;

  /// Tile number of a point (row-major from the upper-left corner).
  uint32_t TileFor(double x, double y) const;

  /// Partition a given tile maps to.
  uint32_t PartitionOfTile(uint32_t tile) const;

  /// Equation 1: number of partitions such that one R partition and one S
  /// partition of key-pointers fit in `memory_bytes` together.
  static uint32_t EstimatePartitionCount(uint64_t r_cardinality,
                                         uint64_t s_cardinality,
                                         size_t memory_bytes);

  uint32_t num_tiles() const { return nx_ * ny_; }
  uint32_t num_partitions() const { return num_partitions_; }
  uint32_t grid_nx() const { return nx_; }
  uint32_t grid_ny() const { return ny_; }
  const Rect& universe() const { return universe_; }

 private:
  Rect universe_;
  uint32_t nx_ = 1;
  uint32_t ny_ = 1;
  uint32_t num_partitions_ = 1;
  TileMapping mapping_;
  double tile_w_ = 0.0;
  double tile_h_ = 0.0;
};

}  // namespace pbsm

#endif  // PBSM_CORE_SPATIAL_PARTITIONER_H_
