#include "core/spatial_sharding.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace pbsm {

ShardLayout::ShardLayout(const Rect& universe, std::vector<double> boundaries)
    : universe_(universe), boundaries_(std::move(boundaries)) {
  PBSM_CHECK(std::is_sorted(boundaries_.begin(), boundaries_.end()))
      << "shard boundaries must be ascending";
}

Rect ShardLayout::Extent(uint32_t shard) const {
  PBSM_CHECK(shard < num_shards());
  const double lo = shard == 0 ? universe_.xlo : boundaries_[shard - 1];
  const double hi =
      shard == num_shards() - 1 ? universe_.xhi : boundaries_[shard];
  return Rect(lo, universe_.ylo, hi, universe_.yhi);
}

uint32_t ShardLayout::OwnerOfX(double x) const {
  return static_cast<uint32_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), x) -
      boundaries_.begin());
}

ShardLayout::ShardRange ShardLayout::Overlapping(const Rect& mbr) const {
  if (mbr.empty()) return ShardRange{0, 0};
  return ShardRange{OwnerOfX(mbr.xlo), OwnerOfX(mbr.xhi)};
}

uint32_t ShardLayout::PairOwner(const Rect& r, const Rect& s) const {
  return OwnerOfX(std::max(r.xlo, s.xlo));
}

uint32_t ShardLayout::PairOwner(const Rect& r, const Rect& s,
                                const Rect& w) const {
  return OwnerOfX(std::max(std::max(r.xlo, s.xlo), w.xlo));
}

std::string ShardLayout::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u strips @ [%.6g", num_shards(),
                universe_.xlo);
  std::string out = buf;
  for (const double b : boundaries_) {
    std::snprintf(buf, sizeof(buf), " | %.6g", b);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " | %.6g]", universe_.xhi);
  out += buf;
  return out;
}

ShardLayout ComputeShardLayout(const SpatialHistogram& hist,
                               uint32_t num_shards) {
  const Rect& universe = hist.universe();
  if (num_shards <= 1 || hist.total_count() == 0) {
    return ShardLayout(universe, {});
  }
  const std::vector<double> loads = hist.ColumnLoads();
  double total = 0.0;
  for (const double l : loads) total += l;
  if (total <= 0.0) return UniformShardLayout(universe, num_shards);

  // One forward scan over the columns: for each equal-load target, cut at
  // the crossing column, interpolating linearly inside it. Interpolation
  // keeps cuts distinct even when one heavy column crosses several targets
  // (extreme skew can still collapse cuts; such near-empty strips are legal
  // and short-circuited by the router).
  std::vector<double> boundaries;
  boundaries.reserve(num_shards - 1);
  const double cell_w = hist.cell_width();
  double cum = 0.0;
  size_t j = 0;
  for (uint32_t k = 1; k < num_shards; ++k) {
    const double target = total * static_cast<double>(k) / num_shards;
    while (j < loads.size() && cum + loads[j] < target) cum += loads[j++];
    double frac = 1.0;
    if (j < loads.size() && loads[j] > 0.0) {
      frac = (target - cum) / loads[j];
    }
    const double edge =
        universe.xlo + cell_w * (static_cast<double>(j) + frac);
    boundaries.push_back(
        boundaries.empty() ? edge : std::max(edge, boundaries.back()));
  }
  return ShardLayout(universe, std::move(boundaries));
}

ShardLayout UniformShardLayout(const Rect& universe, uint32_t num_shards) {
  if (num_shards <= 1 || universe.empty() || universe.width() <= 0.0) {
    return ShardLayout(universe, {});
  }
  std::vector<double> boundaries;
  boundaries.reserve(num_shards - 1);
  for (uint32_t k = 1; k < num_shards; ++k) {
    boundaries.push_back(universe.xlo +
                         universe.width() * static_cast<double>(k) /
                             num_shards);
  }
  return ShardLayout(universe, std::move(boundaries));
}

}  // namespace pbsm
