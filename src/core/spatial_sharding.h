#ifndef PBSM_CORE_SPATIAL_SHARDING_H_
#define PBSM_CORE_SPATIAL_SHARDING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/selectivity.h"
#include "geom/rect.h"

namespace pbsm {

/// Static spatial shard layout of the sharded join service: N vertical
/// strips over the universe, cut at `boundaries` along x. Each object is
/// replicated into every strip its MBR overlaps (exactly the tile
/// replication of the PBSM partitioner, at shard granularity), and result
/// pairs are deduplicated by *ownership*, not by a merge: a pair belongs to
/// the one shard whose half-open x-range contains the pair's reference
/// corner, max(r.xlo, s.xlo) — the two-layer corner-class rule
/// (Tsitsigkos et al.) collapsed to one dimension.
///
/// Why this is exact: if r and s intersect then max(r.xlo, s.xlo) lies in
/// both x-intervals (1-D Helly), so both objects are replicated into the
/// owning strip — the pair is *found* there (completeness) — and the owner
/// is unique, so no other shard may emit it (no duplicates). For
/// window-restricted joins the reference corner is additionally clamped by
/// the window's low x edge: max(r.xlo, s.xlo, w.xlo) lies in r ∩ s ∩ w, so
/// the owner is always one of the strips the window overlaps and the router
/// may dispatch sub-joins to those strips only.
///
/// Strips are half-open [b_{i-1}, b_i); the first and last extend to ±inf
/// for routing purposes so objects drifting past the layout universe (a
/// dataset registered after the layout was frozen) still land in a shard.
class ShardLayout {
 public:
  /// Single-shard layout (no boundaries; shard 0 owns everything).
  ShardLayout() = default;

  /// `boundaries` are the interior strip edges, ascending (size = shards-1).
  ShardLayout(const Rect& universe, std::vector<double> boundaries);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(boundaries_.size()) + 1;
  }
  const Rect& universe() const { return universe_; }
  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Display extent of strip `shard`: its x-range clipped to the layout
  /// universe, full universe y-range. Routing ignores the clipping (first
  /// and last strips are unbounded); this is for stats and window clipping.
  Rect Extent(uint32_t shard) const;

  /// The shard whose half-open strip [b_{i-1}, b_i) contains x.
  uint32_t OwnerOfX(double x) const;

  /// Inclusive range of shards whose strips `mbr` overlaps — the shards a
  /// registered object is replicated into, and the dispatch set of a
  /// window-restricted request.
  struct ShardRange {
    uint32_t first = 0;
    uint32_t last = 0;
    uint32_t count() const { return last - first + 1; }
  };
  ShardRange Overlapping(const Rect& mbr) const;

  /// The unique shard that owns (emits) the pair (r, s): the strip holding
  /// the pair's reference corner max(r.xlo, s.xlo).
  uint32_t PairOwner(const Rect& r, const Rect& s) const;

  /// Window-restricted ownership: reference corner clamped by w.xlo, so the
  /// owner is always inside Overlapping(w) (see class comment).
  uint32_t PairOwner(const Rect& r, const Rect& s, const Rect& w) const;

  /// "4 strips @ [x0 | b1 | b2 | b3 | x1]" for logs and `serve` stats.
  std::string ToString() const;

 private:
  Rect universe_;
  std::vector<double> boundaries_;  // Ascending interior edges.
};

/// Computes a load-balanced layout of `num_shards` strips from `hist`:
/// column loads are the replication-aware weights of
/// SpatialHistogram::ColumnLoads(), and each cut is placed (interpolating
/// within the crossing column) so every strip receives an equal share of
/// the total replicated-MBR load — balancing work per shard, not area.
/// Degenerate inputs (empty histogram, num_shards <= 1) yield fewer or
/// single strips; pathological skew may produce near-empty strips, which
/// the router short-circuits.
ShardLayout ComputeShardLayout(const SpatialHistogram& hist,
                               uint32_t num_shards);

/// Equal-width fallback when no histogram is available.
ShardLayout UniformShardLayout(const Rect& universe, uint32_t num_shards);

}  // namespace pbsm

#endif  // PBSM_CORE_SPATIAL_SHARDING_H_
