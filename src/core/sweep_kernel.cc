#include "core/sweep_kernel.h"

#include <cstdlib>
#include <cstring>
#include <new>

#include "common/metrics.h"

namespace pbsm {

namespace {

/// Rounds up to the SoA padding granule.
size_t Padded(size_t n) { return (n + kSoaPad - 1) / kSoaPad * kSoaPad; }

/// Column capacity for n elements. Kernels may start a 4-wide load at any
/// unaligned offset < n, so reads reach up to n + 3; rounding n + 4 up to
/// the granule guarantees the sentinel pad covers every readable lane even
/// when n itself is a multiple of kSoaPad.
size_t PaddedCap(size_t n) { return Padded(n + 4); }

Counter* FallbackCounter() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("sweep.kernel.fallback_scalar");
  return c;
}

Gauge* ReservedBytesGauge() {
  static Gauge* const g =
      MetricsRegistry::Global().GetGauge("sweep.alloc.reserved_bytes");
  return g;
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

std::string_view KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2CompiledIn() {
#if PBSM_HAVE_AVX2_KERNEL
  return true;
#else
  return false;
#endif
}

bool Avx2Supported() {
#if PBSM_HAVE_AVX2_KERNEL && (defined(__x86_64__) || defined(__i386__))
  static const bool cpu_has = __builtin_cpu_supports("avx2") != 0;
  return cpu_has;
#else
  return false;
#endif
}

KernelKind ResolveKernel(SimdMode requested) {
  SimdMode mode = requested;
  if (mode == SimdMode::kAuto) {
    // Read per call (sweeps are coarse-grained) so tests and operators can
    // flip the knob without rebuilding resolution caches.
    const char* env = std::getenv("PBSM_SIMD");
    if (env != nullptr) {
      if (std::strcmp(env, "scalar") == 0) {
        mode = SimdMode::kScalar;
      } else if (std::strcmp(env, "avx2") == 0) {
        mode = SimdMode::kAvx2;
      }
      // "auto" (or anything else) keeps auto-detection.
    }
  }
  if (mode == SimdMode::kScalar) return KernelKind::kScalar;
  // kAvx2 or kAuto: prefer the vector kernel, fall back visibly.
  if (Avx2Supported()) return KernelKind::kAvx2;
  FallbackCounter()->Add();
  return KernelKind::kScalar;
}

// ---------------------------------------------------------------------------
// SoA buffers. One backing allocation holds the four coordinate columns and
// the oid column; the capacity is a multiple of kSoaPad (8 doubles = one
// cache line), so every column starts 64-byte aligned.
// ---------------------------------------------------------------------------

SoaRects::~SoaRects() {
  if (xlo_ != nullptr) {
    ::operator delete[](xlo_, std::align_val_t{64});
  }
}

size_t SoaRects::reserved_bytes() const {
  return capacity_ * (4 * sizeof(double) + sizeof(uint64_t));
}

void SoaRects::Reserve(size_t n) {
  const size_t cap = PaddedCap(n);
  if (cap <= capacity_) return;
  if (xlo_ != nullptr) {
    ::operator delete[](xlo_, std::align_val_t{64});
  }
  const size_t bytes = cap * (4 * sizeof(double) + sizeof(uint64_t));
  void* block = ::operator new[](bytes, std::align_val_t{64});
  xlo_ = static_cast<double*>(block);
  xhi_ = xlo_ + cap;
  ylo_ = xhi_ + cap;
  yhi_ = ylo_ + cap;
  oid_ = reinterpret_cast<uint64_t*>(yhi_ + cap);
  capacity_ = cap;
}

void SoaRects::PadTail(size_t n) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Sentinel rectangles with inverted bounds fail every closed-interval
  // overlap test, so kernels can read whole vectors past `size` — including
  // from unaligned offsets, which reach up to n + 3. Padding to PaddedCap
  // (not just Padded) also overwrites stale tail data left by a larger
  // earlier sweep through a reused scratch.
  for (size_t i = n; i < PaddedCap(n); ++i) {
    xlo_[i] = kInf;
    xhi_[i] = -kInf;
    ylo_[i] = kInf;
    yhi_[i] = -kInf;
    oid_[i] = 0;
  }
  size_ = n;
}

// ---------------------------------------------------------------------------
// Scalar kernels. The same contracts as the AVX2 TU; these are also the
// tail-free reference the differential tests pin the vector path against.
// ---------------------------------------------------------------------------

namespace sweep_internal {

namespace {

ScanResult ScanPairsScalar(const SoaView& other, size_t from, size_t lim,
                           double head_xhi, double head_ylo, double head_yhi,
                           uint64_t head_oid, bool head_is_r, OidPair* out,
                           uint64_t* /*simd_lanes*/) {
  ScanResult res;
  size_t k = from;
  for (; k < lim; ++k) {
    if (other.xlo[k] > head_xhi) {
      res.hit_x_end = true;
      break;
    }
    if (head_ylo <= other.yhi[k] && other.ylo[k] <= head_yhi) {
      const uint64_t other_oid = other.oid[k];
      out[res.matched++] = head_is_r ? OidPair{head_oid, other_oid}
                                     : OidPair{other_oid, head_oid};
    }
  }
  res.consumed = static_cast<uint32_t>(k - from);
  return res;
}

size_t ScanWindowScalar(const SoaView& rects, double qxlo, double qylo,
                        double qxhi, double qyhi, uint32_t* out_idx,
                        uint64_t* /*simd_lanes*/) {
  size_t hits = 0;
  for (size_t i = 0; i < rects.size; ++i) {
    if (rects.xlo[i] <= qxhi && qxlo <= rects.xhi[i] &&
        rects.ylo[i] <= qyhi && qylo <= rects.yhi[i]) {
      out_idx[hits++] = static_cast<uint32_t>(i);
    }
  }
  return hits;
}

size_t ScanWindowQ16Scalar(const SoaQ16View& rects, uint16_t wxlo,
                           uint16_t wylo, uint16_t wxhi, uint16_t wyhi,
                           uint32_t* out_idx, uint64_t* /*simd_lanes*/) {
  size_t hits = 0;
  for (size_t i = 0; i < rects.size; ++i) {
    if (rects.xlo[i] <= wxhi && wxlo <= rects.xhi[i] &&
        rects.ylo[i] <= wyhi && wylo <= rects.yhi[i]) {
      out_idx[hits++] = static_cast<uint32_t>(i);
    }
  }
  return hits;
}

// The scalar pair scan never reads past `lim`, so it already satisfies the
// stricter scan_pairs_span contract (arbitrary mid-array spans).
constexpr SweepKernelOps kScalarOps = {&ScanPairsScalar, &ScanWindowScalar,
                                       &ScanPairsScalar,
                                       &ScanWindowQ16Scalar};

}  // namespace

#if PBSM_HAVE_AVX2_KERNEL
// Defined in sweep_kernel_avx2.cc (the one TU built with -mavx2).
extern const SweepKernelOps kAvx2Ops;
#endif

const SweepKernelOps& KernelOps(KernelKind kind) {
#if PBSM_HAVE_AVX2_KERNEL
  if (kind == KernelKind::kAvx2) return kAvx2Ops;
#else
  (void)kind;
#endif
  return kScalarOps;
}

void FlushKernelMetrics(const KernelMetrics& m) {
  static Counter* const batches =
      MetricsRegistry::Global().GetCounter("sweep.kernel.batches");
  static Counter* const lanes =
      MetricsRegistry::Global().GetCounter("sweep.kernel.simd_lanes_used");
  static Counter* const flushes =
      MetricsRegistry::Global().GetCounter("sweep.buffer.flushes");
  if (m.batches != 0) batches->Add(m.batches);
  if (m.simd_lanes != 0) lanes->Add(m.simd_lanes);
  if (m.flushes != 0) flushes->Add(m.flushes);
}

}  // namespace sweep_internal

// ---------------------------------------------------------------------------
// Scratch.
// ---------------------------------------------------------------------------

SweepScratch::~SweepScratch() {
  if (reported_bytes_ != 0) {
    ReservedBytesGauge()->Add(-static_cast<int64_t>(reported_bytes_));
  }
}

SweepScratch& SweepScratch::ThreadLocal() {
  thread_local SweepScratch scratch;
  return scratch;
}

void SweepScratch::UpdateReservedGauge() {
  const size_t now = r_soa.reserved_bytes() + s_soa.reserved_bytes() +
                     t_soa.reserved_bytes() +
                     tkp.capacity() * sizeof(KeyPointer) +
                     events.capacity() * sizeof(SweepEvent) +
                     handles.capacity() * sizeof(uint64_t) +
                     idx.capacity() * sizeof(uint32_t) +
                     pairs.capacity() * sizeof(OidPair);
  if (now != reported_bytes_) {
    ReservedBytesGauge()->Add(static_cast<int64_t>(now) -
                              static_cast<int64_t>(reported_bytes_));
    reported_bytes_ = now;
  }
}

}  // namespace pbsm
