#ifndef PBSM_CORE_SWEEP_KERNEL_H_
#define PBSM_CORE_SWEEP_KERNEL_H_

// Vectorized, cache-conscious filter kernels.
//
// The filter step of every join method reduces to one of two dense loops:
// the §3.1 forward sweep's inner scan ("test the y-extents of a sorted run
// of rectangles against one head rectangle") and the R-tree node scan
// ("test every entry of a node against one query window"). This layer
// implements both as branch-light batch kernels over struct-of-arrays
// coordinate buffers:
//
//  * `SoaRects` transposes key-pointer / node-entry arrays into 64-byte
//    aligned `xlo[]/xhi[]/ylo[]/yhi[]/oid[]` columns, padded to the SIMD
//    width with never-matching sentinel rectangles so kernels never need a
//    scalar tail loop for reads.
//  * Two kernel implementations sit behind one function-pointer table:
//    a portable scalar path and an AVX2 path (4 y-overlap tests per
//    instruction) compiled in its own TU with `-mavx2`. `ResolveKernel`
//    picks one at runtime from `JoinOptions::simd`, the `PBSM_SIMD`
//    environment variable (`auto|avx2|scalar`) and CPUID.
//  * Matches are compressed into a fixed-capacity `OidPair` buffer and
//    handed to a *templated batch sink* — `void sink(const OidPair*,
//    size_t)` — so hot paths pay one (inlinable) call per few thousand
//    pairs instead of one `std::function` dispatch per pair.
//
// Scratch buffers (`SweepScratch`) are reused across calls via a
// thread-local instance, so the parallel executor's per-partition sweep
// tasks stop re-allocating event/coordinate vectors. The
// `sweep.alloc.reserved_bytes` gauge tracks the bytes so reserved.
//
// Metrics: `sweep.kernel.batches`, `sweep.kernel.simd_lanes_used`,
// `sweep.kernel.fallback_scalar`, `sweep.buffer.flushes` (see DESIGN.md,
// "Vectorized filter kernels").

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/interval_tree.h"
#include "core/key_pointer.h"
#include "core/plane_sweep_join.h"
#include "geom/rect.h"

namespace pbsm {

// ---------------------------------------------------------------------------
// Kernel dispatch.
// ---------------------------------------------------------------------------

/// The concrete kernel implementation a sweep resolved to.
enum class KernelKind { kScalar, kAvx2 };

/// "scalar" / "avx2" — recorded in bench METRICS_JSON and baselines.
std::string_view KernelKindName(KernelKind kind);

/// True when the AVX2 TU was compiled into this binary (build-time check).
bool Avx2CompiledIn();

/// True when the AVX2 kernel is both compiled in and supported by this CPU.
bool Avx2Supported();

/// Resolves a requested mode to a runnable kernel. `kAuto` consults the
/// PBSM_SIMD environment variable (`auto|avx2|scalar`), then CPUID. A
/// request for AVX2 (explicit or auto) that lands on scalar bumps
/// `sweep.kernel.fallback_scalar`.
KernelKind ResolveKernel(SimdMode requested);

// ---------------------------------------------------------------------------
// SoA coordinate buffers.
// ---------------------------------------------------------------------------

/// Raw view of one SoA rectangle set. `size` is the logical element count;
/// every column is readable up to the next multiple of kSoaPad elements
/// (the tail holds sentinel rectangles that fail every overlap test).
struct SoaView {
  const double* xlo = nullptr;
  const double* xhi = nullptr;
  const double* ylo = nullptr;
  const double* yhi = nullptr;
  const uint64_t* oid = nullptr;
  size_t size = 0;
};

/// Columns are padded (and the capacity rounded) to a multiple of this many
/// elements — 8 doubles = one 64-byte cache line, a whole number of 4-lane
/// AVX2 vectors.
inline constexpr size_t kSoaPad = 8;

/// Raw view of one quantized (uint16) SoA rectangle set — the R-tree node
/// ribbon's prefilter lanes (rtree/node_ribbon.h). Coordinates are grid
/// cells relative to some node MBR; the quantization contract (entry lo
/// floored, hi ceiled, query rounded outward on the same grid) makes the
/// q16 intersection test a conservative superset of the exact double test.
/// Every column must be readable up to the next multiple of kQ16Pad
/// elements; tail lanes may hold garbage — kernels mask them by `size`
/// (inverted-bound sentinels cannot exist in unsigned space, where a
/// full-range query window matches everything).
struct SoaQ16View {
  const uint16_t* xlo = nullptr;
  const uint16_t* xhi = nullptr;
  const uint16_t* ylo = nullptr;
  const uint16_t* yhi = nullptr;
  size_t size = 0;
};

/// Quantized columns are padded to a multiple of this many elements — 16
/// uint16 lanes = one 256-bit AVX2 vector.
inline constexpr size_t kQ16Pad = 16;

/// Owning 64-byte-aligned SoA rectangle buffer, reusable across calls
/// (Assign only reallocates on growth). Works for any element type with an
/// `mbr` rectangle and an `oid` or `handle` payload (KeyPointer,
/// RTreeEntry).
class SoaRects {
 public:
  SoaRects() = default;
  ~SoaRects();
  SoaRects(const SoaRects&) = delete;
  SoaRects& operator=(const SoaRects&) = delete;

  template <typename T>
  void Assign(const T* items, size_t n) {
    Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      xlo_[i] = items[i].mbr.xlo;
      xhi_[i] = items[i].mbr.xhi;
      ylo_[i] = items[i].mbr.ylo;
      yhi_[i] = items[i].mbr.yhi;
      if constexpr (requires { items[i].oid; }) {
        oid_[i] = items[i].oid;
      } else {
        oid_[i] = items[i].handle;
      }
    }
    PadTail(n);
  }

  SoaView view() const { return SoaView{xlo_, xhi_, ylo_, yhi_, oid_, size_}; }
  size_t size() const { return size_; }
  /// Bytes currently reserved for the columns (gauge accounting).
  size_t reserved_bytes() const;

 private:
  /// Grows the single backing allocation to hold `n` elements; keeps
  /// existing capacity otherwise. Defined in sweep_kernel.cc.
  void Reserve(size_t n);
  /// Writes sentinel (never-matching) rectangles into [n, padded cap).
  void PadTail(size_t n);

  double* xlo_ = nullptr;
  double* xhi_ = nullptr;
  double* ylo_ = nullptr;
  double* yhi_ = nullptr;
  uint64_t* oid_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

// ---------------------------------------------------------------------------
// Kernel entry points (internal function-pointer table).
// ---------------------------------------------------------------------------

namespace sweep_internal {

/// Elements one scan_pairs call processes at most; a multiple of kSoaPad so
/// mid-array batches stay vector-aligned.
inline constexpr size_t kScanBlock = 1024;

/// Outcome of one scan_pairs batch.
struct ScanResult {
  uint32_t consumed = 0;  ///< Elements advanced past (<= lim - from).
  uint32_t matched = 0;   ///< OidPairs appended to `out`.
  bool hit_x_end = false; ///< Scan ended because xlo exceeded the head's xhi.
};

/// Scans `other` elements [from, lim) against one head rectangle: stops at
/// the first element with xlo > head_xhi (inputs are sorted on xlo), tests
/// y-overlap on the rest, and appends matching pairs to `out` (which must
/// have room for lim - from pairs). Pairs are oriented (R, S) via
/// `head_is_r`. `lim - from` must be a multiple of 4 unless lim == size
/// (the padded tail absorbs the overshoot). Adds vector-processed element
/// counts to `*simd_lanes`.
using ScanPairsFn = ScanResult (*)(const SoaView& other, size_t from,
                                   size_t lim, double head_xhi,
                                   double head_ylo, double head_yhi,
                                   uint64_t head_oid, bool head_is_r,
                                   OidPair* out, uint64_t* simd_lanes);

/// Tests every element of `rects` against the closed query window and
/// writes the indices of intersecting elements to `out_idx` (room for
/// rects.size entries required). Returns the hit count.
using ScanWindowFn = size_t (*)(const SoaView& rects, double qxlo,
                                double qylo, double qxhi, double qyhi,
                                uint32_t* out_idx, uint64_t* simd_lanes);

/// Quantized window scan: tests every element of `rects` against the
/// closed query window [wxlo, wxhi] x [wylo, wyhi] in uint16 grid space and
/// writes intersecting indices to `out_idx` (room for rects.size entries).
/// The AVX2 path tests 16 rectangles per compare. This is the conservative
/// prefilter of the quantized node ribbon — callers re-verify survivors
/// against the exact double lanes. Returns the hit count.
using ScanWindowQ16Fn = size_t (*)(const SoaQ16View& rects, uint16_t wxlo,
                                   uint16_t wylo, uint16_t wxhi,
                                   uint16_t wyhi, uint32_t* out_idx,
                                   uint64_t* simd_lanes);

struct SweepKernelOps {
  ScanPairsFn scan_pairs;
  ScanWindowFn scan_window;
  /// Same semantics as scan_pairs but safe for *any* mid-array [from, lim):
  /// lanes at or past `lim` are masked out instead of relying on the padded
  /// tail, so callers may stop a scan at an arbitrary run boundary (the
  /// two-layer mini-joins scan per-tile class runs inside one big SoA).
  ScanPairsFn scan_pairs_span;
  /// Quantized node-scan prefilter (R-tree ribbons).
  ScanWindowQ16Fn scan_window_q16;
};

/// The resolved implementation table for a kernel kind.
const SweepKernelOps& KernelOps(KernelKind kind);

/// Per-call metric accumulator, flushed once per sweep to the global
/// registry so kernels never touch atomics per batch.
struct KernelMetrics {
  uint64_t batches = 0;
  uint64_t simd_lanes = 0;
  uint64_t flushes = 0;
};

void FlushKernelMetrics(const KernelMetrics& m);

}  // namespace sweep_internal

// ---------------------------------------------------------------------------
// Scratch reuse.
// ---------------------------------------------------------------------------

/// Event of the interval-tree sweep: `item` indexes the combined input
/// (R items first, then S items offset by |R|).
struct SweepEvent {
  double x;
  uint32_t item;
  bool is_start;
};

/// Number of OidPairs buffered between batch-sink flushes.
inline constexpr size_t kPairBufferCap = 4096;

/// Reusable per-thread working memory for the filter kernels: SoA columns,
/// interval-sweep event/handle vectors, window-scan index buffer, and the
/// pair buffer. Obtain via ThreadLocal() (one per thread, reused across
/// partitions/tasks) or stack-allocate for isolation in tests.
struct SweepScratch {
  SoaRects r_soa;
  SoaRects s_soa;
  /// Transposed (x<->y swapped) per-tile class run for the two-layer A×C /
  /// C×A mini-joins, plus the staging vector it is assembled in.
  SoaRects t_soa;
  std::vector<KeyPointer> tkp;
  std::vector<SweepEvent> events;
  std::vector<uint64_t> handles;
  std::vector<uint32_t> idx;
  std::vector<OidPair> pairs;  // Resized once to kPairBufferCap.

  SweepScratch() = default;
  ~SweepScratch();
  SweepScratch(const SweepScratch&) = delete;
  SweepScratch& operator=(const SweepScratch&) = delete;

  static SweepScratch& ThreadLocal();

  /// Publishes the delta of reserved bytes since the last call to the
  /// `sweep.alloc.reserved_bytes` gauge.
  void UpdateReservedGauge();

 private:
  size_t reported_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Batch sweeps. The Sink contract: `void sink(const OidPair* pairs,
// size_t n)` — invoked with at most kPairBufferCap pairs per flush; pairs
// are (r_oid, s_oid) oriented, in no particular order, each candidate
// exactly once per sweep.
// ---------------------------------------------------------------------------

/// §3.1 forward sweep over SoA columns. Sorts both inputs on mbr.xlo
/// unless `order` says they already are (the repartition fast path), then
/// runs the two-cursor sweep with the resolved batch kernel. Returns the
/// number of pairs emitted.
template <typename Sink>
uint64_t ForwardSweepBatch(std::vector<KeyPointer>* r,
                           std::vector<KeyPointer>* s, KernelKind kind,
                           InputOrder order, Sink&& sink,
                           SweepScratch& scratch) {
  if (r->empty() || s->empty()) return 0;
  if (order != InputOrder::kSortedByXlo) {
    auto by_xlo = [](const KeyPointer& a, const KeyPointer& b) {
      return a.mbr.xlo < b.mbr.xlo;
    };
    std::sort(r->begin(), r->end(), by_xlo);
    std::sort(s->begin(), s->end(), by_xlo);
  }
  scratch.r_soa.Assign(r->data(), r->size());
  scratch.s_soa.Assign(s->data(), s->size());
  const SoaView rv = scratch.r_soa.view();
  const SoaView sv = scratch.s_soa.view();
  if (scratch.pairs.size() < kPairBufferCap) {
    scratch.pairs.resize(kPairBufferCap);
  }
  OidPair* const buf = scratch.pairs.data();
  size_t buf_size = 0;
  uint64_t total = 0;
  sweep_internal::KernelMetrics m;
  const sweep_internal::SweepKernelOps& ops = sweep_internal::KernelOps(kind);

  auto flush = [&] {
    if (buf_size == 0) return;
    sink(static_cast<const OidPair*>(buf), buf_size);
    ++m.flushes;
    buf_size = 0;
  };
  // Scans `other` from `from` while x-extents overlap the head (§3.1),
  // in buffer-bounded batches.
  auto scan = [&](const SoaView& head, size_t h, const SoaView& other,
                  size_t from, bool head_is_r) {
    const double head_xhi = head.xhi[h];
    const double head_ylo = head.ylo[h];
    const double head_yhi = head.yhi[h];
    const uint64_t head_oid = head.oid[h];
    size_t k = from;
    while (k < other.size) {
      if (buf_size + sweep_internal::kScanBlock > kPairBufferCap) flush();
      const size_t lim =
          std::min(k + sweep_internal::kScanBlock, other.size);
      const sweep_internal::ScanResult res =
          ops.scan_pairs(other, k, lim, head_xhi, head_ylo, head_yhi,
                         head_oid, head_is_r, buf + buf_size, &m.simd_lanes);
      ++m.batches;
      buf_size += res.matched;
      total += res.matched;
      k += res.consumed;
      if (res.hit_x_end) break;
    }
  };

  size_t i = 0, j = 0;
  while (i < rv.size && j < sv.size) {
    if (rv.xlo[i] <= sv.xlo[j]) {
      scan(rv, i, sv, j, /*head_is_r=*/true);
      ++i;
    } else {
      scan(sv, j, rv, i, /*head_is_r=*/false);
      ++j;
    }
  }
  flush();
  sweep_internal::FlushKernelMetrics(m);
  scratch.UpdateReservedGauge();
  return total;
}

/// The footnote's event-driven interval-tree sweep, batch-sink edition.
/// Event and handle vectors live in the scratch (reserved from the input
/// cardinalities, reused across partitions).
template <typename Sink>
uint64_t IntervalTreeSweepBatch(std::vector<KeyPointer>* r,
                                std::vector<KeyPointer>* s, Sink&& sink,
                                SweepScratch& scratch) {
  if (r->empty() || s->empty()) return 0;
  const size_t nr = r->size();
  const size_t ns = s->size();
  std::vector<SweepEvent>& events = scratch.events;
  events.clear();
  events.reserve(2 * (nr + ns));
  for (size_t i = 0; i < nr; ++i) {
    events.push_back({(*r)[i].mbr.xlo, static_cast<uint32_t>(i), true});
    events.push_back({(*r)[i].mbr.xhi, static_cast<uint32_t>(i), false});
  }
  for (size_t j = 0; j < ns; ++j) {
    const uint32_t item = static_cast<uint32_t>(nr + j);
    events.push_back({(*s)[j].mbr.xlo, item, true});
    events.push_back({(*s)[j].mbr.xhi, item, false});
  }
  // Starts before ends at equal x so touching rectangles count as
  // overlapping (closed semantics).
  std::sort(events.begin(), events.end(),
            [](const SweepEvent& a, const SweepEvent& b) {
              if (a.x != b.x) return a.x < b.x;
              return a.is_start > b.is_start;
            });

  scratch.handles.assign(nr + ns, 0);
  if (scratch.pairs.size() < kPairBufferCap) {
    scratch.pairs.resize(kPairBufferCap);
  }
  OidPair* const buf = scratch.pairs.data();
  size_t buf_size = 0;
  uint64_t total = 0;
  sweep_internal::KernelMetrics m;
  auto flush = [&] {
    if (buf_size == 0) return;
    sink(static_cast<const OidPair*>(buf), buf_size);
    ++m.flushes;
    buf_size = 0;
  };

  IntervalTree active_r, active_s;
  for (const SweepEvent& ev : events) {
    const bool is_r = ev.item < nr;
    const KeyPointer& kp = is_r ? (*r)[ev.item] : (*s)[ev.item - nr];
    IntervalTree& own = is_r ? active_r : active_s;
    if (!ev.is_start) {
      own.Remove(scratch.handles[ev.item]);
      continue;
    }
    const IntervalTree& other = is_r ? active_s : active_r;
    other.QueryOverlaps(kp.mbr.ylo, kp.mbr.yhi, [&](uint64_t other_oid) {
      if (buf_size == kPairBufferCap) flush();
      buf[buf_size++] =
          is_r ? OidPair{kp.oid, other_oid} : OidPair{other_oid, kp.oid};
      ++total;
    });
    scratch.handles[ev.item] = own.Insert(kp.mbr.ylo, kp.mbr.yhi, kp.oid);
  }
  flush();
  sweep_internal::FlushKernelMetrics(m);
  scratch.UpdateReservedGauge();
  return total;
}

/// All-pairs MBR join through the window-scan kernel; for tests and tiny
/// inputs.
template <typename Sink>
uint64_t NestedLoopsBatch(const std::vector<KeyPointer>& r,
                          const std::vector<KeyPointer>& s, KernelKind kind,
                          Sink&& sink, SweepScratch& scratch) {
  if (r.empty() || s.empty()) return 0;
  scratch.s_soa.Assign(s.data(), s.size());
  const SoaView sv = scratch.s_soa.view();
  scratch.idx.resize(s.size());
  if (scratch.pairs.size() < kPairBufferCap) {
    scratch.pairs.resize(kPairBufferCap);
  }
  OidPair* const buf = scratch.pairs.data();
  size_t buf_size = 0;
  uint64_t total = 0;
  sweep_internal::KernelMetrics m;
  const sweep_internal::SweepKernelOps& ops = sweep_internal::KernelOps(kind);
  auto flush = [&] {
    if (buf_size == 0) return;
    sink(static_cast<const OidPair*>(buf), buf_size);
    ++m.flushes;
    buf_size = 0;
  };
  for (const KeyPointer& a : r) {
    if (a.mbr.empty()) continue;
    const size_t hits =
        ops.scan_window(sv, a.mbr.xlo, a.mbr.ylo, a.mbr.xhi, a.mbr.yhi,
                        scratch.idx.data(), &m.simd_lanes);
    ++m.batches;
    for (size_t h = 0; h < hits; ++h) {
      if (buf_size == kPairBufferCap) flush();
      buf[buf_size++] = OidPair{a.oid, sv.oid[scratch.idx[h]]};
      ++total;
    }
  }
  flush();
  sweep_internal::FlushKernelMetrics(m);
  scratch.UpdateReservedGauge();
  return total;
}

/// Batch-sink counterpart of PlaneSweepJoin: merges one partition pair with
/// the selected algorithm and resolved kernel, handing candidate pairs to
/// `sink` in blocks. This is the hot-path entry every join method uses;
/// PlaneSweepJoin remains as a thin per-pair-emitter wrapper over it.
template <typename Sink>
uint64_t PlaneSweepJoinBatch(std::vector<KeyPointer>* r,
                             std::vector<KeyPointer>* s, Sink&& sink,
                             SweepAlgorithm algorithm =
                                 SweepAlgorithm::kForwardSweep,
                             SimdMode simd = SimdMode::kAuto,
                             InputOrder order = InputOrder::kUnsorted,
                             SweepScratch* scratch = nullptr) {
  SweepScratch& sc = scratch != nullptr ? *scratch : SweepScratch::ThreadLocal();
  switch (algorithm) {
    case SweepAlgorithm::kForwardSweep:
      return ForwardSweepBatch(r, s, ResolveKernel(simd), order,
                               std::forward<Sink>(sink), sc);
    case SweepAlgorithm::kIntervalTreeSweep:
      return IntervalTreeSweepBatch(r, s, std::forward<Sink>(sink), sc);
    case SweepAlgorithm::kNestedLoops:
      return NestedLoopsBatch(*r, *s, ResolveKernel(simd),
                              std::forward<Sink>(sink), sc);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Node / window scans.
// ---------------------------------------------------------------------------

/// Appends to `out_idx` the index of every item whose MBR intersects
/// `query` (closed boundaries), using the resolved batch kernel. Works for
/// any element type with an `mbr` member (RTreeEntry, KeyPointer). Returns
/// the number of hits appended.
template <typename T>
size_t OverlapScan(const T* items, size_t n, const Rect& query,
                   KernelKind kind, std::vector<uint32_t>* out_idx,
                   SweepScratch* scratch = nullptr) {
  if (n == 0 || query.empty()) return 0;
  SweepScratch& sc = scratch != nullptr ? *scratch : SweepScratch::ThreadLocal();
  sc.r_soa.Assign(items, n);
  sc.idx.resize(n);
  sweep_internal::KernelMetrics m;
  const sweep_internal::SweepKernelOps& ops = sweep_internal::KernelOps(kind);
  const size_t hits = ops.scan_window(sc.r_soa.view(), query.xlo, query.ylo,
                                      query.xhi, query.yhi, sc.idx.data(),
                                      &m.simd_lanes);
  ++m.batches;
  sweep_internal::FlushKernelMetrics(m);
  out_idx->insert(out_idx->end(), sc.idx.begin(), sc.idx.begin() + hits);
  sc.UpdateReservedGauge();
  return hits;
}

// ---------------------------------------------------------------------------
// Ready-made batch sinks.
// ---------------------------------------------------------------------------

/// Appends every flushed block to a std::vector<OidPair>.
struct VectorBatchSink {
  std::vector<OidPair>* out;
  void operator()(const OidPair* pairs, size_t n) const {
    out->insert(out->end(), pairs, pairs + n);
  }
};

/// Feeds flushed blocks to an ExternalSorter-like object via AddBatch,
/// capturing the first failure (later blocks are dropped once failed).
template <typename Sorter>
struct SorterBatchSink {
  Sorter* sorter;
  Status* status;
  void operator()(const OidPair* pairs, size_t n) const {
    if (!status->ok()) return;
    *status = sorter->AddBatch(pairs, n);
  }
};

/// Adapts a legacy per-pair emitter to the batch-sink contract.
struct EmitterBatchSink {
  const PairEmitter& emit;
  void operator()(const OidPair* pairs, size_t n) const {
    for (size_t i = 0; i < n; ++i) emit(pairs[i].r, pairs[i].s);
  }
};

}  // namespace pbsm

#endif  // PBSM_CORE_SWEEP_KERNEL_H_
