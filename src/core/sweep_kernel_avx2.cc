// AVX2 implementations of the filter kernels. This is the only TU built
// with -mavx2 (see src/core/CMakeLists.txt); the rest of the library stays
// at the base ISA and reaches these through the function-pointer table in
// sweep_kernel.cc, resolved at runtime from CPUID.

#include "core/sweep_kernel.h"

#if PBSM_HAVE_AVX2_KERNEL

#include <immintrin.h>

namespace pbsm {
namespace sweep_internal {

namespace {

/// 4 y-overlap (and x-termination) tests per iteration. The inputs are
/// sorted on xlo, so the lanes passing `xlo <= head_xhi` always form a
/// prefix: the first failing lane is where the §3.1 scan ends. Loads may
/// read up to 3 elements past `lim` at the end of the array; the SoA pad
/// holds inverted-bound sentinels there, which fail every compare.
ScanResult ScanPairsAvx2(const SoaView& other, size_t from, size_t lim,
                         double head_xhi, double head_ylo, double head_yhi,
                         uint64_t head_oid, bool head_is_r, OidPair* out,
                         uint64_t* simd_lanes) {
  const __m256d vhead_xhi = _mm256_set1_pd(head_xhi);
  const __m256d vhead_ylo = _mm256_set1_pd(head_ylo);
  const __m256d vhead_yhi = _mm256_set1_pd(head_yhi);
  ScanResult res;
  uint64_t lanes = 0;
  size_t k = from;
  while (k < lim) {
    const __m256d xlo = _mm256_loadu_pd(other.xlo + k);
    const __m256d ylo = _mm256_loadu_pd(other.ylo + k);
    const __m256d yhi = _mm256_loadu_pd(other.yhi + k);
    const __m256d x_ok = _mm256_cmp_pd(xlo, vhead_xhi, _CMP_LE_OQ);
    const __m256d y_ok =
        _mm256_and_pd(_mm256_cmp_pd(vhead_ylo, yhi, _CMP_LE_OQ),
                      _mm256_cmp_pd(ylo, vhead_yhi, _CMP_LE_OQ));
    const unsigned xm =
        static_cast<unsigned>(_mm256_movemask_pd(x_ok));
    unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(x_ok, y_ok)));
    if (xm != 0xFu) {
      // Keep only the lanes before the first x failure: sortedness makes
      // x_ok a prefix over real elements, but lanes read past the sentinel
      // pad must never contribute matches.
      m &= (1u << __builtin_ctz(~xm)) - 1u;
    }
    lanes += 4;
    while (m != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(m));
      m &= m - 1;
      const uint64_t other_oid = other.oid[k + b];
      out[res.matched++] = head_is_r ? OidPair{head_oid, other_oid}
                                     : OidPair{other_oid, head_oid};
    }
    if (xm != 0xFu) {
      // The x-pass prefix ended inside this chunk.
      k += static_cast<size_t>(__builtin_ctz(~xm));
      res.hit_x_end = true;
      break;
    }
    k += 4;
  }
  if (k > lim) k = lim;  // Overshoot lands in the sentinel pad only.
  res.consumed = static_cast<uint32_t>(k - from);
  *simd_lanes += lanes;
  return res;
}

/// Full closed-interval intersection of every element against one window,
/// 4 rectangles per iteration over the padded columns (no scalar tail).
size_t ScanWindowAvx2(const SoaView& rects, double qxlo, double qylo,
                      double qxhi, double qyhi, uint32_t* out_idx,
                      uint64_t* simd_lanes) {
  const __m256d vqxlo = _mm256_set1_pd(qxlo);
  const __m256d vqylo = _mm256_set1_pd(qylo);
  const __m256d vqxhi = _mm256_set1_pd(qxhi);
  const __m256d vqyhi = _mm256_set1_pd(qyhi);
  const size_t padded = (rects.size + 3) / 4 * 4;
  size_t hits = 0;
  for (size_t k = 0; k < padded; k += 4) {
    const __m256d xlo = _mm256_loadu_pd(rects.xlo + k);
    const __m256d xhi = _mm256_loadu_pd(rects.xhi + k);
    const __m256d ylo = _mm256_loadu_pd(rects.ylo + k);
    const __m256d yhi = _mm256_loadu_pd(rects.yhi + k);
    const __m256d x_ok =
        _mm256_and_pd(_mm256_cmp_pd(xlo, vqxhi, _CMP_LE_OQ),
                      _mm256_cmp_pd(vqxlo, xhi, _CMP_LE_OQ));
    const __m256d y_ok =
        _mm256_and_pd(_mm256_cmp_pd(ylo, vqyhi, _CMP_LE_OQ),
                      _mm256_cmp_pd(vqylo, yhi, _CMP_LE_OQ));
    unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(x_ok, y_ok)));
    while (m != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(m));
      m &= m - 1;
      out_idx[hits++] = static_cast<uint32_t>(k + b);
    }
  }
  *simd_lanes += padded;
  return hits;
}

/// scan_pairs_span: like ScanPairsAvx2, but `lim` may land anywhere in the
/// array — including the middle of live data (the two-layer mini-joins stop
/// scans at per-tile class-run boundaries inside one big SoA). Lanes at or
/// past `lim` are masked out of both the match set and the x-termination
/// test, so real rectangles beyond the span can neither emit pairs nor end
/// the scan early. Loads still read up to 3 elements past `lim`, which is
/// safe: the allocation extends to PaddedCap(size) >= size + 4.
ScanResult ScanPairsSpanAvx2(const SoaView& other, size_t from, size_t lim,
                             double head_xhi, double head_ylo, double head_yhi,
                             uint64_t head_oid, bool head_is_r, OidPair* out,
                             uint64_t* simd_lanes) {
  const __m256d vhead_xhi = _mm256_set1_pd(head_xhi);
  const __m256d vhead_ylo = _mm256_set1_pd(head_ylo);
  const __m256d vhead_yhi = _mm256_set1_pd(head_yhi);
  ScanResult res;
  uint64_t lanes = 0;
  size_t k = from;
  while (k < lim) {
    const size_t valid = lim - k < 4 ? lim - k : 4;
    const unsigned vmask = (1u << valid) - 1u;
    const __m256d xlo = _mm256_loadu_pd(other.xlo + k);
    const __m256d ylo = _mm256_loadu_pd(other.ylo + k);
    const __m256d yhi = _mm256_loadu_pd(other.yhi + k);
    const __m256d x_ok = _mm256_cmp_pd(xlo, vhead_xhi, _CMP_LE_OQ);
    const __m256d y_ok =
        _mm256_and_pd(_mm256_cmp_pd(vhead_ylo, yhi, _CMP_LE_OQ),
                      _mm256_cmp_pd(ylo, vhead_yhi, _CMP_LE_OQ));
    const unsigned xm =
        static_cast<unsigned>(_mm256_movemask_pd(x_ok)) & vmask;
    unsigned m = static_cast<unsigned>(
                     _mm256_movemask_pd(_mm256_and_pd(x_ok, y_ok))) &
                 vmask;
    lanes += valid;
    if (xm != vmask) {
      // First *valid* lane failing the x test ends the scan; matches from
      // later lanes (or lanes past lim) must not be emitted.
      const unsigned stop = static_cast<unsigned>(__builtin_ctz(~xm & vmask));
      m &= (1u << stop) - 1u;
      while (m != 0) {
        const unsigned b = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        const uint64_t other_oid = other.oid[k + b];
        out[res.matched++] = head_is_r ? OidPair{head_oid, other_oid}
                                       : OidPair{other_oid, head_oid};
      }
      k += stop;
      res.hit_x_end = true;
      break;
    }
    while (m != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(m));
      m &= m - 1;
      const uint64_t other_oid = other.oid[k + b];
      out[res.matched++] = head_is_r ? OidPair{head_oid, other_oid}
                                     : OidPair{other_oid, head_oid};
    }
    k += valid;
  }
  res.consumed = static_cast<uint32_t>(k - from);
  *simd_lanes += lanes;
  return res;
}

/// Unsigned 16-bit a <= b, lane-wise: min(a, b) == a. AVX2 has no unsigned
/// compare, but it does have unsigned min.
inline __m256i LeU16(__m256i a, __m256i b) {
  return _mm256_cmpeq_epi16(_mm256_min_epu16(a, b), a);
}

/// Quantized window scan: 16 rectangles per iteration over the uint16
/// lanes. Unlike the double kernels, tail lanes cannot be killed with
/// sentinels — in unsigned grid space a full-range query window
/// ([0, 65535] on both axes, i.e. a window covering the whole node MBR)
/// matches every representable rectangle — so the final chunk's lanes at or
/// past `size` are masked out of the match mask instead. Loads may read up
/// to kQ16Pad - 1 elements past `size`; the ribbon pads its columns to a
/// multiple of kQ16Pad.
size_t ScanWindowQ16Avx2(const SoaQ16View& rects, uint16_t wxlo,
                         uint16_t wylo, uint16_t wxhi, uint16_t wyhi,
                         uint32_t* out_idx, uint64_t* simd_lanes) {
  const __m256i vwxlo = _mm256_set1_epi16(static_cast<short>(wxlo));
  const __m256i vwylo = _mm256_set1_epi16(static_cast<short>(wylo));
  const __m256i vwxhi = _mm256_set1_epi16(static_cast<short>(wxhi));
  const __m256i vwyhi = _mm256_set1_epi16(static_cast<short>(wyhi));
  size_t hits = 0;
  for (size_t k = 0; k < rects.size; k += 16) {
    const __m256i xlo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(rects.xlo + k));
    const __m256i xhi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(rects.xhi + k));
    const __m256i ylo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(rects.ylo + k));
    const __m256i yhi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(rects.yhi + k));
    const __m256i x_ok =
        _mm256_and_si256(LeU16(xlo, vwxhi), LeU16(vwxlo, xhi));
    const __m256i y_ok =
        _mm256_and_si256(LeU16(ylo, vwyhi), LeU16(vwylo, yhi));
    // movemask gives 2 identical bits per uint16 lane (each lane is all
    // ones or all zeros); keep the even bit of each pair.
    uint32_t m = static_cast<uint32_t>(_mm256_movemask_epi8(
                     _mm256_and_si256(x_ok, y_ok))) &
                 0x55555555u;
    const size_t valid = rects.size - k;
    if (valid < 16) {
      m &= (1u << (2 * valid)) - 1u;  // Mask tail lanes (garbage, not
                                      // sentinels) out of the match set.
    }
    while (m != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(m));
      m &= m - 1;
      out_idx[hits++] = static_cast<uint32_t>(k + (b >> 1));
    }
  }
  *simd_lanes += (rects.size + 15) / 16 * 16;
  return hits;
}

}  // namespace

extern const SweepKernelOps kAvx2Ops;
const SweepKernelOps kAvx2Ops = {&ScanPairsAvx2, &ScanWindowAvx2,
                                 &ScanPairsSpanAvx2, &ScanWindowQ16Avx2};

}  // namespace sweep_internal
}  // namespace pbsm

#endif  // PBSM_HAVE_AVX2_KERNEL
