#include "core/two_layer_filter.h"

#include "common/metrics.h"

namespace pbsm {
namespace two_layer_internal {

void FlushTwoLayerMetrics(const TwoLayerMetrics& m) {
  static Counter* const tiles =
      MetricsRegistry::Global().GetCounter("filter.minijoin_tiles");
  static Counter* const scans =
      MetricsRegistry::Global().GetCounter("filter.minijoin_scans");
  static Counter* const pairs =
      MetricsRegistry::Global().GetCounter("filter.minijoin_pairs");
  if (m.tiles != 0) tiles->Add(m.tiles);
  if (m.scans != 0) scans->Add(m.scans);
  if (m.pairs != 0) pairs->Add(m.pairs);
}

void FlushClassCounts(const uint64_t counts[4]) {
  static Counter* const a =
      MetricsRegistry::Global().GetCounter("partition.class_a");
  static Counter* const b =
      MetricsRegistry::Global().GetCounter("partition.class_b");
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("partition.class_c");
  static Counter* const d =
      MetricsRegistry::Global().GetCounter("partition.class_d");
  if (counts[0] != 0) a->Add(counts[0]);
  if (counts[1] != 0) b->Add(counts[1]);
  if (counts[2] != 0) c->Add(counts[2]);
  if (counts[3] != 0) d->Add(counts[3]);
}

}  // namespace two_layer_internal
}  // namespace pbsm
