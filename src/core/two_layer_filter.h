#ifndef PBSM_CORE_TWO_LAYER_FILTER_H_
#define PBSM_CORE_TWO_LAYER_FILTER_H_

// Two-layer duplicate-free filter (Tsitsigkos et al., arXiv 2307.09256,
// with the mini-join decomposition of arXiv 1908.11740).
//
// PBSM replicates an object into every tile its MBR overlaps and later
// deduplicates candidate pairs (reference-point test or merge-sort). The
// two-layer scheme instead tags each tile copy with a *corner class*
// relative to the copy's origin tile — A (holds the MBR's (xlo, ylo)
// corner), B (same row, right of the origin column), C (same column,
// above the origin row), D (right and above) — and evaluates each tile's
// join as a small set of class-pair mini-joins:
//
//     A×A, A×B, B×A, A×C, C×A, A×D, D×A, B×C, C×B
//
// For a pair of intersecting MBRs, the unique tile at column
// max(col_lo_r, col_lo_s), row min(row_hi_r, row_hi_s) — where both
// x-spans start and both y-spans "bottom out" — is the only tile where
// the pair's classes form one of the nine combinations, so the pair is
// emitted by exactly one tile and deduplication disappears entirely. The
// remaining combinations (B/D × B/D in x, C/D × C/D in y) occur only at
// non-owner tiles and are provably redundant; skipping them is also
// where the speedup comes from. See DESIGN.md, "Two-layer duplicate-free
// filtering" for the full geometry argument.
//
// Each mini-join further elides the overlap tests its class geometry
// already guarantees (e.g. in A×B the B copy's xlo is known to lie left
// of the tile, hence left of the A copy's whole extent), reducing each
// to the existing batched scan kernel with one-sided bounds encoded as
// ±infinity. The combos that pair two runs starting inside the tile
// (A×A, A×C, C×A) run as ordinary two-cursor sweeps between the runs:
// the advancing cursor already realizes the x-overlap structure and the
// kernel's two y compares cost the same whether or not one is redundant.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/key_pointer.h"
#include "core/sweep_kernel.h"

namespace pbsm {

/// Canonical order of classed copies inside one partition: tile, then
/// class, then xlo — giving each tile a contiguous range in which each
/// class is a contiguous xlo-sorted run. (tile, cls) is compared as one
/// packed integer: the sort is on the partition's critical path and the
/// two-shift pack is cheaper than a second compare-and-branch.
inline bool ClassedKeyPointerOrder(const ClassedKeyPointer& a,
                                   const ClassedKeyPointer& b) {
  const uint64_t ka = (static_cast<uint64_t>(a.tile) << 2) | a.cls;
  const uint64_t kb = (static_cast<uint64_t>(b.tile) << 2) | b.cls;
  if (ka != kb) return ka < kb;
  return a.mbr.xlo < b.mbr.xlo;
}

namespace two_layer_internal {

/// Per-call metric accumulator, flushed once per partition so the hot loop
/// never touches atomics. Feeds filter.minijoin_{tiles,scans,pairs}.
struct TwoLayerMetrics {
  uint64_t tiles = 0;  ///< Tiles present on both sides (mini-joins ran).
  uint64_t scans = 0;  ///< Head scans issued across all mini-joins.
  uint64_t pairs = 0;  ///< Candidate pairs emitted.
};

void FlushTwoLayerMetrics(const TwoLayerMetrics& m);

/// Bumps partition.class_{a,b,c,d} by locally accumulated classification
/// counts (indexed by TileClass value).
void FlushClassCounts(const uint64_t counts[4]);

/// Class-run boundaries of one tile: elements [bound[c], bound[c+1]) of
/// the sorted array are the tile's class-c copies.
struct ClassRuns {
  size_t bound[5];
};

/// Fills `out` with the class runs of the tile starting at index `i` of
/// the ClassedKeyPointerOrder-sorted array; returns the index one past the
/// tile (== bound[4]).
inline size_t FindClassRuns(const std::vector<ClassedKeyPointer>& v, size_t i,
                            ClassRuns* out) {
  const uint32_t tile = v[i].tile;
  size_t k = i;
  for (uint32_t c = 0; c < 4; ++c) {
    out->bound[c] = k;
    while (k < v.size() && v[k].tile == tile && v[k].cls == c) ++k;
  }
  out->bound[4] = k;
  return k;
}

}  // namespace two_layer_internal

/// Evaluates one partition's filter step with the two-layer mini-join
/// decomposition. Inputs are the partition's classed key-pointer copies
/// (both sides, any order; sorted in place). Across all partitions, every
/// pair of objects with intersecting MBRs is handed to `sink` exactly once
/// — no dedup required before refinement. Sink contract as in
/// PlaneSweepJoinBatch. Returns the number of pairs emitted.
///
/// Allocation-free in steady state: the SoA columns, the transposed run,
/// and the pair buffer all live in the (thread-local by default) scratch
/// and are reused across partitions.
template <typename Sink>
uint64_t TwoLayerPartitionJoinBatch(std::vector<ClassedKeyPointer>* r,
                                    std::vector<ClassedKeyPointer>* s,
                                    KernelKind kind, Sink&& sink,
                                    SweepScratch* scratch = nullptr) {
  if (r->empty() || s->empty()) return 0;
  SweepScratch& sc = scratch != nullptr ? *scratch : SweepScratch::ThreadLocal();
  std::sort(r->begin(), r->end(), ClassedKeyPointerOrder);
  std::sort(s->begin(), s->end(), ClassedKeyPointerOrder);
  sc.r_soa.Assign(r->data(), r->size());
  sc.s_soa.Assign(s->data(), s->size());
  const SoaView rv = sc.r_soa.view();
  const SoaView sv = sc.s_soa.view();
  if (sc.pairs.size() < kPairBufferCap) {
    sc.pairs.resize(kPairBufferCap);
  }
  OidPair* const buf = sc.pairs.data();
  size_t buf_size = 0;
  uint64_t total = 0;
  sweep_internal::KernelMetrics m;
  two_layer_internal::TwoLayerMetrics tm;
  const sweep_internal::SweepKernelOps& ops = sweep_internal::KernelOps(kind);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  auto flush = [&] {
    if (buf_size == 0) return;
    sink(static_cast<const OidPair*>(buf), buf_size);
    ++m.flushes;
    buf_size = 0;
  };

  // One head against `other`'s xlo-sorted [from, lim) span, with explicit
  // bounds: ±infinity encodes the one-sided tests of asymmetric mini-joins
  // (the padded-tail sentinels fail those compares too, so open bounds are
  // safe). Uses the span-safe kernel because lim is a class-run boundary
  // in the middle of live SoA data.
  auto scan_span = [&](const SoaView& other, size_t from, size_t lim,
                       double head_xhi, double head_ylo, double head_yhi,
                       uint64_t head_oid, bool head_is_r) {
    ++tm.scans;
    size_t k = from;
    while (k < lim) {
      if (buf_size + sweep_internal::kScanBlock > kPairBufferCap) flush();
      const size_t blk = std::min(k + sweep_internal::kScanBlock, lim);
      const sweep_internal::ScanResult res = ops.scan_pairs_span(
          other, k, blk, head_xhi, head_ylo, head_yhi, head_oid, head_is_r,
          buf + buf_size, &m.simd_lanes);
      ++m.batches;
      buf_size += res.matched;
      total += res.matched;
      k += res.consumed;
      if (res.hit_x_end) break;
    }
  };

  // Full §3.1 two-cursor sweep between an xlo-sorted run of the `a` view
  // (from the `a_is_r` input) and one of the other view. Used for A×A —
  // neither side's position is constrained relative to the other — and for
  // A×C / C×A, where the two-sided x and one-sided y tests left by the
  // class geometry are at most what the sweep evaluates anyway, and the
  // advancing cursor beats any per-head rescan of the A run.
  auto join_sweep = [&](const SoaView& av, size_t ab, size_t ae, bool a_is_r,
                        const SoaView& bv, size_t bb, size_t be) {
    size_t i = ab, j = bb;
    while (i < ae && j < be) {
      if (av.xlo[i] <= bv.xlo[j]) {
        scan_span(bv, j, be, av.xhi[i], av.ylo[i], av.yhi[i], av.oid[i],
                  /*head_is_r=*/a_is_r);
        ++i;
      } else {
        scan_span(av, i, ae, bv.xhi[j], bv.ylo[j], bv.yhi[j], bv.oid[j],
                  /*head_is_r=*/!a_is_r);
        ++j;
      }
    }
  };

  // Asymmetric mini-joins A×B / A×D / B×C (and mirrors): every head in
  // hv's [hb, he) scans ov's [ob, oe) from the start. `lo_open` elides
  // head.ylo <= other.yhi, `hi_open` elides other.ylo <= head.yhi — tests
  // the class geometry already guarantees.
  auto join_heads = [&](const SoaView& hv, size_t hb, size_t he,
                        const SoaView& ov, size_t ob, size_t oe, bool lo_open,
                        bool hi_open, bool head_is_r) {
    if (ob == oe) return;
    for (size_t h = hb; h < he; ++h) {
      scan_span(ov, ob, oe, hv.xhi[h], lo_open ? -kInf : hv.ylo[h],
                hi_open ? kInf : hv.yhi[h], hv.oid[h], head_is_r);
    }
  };

  auto skip_tile = [](const std::vector<ClassedKeyPointer>& v, size_t i) {
    const uint32_t tile = v[i].tile;
    while (i < v.size() && v[i].tile == tile) ++i;
    return i;
  };

  size_t i = 0, j = 0;
  while (i < r->size() && j < s->size()) {
    const uint32_t rt = (*r)[i].tile;
    const uint32_t st = (*s)[j].tile;
    if (rt < st) {
      i = skip_tile(*r, i);
      continue;
    }
    if (st < rt) {
      j = skip_tile(*s, j);
      continue;
    }
    two_layer_internal::ClassRuns rr, sr;
    i = two_layer_internal::FindClassRuns(*r, i, &rr);
    j = two_layer_internal::FindClassRuns(*s, j, &sr);
    ++tm.tiles;
    // The nine admissible class combinations. x-elisions: a class-B/D copy
    // starts left of the tile while A/C copies start inside it; y-elisions:
    // a class-C/D copy starts below the tile while A/B copies start inside.
    join_sweep(rv, rr.bound[0], rr.bound[1], /*a_is_r=*/true, sv, sr.bound[0],
               sr.bound[1]);
    // A×B / B×A: full y, one-sided x (termination only).
    join_heads(sv, sr.bound[1], sr.bound[2], rv, rr.bound[0], rr.bound[1],
               /*lo_open=*/false, /*hi_open=*/false, /*head_is_r=*/false);
    join_heads(rv, rr.bound[1], rr.bound[2], sv, sr.bound[0], sr.bound[1],
               /*lo_open=*/false, /*hi_open=*/false, /*head_is_r=*/true);
    // A×D / D×A: one-sided x and the D side's ylo test both elided.
    join_heads(sv, sr.bound[3], sr.bound[4], rv, rr.bound[0], rr.bound[1],
               /*lo_open=*/true, /*hi_open=*/false, /*head_is_r=*/false);
    join_heads(rv, rr.bound[3], rr.bound[4], sv, sr.bound[0], sr.bound[1],
               /*lo_open=*/true, /*hi_open=*/false, /*head_is_r=*/true);
    // B×C / C×B: the B head's x-low test and the C side's ylo test elided.
    join_heads(rv, rr.bound[1], rr.bound[2], sv, sr.bound[2], sr.bound[3],
               /*lo_open=*/false, /*hi_open=*/true, /*head_is_r=*/true);
    join_heads(sv, sr.bound[1], sr.bound[2], rv, rr.bound[2], rr.bound[3],
               /*lo_open=*/false, /*hi_open=*/true, /*head_is_r=*/false);
    // A×C / C×A: same cross-run sweep (the C side's ylo test is redundant
    // but harmless — the kernel evaluates both y compares regardless).
    join_sweep(rv, rr.bound[0], rr.bound[1], /*a_is_r=*/true, sv, sr.bound[2],
               sr.bound[3]);
    join_sweep(rv, rr.bound[2], rr.bound[3], /*a_is_r=*/true, sv, sr.bound[0],
               sr.bound[1]);
  }
  flush();
  tm.pairs = total;
  sweep_internal::FlushKernelMetrics(m);
  two_layer_internal::FlushTwoLayerMetrics(tm);
  sc.UpdateReservedGauge();
  return total;
}

}  // namespace pbsm

#endif  // PBSM_CORE_TWO_LAYER_FILTER_H_
