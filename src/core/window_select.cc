#include "core/window_select.h"

#include <algorithm>

#include "storage/tuple.h"

namespace pbsm {

Result<SelectResult> WindowSelect(BufferPool* pool, const JoinInput& input,
                                  const Rect& window, SelectAccessPath path,
                                  const JoinOptions& opts,
                                  const RStarTree* index) {
  if (window.empty()) {
    return Status::InvalidArgument("window selection needs a window");
  }
  SelectResult result;
  DiskManager* disk = pool->disk();
  PhaseTimer timer(disk, &result.cost);

  // The exact test geometry: the window as a polygon.
  const Geometry window_polygon = Geometry::MakePolygon(
      {{{window.xlo, window.ylo},
        {window.xhi, window.ylo},
        {window.xhi, window.yhi},
        {window.xlo, window.yhi}}});

  switch (path) {
    case SelectAccessPath::kFullScan: {
      PBSM_RETURN_IF_ERROR(input.heap->Scan(
          [&](Oid oid, const char* data, size_t size) -> Status {
            PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
            if (!tuple.geometry.Mbr().Intersects(window)) {
              return Status::OK();
            }
            ++result.candidates;
            if (Intersects(tuple.geometry, window_polygon,
                           opts.refinement_mode)) {
              result.oids.push_back(oid);
            }
            return Status::OK();
          }));
      break;
    }
    case SelectAccessPath::kIndex: {
      if (index == nullptr) {
        return Status::InvalidArgument(
            "index access path requires an R*-tree");
      }
      std::vector<uint64_t> hits;
      PBSM_RETURN_IF_ERROR(index->WindowQuery(window, &hits));
      result.candidates = hits.size();
      // Fetch in physical order to keep the reads near-sequential.
      std::sort(hits.begin(), hits.end());
      std::string record;
      for (const uint64_t encoded : hits) {
        const Oid oid = Oid::Decode(encoded);
        PBSM_RETURN_IF_ERROR(input.heap->Fetch(oid, &record));
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple,
                              Tuple::Parse(record.data(), record.size()));
        if (Intersects(tuple.geometry, window_polygon,
                       opts.refinement_mode)) {
          result.oids.push_back(oid);
        }
      }
      break;
    }
  }
  return result;
}

}  // namespace pbsm
