#ifndef PBSM_CORE_WINDOW_SELECT_H_
#define PBSM_CORE_WINDOW_SELECT_H_

#include <vector>

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "rtree/rstar_tree.h"

namespace pbsm {

/// How a window selection locates candidates.
enum class SelectAccessPath {
  kFullScan,  ///< Scan the heap file, test every tuple.
  kIndex,     ///< Probe an R*-tree (must be supplied).
};

/// Result of a window selection.
struct SelectResult {
  std::vector<Oid> oids;     ///< Tuples whose geometry intersects the window.
  uint64_t candidates = 0;   ///< Tuples that passed the MBR filter.
  PhaseCost cost;
};

/// The spatial-database selection operator: all tuples of `input` whose
/// geometry exactly intersects `window` (two-step: MBR filter via scan or
/// index, then the exact predicate on the fetched tuples — the same
/// filter/refine discipline as the joins).
///
/// `index` is required for SelectAccessPath::kIndex and must index `input`.
Result<SelectResult> WindowSelect(BufferPool* pool, const JoinInput& input,
                                  const Rect& window, SelectAccessPath path,
                                  const JoinOptions& opts,
                                  const RStarTree* index = nullptr);

}  // namespace pbsm

#endif  // PBSM_CORE_WINDOW_SELECT_H_
