#include "core/join_methods_internal.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/refinement.h"
#include "core/sweep_kernel.h"
#include "geom/hilbert.h"
#include "storage/external_sort.h"
#include "storage/tuple.h"

namespace pbsm {

namespace {

/// One z-interval of an object's quadtree approximation.
struct ZElement {
  uint64_t lo = 0;
  uint64_t hi = 0;  // Exclusive.
  uint64_t oid = 0;
};
static_assert(std::is_trivially_copyable_v<ZElement>);

/// Sort by (lo asc, hi desc): an ancestor cell sorts before its
/// descendants that share its lower bound.
struct ZElementLess {
  bool operator()(const ZElement& a, const ZElement& b) const {
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi > b.hi;
  }
};

using ZSorter = ExternalSorter<ZElement, ZElementLess>;

/// Recursive quadtree decomposition of `mbr` into at most `budget` cells.
/// `cell` is the current quadtree cell's region; `z` its Morton prefix at
/// `level` (0 = whole universe). Appends (zlo, zhi) intervals.
class Decomposer {
 public:
  Decomposer(const Rect& universe, uint32_t max_level, uint32_t budget)
      : universe_(universe), max_level_(max_level), budget_(budget) {}

  void Run(const Rect& mbr, std::vector<std::pair<uint64_t, uint64_t>>* out) {
    out_ = out;
    remaining_splits_ = budget_ > 0 ? budget_ - 1 : 0;
    Walk(universe_, 0, 0, mbr);
  }

 private:
  /// Emits the interval of cell `z` at `level`.
  void Emit(uint64_t z, uint32_t level) {
    const uint32_t shift = 2 * (max_level_ - level);
    out_->emplace_back(z << shift, (z + 1) << shift);
  }

  void Walk(const Rect& cell, uint64_t z, uint32_t level, const Rect& mbr) {
    if (!cell.Intersects(mbr)) return;
    if (mbr.Contains(cell) || level == max_level_) {
      Emit(z, level);
      return;
    }
    // Split into four children. Descending into a single intersecting
    // child is free (the output cell count does not grow), so even a
    // budget of one cell shrinks to the smallest enclosing quadtree cell.
    const double mx = (cell.xlo + cell.xhi) / 2;
    const double my = (cell.ylo + cell.yhi) / 2;
    const Rect quads[4] = {
        Rect(cell.xlo, cell.ylo, mx, my),   // z bits 00.
        Rect(mx, cell.ylo, cell.xhi, my),   // 01 (x high bit).
        Rect(cell.xlo, my, mx, cell.yhi),   // 10 (y high bit).
        Rect(mx, my, cell.xhi, cell.yhi),   // 11.
    };
    uint32_t hit = 0;
    for (const Rect& q : quads) {
      if (q.Intersects(mbr)) ++hit;
    }
    const uint32_t split_cost = hit > 0 ? hit - 1 : 0;
    if (split_cost > remaining_splits_) {
      Emit(z, level);
      return;
    }
    remaining_splits_ -= split_cost;
    for (int q = 0; q < 4; ++q) {
      Walk(quads[q], (z << 2) | static_cast<uint64_t>(q), level + 1, mbr);
    }
  }

  const Rect universe_;
  const uint32_t max_level_;
  const uint32_t budget_;
  std::vector<std::pair<uint64_t, uint64_t>>* out_ = nullptr;
  uint32_t remaining_splits_ = 0;
};

/// Scans `heap`, decomposes every MBR, feeds the z-elements to `sorter`.
Status TransformInput(const HeapFile& heap, Decomposer* decomposer,
                      ZSorter* sorter, uint64_t* num_elements) {
  std::vector<std::pair<uint64_t, uint64_t>> cells;
  return heap.Scan([&](Oid oid, const char* data, size_t size) -> Status {
    PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
    cells.clear();
    decomposer->Run(tuple.geometry.Mbr(), &cells);
    for (const auto& [lo, hi] : cells) {
      PBSM_RETURN_IF_ERROR(sorter->Add(ZElement{lo, hi, oid.Encode()}));
      ++*num_elements;
    }
    return Status::OK();
  });
}

}  // namespace

Status ZOrderFilter(BufferPool* pool, const JoinInput& r, const JoinInput& s,
                    const ZOrderJoinOptions& options, CandidateSorter* sorter,
                    JoinCostBreakdown* bd) {
  if (options.max_level == 0 || options.max_level > 31) {
    return Status::InvalidArgument("max_level must be in [1, 31]");
  }
  JoinCostBreakdown& breakdown = *bd;
  DiskManager* disk = pool->disk();
  const Rect universe = Rect::Union(r.info.universe, s.info.universe);
  if (universe.empty()) {
    return Status::InvalidArgument("join inputs have an empty universe");
  }
  Decomposer decomposer(universe, options.max_level,
                        std::max(1u, options.max_cells_per_object));

  // ---- Transform both inputs into sorted z-interval lists. ----
  ZSorter r_sorter(pool, options.join.memory_budget_bytes, ZElementLess{});
  ZSorter s_sorter(pool, options.join.memory_budget_bytes, ZElementLess{});
  uint64_t r_elements = 0, s_elements = 0;
  {
    const std::string phase = "transform " + r.info.name;
    PhaseCost& cost = breakdown.AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_RETURN_IF_ERROR(
        TransformInput(*r.heap, &decomposer, &r_sorter, &r_elements));
    PBSM_RETURN_IF_ERROR(r_sorter.Finish());
  }
  {
    const std::string phase = "transform " + s.info.name;
    PhaseCost& cost = breakdown.AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);
    PBSM_RETURN_IF_ERROR(
        TransformInput(*s.heap, &decomposer, &s_sorter, &s_elements));
    PBSM_RETURN_IF_ERROR(s_sorter.Finish());
  }
  breakdown.replicated =
      (r_elements - r.info.cardinality) + (s_elements - s.info.cardinality);

  // ---- 1-D merge with containment stacks. ----
  CandidateSorter& candidates = *sorter;
  {
    PhaseCost& cost = breakdown.AddPhase("merge z-lists");
    PhaseTimer timer(disk, &cost, "merge z-lists");

    // (hi, oid) stacks of currently open intervals; quadtree intervals are
    // nested-or-disjoint, so every open interval on the opposite stack
    // contains the incoming one.
    std::vector<std::pair<uint64_t, uint64_t>> r_stack, s_stack;
    ZElement r_head{}, s_head{};
    bool r_has = false, s_has = false;
    PBSM_ASSIGN_OR_RETURN(r_has, r_sorter.Next(&r_head));
    PBSM_ASSIGN_OR_RETURN(s_has, s_sorter.Next(&s_head));
    const ZElementLess less;

    // Buffered emission: pairs are staged in an OidPair block and handed to
    // the sorter in batches, like the sweep kernels' pair buffer.
    std::vector<OidPair> pair_buf;
    pair_buf.reserve(kPairBufferCap);
    Status append_status;
    auto flush = [&] {
      if (pair_buf.empty()) return;
      if (append_status.ok()) {
        append_status = candidates.AddBatch(pair_buf.data(), pair_buf.size());
      }
      pair_buf.clear();
    };
    auto emit = [&](uint64_t r_oid, uint64_t s_oid) {
      pair_buf.push_back(OidPair{r_oid, s_oid});
      ++breakdown.candidates;
      if (pair_buf.size() == kPairBufferCap) flush();
    };

    while (r_has || s_has) {
      const bool take_r = r_has && (!s_has || less(r_head, s_head));
      const ZElement e = take_r ? r_head : s_head;
      // Close every interval that ends at or before this one starts.
      while (!r_stack.empty() && r_stack.back().first <= e.lo) {
        r_stack.pop_back();
      }
      while (!s_stack.empty() && s_stack.back().first <= e.lo) {
        s_stack.pop_back();
      }
      // Pair with every open interval of the other input.
      if (take_r) {
        for (const auto& [hi, s_oid] : s_stack) emit(e.oid, s_oid);
        r_stack.emplace_back(e.hi, e.oid);
        PBSM_ASSIGN_OR_RETURN(r_has, r_sorter.Next(&r_head));
      } else {
        for (const auto& [hi, r_oid] : r_stack) emit(r_oid, e.oid);
        s_stack.emplace_back(e.hi, e.oid);
        PBSM_ASSIGN_OR_RETURN(s_has, s_sorter.Next(&s_head));
      }
    }
    flush();
    PBSM_RETURN_IF_ERROR(append_status);
  }
  return Status::OK();
}

Result<JoinCostBreakdown> ZOrderJoin(BufferPool* pool, const JoinInput& r,
                                     const JoinInput& s,
                                     SpatialPredicate pred,
                                     const ZOrderJoinOptions& options,
                                     const ResultSink& sink) {
  JoinCostBreakdown breakdown;
  DiskManager* disk = pool->disk();

  CandidateSorter candidates(pool, options.join.memory_budget_bytes,
                             OidPairLess{});
  PBSM_RETURN_IF_ERROR(
      ZOrderFilter(pool, r, s, options, &candidates, &breakdown));

  // ---- Shared refinement. ----
  {
    PhaseCost& cost = breakdown.AddPhase("refinement");
    PhaseTimer timer(disk, &cost, "refinement");
    PBSM_RETURN_IF_ERROR(RefineCandidates(&candidates, r, s, pred,
                                          options.join, sink, &breakdown));
  }
  return breakdown;
}

}  // namespace pbsm
