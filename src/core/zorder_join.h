#ifndef PBSM_CORE_ZORDER_JOIN_H_
#define PBSM_CORE_ZORDER_JOIN_H_

#include "common/status.h"
#include "core/join_cost.h"
#include "core/join_options.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// Options for the z-value transform join.
struct ZOrderJoinOptions {
  /// Quadtree depth: the universe is a 2^max_level x 2^max_level pixel
  /// grid. Orenstein's grid-choice sensitivity ([Ore89], discussed in the
  /// paper's §2): finer grids filter better but need more z-elements per
  /// object.
  uint32_t max_level = 8;
  /// Cap on quadtree cells approximating one MBR (the space/precision
  /// knob). The decomposition stops refining once it would exceed this.
  uint32_t max_cells_per_object = 4;

  JoinOptions join;  ///< Memory budget, refinement mode, etc.
};

/// Orenstein-style z-value spatial join ([Ore86, OM88] — the
/// "transform the approximation into another dimension" family of the
/// paper's Table 1, built as an additional comparison baseline).
///
/// Filter: each tuple's MBR is approximated by up to
/// `max_cells_per_object` quadtree cells; each cell is a z-order interval
/// [lo, hi). Both inputs become z-interval lists, externally sorted by
/// (lo asc, hi desc). Because quadtree intervals are either nested or
/// disjoint, a single merge pass with one containment stack per input
/// finds every R/S pair with overlapping intervals — the 1-D "merge" the
/// transform approach buys. The filter never misses a truly intersecting
/// pair (cell covers are supersets of the MBRs) but produces more false
/// positives than the MBR filter, which is the drawback the paper cites.
///
/// Refinement: identical to PBSM's (shared RefineCandidates), including
/// duplicate elimination — one object pair can meet through several cells.
/// Deprecated for new callers: use SpatialJoin() in core/spatial_join.h,
/// which wraps this entry point behind the unified JoinSpec/JoinResult
/// API and adds tracing + metrics capture.
Result<JoinCostBreakdown> ZOrderJoin(BufferPool* pool, const JoinInput& r,
                                     const JoinInput& s,
                                     SpatialPredicate pred,
                                     const ZOrderJoinOptions& options,
                                     const ResultSink& sink = {});

}  // namespace pbsm

#endif  // PBSM_CORE_ZORDER_JOIN_H_
