#include "datagen/loader.h"

#include <algorithm>
#include <utility>

#include "geom/hilbert.h"
#include "geom/mer.h"

namespace pbsm {

Result<StoredRelation> LoadRelation(BufferPool* pool, Catalog* catalog,
                                    const std::string& name,
                                    std::vector<Tuple> tuples,
                                    bool clustered, bool precompute_mers) {
  RelationInfo info;
  info.name = name;
  info.cardinality = tuples.size();
  for (const Tuple& t : tuples) {
    const Rect mbr = t.geometry.Mbr();
    info.universe.Expand(mbr);
    info.total_points += t.geometry.num_points();
    info.sum_mbr_width += mbr.xhi - mbr.xlo;
    info.sum_mbr_height += mbr.yhi - mbr.ylo;
  }

  if (clustered && !tuples.empty() && !info.universe.empty()) {
    const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kHilbert,
                                  info.universe);
    std::stable_sort(tuples.begin(), tuples.end(),
                     [&curve](const Tuple& a, const Tuple& b) {
                       return curve.Key(a.geometry.Mbr()) <
                              curve.Key(b.geometry.Mbr());
                     });
  }

  if (precompute_mers) {
    for (Tuple& t : tuples) {
      if (t.geometry.type() == GeometryType::kPolygon && t.mer.empty()) {
        t.mer = ComputeMer(t.geometry);
      }
    }
  }

  PBSM_ASSIGN_OR_RETURN(HeapFile heap,
                        HeapFile::Create(pool, name + ".heap"));
  for (const Tuple& t : tuples) {
    PBSM_ASSIGN_OR_RETURN(const Oid oid, heap.Append(t.Serialize()));
    (void)oid;
  }
  info.file = heap.file();
  info.total_bytes = heap.bytes();
  if (catalog != nullptr) catalog->Register(info);
  // Make the load durable before anyone measures join I/O on top of it.
  PBSM_RETURN_IF_ERROR(pool->FlushAll());
  return StoredRelation{std::move(heap), std::move(info)};
}

}  // namespace pbsm
