#ifndef PBSM_DATAGEN_LOADER_H_
#define PBSM_DATAGEN_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/join_options.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/heap_file.h"
#include "storage/tuple.h"

namespace pbsm {

/// A relation materialized in a heap file together with its catalog entry.
struct StoredRelation {
  HeapFile heap;
  RelationInfo info;

  /// View usable as a join input (valid while this object lives).
  JoinInput AsInput() const { return JoinInput{&heap, info}; }
};

/// Loads `tuples` into a new heap file named `name`, computes catalog
/// statistics (cardinality, universe, vertex counts) and registers them in
/// `catalog` (when non-null).
///
/// With `clustered` set the tuples are first sorted by the Hilbert value of
/// their MBR center — the spatial clustering whose effect §4.4 studies.
///
/// With `precompute_mers` set a maximal enclosed rectangle is computed and
/// stored for every polygon tuple (BKSS94's multi-step refinement: "extra
/// information that is precomputed and stored along with each spatial
/// feature"); the containment refinement then short-circuits on it when
/// JoinOptions::use_mer_filter is enabled.
Result<StoredRelation> LoadRelation(BufferPool* pool, Catalog* catalog,
                                    const std::string& name,
                                    std::vector<Tuple> tuples,
                                    bool clustered = false,
                                    bool precompute_mers = false);

}  // namespace pbsm

#endif  // PBSM_DATAGEN_LOADER_H_
