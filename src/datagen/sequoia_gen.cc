#include "datagen/sequoia_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace pbsm {

SequoiaGenerator::SequoiaGenerator(const Params& params) : params_(params) {
  Rng rng(params_.seed);
  cluster_centers_.reserve(params_.num_clusters);
  for (uint32_t i = 0; i < params_.num_clusters; ++i) {
    cluster_centers_.push_back(
        Point{rng.UniformDouble(params_.universe.xlo, params_.universe.xhi),
              rng.UniformDouble(params_.universe.ylo, params_.universe.yhi)});
  }
}

Point SequoiaGenerator::SampleCenter(Rng* rng) const {
  const Rect& u = params_.universe;
  if (!rng->Bernoulli(params_.cluster_fraction) || cluster_centers_.empty()) {
    return Point{rng->UniformDouble(u.xlo, u.xhi),
                 rng->UniformDouble(u.ylo, u.yhi)};
  }
  const Point& c = cluster_centers_[rng->Uniform(cluster_centers_.size())];
  Point p{c.x + rng->NextGaussian() * 0.4, c.y + rng->NextGaussian() * 0.4};
  p.x = std::clamp(p.x, u.xlo, u.xhi);
  p.y = std::clamp(p.y, u.ylo, u.yhi);
  return p;
}

std::vector<Point> SequoiaGenerator::MakeRing(Rng* rng, const Point& center,
                                              double radius, uint32_t n,
                                              double roughness) const {
  std::vector<Point> ring;
  ring.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * i / n;
    const double r =
        radius * (1.0 + roughness * (2.0 * rng->NextDouble() - 1.0));
    ring.push_back(Point{center.x + std::cos(angle) * r,
                         center.y + std::sin(angle) * r});
  }
  return ring;
}

std::vector<Tuple> SequoiaGenerator::GeneratePolygons(uint64_t count) {
  Rng rng(params_.seed * 0x9e3779b9ULL + 11);
  std::vector<Tuple> out;
  out.reserve(count);
  polygon_cores_.clear();
  polygon_cores_.reserve(count);

  for (uint64_t i = 0; i < count; ++i) {
    const Point center = SampleCenter(&rng);
    const double radius =
        params_.mean_radius * (0.4 + 1.2 * rng.NextDouble());
    const uint32_t n = static_cast<uint32_t>(rng.UniformInt(30, 62));
    constexpr double kRoughness = 0.3;
    std::vector<std::vector<Point>> rings;
    rings.push_back(MakeRing(&rng, center, radius, n, kRoughness));
    const double r_min = radius * (1.0 - kRoughness);

    if (rng.Bernoulli(params_.hole_fraction)) {
      // Hole rings live in the [0.55, 0.95] * r_min annulus, leaving the
      // polygon core island-safe.
      const uint32_t holes = 1 + static_cast<uint32_t>(rng.Uniform(2));
      for (uint32_t h = 0; h < holes; ++h) {
        const double angle = rng.UniformDouble(0.0, 2.0 * M_PI);
        const double dist = rng.UniformDouble(0.70, 0.80) * r_min;
        const Point hc{center.x + std::cos(angle) * dist,
                       center.y + std::sin(angle) * dist};
        const double hr = rng.UniformDouble(0.05, 0.15) * r_min;
        const uint32_t hn = static_cast<uint32_t>(rng.UniformInt(6, 12));
        rings.push_back(MakeRing(&rng, hc, hr, hn, 0.2));
      }
    }

    Tuple t;
    t.id = i;
    t.feature_class = static_cast<uint32_t>(rng.Uniform(16));
    t.name = "Landuse #" + std::to_string(i);
    t.geometry = Geometry::MakePolygon(std::move(rings));
    out.push_back(std::move(t));
    polygon_cores_.emplace_back(center, r_min);
  }
  return out;
}

std::vector<Tuple> SequoiaGenerator::GenerateIslands(uint64_t count) {
  Rng rng(params_.seed * 0x9e3779b9ULL + 23);
  std::vector<Tuple> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Point center;
    double radius;
    if (!polygon_cores_.empty() &&
        rng.Bernoulli(params_.contained_fraction)) {
      // Place strictly inside a polygon core: center within 0.1 * r_min of
      // the polygon center, extent bounded by 0.46 * r_min — clear of both
      // the outer ring (>= r_min) and any hole (>= 0.55 * r_min).
      const auto& [pc, r_min] =
          polygon_cores_[rng.Uniform(polygon_cores_.size())];
      const double angle = rng.UniformDouble(0.0, 2.0 * M_PI);
      const double dist = rng.NextDouble() * 0.10 * r_min;
      center = Point{pc.x + std::cos(angle) * dist,
                     pc.y + std::sin(angle) * dist};
      radius = rng.UniformDouble(0.08, 0.27) * r_min;
    } else {
      center = SampleCenter(&rng);
      radius = params_.mean_radius * rng.UniformDouble(0.05, 0.25);
    }
    const uint32_t n = static_cast<uint32_t>(rng.UniformInt(24, 46));
    std::vector<std::vector<Point>> rings;
    rings.push_back(MakeRing(&rng, center, radius, n, 0.3));
    Tuple t;
    t.id = i;
    t.feature_class = static_cast<uint32_t>(rng.Uniform(4));
    t.name = "Island #" + std::to_string(i);
    t.geometry = Geometry::MakePolygon(std::move(rings));
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace pbsm
