#ifndef PBSM_DATAGEN_SEQUOIA_GEN_H_
#define PBSM_DATAGEN_SEQUOIA_GEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/rect.h"
#include "storage/tuple.h"

namespace pbsm {

/// Synthetic stand-in for the Sequoia 2000 polygon and island data sets.
///
/// * "Polygons" are landuse regions: star-shaped polygons with ~46 vertices
///   on average, clustered over a California/Nevada-shaped universe; a
///   configurable fraction are swiss-cheese polygons carrying 1-2 hole
///   rings (the paper's motivating complex type).
/// * "Islands" are small polygons (~35 vertices); a configurable fraction
///   is placed strictly inside some landuse polygon (these drive the
///   containment-join result), the rest floats freely.
///
/// Polygons overlap each other, so one island can be contained in several
/// polygons — the paper's result cardinality (25,260) likewise exceeds the
/// island count.
class SequoiaGenerator {
 public:
  struct Params {
    uint64_t seed = 2000;
    Rect universe = Rect(-124.4, 32.5, -114.1, 42.0);
    uint32_t num_clusters = 32;
    double cluster_fraction = 0.75;
    /// Fraction of landuse polygons carrying hole rings.
    double hole_fraction = 0.25;
    /// Fraction of islands placed inside some polygon.
    double contained_fraction = 0.6;
    /// Mean polygon radius in universe units.
    double mean_radius = 0.08;
  };

  explicit SequoiaGenerator(const Params& params);

  /// Landuse polygons, avg 46 vertices (plus hole vertices).
  std::vector<Tuple> GeneratePolygons(uint64_t count);

  /// Islands, avg 35 vertices. Must be called *after* GeneratePolygons —
  /// contained islands are placed inside polygons from the last generated
  /// polygon set.
  std::vector<Tuple> GenerateIslands(uint64_t count);

  const Rect& universe() const { return params_.universe; }

 private:
  /// Star-shaped ring: `n` vertices at noisy radii around `center`.
  std::vector<Point> MakeRing(Rng* rng, const Point& center, double radius,
                              uint32_t n, double roughness) const;

  Point SampleCenter(Rng* rng) const;

  Params params_;
  std::vector<Point> cluster_centers_;
  /// (center, safe inner radius) of each generated landuse polygon, used to
  /// place contained islands.
  std::vector<std::pair<Point, double>> polygon_cores_;
};

}  // namespace pbsm

#endif  // PBSM_DATAGEN_SEQUOIA_GEN_H_
