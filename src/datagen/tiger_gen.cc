#include "datagen/tiger_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace pbsm {

TigerGenerator::TigerGenerator(const Params& params) : params_(params) {
  Rng rng(params_.seed);
  clusters_.reserve(params_.num_clusters);
  double cum = 0.0;
  for (uint32_t i = 0; i < params_.num_clusters; ++i) {
    Cluster c;
    c.center.x = rng.UniformDouble(params_.universe.xlo, params_.universe.xhi);
    c.center.y = rng.UniformDouble(params_.universe.ylo, params_.universe.yhi);
    // Power-law weights: a few "Milwaukees", many small towns.
    const double w = std::pow(rng.NextDouble(), 4.0) * 12.0 + 0.05;
    c.sigma = rng.UniformDouble(0.15, 0.70);
    cum += w;
    c.cum_weight = cum;
    clusters_.push_back(c);
  }
  total_weight_ = cum;
}

Point TigerGenerator::SamplePoint(Rng* rng,
                                  double cluster_fraction) const {
  const Rect& u = params_.universe;
  if (!rng->Bernoulli(cluster_fraction) || clusters_.empty()) {
    return Point{rng->UniformDouble(u.xlo, u.xhi),
                 rng->UniformDouble(u.ylo, u.yhi)};
  }
  const double pick = rng->NextDouble() * total_weight_;
  const auto it = std::lower_bound(
      clusters_.begin(), clusters_.end(), pick,
      [](const Cluster& c, double v) { return c.cum_weight < v; });
  const Cluster& c = it == clusters_.end() ? clusters_.back() : *it;
  Point p{c.center.x + rng->NextGaussian() * c.sigma,
          c.center.y + rng->NextGaussian() * c.sigma};
  p.x = std::clamp(p.x, u.xlo, u.xhi);
  p.y = std::clamp(p.y, u.ylo, u.yhi);
  return p;
}

std::vector<Point> TigerGenerator::Walk(Rng* rng, const Point& start,
                                        uint32_t num_points, double step,
                                        double persistence) const {
  const Rect& u = params_.universe;
  std::vector<Point> pts;
  pts.reserve(num_points);
  pts.push_back(start);
  double heading = rng->UniformDouble(0.0, 2.0 * M_PI);
  Point p = start;
  for (uint32_t i = 1; i < num_points; ++i) {
    heading += rng->NextGaussian() * (1.0 - persistence) * 1.2;
    const double len = step * (0.5 + rng->NextDouble());
    p.x += std::cos(heading) * len;
    p.y += std::sin(heading) * len;
    p.x = std::clamp(p.x, u.xlo, u.xhi);
    p.y = std::clamp(p.y, u.ylo, u.yhi);
    pts.push_back(p);
  }
  return pts;
}

std::vector<Tuple> TigerGenerator::Generate(uint64_t count, uint64_t salt,
                                            uint32_t min_points,
                                            uint32_t max_points, double step,
                                            double persistence,
                                            double cluster_fraction,
                                            const char* name_prefix) {
  Rng rng(params_.seed * 0x9e3779b9ULL + salt);
  std::vector<Tuple> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t n = static_cast<uint32_t>(
        rng.UniformInt(min_points, max_points));
    Tuple t;
    t.id = i;
    t.feature_class = static_cast<uint32_t>(rng.Uniform(8));
    t.name = std::string(name_prefix) + " #" + std::to_string(i);
    t.geometry = Geometry::MakePolyline(
        Walk(&rng, SamplePoint(&rng, cluster_fraction), n, step,
             persistence));
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Tuple> TigerGenerator::GenerateRoads(uint64_t count) {
  // Average 8 vertices; short urban steps.
  return Generate(count, /*salt=*/1, 4, 12, 0.0012, 0.7,
                  params_.cluster_fraction, "Road");
}

std::vector<Tuple> TigerGenerator::GenerateHydrography(uint64_t count) {
  // Average 19 vertices; longer meandering steps.
  return Generate(count, /*salt=*/2, 10, 28, 0.0012, 0.85, 0.5,
                  "Hydro");
}

std::vector<Tuple> TigerGenerator::GenerateRail(uint64_t count) {
  // Average 7 vertices; long, nearly straight runs.
  return Generate(count, /*salt=*/3, 4, 10, 0.012, 0.97, 0.5,
                  "Rail");
}

}  // namespace pbsm
