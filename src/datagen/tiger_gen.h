#ifndef PBSM_DATAGEN_TIGER_GEN_H_
#define PBSM_DATAGEN_TIGER_GEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/rect.h"
#include "storage/tuple.h"

namespace pbsm {

/// Synthetic stand-in for the paper's TIGER/Line Wisconsin extracts.
///
/// The generator reproduces the statistical properties the experiments
/// depend on rather than the actual cartography:
///  * three polyline relations — Road, Hydrography, Rail — over one shared
///    geography, with the paper's cardinality ratios and average vertex
///    counts (8 / 19 / 7);
///  * heavy spatial skew: features concentrate around power-law-weighted
///    population centers (the source of Figure 4's partition skew);
///  * spatial correlation between the relations (roads and rivers share the
///    dense regions, so the join result is non-trivial);
///  * polylines are random walks with direction persistence, so their MBRs
///    are small relative to the universe, as for real road segments.
///
/// All output is deterministic in the seed.
class TigerGenerator {
 public:
  struct Params {
    uint64_t seed = 1996;
    /// Universe roughly shaped like Wisconsin in lon/lat degrees.
    Rect universe = Rect(-92.9, 42.5, -86.8, 47.1);
    uint32_t num_clusters = 96;
    /// Default fraction of features whose start point is drawn from a
    /// cluster (roads; hydrography and rail are less cluster-bound).
    double cluster_fraction = 0.8;
  };

  explicit TigerGenerator(const Params& params);

  /// Road polylines: short urban walks, 8 vertices on average.
  std::vector<Tuple> GenerateRoads(uint64_t count);
  /// Hydrography polylines: longer meanders, 19 vertices on average.
  std::vector<Tuple> GenerateHydrography(uint64_t count);
  /// Rail polylines: long near-straight runs between centers, 7 vertices.
  std::vector<Tuple> GenerateRail(uint64_t count);

  const Rect& universe() const { return params_.universe; }

 private:
  struct Cluster {
    Point center;
    double sigma;       // Spatial spread of the cluster.
    double cum_weight;  // Cumulative sampling weight.
  };

  /// Draws a feature start point (cluster mixture + uniform background).
  /// `cluster_fraction` is the probability of sampling from a cluster.
  Point SamplePoint(Rng* rng, double cluster_fraction) const;

  /// Random walk polyline from `start` with the given step profile.
  std::vector<Point> Walk(Rng* rng, const Point& start, uint32_t num_points,
                          double step, double persistence) const;

  std::vector<Tuple> Generate(uint64_t count, uint64_t salt,
                              uint32_t min_points, uint32_t max_points,
                              double step, double persistence,
                              double cluster_fraction,
                              const char* name_prefix);

  Params params_;
  std::vector<Cluster> clusters_;
  double total_weight_ = 0.0;
};

}  // namespace pbsm

#endif  // PBSM_DATAGEN_TIGER_GEN_H_
