#include "exec/basic_ops.h"

#include <utility>

#include "common/logging.h"
#include "storage/tuple.h"

namespace pbsm {

// ---- ScanOp ----

ScanOp::ScanOp(JoinInput input, std::optional<Rect> window)
    : Operator("scan", "scan " + input.info.name +
                           (window.has_value() ? " (windowed)" : "")),
      input_(input),
      window_(window) {}

Status ScanOp::OpenImpl() {
  PBSM_CHECK(input_.heap != nullptr) << "ScanOp over a null heap";
  cursor_.emplace(input_.heap->NewCursor());
  return Status::OK();
}

Result<bool> ScanOp::NextImpl(RowBatch* out) {
  out->Reset(1);
  Oid oid;
  while (out->num_rows() < ctx_->batch_rows) {
    PBSM_ASSIGN_OR_RETURN(const bool has, cursor_->Next(&oid, &record_));
    if (!has) break;
    if (window_.has_value()) {
      PBSM_ASSIGN_OR_RETURN(const Tuple tuple,
                            Tuple::Parse(record_.data(), record_.size()));
      if (!tuple.geometry.Mbr().Intersects(*window_)) continue;
    }
    out->AppendRow1(oid.Encode());
  }
  return !out->empty();
}

Status ScanOp::CloseImpl() {
  cursor_.reset();  // Unpins the cursor's page.
  return Status::OK();
}

// ---- SelectOp ----

SelectOp::SelectOp(std::unique_ptr<Operator> child, Rect window,
                   std::vector<MbrSource> sources)
    : Operator("select", "select window"),
      window_(window),
      sources_(std::move(sources)) {
  PBSM_CHECK(sources_.size() == child->arity())
      << "SelectOp needs one MbrSource per child column";
  AddChild(std::move(child));
}

Status SelectOp::OpenImpl() { return Status::OK(); }

Result<bool> SelectOp::RowPasses(const uint64_t* row) {
  for (size_t col = 0; col < sources_.size(); ++col) {
    const MbrSource& src = sources_[col];
    Rect mbr;
    if (src.mbrs != nullptr) {
      const auto it = src.mbrs->find(row[col]);
      if (it == src.mbrs->end()) return false;
      mbr = it->second;
    } else if (src.heap != nullptr) {
      PBSM_RETURN_IF_ERROR(
          src.heap->Fetch(Oid::Decode(row[col]), &record_));
      PBSM_ASSIGN_OR_RETURN(const Tuple tuple,
                            Tuple::Parse(record_.data(), record_.size()));
      mbr = tuple.geometry.Mbr();
    } else {
      continue;  // Unconstrained column.
    }
    if (!mbr.Intersects(window_)) return false;
  }
  return true;
}

Result<bool> SelectOp::NextImpl(RowBatch* out) {
  out->Reset(arity());
  // Keep pulling child batches until one row survives (or EOS) so an
  // all-filtered batch is not mistaken for end of stream.
  while (out->empty()) {
    PBSM_ASSIGN_OR_RETURN(const bool has, child(0)->Next(&in_));
    if (!has) break;
    for (size_t row = 0; row < in_.num_rows(); ++row) {
      PBSM_ASSIGN_OR_RETURN(const bool pass, RowPasses(in_.Row(row)));
      if (pass) out->AppendRow(in_.Row(row));
    }
  }
  return !out->empty();
}

// ---- ProjectOp ----

ProjectOp::ProjectOp(std::unique_ptr<Operator> child,
                     std::vector<uint32_t> columns)
    : Operator("project", "project"), columns_(std::move(columns)) {
  for (const uint32_t col : columns_) {
    PBSM_CHECK(col < child->arity()) << "projected column out of range";
  }
  AddChild(std::move(child));
}

Status ProjectOp::OpenImpl() { return Status::OK(); }

Result<bool> ProjectOp::NextImpl(RowBatch* out) {
  out->Reset(arity());
  PBSM_ASSIGN_OR_RETURN(const bool has, child(0)->Next(&in_));
  if (!has) return false;
  for (size_t row = 0; row < in_.num_rows(); ++row) {
    const uint64_t* src = in_.Row(row);
    for (const uint32_t col : columns_) out->AppendRow1(src[col]);
  }
  return true;
}

// ---- CountAggOp ----

CountAggOp::CountAggOp(std::unique_ptr<Operator> child)
    : Operator("count_agg", "count(*)") {
  AddChild(std::move(child));
}

Result<bool> CountAggOp::NextImpl(RowBatch* out) {
  if (emitted_) return false;
  while (true) {
    PBSM_ASSIGN_OR_RETURN(const bool has, child(0)->Next(&in_));
    if (!has) break;
    count_ += in_.num_rows();
  }
  emitted_ = true;
  out->Reset(1);
  out->AppendRow1(count_);
  return true;
}

}  // namespace pbsm
