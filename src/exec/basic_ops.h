#ifndef PBSM_EXEC_BASIC_OPS_H_
#define PBSM_EXEC_BASIC_OPS_H_

// The non-join operators of the exec layer: heap scans, window selection,
// projection, and count aggregation. The join operators live in
// exec/join_ops.h.

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/join_options.h"
#include "exec/operator.h"
#include "geom/rect.h"
#include "storage/heap_file.h"

namespace pbsm {

/// Heap scan producing one encoded OID per record (arity 1). With a
/// `window`, each tuple is parsed and only those whose MBR intersects the
/// window survive — the selection runs inside the scan (pushdown), so
/// upstream operators never see the filtered-out rows.
class ScanOp : public Operator {
 public:
  ScanOp(JoinInput input, std::optional<Rect> window = std::nullopt);

  uint32_t arity() const override { return 1; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  const JoinInput input_;
  const std::optional<Rect> window_;
  std::optional<HeapFile::Cursor> cursor_;
  std::string record_;
};

/// Where SelectOp finds the MBR of one row column: a precomputed OID->MBR
/// map (no I/O), or the column's heap (fetch + parse per row). A source
/// with both members null leaves the column unconstrained.
struct MbrSource {
  const std::unordered_map<uint64_t, Rect>* mbrs = nullptr;
  const HeapFile* heap = nullptr;
};

/// Window selection over any row stream: a row survives when every
/// constrained column's MBR intersects `window`. Arity follows the child.
class SelectOp : public Operator {
 public:
  /// `sources[i]` resolves column i; size must equal the child's arity.
  SelectOp(std::unique_ptr<Operator> child, Rect window,
           std::vector<MbrSource> sources);

  uint32_t arity() const override { return child(0)->arity(); }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

 private:
  Result<bool> RowPasses(const uint64_t* row);

  const Rect window_;
  const std::vector<MbrSource> sources_;
  RowBatch in_;
  std::string record_;
};

/// Column projection (reorder / drop / duplicate columns).
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<uint32_t> columns);

  uint32_t arity() const override {
    return static_cast<uint32_t>(columns_.size());
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

 private:
  const std::vector<uint32_t> columns_;
  RowBatch in_;
};

/// COUNT(*): drains the child and emits one arity-1 row holding the row
/// count. The terminal operator of count-only plans (empty JoinSpec.sink).
class CountAggOp : public Operator {
 public:
  explicit CountAggOp(std::unique_ptr<Operator> child);

  uint32_t arity() const override { return 1; }

  /// Valid after the (single) output batch has been produced.
  uint64_t count() const { return count_; }

 protected:
  Status OpenImpl() override { return Status::OK(); }
  Result<bool> NextImpl(RowBatch* out) override;

 private:
  RowBatch in_;
  uint64_t count_ = 0;
  bool emitted_ = false;
};

}  // namespace pbsm

#endif  // PBSM_EXEC_BASIC_OPS_H_
