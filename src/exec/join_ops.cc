#include "exec/join_ops.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"
#include "core/sweep_kernel.h"
#include "storage/tuple.h"

namespace pbsm {

// ---- FilterJoinOp ----

FilterJoinOp::FilterJoinOp(JoinInput r, JoinInput s, const JoinSpec& spec)
    : Operator("filter_join", std::string(JoinMethodName(spec.method)) +
                                  " filter " + r.info.name + " x " +
                                  s.info.name),
      r_(r),
      s_(s),
      spec_(spec) {
  PBSM_CHECK(spec.method != JoinMethod::kParallelPbsm)
      << "kParallelPbsm runs through ParallelJoinOp";
}

JoinCostBreakdown* FilterJoinOp::bd() {
  return ctx_->breakdown != nullptr ? ctx_->breakdown : &local_bd_;
}

Status FilterJoinOp::RunFilter() {
  JoinOptions opts = spec_.options;
  opts.cancel = ctx_->cancel;
  sorter_.emplace(ctx_->pool, opts.memory_budget_bytes, OidPairLess{});
  switch (spec_.method) {
    case JoinMethod::kPbsm:
      PBSM_RETURN_IF_ERROR(
          PbsmFilter(ctx_->pool, r_, s_, opts, &*sorter_, bd()));
      break;

    case JoinMethod::kInl: {
      // Same side selection as the facade: prefer a pre-existing index,
      // else index the smaller input; emit_indexed_first restores the
      // caller's (r, s) orientation.
      const bool index_s = spec_.s_index != nullptr ||
                           (spec_.r_index == nullptr &&
                            s_.info.cardinality < r_.info.cardinality);
      const JoinInput& indexed = index_s ? s_ : r_;
      const JoinInput& probing = index_s ? r_ : s_;
      const RStarTree* index = index_s ? spec_.s_index : spec_.r_index;
      PBSM_RETURN_IF_ERROR(InlFilter(ctx_->pool, indexed, probing, opts,
                                     &*sorter_, bd(), index,
                                     /*emit_indexed_first=*/!index_s));
      break;
    }

    case JoinMethod::kRtree:
      PBSM_RETURN_IF_ERROR(RtreeFilter(ctx_->pool, r_, s_, opts, &*sorter_,
                                       bd(), spec_.r_index, spec_.s_index));
      break;

    case JoinMethod::kSpatialHash: {
      SpatialHashJoinOptions options;
      options.num_buckets = spec_.hash.num_buckets;
      options.sample_fraction = spec_.hash.sample_fraction;
      options.join = opts;
      PBSM_RETURN_IF_ERROR(
          SpatialHashFilter(ctx_->pool, r_, s_, options, &*sorter_, bd()));
      break;
    }

    case JoinMethod::kZOrder: {
      ZOrderJoinOptions options;
      options.max_level = spec_.zorder.max_level;
      options.max_cells_per_object = spec_.zorder.max_cells_per_object;
      options.join = opts;
      PBSM_RETURN_IF_ERROR(
          ZOrderFilter(ctx_->pool, r_, s_, options, &*sorter_, bd()));
      break;
    }

    case JoinMethod::kParallelPbsm:
      PBSM_CHECK(false) << "unreachable";
  }
  return sorter_->Finish();
}

Result<bool> FilterJoinOp::NextImpl(RowBatch* out) {
  if (!filtered_) {
    PBSM_RETURN_IF_ERROR(RunFilter());
    filtered_ = true;
  }
  out->Reset(2);
  OidPair pair;
  while (out->num_rows() < ctx_->batch_rows) {
    PBSM_ASSIGN_OR_RETURN(const bool has, sorter_->Next(&pair));
    if (!has) break;
    // The sorter streams in (OID_R, OID_S) order, so replicated candidates
    // are adjacent — the same inline dedup RefineCandidates performs.
    if (has_last_ && pair == last_) {
      ++bd()->duplicates_removed;
      continue;
    }
    last_ = pair;
    has_last_ = true;
    out->AppendRow2(pair.r, pair.s);
  }
  return !out->empty();
}

Status FilterJoinOp::CloseImpl() {
  sorter_.reset();  // Drops any spilled runs.
  return Status::OK();
}

// ---- RefineOp ----

RefineOp::RefineOp(std::unique_ptr<Operator> child, JoinInput r, JoinInput s,
                   SpatialPredicate pred, const JoinOptions& opts,
                   bool force_exact)
    : Operator("refine", "refine " + r.info.name + " x " + s.info.name),
      r_(r),
      s_(s),
      pred_(pred),
      opts_(opts) {
  if (force_exact) opts_.refine = RefineOptions{};
  AddChild(std::move(child));
}

JoinCostBreakdown* RefineOp::bd() {
  return ctx_->breakdown != nullptr ? ctx_->breakdown : &local_bd_;
}

Status RefineOp::Refine() {
  // Prefetch the child's first batch BEFORE the refinement timer starts: a
  // lazy filter child does its whole filter inside that first Next, and
  // that work must be costed under the filter phases, not refinement.
  PBSM_ASSIGN_OR_RETURN(bool has, child(0)->Next(&in_));
  bool child_done = !has;
  size_t in_pos = 0;

  opts_.cancel = ctx_->cancel;
  PhaseCost& cost = bd()->AddPhase("refinement");
  PhaseTimer timer(ctx_->pool->disk(), &cost, "refinement");

  const SortedPairStream next = [&](OidPair* out) -> Result<bool> {
    while (true) {
      if (in_pos < in_.num_rows()) {
        out->r = in_.At(in_pos, 0);
        out->s = in_.At(in_pos, 1);
        ++in_pos;
        return true;
      }
      if (child_done) return false;
      PBSM_ASSIGN_OR_RETURN(const bool more, child(0)->Next(&in_));
      in_pos = 0;
      if (!more) child_done = true;
    }
  };
  const ResultSink sink = [this](Oid a, Oid b) {
    results_.push_back(OidPair{a.Encode(), b.Encode()});
  };
  return RefinePairStream(next, r_, s_, pred_, opts_, sink, bd());
}

Result<bool> RefineOp::NextImpl(RowBatch* out) {
  if (!refined_) {
    PBSM_RETURN_IF_ERROR(Refine());
    refined_ = true;
  }
  out->Reset(2);
  while (out->num_rows() < ctx_->batch_rows && pos_ < results_.size()) {
    out->AppendRow2(results_[pos_].r, results_[pos_].s);
    ++pos_;
  }
  return !out->empty();
}

Status RefineOp::CloseImpl() {
  results_.clear();
  results_.shrink_to_fit();
  return Status::OK();
}

// ---- ParallelJoinOp ----

ParallelJoinOp::ParallelJoinOp(JoinInput r, JoinInput s, const JoinSpec& spec)
    : Operator("parallel_join", "parallel_pbsm " + r.info.name + " x " +
                                    s.info.name),
      r_(r),
      s_(s),
      spec_(spec) {}

JoinCostBreakdown* ParallelJoinOp::bd() {
  return ctx_->breakdown != nullptr ? ctx_->breakdown : &local_bd_;
}

Result<bool> ParallelJoinOp::NextImpl(RowBatch* out) {
  if (!joined_) {
    JoinOptions opts = spec_.options;
    opts.cancel = ctx_->cancel;
    const ResultSink sink = [this](Oid a, Oid b) {
      results_.push_back(OidPair{a.Encode(), b.Encode()});
    };
    PBSM_ASSIGN_OR_RETURN(
        JoinCostBreakdown inner,
        ParallelPbsmJoin(ctx_->pool, r_, s_, spec_.predicate, opts, sink,
                         spec_.parallel_stats));
    JoinCostBreakdown* dst = bd();
    for (auto& phase : inner.phases) dst->phases.push_back(std::move(phase));
    dst->candidates += inner.candidates;
    dst->duplicates_removed += inner.duplicates_removed;
    dst->results += inner.results;
    dst->num_partitions = inner.num_partitions;
    dst->num_tiles = inner.num_tiles;
    dst->replicated += inner.replicated;
    dst->repartitioned_pairs += inner.repartitioned_pairs;
    joined_ = true;
  }
  out->Reset(2);
  while (out->num_rows() < ctx_->batch_rows && pos_ < results_.size()) {
    out->AppendRow2(results_[pos_].r, results_[pos_].s);
    ++pos_;
  }
  return !out->empty();
}

Status ParallelJoinOp::CloseImpl() {
  results_.clear();
  results_.shrink_to_fit();
  return Status::OK();
}

// ---- SpatialJoinOp ----

SpatialJoinOp::SpatialJoinOp(std::unique_ptr<Operator> child,
                             uint32_t left_column, JoinInput left_input,
                             JoinInput right, SpatialPredicate pred,
                             const JoinOptions& opts)
    : Operator("spatial_join", "join col" + std::to_string(left_column) +
                                   " (" + left_input.info.name + ") x " +
                                   right.info.name),
      left_column_(left_column),
      left_input_(left_input),
      right_(right),
      pred_(pred),
      opts_(opts),
      child_arity_(child->arity()) {
  PBSM_CHECK(left_column < child_arity_) << "join column out of range";
  AddChild(std::move(child));
}

JoinCostBreakdown* SpatialJoinOp::bd() {
  return ctx_->breakdown != nullptr ? ctx_->breakdown : &local_bd_;
}

Status SpatialJoinOp::BuildMatches() {
  opts_.cancel = ctx_->cancel;

  // Drain the child, buffering rows (encoded OIDs only — the pipelining
  // point: no intermediate relation is materialized to disk) and noting
  // the distinct join-column values.
  while (true) {
    PBSM_ASSIGN_OR_RETURN(const bool has, child(0)->Next(&in_));
    if (!has) break;
    left_rows_.insert(left_rows_.end(), in_.data.begin(), in_.data.end());
    for (size_t row = 0; row < in_.num_rows(); ++row) {
      matches_.try_emplace(in_.At(row, left_column_));
    }
  }

  DiskManager* disk = ctx_->pool->disk();
  CandidateSorter sorter(ctx_->pool, opts_.memory_budget_bytes,
                         OidPairLess{});
  {
    const std::string phase = "multiway filter " + right_.info.name;
    PhaseCost& cost = bd()->AddPhase(phase);
    PhaseTimer timer(disk, &cost, phase);

    // Key-pointers of the distinct join-column tuples...
    std::vector<KeyPointer> l_kps;
    l_kps.reserve(matches_.size());
    std::string record;
    for (const auto& [oid, unused] : matches_) {
      PBSM_RETURN_IF_ERROR(
          left_input_.heap->Fetch(Oid::Decode(oid), &record));
      PBSM_ASSIGN_OR_RETURN(const Tuple tuple,
                            Tuple::Parse(record.data(), record.size()));
      l_kps.push_back(KeyPointer{tuple.geometry.Mbr(), oid});
    }

    // ...and of the whole right relation, with periodic cancel polls (a
    // big scan should not ride on batch boundaries alone).
    std::vector<KeyPointer> r_kps;
    r_kps.reserve(right_.heap->num_records());
    uint64_t scanned = 0;
    PBSM_RETURN_IF_ERROR(right_.heap->Scan(
        [&](Oid oid, const char* data, size_t size) -> Status {
          if ((++scanned & 4095) == 0 && ctx_->cancel != nullptr &&
              ctx_->cancel->is_cancelled()) {
            Tracer::Global().FlushOpenSpans();
            return ctx_->cancel->CancellationStatus();
          }
          PBSM_ASSIGN_OR_RETURN(const Tuple tuple,
                                Tuple::Parse(data, size));
          r_kps.push_back(KeyPointer{tuple.geometry.Mbr(), oid.Encode()});
          return Status::OK();
        }));

    Status append_status;
    bd()->candidates += PlaneSweepJoinBatch(
        &l_kps, &r_kps,
        SorterBatchSink<CandidateSorter>{&sorter, &append_status},
        opts_.sweep, opts_.simd);
    PBSM_RETURN_IF_ERROR(append_status);
  }

  {
    PhaseCost& cost = bd()->AddPhase("refinement");
    PhaseTimer timer(disk, &cost, "refinement");
    const ResultSink sink = [this](Oid l, Oid r) {
      matches_[l.Encode()].push_back(r.Encode());
    };
    PBSM_RETURN_IF_ERROR(RefineCandidates(&sorter, left_input_, right_,
                                          pred_, opts_, sink, bd()));
  }
  return Status::OK();
}

Result<bool> SpatialJoinOp::NextImpl(RowBatch* out) {
  if (!built_) {
    PBSM_RETURN_IF_ERROR(BuildMatches());
    built_ = true;
  }
  out->Reset(arity());
  const size_t n_rows =
      child_arity_ == 0 ? 0 : left_rows_.size() / child_arity_;
  std::vector<uint64_t> row(arity());
  while (out->num_rows() < ctx_->batch_rows && row_idx_ < n_rows) {
    const uint64_t* src = left_rows_.data() + row_idx_ * child_arity_;
    const auto it = matches_.find(src[left_column_]);
    if (it == matches_.end() || match_idx_ >= it->second.size()) {
      ++row_idx_;
      match_idx_ = 0;
      continue;
    }
    std::copy(src, src + child_arity_, row.begin());
    row[child_arity_] = it->second[match_idx_++];
    out->AppendRow(row.data());
  }
  return !out->empty();
}

Status SpatialJoinOp::CloseImpl() {
  left_rows_.clear();
  left_rows_.shrink_to_fit();
  matches_.clear();
  return Status::OK();
}

}  // namespace pbsm
