#ifndef PBSM_EXEC_JOIN_OPS_H_
#define PBSM_EXEC_JOIN_OPS_H_

// The join operators of the exec layer:
//
//  * FilterJoinOp — leaf producing the sorted, de-duplicated candidate
//    pair stream of one method's filter step (the five serial methods;
//    §3.1 and its competitors);
//  * RefineOp — the shared §3.2 refinement step over any candidate stream;
//  * ParallelJoinOp — the threaded PBSM executor, wrapped whole (its
//    filter and refinement interleave across workers and cannot sit on
//    opposite sides of a pull boundary);
//  * SpatialJoinOp — joins one column of an arbitrary row stream against a
//    stored relation, the building block of left-deep multi-way joins.

#include <memory>
#include <optional>
#include <vector>

#include "core/join_methods_internal.h"
#include "core/refinement.h"
#include "core/spatial_join.h"
#include "exec/operator.h"

namespace pbsm {

/// Candidate producer (arity 2: encoded OID_R, OID_S). Runs the method's
/// filter on the first Next — into a private external sorter — then
/// streams the sorted pairs with inline duplicate elimination, so
/// downstream operators always see each candidate exactly once, in
/// (OID_R, OID_S) order. Filter phase costs land in the shared breakdown
/// under the same phase names the monolithic entry points use.
///
/// Handles kPbsm, kInl, kRtree, kSpatialHash, kZOrder; kParallelPbsm goes
/// through ParallelJoinOp instead.
class FilterJoinOp : public Operator {
 public:
  FilterJoinOp(JoinInput r, JoinInput s, const JoinSpec& spec);

  uint32_t arity() const override { return 2; }

 protected:
  Status OpenImpl() override { return Status::OK(); }
  Result<bool> NextImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  Status RunFilter();
  JoinCostBreakdown* bd();

  const JoinInput r_;
  const JoinInput s_;
  const JoinSpec spec_;  // sink/window ignored; method + options + indexes.
  JoinCostBreakdown local_bd_;
  std::optional<CandidateSorter> sorter_;
  bool filtered_ = false;
  OidPair last_{};
  bool has_last_ = false;
};

/// The refinement step (arity 2) over a sorted de-duplicated candidate
/// stream: fetches tuples block-wise, evaluates the exact predicate (or
/// the adaptive engine) and streams the result pairs. The child's first
/// batch is pulled *before* the "refinement" phase timer starts, so a lazy
/// filter child is costed under its own phases.
class RefineOp : public Operator {
 public:
  /// With `force_exact` the adaptive knobs are overridden to kExact — the
  /// INL plan uses it to match the monolithic INL, which evaluates the
  /// exact predicate inline during the probe and ignores opts.refine.
  RefineOp(std::unique_ptr<Operator> child, JoinInput r, JoinInput s,
           SpatialPredicate pred, const JoinOptions& opts,
           bool force_exact = false);

  uint32_t arity() const override { return 2; }

 protected:
  Status OpenImpl() override { return Status::OK(); }
  Result<bool> NextImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  Status Refine();
  JoinCostBreakdown* bd();

  const JoinInput r_;
  const JoinInput s_;
  const SpatialPredicate pred_;
  JoinOptions opts_;
  JoinCostBreakdown local_bd_;
  RowBatch in_;
  std::vector<OidPair> results_;
  size_t pos_ = 0;
  bool refined_ = false;
};

/// The shared-memory parallel PBSM executor as one operator (arity 2).
/// Filter and refinement run inside the first Next — they interleave
/// across worker threads, so there is no batch boundary to split them at —
/// and the result pairs are buffered and re-emitted in batches.
class ParallelJoinOp : public Operator {
 public:
  ParallelJoinOp(JoinInput r, JoinInput s, const JoinSpec& spec);

  uint32_t arity() const override { return 2; }

 protected:
  Status OpenImpl() override { return Status::OK(); }
  Result<bool> NextImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  JoinCostBreakdown* bd();

  const JoinInput r_;
  const JoinInput s_;
  const JoinSpec spec_;
  JoinCostBreakdown local_bd_;
  std::vector<OidPair> results_;
  size_t pos_ = 0;
  bool joined_ = false;
};

/// Multi-way join step: joins column `left_column` of the child's rows
/// against stored relation `right` under `pred`, emitting each child row
/// extended by one matching `right` OID column (arity = child arity + 1).
///
/// Execution (on the first Next): the child is drained and its rows
/// buffered in memory — the pipelining win over materialize-between-joins
/// is that only the *rows* (encoded OIDs) are held, never intermediate
/// heap files; the distinct values of the join column become key-pointers
/// (MBRs fetched from `left_input`, the relation the column refers to),
/// `right` is scanned into key-pointers, the two sets are plane-swept, and
/// the candidates run through the shared refinement. Matches are grouped
/// per left OID, then the buffered rows are expanded batch by batch.
class SpatialJoinOp : public Operator {
 public:
  SpatialJoinOp(std::unique_ptr<Operator> child, uint32_t left_column,
                JoinInput left_input, JoinInput right,
                SpatialPredicate pred, const JoinOptions& opts);

  uint32_t arity() const override { return child_arity_ + 1; }

 protected:
  Status OpenImpl() override { return Status::OK(); }
  Result<bool> NextImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  Status BuildMatches();
  JoinCostBreakdown* bd();

  const uint32_t left_column_;
  const JoinInput left_input_;
  const JoinInput right_;
  const SpatialPredicate pred_;
  JoinOptions opts_;
  uint32_t child_arity_ = 0;
  JoinCostBreakdown local_bd_;
  RowBatch in_;
  /// Buffered child rows, flat (child_arity_ columns per row).
  std::vector<uint64_t> left_rows_;
  /// left OID -> sorted matching right OIDs.
  std::unordered_map<uint64_t, std::vector<uint64_t>> matches_;
  size_t row_idx_ = 0;
  size_t match_idx_ = 0;
  bool built_ = false;
};

}  // namespace pbsm

#endif  // PBSM_EXEC_JOIN_OPS_H_
