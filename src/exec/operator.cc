#include "exec/operator.h"

#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace pbsm {

Operator::Operator(std::string op, std::string detail)
    : op_(std::move(op)),
      detail_(std::move(detail)),
      span_name_("exec/" + op_),
      batches_(MetricsRegistry::Global().GetCounter("exec." + op_ +
                                                    ".batches")),
      rows_out_(MetricsRegistry::Global().GetCounter("exec." + op_ +
                                                     ".rows_out")),
      ns_(MetricsRegistry::Global().GetCounter("exec." + op_ + ".ns")) {}

Operator* Operator::AddChild(std::unique_ptr<Operator> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

Status Operator::Open(ExecContext* ctx) {
  PBSM_CHECK(!opened_) << "operator " << op_ << " opened twice";
  PBSM_CHECK(ctx != nullptr && ctx->pool != nullptr);
  ctx_ = ctx;
  for (auto& child : children_) {
    PBSM_RETURN_IF_ERROR(child->Open(ctx));
  }
  PBSM_RETURN_IF_ERROR(OpenImpl());
  opened_ = true;
  return Status::OK();
}

Result<bool> Operator::Next(RowBatch* out) {
  PBSM_CHECK(opened_ && !closed_) << "Next on unopened/closed " << op_;
  if (exhausted_) return false;
  // Cancellation boundary: one poll per batch at every tree depth. Open
  // spans are materialized so a span-tree export after the abort sees a
  // complete tree (the same contract as the monolithic join phases).
  if (ctx_->cancel != nullptr && ctx_->cancel->is_cancelled()) {
    Tracer::Global().FlushOpenSpans();
    return ctx_->cancel->CancellationStatus();
  }
  TraceSpan span(span_name_);
  Stopwatch watch;
  Result<bool> has = NextImpl(out);
  ns_->Add(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e9));
  if (has.ok()) {
    if (*has) {
      batches_->Add();
      rows_out_->Add(out->num_rows());
    } else {
      exhausted_ = true;
    }
  }
  return has;
}

Status Operator::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  // Close self first (children may back resources the parent still holds
  // views into — parent teardown must run while they are alive), children
  // after; the first error wins but every Close still runs.
  Status status = opened_ ? CloseImpl() : Status::OK();
  for (auto& child : children_) {
    const Status child_status = child->Close();
    if (status.ok()) status = child_status;
  }
  return status;
}

}  // namespace pbsm
