#ifndef PBSM_EXEC_OPERATOR_H_
#define PBSM_EXEC_OPERATOR_H_

// Pull-based operator interface (ROADMAP item 5, in the style of RDF-3X's
// rts/operator layer): every relational piece of a spatial-join plan —
// scans, the per-method candidate filters, refinement, selection pushdown,
// projection, aggregation, nested multi-way joins — is an Operator with an
// Open / Next-batch / Close life cycle, composed into trees by
// exec/plan_builder.h.
//
// Operator contract:
//  * Open(ctx) opens the children first, then the operator itself; it may
//    be called exactly once. `ctx` must outlive the tree.
//  * Next(out) returns true and fills `out` with >= 0 rows of the
//    operator's arity, or false when the stream is exhausted (after which
//    further calls keep returning false). Cancellation is polled at every
//    Next — a tripped Canceller surfaces as its CancellationStatus with
//    all open trace spans flushed.
//  * Close() releases resources (cursors, sorters, buffered state); it is
//    idempotent, safe after a failed Open or mid-stream abort, and closes
//    children after the operator itself.
//
// Every Next is wrapped in an "exec/<op>" trace span and accounted into
// the exec.<op>.batches / exec.<op>.rows_out / exec.<op>.ns counters.

#include <memory>
#include <string>
#include <vector>

#include "common/canceller.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/join_cost.h"
#include "exec/row_batch.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// Shared execution state of one operator tree.
struct ExecContext {
  BufferPool* pool = nullptr;
  /// Polled at every batch boundary by Operator::Next. May be null.
  Canceller* cancel = nullptr;
  /// Target rows per batch (producers may emit less, never more).
  size_t batch_rows = 4096;
  /// Join operators record their phase costs and filter/refinement
  /// counters here. May be null (counters are then kept per-operator and
  /// dropped at Close).
  JoinCostBreakdown* breakdown = nullptr;
};

/// Base class of every exec operator. Subclasses implement OpenImpl /
/// NextImpl / CloseImpl; the base runs the shared per-batch machinery
/// (cancellation, tracing, metrics) and the child life cycle.
class Operator {
 public:
  /// `op` is the stable metric/span key ("scan", "filter_join", ...);
  /// `detail` a human label for plan printing ("scan roads", ...).
  Operator(std::string op, std::string detail);
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  Status Open(ExecContext* ctx);
  Result<bool> Next(RowBatch* out);
  Status Close();

  /// Number of columns in every emitted row.
  virtual uint32_t arity() const = 0;

  const std::string& op() const { return op_; }
  const std::string& detail() const { return detail_; }

  Operator* AddChild(std::unique_ptr<Operator> child);
  size_t num_children() const { return children_.size(); }
  Operator* child(size_t i) const { return children_[i].get(); }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(RowBatch* out) = 0;
  virtual Status CloseImpl() { return Status::OK(); }

  ExecContext* ctx_ = nullptr;
  std::vector<std::unique_ptr<Operator>> children_;

 private:
  const std::string op_;
  const std::string detail_;
  const std::string span_name_;
  bool opened_ = false;
  bool closed_ = false;
  bool exhausted_ = false;
  Counter* batches_;
  Counter* rows_out_;
  Counter* ns_;
};

}  // namespace pbsm

#endif  // PBSM_EXEC_OPERATOR_H_
