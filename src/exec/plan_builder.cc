#include "exec/plan_builder.h"

#include <utility>

#include "exec/basic_ops.h"
#include "exec/join_ops.h"

namespace pbsm {

std::unique_ptr<Operator> BuildJoinTree(const JoinInput& r,
                                        const JoinInput& s,
                                        const JoinSpec& spec) {
  std::unique_ptr<Operator> tree;
  if (spec.method == JoinMethod::kParallelPbsm) {
    tree = std::make_unique<ParallelJoinOp>(r, s, spec);
  } else {
    auto filter = std::make_unique<FilterJoinOp>(r, s, spec);
    tree = std::make_unique<RefineOp>(
        std::move(filter), r, s, spec.predicate, spec.options,
        /*force_exact=*/spec.method == JoinMethod::kInl);
  }
  if (spec.window.has_value()) {
    std::vector<MbrSource> sources(2);
    sources[0] = MbrSource{spec.window->r_mbrs, r.heap};
    sources[1] = MbrSource{spec.window->s_mbrs, s.heap};
    tree = std::make_unique<SelectOp>(std::move(tree), spec.window->window,
                                      std::move(sources));
  }
  return tree;
}

std::unique_ptr<Operator> BuildMultiwayTree(const MultiwayJoinSpec& spec) {
  JoinSpec base = spec.base;
  base.sink = {};
  base.window.reset();
  std::unique_ptr<Operator> tree =
      BuildJoinTree(spec.first, spec.second, base);

  // Relations in row-column order; stage k's output column is 2 + k.
  std::vector<JoinInput> columns = {spec.first, spec.second};
  for (const MultiwayStage& stage : spec.stages) {
    tree = std::make_unique<SpatialJoinOp>(
        std::move(tree), stage.join_column, columns[stage.join_column],
        stage.input, stage.predicate, base.options);
    columns.push_back(stage.input);
  }
  return tree;
}

Status DriveTree(Operator* root, ExecContext* ctx, const RowSink& sink) {
  Status status = root->Open(ctx);
  if (status.ok()) {
    RowBatch batch;
    while (true) {
      Result<bool> has = root->Next(&batch);
      if (!has.ok()) {
        status = has.status();
        break;
      }
      if (!*has) break;
      if (sink) {
        for (size_t row = 0; row < batch.num_rows(); ++row) {
          sink(batch.Row(row), batch.arity);
        }
      }
    }
  }
  const Status close_status = root->Close();
  return status.ok() ? close_status : status;
}

std::string DescribeTree(const Operator& root, int indent) {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += root.op() + ": " + root.detail() + "\n";
  for (size_t i = 0; i < root.num_children(); ++i) {
    out += DescribeTree(*root.child(i), indent + 1);
  }
  return out;
}

}  // namespace pbsm
