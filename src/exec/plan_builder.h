#ifndef PBSM_EXEC_PLAN_BUILDER_H_
#define PBSM_EXEC_PLAN_BUILDER_H_

// Builds operator trees from join specifications and drives them: the glue
// between the declarative JoinSpec / MultiwayJoinSpec world and the
// pull-based operators of exec/join_ops.h.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/spatial_join.h"
#include "exec/operator.h"

namespace pbsm {

/// Receives every row the driven tree emits.
using RowSink = std::function<void(const uint64_t* row, uint32_t arity)>;

/// Builds the operator tree of one pairwise join:
///
///   [SelectOp (spec.window)] <- RefineOp <- FilterJoinOp(r, s)
///
/// (kParallelPbsm uses a single ParallelJoinOp instead of the
/// filter/refine pair). spec.sink is ignored — the caller drives the tree
/// and forwards rows itself.
std::unique_ptr<Operator> BuildJoinTree(const JoinInput& r,
                                        const JoinInput& s,
                                        const JoinSpec& spec);

/// One additional stage of a left-deep multi-way join: join `join_column`
/// of the rows produced so far against `input` under `predicate`.
struct MultiwayStage {
  JoinInput input;
  SpatialPredicate predicate = SpatialPredicate::kIntersects;
  /// Column of the accumulated row to join on. Column k refers to the
  /// relation at position k of [first, second, stages[0].input, ...].
  uint32_t join_column = 0;
};

/// A left-deep multi-way join: `base` joins `first` with `second`
/// (producing arity-2 rows), then each stage appends one column.
struct MultiwayJoinSpec {
  JoinInput first;
  JoinInput second;
  /// Method/options/predicate of the base pairwise join; sink and window
  /// are ignored.
  JoinSpec base;
  std::vector<MultiwayStage> stages;
};

/// Builds base tree + one SpatialJoinOp per stage.
std::unique_ptr<Operator> BuildMultiwayTree(const MultiwayJoinSpec& spec);

/// Opens the tree, drains it into `sink` (which may be empty), and closes
/// it — Close always runs, and the first error (open, next, or close) is
/// returned.
Status DriveTree(Operator* root, ExecContext* ctx, const RowSink& sink);

/// Indented one-line-per-operator rendering of the tree, e.g.
///   refine: refine roads x rails
///     filter_join: pbsm filter roads x rails
std::string DescribeTree(const Operator& root, int indent = 0);

}  // namespace pbsm

#endif  // PBSM_EXEC_PLAN_BUILDER_H_
