#ifndef PBSM_EXEC_ROW_BATCH_H_
#define PBSM_EXEC_ROW_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbsm {

/// One batch of rows flowing between operators. A row is `arity` encoded
/// OIDs (Oid::Encode values), row-major in one flat vector — a scan
/// produces arity-1 rows, a pairwise join arity-2, each further join in a
/// left-deep multi-way tree appends one column. Batches are reused across
/// Next() calls (Reset keeps capacity), so steady-state execution does not
/// allocate.
struct RowBatch {
  uint32_t arity = 0;
  std::vector<uint64_t> data;

  void Reset(uint32_t new_arity) {
    arity = new_arity;
    data.clear();
  }
  size_t num_rows() const {
    return arity == 0 ? 0 : data.size() / arity;
  }
  bool empty() const { return data.empty(); }
  void AppendRow(const uint64_t* row) {
    data.insert(data.end(), row, row + arity);
  }
  void AppendRow1(uint64_t v) { data.push_back(v); }
  void AppendRow2(uint64_t a, uint64_t b) {
    data.push_back(a);
    data.push_back(b);
  }
  const uint64_t* Row(size_t row) const { return data.data() + row * arity; }
  uint64_t At(size_t row, uint32_t col) const {
    return data[row * arity + col];
  }
};

}  // namespace pbsm

#endif  // PBSM_EXEC_ROW_BATCH_H_
