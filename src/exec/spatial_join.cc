// The SpatialJoin facade (declared in core/spatial_join.h). It lives in
// the exec library because its default engine builds and drives an
// operator tree; the kMonolith engine dispatches to the legacy per-method
// entry points and is kept as the differential reference. Either engine
// produces the same result-pair set.

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/join_methods_internal.h"
#include "core/spatial_join.h"
#include "exec/plan_builder.h"
#include "storage/tuple.h"

namespace pbsm {

namespace {

/// Dispatches to the legacy monolithic entry point for `spec.method`.
Result<JoinCostBreakdown> Dispatch(BufferPool* pool, const JoinInput& r,
                                   const JoinInput& s, const JoinSpec& spec,
                                   const ResultSink& sink) {
  switch (spec.method) {
    case JoinMethod::kPbsm:
      return PbsmJoin(pool, r, s, spec.predicate, spec.options, sink);

    case JoinMethod::kParallelPbsm:
      return ParallelPbsmJoin(pool, r, s, spec.predicate, spec.options,
                              sink, spec.parallel_stats);

    case JoinMethod::kInl: {
      // INL indexes one side and probes with the other. Prefer a side with
      // a pre-existing index; otherwise index the smaller input (the
      // paper's choice). The facade's contract is pred(r, s) and sink
      // pairs oriented (r, s), so when s is the indexed side we flip the
      // predicate orientation flag and swap the emitted pair (INL emits
      // (indexed, probing)).
      const bool index_s =
          spec.s_index != nullptr ||
          (spec.r_index == nullptr &&
           s.info.cardinality < r.info.cardinality);
      const JoinInput& indexed = index_s ? s : r;
      const JoinInput& probing = index_s ? r : s;
      const RStarTree* index = index_s ? spec.s_index : spec.r_index;
      ResultSink oriented = sink;
      if (index_s && sink) {
        const ResultSink& user = sink;
        oriented = [&user](Oid a, Oid b) { user(b, a); };
      }
      return IndexedNestedLoopsJoin(pool, indexed, probing, spec.predicate,
                                    spec.options, oriented, index,
                                    /*indexed_is_left=*/!index_s);
    }

    case JoinMethod::kRtree:
      return RtreeJoin(pool, r, s, spec.predicate, spec.options, sink,
                       spec.r_index, spec.s_index);

    case JoinMethod::kSpatialHash: {
      SpatialHashJoinOptions options;
      options.num_buckets = spec.hash.num_buckets;
      options.sample_fraction = spec.hash.sample_fraction;
      options.join = spec.options;
      return SpatialHashJoin(pool, r, s, spec.predicate, options, sink);
    }

    case JoinMethod::kZOrder: {
      ZOrderJoinOptions options;
      options.max_level = spec.zorder.max_level;
      options.max_cells_per_object = spec.zorder.max_cells_per_object;
      options.join = spec.options;
      return ZOrderJoin(pool, r, s, spec.predicate, options, sink);
    }
  }
  PBSM_CHECK(false) << "unknown JoinMethod "
                    << static_cast<int>(spec.method);
}

/// The monolithic engine's window pushdown: a sink filter with the same
/// per-side MBR resolution SelectOp uses (map lookup when provided, else
/// tuple fetch + parse). Unresolvable sides (map miss, fetch or parse
/// failure) drop the pair, matching SelectOp's map-miss semantics.
class WindowSink {
 public:
  WindowSink(const WindowFilter& window, const JoinInput& r,
             const JoinInput& s, const ResultSink& user)
      : window_(window), r_(r), s_(s), user_(user) {}

  void operator()(Oid r_oid, Oid s_oid) {
    if (!Passes(r_oid.Encode(), window_.r_mbrs, r_.heap)) return;
    if (!Passes(s_oid.Encode(), window_.s_mbrs, s_.heap)) return;
    user_(r_oid, s_oid);
  }

 private:
  bool Passes(uint64_t oid, const std::unordered_map<uint64_t, Rect>* mbrs,
              const HeapFile* heap) {
    Rect mbr;
    if (mbrs != nullptr) {
      const auto it = mbrs->find(oid);
      if (it == mbrs->end()) return false;
      mbr = it->second;
    } else {
      if (!heap->Fetch(Oid::Decode(oid), &record_).ok()) return false;
      auto tuple = Tuple::Parse(record_.data(), record_.size());
      if (!tuple.ok()) return false;
      mbr = tuple.value().geometry.Mbr();
    }
    return mbr.Intersects(window_.window);
  }

  const WindowFilter& window_;
  const JoinInput& r_;
  const JoinInput& s_;
  const ResultSink& user_;
  std::string record_;
};

/// The default engine: build the pairwise operator tree and drive it,
/// forwarding (row[0], row[1]) to the user sink.
Result<JoinCostBreakdown> RunOperatorTree(BufferPool* pool,
                                          const JoinInput& r,
                                          const JoinInput& s,
                                          const JoinSpec& spec) {
  JoinCostBreakdown breakdown;
  const std::unique_ptr<Operator> tree = BuildJoinTree(r, s, spec);
  ExecContext ctx;
  ctx.pool = pool;
  ctx.cancel = spec.options.cancel;
  ctx.breakdown = &breakdown;
  RowSink sink;
  if (spec.sink) {
    sink = [&spec](const uint64_t* row, uint32_t arity) {
      (void)arity;
      spec.sink(Oid::Decode(row[0]), Oid::Decode(row[1]));
    };
  }
  PBSM_RETURN_IF_ERROR(DriveTree(tree.get(), &ctx, sink));
  return breakdown;
}

Result<JoinCostBreakdown> RunMonolith(BufferPool* pool, const JoinInput& r,
                                      const JoinInput& s,
                                      const JoinSpec& spec) {
  if (spec.window.has_value() && spec.sink) {
    WindowSink windowed(*spec.window, r, s, spec.sink);
    return Dispatch(pool, r, s, spec,
                    [&windowed](Oid a, Oid b) { windowed(a, b); });
  }
  return Dispatch(pool, r, s, spec, spec.sink);
}

}  // namespace

Result<JoinResult> SpatialJoin(BufferPool* pool, const JoinInput& r,
                               const JoinInput& s, const JoinSpec& spec) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const MetricsSnapshot before = metrics.Snapshot();
  const std::string span_name =
      "join/" + std::string(JoinMethodName(spec.method));
  Stopwatch watch;

  JoinResult result;
  result.method = spec.method;
  {
    TraceSpan span(span_name);
    // A query cancelled while queued (service timeout before dispatch)
    // never starts executing.
    if (spec.options.cancel != nullptr &&
        spec.options.cancel->is_cancelled()) {
      metrics
          .GetCounter("join.cancelled." +
                      std::string(JoinMethodName(spec.method)))
          ->Add();
      return spec.options.cancel->CancellationStatus();
    }
    Result<JoinCostBreakdown> dispatched =
        spec.engine == JoinEngine::kOperatorTree
            ? RunOperatorTree(pool, r, s, spec)
            : RunMonolith(pool, r, s, spec);
    if (!dispatched.ok()) {
      // Cancellations are not failures: they are the service tearing down
      // work on purpose, and alerting on them as errors would be noise.
      CountJoinFailure(spec.method, dispatched.status());
      return dispatched.status();
    }
    result.breakdown = std::move(dispatched).value();
  }
  result.wall_seconds = watch.ElapsedSeconds();
  result.num_results = result.breakdown.results;

  // Mirror the breakdown's filter/refinement counters into the registry so
  // metrics consumers see them without holding a JoinResult.
  metrics.GetCounter("join.candidates")->Add(result.breakdown.candidates);
  metrics.GetCounter("join.results")->Add(result.breakdown.results);
  metrics.GetCounter("join.duplicates_removed")
      ->Add(result.breakdown.duplicates_removed);
  metrics.GetCounter("join.replicated")->Add(result.breakdown.replicated);
  metrics.GetCounter("join.repartitioned_pairs")
      ->Add(result.breakdown.repartitioned_pairs);
  metrics.GetCounter(
      "join.runs." + std::string(JoinMethodName(spec.method)))->Add();

  result.metrics = metrics.Snapshot().Delta(before);
  return result;
}

}  // namespace pbsm
