#include "exec/view_maintainer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace pbsm {

namespace {

void EraseOid(std::vector<uint64_t>* list, uint64_t oid) {
  list->erase(std::remove(list->begin(), list->end(), oid), list->end());
}

}  // namespace

MaterializedJoinView::MaterializedJoinView(Config config, BufferPool* pool,
                                           const JoinInput& r,
                                           const JoinInput& s)
    : config_(std::move(config)), pool_(pool), r_(r), s_(s) {}

Result<std::unique_ptr<MaterializedJoinView>> MaterializedJoinView::Build(
    BufferPool* pool, const JoinInput& r, const JoinInput& s, Config config) {
  const Rect universe = Rect::Union(r.info.universe, s.info.universe);
  if (universe.empty()) {
    return Status::InvalidArgument("view inputs have an empty universe");
  }
  if (config.num_tiles == 0) {
    return Status::InvalidArgument("view needs at least one tile");
  }

  std::unique_ptr<MaterializedJoinView> view(
      new MaterializedJoinView(std::move(config), pool, r, s));
  view->part_.emplace(universe, view->config_.num_tiles,
                      /*num_partitions=*/1, TileMapping::kHash);
  view->r_tiles_.resize(view->part_->num_tiles());
  view->s_tiles_.resize(view->part_->num_tiles());

  // Base join through the facade (no lock needed: the view is private
  // until returned).
  JoinSpec spec = view->config_.base;
  spec.predicate = view->config_.predicate;
  spec.window.reset();
  spec.sink = [&view](Oid ro, Oid so) {
    const auto pair = std::make_pair(ro.Encode(), so.Encode());
    if (view->pairs_.insert(pair).second) {
      view->s_to_r_[pair.second].push_back(pair.first);
    }
  };
  PBSM_RETURN_IF_ERROR(SpatialJoin(pool, r, s, spec).status());

  // Snapshot the maintenance state: per-side MBR maps and tile lists.
  const auto snapshot = [&view](const JoinInput& input,
                                std::unordered_map<uint64_t, Rect>* mbrs,
                                std::vector<std::vector<uint64_t>>* tiles) {
    return input.heap->Scan(
        [&](Oid oid, const char* data, size_t size) -> Status {
          PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
          const Rect mbr = tuple.geometry.Mbr();
          (*mbrs)[oid.Encode()] = mbr;
          view->tiles_scratch_.clear();
          view->part_->ClassifyTiles(mbr, &view->tiles_scratch_);
          for (const TileAssignment& ta : view->tiles_scratch_) {
            (*tiles)[ta.tile].push_back(oid.Encode());
          }
          return Status::OK();
        });
  };
  PBSM_RETURN_IF_ERROR(snapshot(r, &view->r_mbrs_, &view->r_tiles_));
  PBSM_RETURN_IF_ERROR(snapshot(s, &view->s_mbrs_, &view->s_tiles_));

  MetricsRegistry::Global().GetCounter("view.builds")->Add();
  return view;
}

Status MaterializedJoinView::DeltaJoin(Side side, uint64_t oid,
                                       const Tuple& tuple, const Rect& mbr) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const auto& other_mbrs = side == Side::kR ? s_mbrs_ : r_mbrs_;
  const auto& other_tiles = side == Side::kR ? s_tiles_ : r_tiles_;
  const HeapFile* other_heap = side == Side::kR ? s_.heap : r_.heap;

  uint64_t candidates = 0, results = 0;
  std::string record;
  tiles_scratch_.clear();
  part_->ClassifyTiles(mbr, &tiles_scratch_);
  for (const TileAssignment& ta : tiles_scratch_) {
    for (const uint64_t other : other_tiles[ta.tile]) {
      const Rect& other_mbr = other_mbrs.at(other);
      if (!mbr.Intersects(other_mbr)) continue;
      // Reference-corner dedup: both sides' tile lists contain every tile
      // their MBR overlaps, so a pair sharing k tiles is seen k times —
      // count it only in the tile of the intersection's low corner (which
      // is a shared tile, clamping included, because TileFor clamps the
      // same way ClassifyTiles does).
      const uint32_t owner =
          part_->TileFor(std::max(mbr.xlo, other_mbr.xlo),
                         std::max(mbr.ylo, other_mbr.ylo));
      if (owner != ta.tile) continue;
      ++candidates;
      PBSM_RETURN_IF_ERROR(other_heap->Fetch(Oid::Decode(other), &record));
      PBSM_ASSIGN_OR_RETURN(const Tuple other_tuple,
                            Tuple::Parse(record.data(), record.size()));
      const bool hit =
          side == Side::kR
              ? EvaluatePredicate(config_.predicate, tuple.geometry,
                                  other_tuple.geometry,
                                  config_.base.options.refinement_mode)
              : EvaluatePredicate(config_.predicate, other_tuple.geometry,
                                  tuple.geometry,
                                  config_.base.options.refinement_mode);
      if (!hit) continue;
      ++results;
      const auto pair = side == Side::kR ? std::make_pair(oid, other)
                                         : std::make_pair(other, oid);
      if (pairs_.insert(pair).second) {
        s_to_r_[pair.second].push_back(pair.first);
      }
    }
  }
  metrics.GetCounter("view.delta_candidates")->Add(candidates);
  metrics.GetCounter("view.delta_results")->Add(results);
  return Status::OK();
}

Status MaterializedJoinView::Insert(Side side, Oid oid, const Tuple& tuple) {
  const std::lock_guard<std::mutex> lock(mu_);
  const uint64_t encoded = oid.Encode();
  auto& mbrs = side == Side::kR ? r_mbrs_ : s_mbrs_;
  auto& tiles = side == Side::kR ? r_tiles_ : s_tiles_;
  const Rect mbr = tuple.geometry.Mbr();
  if (!mbrs.emplace(encoded, mbr).second) {
    return Status::InvalidArgument("view " + config_.name +
                                   ": OID already present");
  }
  // Join the new tuple against the counterpart side first, then register
  // its tile entries — the delta join must not see the tuple itself.
  PBSM_RETURN_IF_ERROR(DeltaJoin(side, encoded, tuple, mbr));
  tiles_scratch_.clear();
  part_->ClassifyTiles(mbr, &tiles_scratch_);
  for (const TileAssignment& ta : tiles_scratch_) {
    tiles[ta.tile].push_back(encoded);
  }
  MetricsRegistry::Global().GetCounter("view.inserts")->Add();
  return Status::OK();
}

Status MaterializedJoinView::Delete(Side side, Oid oid) {
  const std::lock_guard<std::mutex> lock(mu_);
  const uint64_t encoded = oid.Encode();
  auto& mbrs = side == Side::kR ? r_mbrs_ : s_mbrs_;
  auto& tiles = side == Side::kR ? r_tiles_ : s_tiles_;
  const auto it = mbrs.find(encoded);
  if (it == mbrs.end()) {
    return Status::NotFound("view " + config_.name + ": unknown OID");
  }
  const Rect mbr = it->second;
  mbrs.erase(it);
  tiles_scratch_.clear();
  part_->ClassifyTiles(mbr, &tiles_scratch_);
  for (const TileAssignment& ta : tiles_scratch_) {
    EraseOid(&tiles[ta.tile], encoded);
  }

  if (side == Side::kR) {
    // Ordered range erase: every pair with OID_R == encoded is contiguous.
    auto pit = pairs_.lower_bound({encoded, 0});
    while (pit != pairs_.end() && pit->first == encoded) {
      const auto adj = s_to_r_.find(pit->second);
      if (adj != s_to_r_.end()) {
        EraseOid(&adj->second, encoded);
        if (adj->second.empty()) s_to_r_.erase(adj);
      }
      pit = pairs_.erase(pit);
    }
  } else {
    const auto adj = s_to_r_.find(encoded);
    if (adj != s_to_r_.end()) {
      for (const uint64_t r_oid : adj->second) {
        pairs_.erase({r_oid, encoded});
      }
      s_to_r_.erase(adj);
    }
  }
  MetricsRegistry::Global().GetCounter("view.deletes")->Add();
  return Status::OK();
}

uint64_t MaterializedJoinView::num_pairs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pairs_.size();
}

uint64_t MaterializedJoinView::num_r() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return r_mbrs_.size();
}

uint64_t MaterializedJoinView::num_s() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return s_mbrs_.size();
}

void MaterializedJoinView::Emit(const ResultSink& sink) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [r_oid, s_oid] : pairs_) {
    sink(Oid::Decode(r_oid), Oid::Decode(s_oid));
  }
}

std::vector<OidPair> MaterializedJoinView::Pairs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<OidPair> out;
  out.reserve(pairs_.size());
  for (const auto& [r_oid, s_oid] : pairs_) {
    out.push_back(OidPair{r_oid, s_oid});
  }
  return out;
}

}  // namespace pbsm
