#ifndef PBSM_EXEC_VIEW_MAINTAINER_H_
#define PBSM_EXEC_VIEW_MAINTAINER_H_

// Incrementally-maintained spatial join views: the result-pair set of a
// registered join, kept current under single-tuple inserts and deletes by
// tile-local delta joins instead of full recomputation. A warm view
// lookup is an in-memory set walk — orders of magnitude cheaper than
// re-running the join.

#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/spatial_join.h"
#include "core/spatial_partitioner.h"
#include "exec/operator.h"
#include "storage/tuple.h"

namespace pbsm {

/// One materialized join view over two stored relations.
///
/// Build() runs the base join once (through the SpatialJoin facade) and
/// snapshots per-side OID -> MBR maps plus per-tile OID lists over a
/// private tile grid. Insert(side, oid, tuple) then joins ONLY the new
/// tuple against the counterpart entries of the tiles its MBR overlaps —
/// the PBSM filter in miniature — de-duplicated by the reference-corner
/// rule (a candidate pair is counted only in the tile holding the
/// intersection rectangle's low corner, exactly one of the shared tiles,
/// clamping included), with the exact predicate evaluated as pred(r, s).
/// Delete(side, oid) removes the tuple's entry and every view pair it
/// participates in (an ordered range erase on the R side, a reverse
/// adjacency on the S side).
///
/// The caller owns the heaps and appends tuples BEFORE calling Insert
/// (heaps are append-only, so deletes are logical: the view and the
/// caller's catalog forget the OID, the record stays on disk). All
/// mutators and readers are serialized by an internal mutex.
class MaterializedJoinView {
 public:
  struct Config {
    std::string name;
    SpatialPredicate predicate = SpatialPredicate::kIntersects;
    /// Tile grid of the delta joins (independent of the base join's).
    uint32_t num_tiles = 256;
    /// Method/options of the initial build; sink and window are ignored.
    JoinSpec base;
  };

  enum class Side { kR, kS };

  /// Runs the base join and snapshots the maintenance state. The heaps
  /// behind `r` and `s` must outlive the view.
  static Result<std::unique_ptr<MaterializedJoinView>> Build(
      BufferPool* pool, const JoinInput& r, const JoinInput& s,
      Config config);

  /// Joins the (already appended) tuple at `oid` into the view.
  /// InvalidArgument if the OID is already present on that side.
  Status Insert(Side side, Oid oid, const Tuple& tuple);

  /// Removes the tuple and its pairs. NotFound for unknown OIDs.
  Status Delete(Side side, Oid oid);

  const std::string& name() const { return config_.name; }
  const Config& config() const { return config_; }

  uint64_t num_pairs() const;
  uint64_t num_r() const;
  uint64_t num_s() const;

  /// Streams the current pairs in ascending (OID_R, OID_S) order.
  void Emit(const ResultSink& sink) const;
  /// Snapshot of the current pairs, ascending.
  std::vector<OidPair> Pairs() const;

 private:
  MaterializedJoinView(Config config, BufferPool* pool, const JoinInput& r,
                       const JoinInput& s);

  Status DeltaJoin(Side side, uint64_t oid, const Tuple& tuple,
                   const Rect& mbr);

  const Config config_;
  BufferPool* const pool_;
  const JoinInput r_;
  const JoinInput s_;
  std::optional<SpatialPartitioner> part_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Rect> r_mbrs_;
  std::unordered_map<uint64_t, Rect> s_mbrs_;
  std::vector<std::vector<uint64_t>> r_tiles_;
  std::vector<std::vector<uint64_t>> s_tiles_;
  /// The view itself, ordered for range erases and sorted emission.
  std::set<std::pair<uint64_t, uint64_t>> pairs_;
  /// Reverse adjacency: s OID -> r OIDs it pairs with (S-side deletes).
  std::unordered_map<uint64_t, std::vector<uint64_t>> s_to_r_;
  std::vector<TileAssignment> tiles_scratch_;
};

}  // namespace pbsm

#endif  // PBSM_EXEC_VIEW_MAINTAINER_H_
