#include "geom/geometry.h"

#include <cstring>

#include "common/logging.h"

namespace pbsm {

namespace {

void AppendRaw(std::string* out, const void* p, size_t n) {
  out->append(reinterpret_cast<const char*>(p), n);
}

template <typename T>
bool ReadRaw(const uint8_t* data, size_t size, size_t* off, T* out) {
  if (*off + sizeof(T) > size) return false;
  std::memcpy(out, data + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

}  // namespace

Geometry::Geometry(GeometryType type, std::vector<std::vector<Point>> rings)
    : type_(type), rings_(std::move(rings)) {
  for (const auto& ring : rings_) {
    for (const Point& p : ring) mbr_.Expand(p);
  }
}

Geometry Geometry::MakePoint(const Point& p) {
  return Geometry(GeometryType::kPoint, {{p}});
}

Geometry Geometry::MakePolyline(std::vector<Point> pts) {
  PBSM_CHECK(pts.size() >= 2) << "polyline needs >= 2 vertices";
  std::vector<std::vector<Point>> rings;
  rings.push_back(std::move(pts));
  return Geometry(GeometryType::kPolyline, std::move(rings));
}

Geometry Geometry::MakePolygon(std::vector<std::vector<Point>> rings) {
  PBSM_CHECK(!rings.empty()) << "polygon needs an outer ring";
  for (const auto& ring : rings) {
    PBSM_CHECK(ring.size() >= 3) << "polygon ring needs >= 3 vertices";
  }
  return Geometry(GeometryType::kPolygon, std::move(rings));
}

size_t Geometry::num_points() const {
  size_t n = 0;
  for (const auto& ring : rings_) n += ring.size();
  return n;
}

void Geometry::CollectSegments(std::vector<Segment>* out) const {
  for (const auto& ring : rings_) {
    if (ring.size() < 2) continue;
    for (size_t i = 0; i + 1 < ring.size(); ++i) {
      out->push_back(Segment{ring[i], ring[i + 1]});
    }
    if (type_ == GeometryType::kPolygon) {
      out->push_back(Segment{ring.back(), ring.front()});
    }
  }
}

size_t Geometry::SerializedSize() const {
  size_t n = sizeof(uint8_t) + sizeof(uint32_t);
  for (const auto& ring : rings_) {
    n += sizeof(uint32_t) + ring.size() * sizeof(Point);
  }
  return n;
}

void Geometry::AppendTo(std::string* out) const {
  const uint8_t type = static_cast<uint8_t>(type_);
  AppendRaw(out, &type, sizeof(type));
  const uint32_t nrings = static_cast<uint32_t>(rings_.size());
  AppendRaw(out, &nrings, sizeof(nrings));
  for (const auto& ring : rings_) {
    const uint32_t npts = static_cast<uint32_t>(ring.size());
    AppendRaw(out, &npts, sizeof(npts));
    AppendRaw(out, ring.data(), ring.size() * sizeof(Point));
  }
}

Result<Geometry> Geometry::Parse(const uint8_t* data, size_t size,
                                 size_t* consumed) {
  size_t off = 0;
  uint8_t type_raw = 0;
  uint32_t nrings = 0;
  if (!ReadRaw(data, size, &off, &type_raw) ||
      !ReadRaw(data, size, &off, &nrings)) {
    return Status::Corruption("geometry header truncated");
  }
  if (type_raw < 1 || type_raw > 3) {
    return Status::Corruption("bad geometry type tag");
  }
  if (nrings == 0 || nrings > (1u << 20)) {
    return Status::Corruption("bad geometry ring count");
  }
  std::vector<std::vector<Point>> rings;
  rings.reserve(nrings);
  for (uint32_t r = 0; r < nrings; ++r) {
    uint32_t npts = 0;
    if (!ReadRaw(data, size, &off, &npts)) {
      return Status::Corruption("geometry ring header truncated");
    }
    const size_t bytes = static_cast<size_t>(npts) * sizeof(Point);
    if (off + bytes > size) {
      return Status::Corruption("geometry ring data truncated");
    }
    std::vector<Point> ring(npts);
    std::memcpy(ring.data(), data + off, bytes);
    off += bytes;
    rings.push_back(std::move(ring));
  }
  *consumed = off;
  return Geometry(static_cast<GeometryType>(type_raw), std::move(rings));
}

std::string Geometry::ToWkt() const {
  auto append_ring = [](std::string* out, const std::vector<Point>& ring,
                        bool close) {
    out->push_back('(');
    for (size_t i = 0; i < ring.size(); ++i) {
      if (i > 0) out->append(", ");
      out->append(std::to_string(ring[i].x));
      out->push_back(' ');
      out->append(std::to_string(ring[i].y));
    }
    if (close && !ring.empty()) {
      out->append(", ");
      out->append(std::to_string(ring[0].x));
      out->push_back(' ');
      out->append(std::to_string(ring[0].y));
    }
    out->push_back(')');
  };

  std::string out;
  switch (type_) {
    case GeometryType::kPoint:
      out = "POINT (";
      out.append(std::to_string(rings_[0][0].x));
      out.push_back(' ');
      out.append(std::to_string(rings_[0][0].y));
      out.push_back(')');
      break;
    case GeometryType::kPolyline:
      out = "LINESTRING ";
      append_ring(&out, rings_[0], /*close=*/false);
      break;
    case GeometryType::kPolygon: {
      out = "POLYGON (";
      for (size_t r = 0; r < rings_.size(); ++r) {
        if (r > 0) out.append(", ");
        append_ring(&out, rings_[r], /*close=*/true);
      }
      out.push_back(')');
      break;
    }
  }
  return out;
}

}  // namespace pbsm
