#ifndef PBSM_GEOM_GEOMETRY_H_
#define PBSM_GEOM_GEOMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace pbsm {

/// Kinds of spatial feature stored in a tuple's spatial attribute.
enum class GeometryType : uint8_t {
  kPoint = 1,
  kPolyline = 2,  ///< Open chain of >= 2 vertices (roads, rivers, rails).
  kPolygon = 3,   ///< Outer ring plus zero or more hole rings
                  ///< (the paper's "swiss-cheese polygon").
};

/// A spatial feature: point, polyline, or polygon-with-holes.
///
/// Representation: a list of vertex rings.
///  * kPoint     — one ring with exactly one vertex.
///  * kPolyline  — one ring, an *open* vertex chain.
///  * kPolygon   — ring 0 is the outer boundary, rings 1..n are holes; rings
///                 are stored without the repeated closing vertex and are
///                 implicitly closed.
///
/// Geometries are immutable after construction; the MBR is computed once.
class Geometry {
 public:
  /// Constructs an empty point at the origin (needed by containers only).
  Geometry() : Geometry(MakePoint(Point{0, 0})) {}

  static Geometry MakePoint(const Point& p);
  /// Precondition: pts.size() >= 2.
  static Geometry MakePolyline(std::vector<Point> pts);
  /// Precondition: rings non-empty, every ring has >= 3 vertices.
  static Geometry MakePolygon(std::vector<std::vector<Point>> rings);

  GeometryType type() const { return type_; }
  const Rect& Mbr() const { return mbr_; }
  const std::vector<std::vector<Point>>& rings() const { return rings_; }

  /// Total vertex count across all rings.
  size_t num_points() const;
  /// Number of hole rings (0 unless kPolygon).
  size_t num_holes() const {
    return type_ == GeometryType::kPolygon ? rings_.size() - 1 : 0;
  }

  /// Appends every boundary segment to `out`. For polygons the implicit
  /// closing segment of each ring is included; points contribute nothing.
  void CollectSegments(std::vector<Segment>* out) const;

  /// Appends the serialized form (type, ring table, vertices) to `out`.
  void AppendTo(std::string* out) const;
  /// Bytes AppendTo will produce.
  size_t SerializedSize() const;
  /// Parses one geometry from `data`; sets `*consumed` to bytes read.
  static Result<Geometry> Parse(const uint8_t* data, size_t size,
                                size_t* consumed);

  /// WKT-style rendering, e.g. "LINESTRING (0 0, 1 1)".
  std::string ToWkt() const;

  friend bool operator==(const Geometry& a, const Geometry& b) {
    return a.type_ == b.type_ && a.rings_ == b.rings_;
  }

 private:
  Geometry(GeometryType type, std::vector<std::vector<Point>> rings);

  GeometryType type_;
  std::vector<std::vector<Point>> rings_;
  Rect mbr_;
};

}  // namespace pbsm

#endif  // PBSM_GEOM_GEOMETRY_H_
