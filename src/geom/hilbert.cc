#include "geom/hilbert.h"

#include <algorithm>

#include "common/logging.h"

namespace pbsm {

uint64_t HilbertD2XY(uint32_t order, uint32_t x, uint32_t y) {
  PBSM_CHECK(order <= 31);
  uint64_t rx, ry, d = 0;
  for (uint64_t s = 1ULL << (order - 1); s > 0; s >>= 1) {
    rx = (x & s) > 0 ? 1 : 0;
    ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = static_cast<uint32_t>(s - 1 - x);
        y = static_cast<uint32_t>(s - 1 - y);
      }
      std::swap(x, y);
    }
  }
  return d;
}

uint64_t ZOrderKey(uint32_t order, uint32_t x, uint32_t y) {
  PBSM_CHECK(order <= 31);
  uint64_t key = 0;
  for (uint32_t i = 0; i < order; ++i) {
    key |= (static_cast<uint64_t>(x >> i) & 1ULL) << (2 * i);
    key |= (static_cast<uint64_t>(y >> i) & 1ULL) << (2 * i + 1);
  }
  return key;
}

SpaceFillingCurve::SpaceFillingCurve(Kind kind, const Rect& universe,
                                     uint32_t order)
    : kind_(kind), universe_(universe), order_(order) {
  PBSM_CHECK(!universe.empty()) << "curve needs a non-empty universe";
  PBSM_CHECK(order >= 1 && order <= 31);
  const double cells = static_cast<double>(1ULL << order);
  x_scale_ = universe_.width() > 0 ? cells / universe_.width() : 0.0;
  y_scale_ = universe_.height() > 0 ? cells / universe_.height() : 0.0;
}

uint64_t SpaceFillingCurve::Key(const Point& p) const {
  const uint32_t max_cell = (1u << order_) - 1;
  auto to_cell = [max_cell](double v, double lo, double scale) {
    const double c = (v - lo) * scale;
    if (c <= 0) return 0u;
    const uint32_t cell = static_cast<uint32_t>(c);
    return std::min(cell, max_cell);
  };
  const uint32_t cx = to_cell(p.x, universe_.xlo, x_scale_);
  const uint32_t cy = to_cell(p.y, universe_.ylo, y_scale_);
  return kind_ == Kind::kHilbert ? HilbertD2XY(order_, cx, cy)
                                 : ZOrderKey(order_, cx, cy);
}

}  // namespace pbsm
