#ifndef PBSM_GEOM_HILBERT_H_
#define PBSM_GEOM_HILBERT_H_

#include <cstdint>

#include "geom/point.h"
#include "geom/rect.h"

namespace pbsm {

/// Space-filling curves used for spatial sorting (bulk loading, clustering).
///
/// Both curves map a 2-D cell on a 2^order x 2^order grid to a 1-D key.
/// `order` is the number of bits per dimension (<= 31).

/// Hilbert curve distance of grid cell (x, y). Precondition: x, y < 2^order.
uint64_t HilbertD2XY(uint32_t order, uint32_t x, uint32_t y);

/// Z-order (Morton) key of grid cell (x, y): bit-interleave of x and y.
uint64_t ZOrderKey(uint32_t order, uint32_t x, uint32_t y);

/// Maps continuous coordinates to curve keys over a bounded universe.
class SpaceFillingCurve {
 public:
  enum class Kind { kHilbert, kZOrder };

  /// Grid resolution is 2^order cells per side over `universe`.
  SpaceFillingCurve(Kind kind, const Rect& universe, uint32_t order = 16);

  /// Curve key of the grid cell containing `p` (clamped to the universe).
  uint64_t Key(const Point& p) const;

  /// Curve key of the center of `r`; the paper's bulk-load sort key.
  uint64_t Key(const Rect& r) const { return Key(r.Center()); }

 private:
  Kind kind_;
  Rect universe_;
  uint32_t order_;
  double x_scale_;
  double y_scale_;
};

}  // namespace pbsm

#endif  // PBSM_GEOM_HILBERT_H_
