#include "geom/mer.h"

#include <vector>

#include "geom/predicates.h"
#include "geom/segment.h"

namespace pbsm {

bool RectInsidePolygon(const Rect& candidate, const Geometry& polygon) {
  if (candidate.empty() || polygon.type() != GeometryType::kPolygon) {
    return false;
  }
  if (!polygon.Mbr().Contains(candidate)) return false;
  const Point corners[4] = {{candidate.xlo, candidate.ylo},
                            {candidate.xhi, candidate.ylo},
                            {candidate.xhi, candidate.yhi},
                            {candidate.xlo, candidate.yhi}};
  for (const Point& c : corners) {
    if (!PointInPolygon(c, polygon)) return false;
  }
  // No boundary segment of the polygon (outer ring or hole) may reach into
  // the rectangle; this also rejects holes that sit wholly inside it.
  std::vector<Segment> boundary;
  polygon.CollectSegments(&boundary);
  for (const Segment& s : boundary) {
    if (SegmentIntersectsRect(s, candidate)) return false;
  }
  return true;
}

Rect ComputeMer(const Geometry& polygon) {
  if (polygon.type() != GeometryType::kPolygon) return Rect();
  const Rect mbr = polygon.Mbr();

  // Candidate anchors: ring centroid first, then vertex-pair midpoints.
  std::vector<Point> anchors;
  const auto& outer = polygon.rings()[0];
  Point centroid{0, 0};
  for (const Point& p : outer) {
    centroid.x += p.x;
    centroid.y += p.y;
  }
  centroid.x /= static_cast<double>(outer.size());
  centroid.y /= static_cast<double>(outer.size());
  anchors.push_back(centroid);
  for (size_t i = 0; i + 2 < outer.size(); i += 2) {
    anchors.push_back(Point{(outer[i].x + outer[i + 2].x) / 2,
                            (outer[i].y + outer[i + 2].y) / 2});
  }

  for (const Point& anchor : anchors) {
    if (!PointInPolygon(anchor, polygon)) continue;
    // Binary search the largest shrink factor t such that the MBR scaled
    // toward the anchor stays inside the polygon.
    auto rect_at = [&](double t) {
      return Rect(anchor.x - t * (anchor.x - mbr.xlo),
                  anchor.y - t * (anchor.y - mbr.ylo),
                  anchor.x + t * (mbr.xhi - anchor.x),
                  anchor.y + t * (mbr.yhi - anchor.y));
    };
    double lo = 0.0, hi = 1.0, best = -1.0;
    if (RectInsidePolygon(rect_at(1.0), polygon)) {
      return rect_at(1.0);
    }
    for (int iter = 0; iter < 24; ++iter) {
      const double mid = (lo + hi) / 2;
      if (RectInsidePolygon(rect_at(mid), polygon)) {
        best = mid;
        lo = mid;
      } else {
        hi = mid;
      }
    }
    if (best > 0.0) return rect_at(best);
  }
  return Rect();
}

}  // namespace pbsm
