#ifndef PBSM_GEOM_MER_H_
#define PBSM_GEOM_MER_H_

#include "geom/geometry.h"
#include "geom/rect.h"

namespace pbsm {

/// Computes a *maximal enclosed rectangle* (MER) for a polygon: an
/// axis-aligned rectangle fully contained in the polygon's area.
///
/// This implements the BKSS94 refinement accelerator the paper cites in
/// §4.4: storing an MER next to the MBR lets a containment refinement
/// short-circuit — if MBR(inner) fits inside MER(outer), `inner` is
/// guaranteed to be contained without running the exact test.
///
/// The rectangle is found by shrinking the MBR toward the polygon's interior
/// anchor point with a binary search, validating candidates by corner and
/// edge-sample containment plus a boundary-intersection check. The result is
/// conservative (always enclosed) but not necessarily maximum-area; an empty
/// Rect is returned when no axis-aligned rectangle around the anchor fits
/// (e.g. the anchor falls outside, or the polygon is degenerate).
Rect ComputeMer(const Geometry& polygon);

/// True when `candidate` lies fully inside `polygon`'s area (holes
/// respected). Exact up to the segment predicates.
bool RectInsidePolygon(const Rect& candidate, const Geometry& polygon);

}  // namespace pbsm

#endif  // PBSM_GEOM_MER_H_
