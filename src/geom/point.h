#ifndef PBSM_GEOM_POINT_H_
#define PBSM_GEOM_POINT_H_

#include <cmath>

namespace pbsm {

/// A point in the 2-D plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
};

/// Euclidean distance between `a` and `b`.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace pbsm

#endif  // PBSM_GEOM_POINT_H_
