#include "geom/predicates.h"

#include <algorithm>

#include "common/logging.h"

namespace pbsm {

namespace {

bool PointOnRingBoundary(const Point& p, const std::vector<Point>& ring) {
  const size_t n = ring.size();
  for (size_t i = 0; i < n; ++i) {
    if (PointOnSegment(p, Segment{ring[i], ring[(i + 1) % n]})) return true;
  }
  return false;
}

/// Ray-casting crossing parity; boundary handled by the caller.
bool PointInRingInterior(const Point& p, const std::vector<Point>& ring) {
  bool inside = false;
  const size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring[i];
    const Point& b = ring[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

/// Naive all-pairs red/blue segment intersection with MBR quick reject.
bool SegmentSetsIntersectNaive(const std::vector<Segment>& red,
                               const std::vector<Segment>& blue) {
  for (const Segment& r : red) {
    const Rect rm = r.Mbr();
    for (const Segment& b : blue) {
      if (!rm.Intersects(b.Mbr())) continue;
      if (SegmentsIntersect(r, b)) return true;
    }
  }
  return false;
}

struct SweepSeg {
  Rect mbr;
  const Segment* seg;
};

/// Forward plane sweep (Brinkhoff et al. style): both sides sorted by
/// MBR.xlo; repeatedly take the head with the smaller xlo and scan the other
/// side while its xlo is within the head's x-extent.
bool SegmentSetsIntersectSweep(const std::vector<Segment>& red,
                               const std::vector<Segment>& blue) {
  std::vector<SweepSeg> r(red.size());
  std::vector<SweepSeg> b(blue.size());
  for (size_t i = 0; i < red.size(); ++i) r[i] = {red[i].Mbr(), &red[i]};
  for (size_t i = 0; i < blue.size(); ++i) b[i] = {blue[i].Mbr(), &blue[i]};
  auto by_xlo = [](const SweepSeg& a, const SweepSeg& c) {
    return a.mbr.xlo < c.mbr.xlo;
  };
  std::sort(r.begin(), r.end(), by_xlo);
  std::sort(b.begin(), b.end(), by_xlo);

  auto scan = [](const SweepSeg& head, const std::vector<SweepSeg>& other,
                 size_t from) {
    for (size_t k = from;
         k < other.size() && other[k].mbr.xlo <= head.mbr.xhi; ++k) {
      if (head.mbr.ylo <= other[k].mbr.yhi &&
          other[k].mbr.ylo <= head.mbr.yhi &&
          SegmentsIntersect(*head.seg, *other[k].seg)) {
        return true;
      }
    }
    return false;
  };

  size_t i = 0, j = 0;
  while (i < r.size() && j < b.size()) {
    if (r[i].mbr.xlo <= b[j].mbr.xlo) {
      if (scan(r[i], b, j)) return true;
      ++i;
    } else {
      if (scan(b[j], r, i)) return true;
      ++j;
    }
  }
  return false;
}

/// One representative vertex of each geometry (first vertex of first ring).
const Point& AnyVertex(const Geometry& g) { return g.rings()[0][0]; }

bool PolygonBoundariesIntersect(const Geometry& a, const Geometry& b,
                                SegmentTestMode mode) {
  std::vector<Segment> sa, sb;
  a.CollectSegments(&sa);
  b.CollectSegments(&sb);
  return SegmentSetsIntersect(sa, sb, mode);
}

}  // namespace

bool PointInRing(const Point& p, const std::vector<Point>& ring) {
  PBSM_CHECK(ring.size() >= 3) << "ring needs >= 3 vertices";
  if (PointOnRingBoundary(p, ring)) return true;
  return PointInRingInterior(p, ring);
}

bool PointInPolygon(const Point& p, const Geometry& polygon) {
  PBSM_CHECK(polygon.type() == GeometryType::kPolygon);
  const auto& rings = polygon.rings();
  if (!PointInRing(p, rings[0])) return false;
  for (size_t h = 1; h < rings.size(); ++h) {
    // Strictly inside a hole => outside the polygon. On the hole boundary
    // still counts as inside the polygon.
    if (!PointOnRingBoundary(p, rings[h]) &&
        PointInRingInterior(p, rings[h])) {
      return false;
    }
  }
  return true;
}

bool SegmentSetsIntersect(const std::vector<Segment>& red,
                          const std::vector<Segment>& blue,
                          SegmentTestMode mode) {
  if (red.empty() || blue.empty()) return false;
  switch (mode) {
    case SegmentTestMode::kNaive:
      return SegmentSetsIntersectNaive(red, blue);
    case SegmentTestMode::kPlaneSweep:
      return SegmentSetsIntersectSweep(red, blue);
  }
  return false;
}

bool Intersects(const Geometry& a, const Geometry& b, SegmentTestMode mode) {
  if (!a.Mbr().Intersects(b.Mbr())) return false;

  const GeometryType ta = a.type();
  const GeometryType tb = b.type();

  // Normalize so the "simpler" type is first.
  if (static_cast<int>(ta) > static_cast<int>(tb)) {
    return Intersects(b, a, mode);
  }

  if (ta == GeometryType::kPoint) {
    const Point& p = AnyVertex(a);
    switch (tb) {
      case GeometryType::kPoint:
        return p == AnyVertex(b);
      case GeometryType::kPolyline: {
        const auto& chain = b.rings()[0];
        for (size_t i = 0; i + 1 < chain.size(); ++i) {
          if (PointOnSegment(p, Segment{chain[i], chain[i + 1]})) return true;
        }
        return false;
      }
      case GeometryType::kPolygon:
        return PointInPolygon(p, b);
    }
  }

  if (ta == GeometryType::kPolyline && tb == GeometryType::kPolyline) {
    std::vector<Segment> sa, sb;
    a.CollectSegments(&sa);
    b.CollectSegments(&sb);
    return SegmentSetsIntersect(sa, sb, mode);
  }

  if (ta == GeometryType::kPolyline && tb == GeometryType::kPolygon) {
    if (PolygonBoundariesIntersect(a, b, mode)) return true;
    // No boundary contact: the polyline is either entirely inside or
    // entirely outside the polygon — one vertex decides.
    return PointInPolygon(AnyVertex(a), b);
  }

  // Polygon x polygon.
  if (PolygonBoundariesIntersect(a, b, mode)) return true;
  // Disjoint boundaries: either one contains the other or they are disjoint.
  return PointInPolygon(AnyVertex(a), b) || PointInPolygon(AnyVertex(b), a);
}

void BoundaryIntersectionPoints(const Geometry& a, const Geometry& b,
                                size_t max_points, std::vector<Point>* out) {
  if (max_points == 0 || !a.Mbr().Intersects(b.Mbr())) return;
  std::vector<Segment> sa, sb;
  a.CollectSegments(&sa);
  b.CollectSegments(&sb);
  if (sa.empty() || sb.empty()) return;

  std::vector<SweepSeg> r(sa.size());
  std::vector<SweepSeg> s(sb.size());
  for (size_t i = 0; i < sa.size(); ++i) r[i] = {sa[i].Mbr(), &sa[i]};
  for (size_t i = 0; i < sb.size(); ++i) s[i] = {sb[i].Mbr(), &sb[i]};
  auto by_xlo = [](const SweepSeg& x, const SweepSeg& y) {
    return x.mbr.xlo < y.mbr.xlo;
  };
  std::sort(r.begin(), r.end(), by_xlo);
  std::sort(s.begin(), s.end(), by_xlo);

  auto scan = [&](const SweepSeg& head, const std::vector<SweepSeg>& other,
                  size_t from) {
    for (size_t k = from;
         k < other.size() && other[k].mbr.xlo <= head.mbr.xhi; ++k) {
      if (out->size() >= max_points) return;
      if (head.mbr.ylo > other[k].mbr.yhi ||
          other[k].mbr.ylo > head.mbr.yhi) {
        continue;
      }
      Point witness;
      if (SegmentIntersectionPoint(*head.seg, *other[k].seg, &witness)) {
        out->push_back(witness);
      }
    }
  };
  size_t i = 0, j = 0;
  while (i < r.size() && j < s.size() && out->size() < max_points) {
    if (r[i].mbr.xlo <= s[j].mbr.xlo) {
      scan(r[i], s, j);
      ++i;
    } else {
      scan(s[j], r, i);
      ++j;
    }
  }
}

bool Contains(const Geometry& outer, const Geometry& inner,
              SegmentTestMode mode) {
  if (outer.type() != GeometryType::kPolygon) return false;
  if (!outer.Mbr().Contains(inner.Mbr())) return false;

  if (inner.type() == GeometryType::kPoint) {
    return PointInPolygon(AnyVertex(inner), outer);
  }

  std::vector<Segment> inner_segs, outer_segs;
  inner.CollectSegments(&inner_segs);
  outer.CollectSegments(&outer_segs);
  const bool boundaries_touch =
      SegmentSetsIntersect(inner_segs, outer_segs, mode);

  if (boundaries_touch) {
    // Conservative fallback: with boundary contact, require every vertex and
    // every edge midpoint of `inner` to lie in `outer`. This accepts inner
    // geometries that touch the boundary from the inside and rejects any
    // proper crossing (a crossing leaves some midpoint or vertex outside for
    // non-degenerate inputs).
    for (const auto& ring : inner.rings()) {
      for (const Point& p : ring) {
        if (!PointInPolygon(p, outer)) return false;
      }
    }
    for (const Segment& s : inner_segs) {
      const Point mid{(s.a.x + s.b.x) / 2, (s.a.y + s.b.y) / 2};
      if (!PointInPolygon(mid, outer)) return false;
    }
  } else {
    // Boundaries disjoint: `inner` is wholly inside or wholly outside.
    if (mode == SegmentTestMode::kNaive) {
      // The unoptimized Paradise-style path checks every vertex.
      for (const auto& ring : inner.rings()) {
        for (const Point& p : ring) {
          if (!PointInPolygon(p, outer)) return false;
        }
      }
    } else {
      if (!PointInPolygon(AnyVertex(inner), outer)) return false;
    }
  }

  // A hole of `outer` strictly inside `inner`'s area would carve it.
  if (inner.type() == GeometryType::kPolygon) {
    const auto& outer_rings = outer.rings();
    for (size_t h = 1; h < outer_rings.size(); ++h) {
      if (PointInPolygon(outer_rings[h][0], inner) &&
          !PointOnRingBoundary(outer_rings[h][0], inner.rings()[0])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace pbsm
