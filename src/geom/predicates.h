#ifndef PBSM_GEOM_PREDICATES_H_
#define PBSM_GEOM_PREDICATES_H_

#include <vector>

#include "geom/geometry.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace pbsm {

/// How the exact refinement predicates test segment sets against each other.
enum class SegmentTestMode {
  kNaive,       ///< All-pairs O(n*m) — the paper's unoptimized Paradise path.
  kPlaneSweep,  ///< Forward plane sweep over x-sorted segments.
};

/// True when `p` lies inside or on the boundary of the closed ring
/// (implicitly closed vertex list, >= 3 vertices).
bool PointInRing(const Point& p, const std::vector<Point>& ring);

/// True when `p` lies inside `polygon` (outer ring minus holes, boundary
/// inclusive — a point on a hole boundary still counts as inside).
/// Precondition: polygon.type() == kPolygon.
bool PointInPolygon(const Point& p, const Geometry& polygon);

/// True when at least one red segment intersects at least one blue segment.
bool SegmentSetsIntersect(const std::vector<Segment>& red,
                          const std::vector<Segment>& blue,
                          SegmentTestMode mode);

/// Exact "geometries share at least one point" predicate. Supports every
/// type pair. `mode` selects the segment-set testing algorithm.
bool Intersects(const Geometry& a, const Geometry& b,
                SegmentTestMode mode = SegmentTestMode::kPlaneSweep);

/// Appends witness points where the boundary segments of `a` and `b`
/// intersect (at most one witness per segment pair, at most `max_points`
/// total). Plane-sweep based; used by overlay-style queries that need the
/// crossing locations, not just the boolean.
void BoundaryIntersectionPoints(const Geometry& a, const Geometry& b,
                                size_t max_points, std::vector<Point>* out);

/// Exact "every point of `inner` lies in `outer`" predicate.
/// `outer` must be a polygon; `inner` may be any type. Boundary contact is
/// allowed. A hole of `outer` poking strictly into `inner` breaks containment.
bool Contains(const Geometry& outer, const Geometry& inner,
              SegmentTestMode mode = SegmentTestMode::kPlaneSweep);

}  // namespace pbsm

#endif  // PBSM_GEOM_PREDICATES_H_
