#ifndef PBSM_GEOM_RECT_H_
#define PBSM_GEOM_RECT_H_

#include <algorithm>
#include <limits>

#include "geom/point.h"

namespace pbsm {

/// An axis-aligned rectangle; the library's minimum bounding rectangle (MBR).
///
/// The default-constructed Rect is *empty* (inverted bounds); unioning a point
/// or rectangle into an empty Rect yields that point/rectangle. All predicates
/// treat boundaries as closed: rectangles that merely touch do intersect,
/// matching the paper's filter-step semantics (touching MBRs must survive the
/// filter because the exact geometries may still intersect).
struct Rect {
  double xlo = std::numeric_limits<double>::infinity();
  double ylo = std::numeric_limits<double>::infinity();
  double xhi = -std::numeric_limits<double>::infinity();
  double yhi = -std::numeric_limits<double>::infinity();

  Rect() = default;
  Rect(double x_lo, double y_lo, double x_hi, double y_hi)
      : xlo(x_lo), ylo(y_lo), xhi(x_hi), yhi(y_hi) {}

  /// Rectangle covering exactly one point.
  static Rect FromPoint(const Point& p) { return Rect(p.x, p.y, p.x, p.y); }

  /// True when the rectangle contains no points (inverted bounds).
  bool empty() const { return xlo > xhi || ylo > yhi; }

  double width() const { return empty() ? 0.0 : xhi - xlo; }
  double height() const { return empty() ? 0.0 : yhi - ylo; }
  double Area() const { return width() * height(); }
  /// Half-perimeter; the R*-tree margin metric.
  double Margin() const { return width() + height(); }

  Point Center() const { return Point{(xlo + xhi) / 2, (ylo + yhi) / 2}; }

  /// Closed-boundary intersection test.
  bool Intersects(const Rect& o) const {
    if (empty() || o.empty()) return false;
    return xlo <= o.xhi && o.xlo <= xhi && ylo <= o.yhi && o.ylo <= yhi;
  }

  /// True when `o` lies entirely inside this rectangle (boundaries allowed).
  bool Contains(const Rect& o) const {
    if (empty() || o.empty()) return false;
    return xlo <= o.xlo && o.xhi <= xhi && ylo <= o.ylo && o.yhi <= yhi;
  }

  bool Contains(const Point& p) const {
    return !empty() && xlo <= p.x && p.x <= xhi && ylo <= p.y && p.y <= yhi;
  }

  /// Grows this rectangle to cover `p`.
  void Expand(const Point& p) {
    xlo = std::min(xlo, p.x);
    ylo = std::min(ylo, p.y);
    xhi = std::max(xhi, p.x);
    yhi = std::max(yhi, p.y);
  }

  /// Grows this rectangle to cover `o`.
  void Expand(const Rect& o) {
    if (o.empty()) return;
    xlo = std::min(xlo, o.xlo);
    ylo = std::min(ylo, o.ylo);
    xhi = std::max(xhi, o.xhi);
    yhi = std::max(yhi, o.yhi);
  }

  /// Smallest rectangle covering both inputs.
  static Rect Union(const Rect& a, const Rect& b) {
    Rect r = a;
    r.Expand(b);
    return r;
  }

  /// Intersection of `a` and `b`; empty Rect when they do not intersect.
  static Rect Intersection(const Rect& a, const Rect& b) {
    Rect r(std::max(a.xlo, b.xlo), std::max(a.ylo, b.ylo),
           std::min(a.xhi, b.xhi), std::min(a.yhi, b.yhi));
    return r;
  }

  /// Area of overlap between `a` and `b` (0 when disjoint).
  static double OverlapArea(const Rect& a, const Rect& b) {
    const Rect i = Intersection(a, b);
    return i.empty() ? 0.0 : i.Area();
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    if (a.empty() && b.empty()) return true;
    return a.xlo == b.xlo && a.ylo == b.ylo && a.xhi == b.xhi &&
           a.yhi == b.yhi;
  }
  friend bool operator!=(const Rect& a, const Rect& b) { return !(a == b); }
};

}  // namespace pbsm

#endif  // PBSM_GEOM_RECT_H_
