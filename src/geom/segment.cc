#include "geom/segment.h"

#include <algorithm>

namespace pbsm {

int Orientation(const Point& a, const Point& b, const Point& c) {
  // Evaluated in long double to push the exactness threshold well past the
  // coordinate magnitudes produced by the data generators.
  const long double cross =
      (static_cast<long double>(b.x) - a.x) *
          (static_cast<long double>(c.y) - a.y) -
      (static_cast<long double>(b.y) - a.y) *
          (static_cast<long double>(c.x) - a.x);
  if (cross > 0) return 1;
  if (cross < 0) return -1;
  return 0;
}

bool PointOnSegment(const Point& p, const Segment& s) {
  if (Orientation(s.a, s.b, p) != 0) return false;
  return std::min(s.a.x, s.b.x) <= p.x && p.x <= std::max(s.a.x, s.b.x) &&
         std::min(s.a.y, s.b.y) <= p.y && p.y <= std::max(s.a.y, s.b.y);
}

bool SegmentsIntersect(const Segment& s1, const Segment& s2) {
  const int o1 = Orientation(s1.a, s1.b, s2.a);
  const int o2 = Orientation(s1.a, s1.b, s2.b);
  const int o3 = Orientation(s2.a, s2.b, s1.a);
  const int o4 = Orientation(s2.a, s2.b, s1.b);

  if (o1 != o2 && o3 != o4) return true;  // Proper crossing.

  // Collinear / endpoint-touching cases.
  if (o1 == 0 && PointOnSegment(s2.a, s1)) return true;
  if (o2 == 0 && PointOnSegment(s2.b, s1)) return true;
  if (o3 == 0 && PointOnSegment(s1.a, s2)) return true;
  if (o4 == 0 && PointOnSegment(s1.b, s2)) return true;
  return false;
}

bool SegmentIntersectionPoint(const Segment& s1, const Segment& s2,
                              Point* out) {
  if (!SegmentsIntersect(s1, s2)) return false;

  const double d1x = s1.b.x - s1.a.x, d1y = s1.b.y - s1.a.y;
  const double d2x = s2.b.x - s2.a.x, d2y = s2.b.y - s2.a.y;
  const double denom = d1x * d2y - d1y * d2x;
  if (denom != 0.0) {
    // Proper (or endpoint-touching, non-parallel) crossing.
    const double t =
        ((s2.a.x - s1.a.x) * d2y - (s2.a.y - s1.a.y) * d2x) / denom;
    *out = Point{s1.a.x + t * d1x, s1.a.y + t * d1y};
    return true;
  }
  // Collinear overlap: any endpoint lying on the other segment is a
  // witness.
  for (const Point& p : {s2.a, s2.b}) {
    if (PointOnSegment(p, s1)) {
      *out = p;
      return true;
    }
  }
  for (const Point& p : {s1.a, s1.b}) {
    if (PointOnSegment(p, s2)) {
      *out = p;
      return true;
    }
  }
  return false;  // Unreachable for intersecting segments.
}

bool SegmentIntersectsRect(const Segment& s, const Rect& r) {
  if (r.empty()) return false;
  if (!s.Mbr().Intersects(r)) return false;
  // Either endpoint inside suffices.
  if (r.Contains(s.a) || r.Contains(s.b)) return true;
  // Otherwise the segment must cross one of the rectangle's edges.
  const Point p00{r.xlo, r.ylo}, p10{r.xhi, r.ylo};
  const Point p11{r.xhi, r.yhi}, p01{r.xlo, r.yhi};
  return SegmentsIntersect(s, Segment{p00, p10}) ||
         SegmentsIntersect(s, Segment{p10, p11}) ||
         SegmentsIntersect(s, Segment{p11, p01}) ||
         SegmentsIntersect(s, Segment{p01, p00});
}

}  // namespace pbsm
