#ifndef PBSM_GEOM_SEGMENT_H_
#define PBSM_GEOM_SEGMENT_H_

#include "geom/point.h"
#include "geom/rect.h"

namespace pbsm {

/// A closed line segment between two endpoints.
struct Segment {
  Point a;
  Point b;

  Rect Mbr() const {
    Rect r = Rect::FromPoint(a);
    r.Expand(b);
    return r;
  }
};

/// Sign of the signed area of triangle (a, b, c):
/// +1 counter-clockwise, -1 clockwise, 0 collinear.
int Orientation(const Point& a, const Point& b, const Point& c);

/// True when point `p` lies on the closed segment `s`.
bool PointOnSegment(const Point& p, const Segment& s);

/// Closed-segment intersection test (touching endpoints count).
bool SegmentsIntersect(const Segment& s1, const Segment& s2);

/// True when segment `s` has at least one point inside or on `r`.
bool SegmentIntersectsRect(const Segment& s, const Rect& r);

/// Computes a witness point of the intersection of two segments known (or
/// suspected) to intersect. Returns true and writes the point when the
/// segments intersect: the proper crossing point when they cross, or a
/// point of the shared subsegment / the touching endpoint for
/// collinear-overlap and endpoint cases. Returns false when disjoint.
bool SegmentIntersectionPoint(const Segment& s1, const Segment& s2,
                              Point* out);

}  // namespace pbsm

#endif  // PBSM_GEOM_SEGMENT_H_
