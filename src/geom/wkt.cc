#include "geom/wkt.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace pbsm {

namespace {

/// Minimal recursive-descent scanner over the WKT text.
class WktScanner {
 public:
  explicit WktScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  /// Consumes `c` (after whitespace); false if the next char differs.
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Reads a case-insensitive identifier ([A-Za-z]+).
  std::string ReadTag() {
    SkipSpace();
    std::string tag;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      tag.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(text_[pos_]))));
      ++pos_;
    }
    return tag;
  }

  /// Parses one double; false on malformed input.
  bool ReadDouble(double* out) {
    SkipSpace();
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Result<std::vector<Point>> ParsePointList(WktScanner* scan) {
  if (!scan->Consume('(')) {
    return Status::InvalidArgument("WKT: expected '('");
  }
  std::vector<Point> pts;
  while (true) {
    Point p;
    if (!scan->ReadDouble(&p.x) || !scan->ReadDouble(&p.y)) {
      return Status::InvalidArgument("WKT: expected coordinate pair");
    }
    pts.push_back(p);
    if (scan->Consume(',')) continue;
    if (scan->Consume(')')) break;
    return Status::InvalidArgument("WKT: expected ',' or ')'");
  }
  return pts;
}

}  // namespace

Result<Geometry> ParseWkt(std::string_view text) {
  WktScanner scan(text);
  const std::string tag = scan.ReadTag();

  if (tag == "POINT") {
    PBSM_ASSIGN_OR_RETURN(const std::vector<Point> pts,
                          ParsePointList(&scan));
    if (pts.size() != 1) {
      return Status::InvalidArgument("WKT: POINT needs exactly one vertex");
    }
    if (!scan.AtEnd()) {
      return Status::InvalidArgument("WKT: trailing input after POINT");
    }
    return Geometry::MakePoint(pts[0]);
  }

  if (tag == "LINESTRING") {
    PBSM_ASSIGN_OR_RETURN(std::vector<Point> pts, ParsePointList(&scan));
    if (pts.size() < 2) {
      return Status::InvalidArgument("WKT: LINESTRING needs >= 2 vertices");
    }
    if (!scan.AtEnd()) {
      return Status::InvalidArgument("WKT: trailing input after LINESTRING");
    }
    return Geometry::MakePolyline(std::move(pts));
  }

  if (tag == "POLYGON") {
    if (!scan.Consume('(')) {
      return Status::InvalidArgument("WKT: POLYGON needs '(' before rings");
    }
    std::vector<std::vector<Point>> rings;
    while (true) {
      PBSM_ASSIGN_OR_RETURN(std::vector<Point> ring, ParsePointList(&scan));
      // WKT rings repeat the first vertex at the end; our representation
      // closes implicitly, so drop the duplicate.
      if (ring.size() >= 2 && ring.front() == ring.back()) {
        ring.pop_back();
      }
      if (ring.size() < 3) {
        return Status::InvalidArgument(
            "WKT: polygon ring needs >= 3 distinct vertices");
      }
      rings.push_back(std::move(ring));
      if (scan.Consume(',')) continue;
      if (scan.Consume(')')) break;
      return Status::InvalidArgument("WKT: expected ',' or ')' after ring");
    }
    if (!scan.AtEnd()) {
      return Status::InvalidArgument("WKT: trailing input after POLYGON");
    }
    return Geometry::MakePolygon(std::move(rings));
  }

  return Status::InvalidArgument("WKT: unknown geometry tag '" + tag + "'");
}

}  // namespace pbsm
