#ifndef PBSM_GEOM_WKT_H_
#define PBSM_GEOM_WKT_H_

#include <string_view>

#include "common/status.h"
#include "geom/geometry.h"

namespace pbsm {

/// Parses a Well-Known-Text geometry: POINT, LINESTRING, or POLYGON (with
/// holes). The inverse of Geometry::ToWkt().
///
/// Accepted grammar (case-insensitive tags, flexible whitespace):
///   POINT (x y)
///   LINESTRING (x y, x y, ...)            // >= 2 vertices
///   POLYGON ((x y, ...), (x y, ...))      // rings with >= 3 distinct
///                                         // vertices; a repeated closing
///                                         // vertex is accepted and dropped
Result<Geometry> ParseWkt(std::string_view text);

}  // namespace pbsm

#endif  // PBSM_GEOM_WKT_H_
