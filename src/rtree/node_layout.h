#ifndef PBSM_RTREE_NODE_LAYOUT_H_
#define PBSM_RTREE_NODE_LAYOUT_H_

#include <string_view>

namespace pbsm {

/// In-memory node representation of a bulk-loaded R*-tree (the SIMD-ified
/// layouts of arXiv 2309.16913; see DESIGN.md "SIMD-ified index traversal").
///
///  * kAos — no acceleration structure: every node scan parses the 8 KiB
///    page through the BufferPool and runs the entry-array kernel (the
///    pre-ribbon behaviour; also what Insert/Delete-mutated trees fall
///    back to).
///  * kSoa — per-node "ribbons": xlo/xhi/ylo/yhi double lanes in contiguous
///    64-byte-aligned columns, built once at bulk load and owned by the
///    tree, so node scans skip page parsing entirely.
///  * kSoaQuantized — ribbons plus uint16 lanes quantized to the node MBR
///    with expand-outward rounding: a conservative 16-lane prefilter whose
///    survivors are re-verified against the double lanes, so results stay
///    exactly identical to kAos.
///  * kAuto — consult the PBSM_RTREE_LAYOUT environment variable
///    (`auto|aos|soa|quantized`), defaulting to kSoaQuantized.
enum class NodeLayout { kAuto, kAos, kSoa, kSoaQuantized };

/// "aos" / "soa" / "quantized" — used by benches, baselines and logs.
std::string_view NodeLayoutName(NodeLayout layout);

/// Resolves kAuto through the PBSM_RTREE_LAYOUT environment variable
/// (`auto|aos|soa|quantized`; unset or unrecognized -> kSoaQuantized).
/// Non-auto requests pass through unchanged. Read per call so operators and
/// tests can flip the knob without rebuilding resolution caches (same
/// contract as ResolveKernel / PBSM_SIMD).
NodeLayout ResolveNodeLayout(NodeLayout requested);

/// Cache-key tag of a resolved layout, versioned by the ribbon format
/// ("aos" / "soa.v1" / "q16.v1"). The IndexCache keys entries on this so a
/// tree built before a layout-knob change — or before a ribbon format
/// change across binary versions — is never served where a different
/// ribbon is expected. Bump the version suffix whenever the ribbon
/// build/quantization scheme changes semantics.
std::string_view NodeLayoutCacheTag(NodeLayout resolved);

}  // namespace pbsm

#endif  // PBSM_RTREE_NODE_LAYOUT_H_
