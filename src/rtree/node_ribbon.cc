#include "rtree/node_ribbon.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/metrics.h"
#include "rtree/rstar_tree.h"

namespace pbsm {

namespace {

/// Double lanes use the SoaRects padding scheme: capacity rounds n + 4 up
/// to the kSoaPad granule so a 4-wide load from any offset < n stays in
/// bounds, and the tail holds inverted-bound sentinels.
size_t DoubleCap(size_t n) {
  return (n + 4 + kSoaPad - 1) / kSoaPad * kSoaPad;
}

/// Quantized lanes round up to whole 16-lane vectors; tails are masked by
/// the kernels, not sentinel-killed, so any value may sit there.
size_t Q16Cap(size_t n) { return (n + kQ16Pad - 1) / kQ16Pad * kQ16Pad; }

Gauge* RibbonBytesGauge() {
  static Gauge* const g =
      MetricsRegistry::Global().GetGauge("rtree.ribbon.bytes");
  return g;
}

/// Grid cell of an exact lower bound: floor, clamped to the grid. Paired
/// with QHi below this is the conservative (expand-outward) rounding — the
/// affine map (v - base) * scale is monotone non-decreasing in v, so
/// a <= b implies QLo(a) <= QHi(b) and a quantized intersection test can
/// only admit extra entries, never drop true ones.
uint16_t QLo(double v, double base, double scale) {
  const double g = std::floor((v - base) * scale);
  if (!(g > 0.0)) return 0;
  if (g >= 65535.0) return 65535;
  return static_cast<uint16_t>(g);
}

/// Grid cell of an exact upper bound: ceil, clamped to the grid.
uint16_t QHi(double v, double base, double scale) {
  const double g = std::ceil((v - base) * scale);
  if (!(g > 0.0)) return 0;
  if (g >= 65535.0) return 65535;
  return static_cast<uint16_t>(g);
}

}  // namespace

// ---------------------------------------------------------------------------
// Layout knob.
// ---------------------------------------------------------------------------

std::string_view NodeLayoutName(NodeLayout layout) {
  switch (layout) {
    case NodeLayout::kAuto:
      return "auto";
    case NodeLayout::kAos:
      return "aos";
    case NodeLayout::kSoa:
      return "soa";
    case NodeLayout::kSoaQuantized:
      return "quantized";
  }
  return "unknown";
}

NodeLayout ResolveNodeLayout(NodeLayout requested) {
  if (requested != NodeLayout::kAuto) return requested;
  // Read per call (index builds are coarse-grained) so tests and operators
  // can flip the knob without rebuilding resolution caches.
  const char* env = std::getenv("PBSM_RTREE_LAYOUT");
  if (env != nullptr) {
    if (std::strcmp(env, "aos") == 0) return NodeLayout::kAos;
    if (std::strcmp(env, "soa") == 0) return NodeLayout::kSoa;
    if (std::strcmp(env, "quantized") == 0) return NodeLayout::kSoaQuantized;
    // "auto" (or anything else) keeps the default.
  }
  return NodeLayout::kSoaQuantized;
}

std::string_view NodeLayoutCacheTag(NodeLayout resolved) {
  switch (resolved) {
    case NodeLayout::kSoa:
      return "soa.v1";
    case NodeLayout::kSoaQuantized:
      return "q16.v1";
    case NodeLayout::kAos:
    case NodeLayout::kAuto:  // Resolve before tagging; treat as AoS.
      return "aos";
  }
  return "aos";
}

// ---------------------------------------------------------------------------
// NodeRibbon.
// ---------------------------------------------------------------------------

NodeRibbon::~NodeRibbon() { Free(); }

NodeRibbon::NodeRibbon(NodeRibbon&& other) noexcept { *this = std::move(other); }

NodeRibbon& NodeRibbon::operator=(NodeRibbon&& other) noexcept {
  if (this == &other) return *this;
  Free();
  xlo_ = std::exchange(other.xlo_, nullptr);
  xhi_ = std::exchange(other.xhi_, nullptr);
  ylo_ = std::exchange(other.ylo_, nullptr);
  yhi_ = std::exchange(other.yhi_, nullptr);
  handle_ = std::exchange(other.handle_, nullptr);
  qxlo_ = std::exchange(other.qxlo_, nullptr);
  qxhi_ = std::exchange(other.qxhi_, nullptr);
  qylo_ = std::exchange(other.qylo_, nullptr);
  qyhi_ = std::exchange(other.qyhi_, nullptr);
  count_ = std::exchange(other.count_, 0);
  bytes_ = std::exchange(other.bytes_, 0);
  level_ = std::exchange(other.level_, 0);
  quantized_ = std::exchange(other.quantized_, false);
  built_ = std::exchange(other.built_, false);
  mbr_ = std::exchange(other.mbr_, Rect{});
  scale_x_ = std::exchange(other.scale_x_, 0.0);
  scale_y_ = std::exchange(other.scale_y_, 0.0);
  return *this;
}

void NodeRibbon::Free() {
  if (xlo_ != nullptr) {
    ::operator delete[](xlo_, std::align_val_t{64});
    RibbonBytesGauge()->Add(-static_cast<int64_t>(bytes_));
  }
  xlo_ = xhi_ = ylo_ = yhi_ = nullptr;
  handle_ = nullptr;
  qxlo_ = qxhi_ = qylo_ = qyhi_ = nullptr;
  count_ = 0;
  bytes_ = 0;
  built_ = false;
}

void NodeRibbon::Build(const RTreeEntry* entries, size_t n, uint16_t level,
                       bool quantized) {
  Free();
  count_ = n;
  level_ = level;
  quantized_ = quantized;
  built_ = true;
  mbr_ = Rect{};
  for (size_t i = 0; i < n; ++i) mbr_.Expand(entries[i].mbr);

  const size_t dcap = DoubleCap(n);
  const size_t qcap = quantized ? Q16Cap(n) : 0;
  bytes_ = dcap * (4 * sizeof(double) + sizeof(uint64_t)) +
           qcap * 4 * sizeof(uint16_t);
  void* block = ::operator new[](bytes_, std::align_val_t{64});
  RibbonBytesGauge()->Add(static_cast<int64_t>(bytes_));
  xlo_ = static_cast<double*>(block);
  xhi_ = xlo_ + dcap;
  ylo_ = xhi_ + dcap;
  yhi_ = ylo_ + dcap;
  handle_ = reinterpret_cast<uint64_t*>(yhi_ + dcap);
  if (quantized) {
    qxlo_ = reinterpret_cast<uint16_t*>(handle_ + dcap);
    qxhi_ = qxlo_ + qcap;
    qylo_ = qxhi_ + qcap;
    qyhi_ = qylo_ + qcap;
  }

  scale_x_ = mbr_.width() > 0.0 ? 65535.0 / mbr_.width() : 0.0;
  scale_y_ = mbr_.height() > 0.0 ? 65535.0 / mbr_.height() : 0.0;

  for (size_t i = 0; i < n; ++i) {
    const Rect& r = entries[i].mbr;
    xlo_[i] = r.xlo;
    xhi_[i] = r.xhi;
    ylo_[i] = r.ylo;
    yhi_[i] = r.yhi;
    handle_[i] = entries[i].handle;
    if (quantized) {
      qxlo_[i] = QLo(r.xlo, mbr_.xlo, scale_x_);
      qxhi_[i] = QHi(r.xhi, mbr_.xlo, scale_x_);
      qylo_[i] = QLo(r.ylo, mbr_.ylo, scale_y_);
      qyhi_[i] = QHi(r.yhi, mbr_.ylo, scale_y_);
    }
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (size_t i = n; i < dcap; ++i) {
    xlo_[i] = kInf;
    xhi_[i] = -kInf;
    ylo_[i] = kInf;
    yhi_[i] = -kInf;
    handle_[i] = 0;
  }
  if (quantized) {
    // Tail lanes are masked by size in the q16 kernels, but zero them
    // anyway so the block never holds uninitialized bytes (MSan, dumps).
    for (size_t i = n; i < qcap; ++i) {
      qxlo_[i] = 0;
      qxhi_[i] = 0;
      qylo_[i] = 0;
      qyhi_[i] = 0;
    }
  }
}

void NodeRibbon::QuantizeWindow(const Rect& w, uint16_t* wxlo, uint16_t* wylo,
                                uint16_t* wxhi, uint16_t* wyhi) const {
  // Same grid, same rounding roles as the entries: lows floor, highs ceil.
  // A window reaching outside the node MBR clamps to the grid edge, which
  // only widens it relative to the entries it could intersect.
  *wxlo = QLo(w.xlo, mbr_.xlo, scale_x_);
  *wxhi = QHi(w.xhi, mbr_.xlo, scale_x_);
  *wylo = QLo(w.ylo, mbr_.ylo, scale_y_);
  *wyhi = QHi(w.yhi, mbr_.ylo, scale_y_);
}

// ---------------------------------------------------------------------------
// Scans.
// ---------------------------------------------------------------------------

size_t ScanRibbonWindow(const NodeRibbon& ribbon, const Rect& window,
                        KernelKind kind, uint32_t* out_idx,
                        RibbonScanStats* stats) {
  if (ribbon.count() == 0 || window.empty()) return 0;
  const sweep_internal::SweepKernelOps& ops = sweep_internal::KernelOps(kind);
  stats->nodes_scanned += 1;
  stats->entries_tested += ribbon.count();
  if (kind == KernelKind::kAvx2) stats->simd_node_scans += 1;
  if (!ribbon.quantized()) {
    return ops.scan_window(ribbon.soa(), window.xlo, window.ylo, window.xhi,
                           window.yhi, out_idx, &stats->simd_lanes);
  }
  uint16_t wxlo, wylo, wxhi, wyhi;
  ribbon.QuantizeWindow(window, &wxlo, &wylo, &wxhi, &wyhi);
  const size_t cand = ops.scan_window_q16(ribbon.q16(), wxlo, wylo, wxhi,
                                          wyhi, out_idx, &stats->simd_lanes);
  // Re-verify the prefilter's survivors against the exact double lanes,
  // compacting in place: quantization slop admits extra candidates here but
  // never changes the final hit set.
  const SoaView v = ribbon.soa();
  size_t hits = 0;
  for (size_t i = 0; i < cand; ++i) {
    const uint32_t e = out_idx[i];
    if (v.xlo[e] <= window.xhi && window.xlo <= v.xhi[e] &&
        v.ylo[e] <= window.yhi && window.ylo <= v.yhi[e]) {
      out_idx[hits++] = e;
    }
  }
  return hits;
}

void FlushRibbonScanStats(const RibbonScanStats& stats) {
  static Counter* const nodes =
      MetricsRegistry::Global().GetCounter("rtree.nodes_scanned");
  static Counter* const entries =
      MetricsRegistry::Global().GetCounter("rtree.entries_tested");
  static Counter* const leaf_hits =
      MetricsRegistry::Global().GetCounter("rtree.leaf_hits");
  static Counter* const simd_scans =
      MetricsRegistry::Global().GetCounter("rtree.simd_node_scans");
  static Counter* const lanes =
      MetricsRegistry::Global().GetCounter("sweep.kernel.simd_lanes_used");
  if (stats.nodes_scanned != 0) nodes->Add(stats.nodes_scanned);
  if (stats.entries_tested != 0) entries->Add(stats.entries_tested);
  if (stats.leaf_hits != 0) leaf_hits->Add(stats.leaf_hits);
  if (stats.simd_node_scans != 0) simd_scans->Add(stats.simd_node_scans);
  if (stats.simd_lanes != 0) lanes->Add(stats.simd_lanes);
}

}  // namespace pbsm
