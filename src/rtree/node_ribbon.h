#ifndef PBSM_RTREE_NODE_RIBBON_H_
#define PBSM_RTREE_NODE_RIBBON_H_

// In-memory SoA node layout for the bulk-loaded R*-tree ("ribbons",
// following the SIMD-ified R-tree of arXiv 2309.16913).
//
// A ribbon is one node's entries transposed into contiguous coordinate
// lanes, carved from a single 64-byte-aligned allocation:
//
//   xlo[] xhi[] ylo[] yhi[]   double lanes, sentinel-padded like SoaRects,
//                             so the existing scan_window kernels apply;
//   handle[]                  child page numbers / leaf OIDs;
//   qxlo[] qxhi[] qylo[] qyhi[]  (quantized layout only) uint16 lanes on a
//                             65536-cell grid over the node MBR.
//
// Quantization is conservative by construction: entry lows are floored and
// highs are ceiled onto the grid, and a query window is rounded outward
// (low floored, high ceiled) on the *same* grid before the q16 compare.
// Both mappings share one monotone affine transform, so
//     a <= b  (exact doubles)  =>  QLo(a) <= QHi(b)  (grid),
// and the quantized intersection test can only over-approximate — it never
// rejects an entry the exact test accepts. ScanRibbonWindow re-verifies the
// q16 survivors against the double lanes, so its hit set is *exactly* the
// exact test's hit set in every layout. A degenerate node MBR (zero width
// or height, down to a point) gets scale 0 on the flat axes: every entry
// and window collapses to cell 0 there, which passes — still conservative.
//
// Ribbons are built single-threaded at bulk load, before the tree is
// shared, and are immutable afterwards — concurrent const WindowQuery
// probes (the IndexCache hands one tree to many service workers) read them
// without synchronization. Insert/Delete invalidate all ribbons and drop
// the tree back to the AoS page-scan path.

#include <cstddef>
#include <cstdint>

#include "core/sweep_kernel.h"
#include "geom/rect.h"
#include "rtree/node_layout.h"

namespace pbsm {

struct RTreeEntry;

/// One node's SoA (and optionally quantized) entry lanes. Movable so trees
/// can keep them in a page-indexed vector; never copied.
class NodeRibbon {
 public:
  NodeRibbon() = default;
  ~NodeRibbon();
  NodeRibbon(NodeRibbon&& other) noexcept;
  NodeRibbon& operator=(NodeRibbon&& other) noexcept;
  NodeRibbon(const NodeRibbon&) = delete;
  NodeRibbon& operator=(const NodeRibbon&) = delete;

  /// (Re)builds the lanes from a node's entries. `quantized` adds the
  /// uint16 prefilter lanes over the entries' bounding MBR.
  void Build(const RTreeEntry* entries, size_t n, uint16_t level,
             bool quantized);

  /// True when Build has run (count may still be 0 for an empty root).
  bool built() const { return built_; }
  size_t count() const { return count_; }
  uint16_t level() const { return level_; }
  bool quantized() const { return quantized_; }
  /// The node MBR (bounding box of all entries; the quantization frame).
  const Rect& mbr() const { return mbr_; }
  const uint64_t* handles() const { return handle_; }

  /// Double lanes as the scan_window kernels expect them (oid = handles).
  SoaView soa() const { return SoaView{xlo_, xhi_, ylo_, yhi_, handle_, count_}; }
  /// Quantized lanes; only meaningful when quantized().
  SoaQ16View q16() const { return SoaQ16View{qxlo_, qxhi_, qylo_, qyhi_, count_}; }

  /// Rounds a query window outward onto this node's grid (clamped to the
  /// grid range — a window reaching past the node MBR clamps to its edge,
  /// which keeps every entry it could touch). Exposed for the conservatism
  /// fuzz tests.
  void QuantizeWindow(const Rect& w, uint16_t* wxlo, uint16_t* wylo,
                      uint16_t* wxhi, uint16_t* wyhi) const;

  /// Bytes of the backing allocation (rtree.ribbon.bytes gauge accounting).
  size_t reserved_bytes() const { return bytes_; }

 private:
  void Free();

  double* xlo_ = nullptr;
  double* xhi_ = nullptr;
  double* ylo_ = nullptr;
  double* yhi_ = nullptr;
  uint64_t* handle_ = nullptr;
  uint16_t* qxlo_ = nullptr;
  uint16_t* qxhi_ = nullptr;
  uint16_t* qylo_ = nullptr;
  uint16_t* qyhi_ = nullptr;
  size_t count_ = 0;
  size_t bytes_ = 0;
  uint16_t level_ = 0;
  bool quantized_ = false;
  bool built_ = false;
  Rect mbr_;
  /// Grid cells per coordinate unit (0 on a degenerate axis).
  double scale_x_ = 0.0;
  double scale_y_ = 0.0;
};

/// Per-query scan counters, accumulated locally and flushed once per
/// WindowQuery / tree join to the rtree.* metrics (same pattern as
/// sweep_internal::KernelMetrics).
struct RibbonScanStats {
  uint64_t nodes_scanned = 0;
  uint64_t entries_tested = 0;
  uint64_t leaf_hits = 0;
  uint64_t simd_node_scans = 0;
  uint64_t simd_lanes = 0;
};

/// Scans one ribbon against a window with the resolved kernel and writes
/// the indices of intersecting entries to `out_idx` (room for
/// ribbon.count() entries required). Quantized ribbons run the uint16
/// prefilter and re-verify survivors against the double lanes, so the hit
/// set is exact in every layout. Returns the hit count.
size_t ScanRibbonWindow(const NodeRibbon& ribbon, const Rect& window,
                        KernelKind kind, uint32_t* out_idx,
                        RibbonScanStats* stats);

/// Flushes locally accumulated scan counters to the global rtree.* metrics.
void FlushRibbonScanStats(const RibbonScanStats& stats);

}  // namespace pbsm

#endif  // PBSM_RTREE_NODE_RIBBON_H_
