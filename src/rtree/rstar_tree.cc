#include "rtree/rstar_tree.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <optional>

#include "common/logging.h"
#include "common/trace.h"
#include "core/sweep_kernel.h"
#include "geom/hilbert.h"

namespace pbsm {

namespace {

constexpr size_t kNodeHeaderSize = 8;  // u16 level, u16 count, u32 pad.
constexpr size_t kEntrySize = 4 * sizeof(double) + sizeof(uint64_t);

double CenterDistanceSq(const Rect& a, const Rect& b) {
  const Point ca = a.Center();
  const Point cb = b.Center();
  const double dx = ca.x - cb.x;
  const double dy = ca.y - cb.y;
  return dx * dx + dy * dy;
}

/// Area enlargement needed for `mbr` to absorb `add`.
double Enlargement(const Rect& mbr, const Rect& add) {
  return Rect::Union(mbr, add).Area() - mbr.Area();
}

/// Per-thread reusable working memory for WindowQuery: the traversal stack
/// and the per-node hit-index buffer. Keeps the steady-state probe loop of
/// indexed nested loops free of heap allocations.
struct ProbeScratch {
  std::vector<uint32_t> stack;
  std::vector<uint32_t> idx;

  static ProbeScratch& ThreadLocal() {
    thread_local ProbeScratch scratch;
    return scratch;
  }
};

/// Probes run millions of times per join; give 1 in kSpanSampling of them a
/// trace span so the phase shows up in exports without per-probe overhead.
constexpr uint64_t kSpanSampling = 1024;

bool SampleProbeSpan() {
  if (!Tracer::Global().enabled()) return false;
  static std::atomic<uint64_t> seq{0};
  return (seq.fetch_add(1, std::memory_order_relaxed) % kSpanSampling) == 0;
}

}  // namespace

Result<RStarTree> RStarTree::Create(BufferPool* pool,
                                    const std::string& name) {
  PBSM_ASSIGN_OR_RETURN(const FileId file, pool->disk()->CreateFile(name));
  RStarTree tree(pool, file);
  // Allocate the initial empty leaf root.
  Node root;
  PBSM_ASSIGN_OR_RETURN(tree.root_page_, tree.AllocNode(0, &root));
  PBSM_RETURN_IF_ERROR(tree.StoreNode(root));
  tree.height_ = 1;
  return tree;
}

Result<RStarTree::Node> RStarTree::LoadNode(uint32_t page_no) const {
  PBSM_ASSIGN_OR_RETURN(PageHandle page,
                        pool_->FetchPage(PageId{file_, page_no}));
  const char* base = page.data();
  Node node;
  node.page_no = page_no;
  uint16_t count = 0;
  std::memcpy(&node.level, base, sizeof(uint16_t));
  std::memcpy(&count, base + 2, sizeof(uint16_t));
  node.entries.resize(count);
  const char* p = base + kNodeHeaderSize;
  for (uint16_t i = 0; i < count; ++i) {
    double coords[4];
    std::memcpy(coords, p, sizeof(coords));
    node.entries[i].mbr = Rect(coords[0], coords[1], coords[2], coords[3]);
    std::memcpy(&node.entries[i].handle, p + sizeof(coords),
                sizeof(uint64_t));
    p += kEntrySize;
  }
  return node;
}

Status RStarTree::StoreNode(const Node& node) {
  PBSM_CHECK(node.entries.size() <= kMaxEntries)
      << "storing overflowing node with " << node.entries.size();
  PBSM_ASSIGN_OR_RETURN(PageHandle page,
                        pool_->FetchPage(PageId{file_, node.page_no}));
  char* base = page.mutable_data();
  const uint16_t count = static_cast<uint16_t>(node.entries.size());
  std::memcpy(base, &node.level, sizeof(uint16_t));
  std::memcpy(base + 2, &count, sizeof(uint16_t));
  char* p = base + kNodeHeaderSize;
  for (const RTreeEntry& e : node.entries) {
    const double coords[4] = {e.mbr.xlo, e.mbr.ylo, e.mbr.xhi, e.mbr.yhi};
    std::memcpy(p, coords, sizeof(coords));
    std::memcpy(p + sizeof(coords), &e.handle, sizeof(uint64_t));
    p += kEntrySize;
  }
  return Status::OK();
}

Result<uint32_t> RStarTree::AllocNode(uint16_t level, Node* out) {
  PBSM_ASSIGN_OR_RETURN(PageHandle page, pool_->NewPage(file_));
  out->page_no = page.id().page_no;
  out->level = level;
  out->entries.clear();
  return out->page_no;
}

Status RStarTree::ChoosePath(const Rect& mbr, uint16_t target_level,
                             std::vector<uint32_t>* path_pages,
                             std::vector<size_t>* path_slots) {
  uint32_t current = root_page_;
  while (true) {
    PBSM_ASSIGN_OR_RETURN(Node node, LoadNode(current));
    path_pages->push_back(current);
    if (node.level == target_level) return Status::OK();

    // R* subtree choice: least overlap enlargement when children are
    // leaves, least area enlargement otherwise; ties by smaller area.
    size_t best = 0;
    double best_primary = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    const bool children_are_leaves = (node.level == 1 && target_level == 0);
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const Rect& emb = node.entries[i].mbr;
      double primary;
      if (children_are_leaves) {
        // Overlap enlargement against sibling entries.
        const Rect enlarged = Rect::Union(emb, mbr);
        double overlap_before = 0.0, overlap_after = 0.0;
        for (size_t j = 0; j < node.entries.size(); ++j) {
          if (j == i) continue;
          overlap_before += Rect::OverlapArea(emb, node.entries[j].mbr);
          overlap_after += Rect::OverlapArea(enlarged, node.entries[j].mbr);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = Enlargement(emb, mbr);
      }
      const double area = emb.Area();
      if (primary < best_primary ||
          (primary == best_primary && area < best_area)) {
        best_primary = primary;
        best_area = area;
        best = i;
      }
    }
    path_slots->push_back(best);
    current = static_cast<uint32_t>(node.entries[best].handle);
  }
}

void RStarTree::SplitEntries(std::vector<RTreeEntry>* entries,
                             std::vector<RTreeEntry>* group_a,
                             std::vector<RTreeEntry>* group_b) {
  const size_t total = entries->size();
  const size_t m = kMinEntries;
  PBSM_CHECK(total > kMaxEntries);

  // For one sorted order, the margin/overlap/area of every legal
  // first-k/rest split.
  struct BestSplit {
    double margin_sum = 0.0;
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    size_t best_k = 0;
  };
  auto evaluate = [&](const std::vector<RTreeEntry>& sorted) {
    std::vector<Rect> prefix(total), suffix(total);
    Rect acc;
    for (size_t i = 0; i < total; ++i) {
      acc.Expand(sorted[i].mbr);
      prefix[i] = acc;
    }
    acc = Rect();
    for (size_t i = total; i-- > 0;) {
      acc.Expand(sorted[i].mbr);
      suffix[i] = acc;
    }
    BestSplit best;
    for (size_t k = m; k <= total - m; ++k) {
      const Rect& a = prefix[k - 1];
      const Rect& b = suffix[k];
      best.margin_sum += a.Margin() + b.Margin();
      const double overlap = Rect::OverlapArea(a, b);
      const double area = a.Area() + b.Area();
      if (overlap < best.best_overlap ||
          (overlap == best.best_overlap && area < best.best_area)) {
        best.best_overlap = overlap;
        best.best_area = area;
        best.best_k = k;
      }
    }
    return best;
  };

  // Four sort orders: x-lower, x-upper, y-lower, y-upper.
  auto by = [](auto key) {
    return [key](const RTreeEntry& a, const RTreeEntry& b) {
      return key(a.mbr) < key(b.mbr);
    };
  };
  std::vector<RTreeEntry> x_lo = *entries, x_hi = *entries, y_lo = *entries,
                          y_hi = *entries;
  std::sort(x_lo.begin(), x_lo.end(), by([](const Rect& r) { return r.xlo; }));
  std::sort(x_hi.begin(), x_hi.end(), by([](const Rect& r) { return r.xhi; }));
  std::sort(y_lo.begin(), y_lo.end(), by([](const Rect& r) { return r.ylo; }));
  std::sort(y_hi.begin(), y_hi.end(), by([](const Rect& r) { return r.yhi; }));

  const BestSplit bx_lo = evaluate(x_lo), bx_hi = evaluate(x_hi);
  const BestSplit by_lo = evaluate(y_lo), by_hi = evaluate(y_hi);
  const double x_margin = bx_lo.margin_sum + bx_hi.margin_sum;
  const double y_margin = by_lo.margin_sum + by_hi.margin_sum;

  const std::vector<RTreeEntry>* chosen;
  const BestSplit* split;
  if (x_margin <= y_margin) {
    if (bx_lo.best_overlap <= bx_hi.best_overlap) {
      chosen = &x_lo;
      split = &bx_lo;
    } else {
      chosen = &x_hi;
      split = &bx_hi;
    }
  } else {
    if (by_lo.best_overlap <= by_hi.best_overlap) {
      chosen = &y_lo;
      split = &by_lo;
    } else {
      chosen = &y_hi;
      split = &by_hi;
    }
  }
  group_a->assign(chosen->begin(), chosen->begin() + split->best_k);
  group_b->assign(chosen->begin() + split->best_k, chosen->end());
}

Status RStarTree::InsertAtLevel(const RTreeEntry& first_entry,
                                uint16_t first_level,
                                std::vector<bool>* reinsert_done) {
  // Work queue of (entry, level) — forced reinsertions are deferred here and
  // re-run from the root, as in the original R*-tree formulation.
  std::deque<std::pair<RTreeEntry, uint16_t>> pending;
  pending.emplace_back(first_entry, first_level);

  while (!pending.empty()) {
    auto [entry, target_level] = pending.front();
    pending.pop_front();

    std::vector<uint32_t> path_pages;
    std::vector<size_t> path_slots;
    PBSM_RETURN_IF_ERROR(ChoosePath(entry.mbr, target_level, &path_pages,
                                    &path_slots));

    // Insert into the target node; propagate splits upward along the path.
    std::optional<RTreeEntry> carry = entry;
    Rect child_mbr;  // MBR of the level below after its update.
    for (size_t depth = path_pages.size(); depth-- > 0;) {
      PBSM_ASSIGN_OR_RETURN(Node node, LoadNode(path_pages[depth]));
      const bool is_target = (depth == path_pages.size() - 1);
      if (!is_target) {
        // Refresh the child slot's MBR after the lower-level change.
        node.entries[path_slots[depth]].mbr = child_mbr;
      }
      if (carry.has_value()) {
        node.entries.push_back(*carry);
        carry.reset();
      }

      if (node.entries.size() <= kMaxEntries) {
        PBSM_RETURN_IF_ERROR(StoreNode(node));
        child_mbr = node.ComputeMbr();
        continue;
      }

      // Overflow treatment.
      const bool is_root = (node.page_no == root_page_);
      if (!is_root && !(*reinsert_done)[node.level]) {
        // Forced reinsert: remove the 30% of entries whose centers are
        // furthest from the node center, keep the rest, re-queue removals.
        (*reinsert_done)[node.level] = true;
        const Rect node_mbr = node.ComputeMbr();
        std::sort(node.entries.begin(), node.entries.end(),
                  [&node_mbr](const RTreeEntry& a, const RTreeEntry& b) {
                    return CenterDistanceSq(a.mbr, node_mbr) >
                           CenterDistanceSq(b.mbr, node_mbr);
                  });
        std::vector<RTreeEntry> removed(
            node.entries.begin(),
            node.entries.begin() + static_cast<long>(kReinsertCount));
        node.entries.erase(node.entries.begin(),
                           node.entries.begin() +
                               static_cast<long>(kReinsertCount));
        PBSM_RETURN_IF_ERROR(StoreNode(node));
        child_mbr = node.ComputeMbr();
        for (const RTreeEntry& r : removed) {
          pending.emplace_back(r, node.level);
        }
        continue;
      }

      // Split.
      std::vector<RTreeEntry> group_a, group_b;
      SplitEntries(&node.entries, &group_a, &group_b);
      node.entries = std::move(group_a);
      Node sibling;
      PBSM_ASSIGN_OR_RETURN(const uint32_t sibling_page,
                            AllocNode(node.level, &sibling));
      sibling.entries = std::move(group_b);
      PBSM_RETURN_IF_ERROR(StoreNode(node));
      PBSM_RETURN_IF_ERROR(StoreNode(sibling));

      if (is_root) {
        Node new_root;
        PBSM_ASSIGN_OR_RETURN(const uint32_t new_root_page,
                              AllocNode(node.level + 1, &new_root));
        new_root.entries.push_back(
            RTreeEntry{node.ComputeMbr(), node.page_no});
        new_root.entries.push_back(
            RTreeEntry{sibling.ComputeMbr(), sibling_page});
        PBSM_RETURN_IF_ERROR(StoreNode(new_root));
        root_page_ = new_root_page;
        ++height_;
        reinsert_done->resize(height_, false);
        child_mbr = new_root.ComputeMbr();
      } else {
        // Parent (next loop iteration) absorbs the sibling entry.
        carry = RTreeEntry{sibling.ComputeMbr(), sibling_page};
        child_mbr = node.ComputeMbr();
      }
    }
  }
  return Status::OK();
}

Status RStarTree::Insert(const Rect& mbr, uint64_t oid) {
  InvalidateRibbons();
  std::vector<bool> reinsert_done(height_, false);
  PBSM_RETURN_IF_ERROR(
      InsertAtLevel(RTreeEntry{mbr, oid}, /*target_level=*/0,
                    &reinsert_done));
  ++num_entries_;
  return Status::OK();
}

namespace {

/// Outcome of a recursive delete step, reported to the parent.
struct DeleteOutcome {
  bool found = false;
  bool remove_child = false;  ///< The child underflowed and was dissolved.
  Rect mbr;                   ///< New child MBR (valid when kept).
};

}  // namespace

Status RStarTree::Delete(const Rect& mbr, uint64_t oid, bool* found) {
  InvalidateRibbons();
  // Orphaned entries from dissolved nodes, tagged with the level of the
  // node they must be reinserted into (0 = leaf entries).
  std::vector<std::pair<RTreeEntry, uint16_t>> orphans;

  // Recursive condense-tree walk (Guttman's deletion). Freed pages are not
  // recycled — the file has no free list, matching the append-only spools.
  std::function<Status(uint32_t, DeleteOutcome*)> walk =
      [&](uint32_t page_no, DeleteOutcome* out) -> Status {
    PBSM_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
    const bool is_root = (page_no == root_page_);

    if (node.level == 0) {
      size_t idx = node.entries.size();
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (node.entries[i].handle == oid && node.entries[i].mbr == mbr) {
          idx = i;
          break;
        }
      }
      if (idx == node.entries.size()) {
        out->found = false;
        return Status::OK();
      }
      node.entries.erase(node.entries.begin() + static_cast<long>(idx));
      out->found = true;
      if (!is_root && node.entries.size() < kMinEntries) {
        for (const RTreeEntry& e : node.entries) {
          orphans.emplace_back(e, 0);
        }
        out->remove_child = true;
        return Status::OK();
      }
      PBSM_RETURN_IF_ERROR(StoreNode(node));
      out->mbr = node.ComputeMbr();
      return Status::OK();
    }

    // Internal node: descend into every child whose MBR covers the target.
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (!node.entries[i].mbr.Contains(mbr)) continue;
      DeleteOutcome child;
      PBSM_RETURN_IF_ERROR(
          walk(static_cast<uint32_t>(node.entries[i].handle), &child));
      if (!child.found) continue;

      if (child.remove_child) {
        node.entries.erase(node.entries.begin() + static_cast<long>(i));
      } else {
        node.entries[i].mbr = child.mbr;
      }
      out->found = true;
      if (!is_root && node.entries.size() < kMinEntries) {
        // Dissolve this node too; its children reinsert at this level.
        for (const RTreeEntry& e : node.entries) {
          orphans.emplace_back(e, node.level);
        }
        out->remove_child = true;
        return Status::OK();
      }
      PBSM_RETURN_IF_ERROR(StoreNode(node));
      out->mbr = node.ComputeMbr();
      return Status::OK();
    }
    out->found = false;
    return Status::OK();
  };

  DeleteOutcome outcome;
  PBSM_RETURN_IF_ERROR(walk(root_page_, &outcome));
  *found = outcome.found;
  if (!outcome.found) return Status::OK();
  --num_entries_;

  // Reinsert orphans while the tree still has its full height, so every
  // orphan level remains valid.
  for (const auto& [entry, level] : orphans) {
    std::vector<bool> reinsert_done(height_, false);
    PBSM_RETURN_IF_ERROR(InsertAtLevel(entry, level, &reinsert_done));
  }

  // Collapse a single-child internal root (possibly repeatedly).
  while (height_ > 1) {
    PBSM_ASSIGN_OR_RETURN(const Node root, LoadNode(root_page_));
    if (root.level == 0 || root.entries.size() != 1) break;
    root_page_ = static_cast<uint32_t>(root.entries[0].handle);
    --height_;
  }
  return Status::OK();
}

Status RStarTree::WindowQuery(const Rect& window, std::vector<uint64_t>* out,
                              SimdMode simd) const {
  const KernelKind kind = ResolveKernel(simd);
  std::optional<TraceSpan> span;
  if (SampleProbeSpan()) span.emplace("rtree/window_query");
  ProbeScratch& sc = ProbeScratch::ThreadLocal();
  RibbonScanStats stats;
  sc.stack.clear();
  sc.stack.push_back(root_page_);

  if (layout_ != NodeLayout::kAos) {
    // Ribbon fast path: node entries are already transposed in memory, so
    // the traversal never touches the BufferPool. Leaf hits are gathered in
    // one batched append per node instead of per-hit push_back.
    while (!sc.stack.empty()) {
      const uint32_t page_no = sc.stack.back();
      sc.stack.pop_back();
      const NodeRibbon* rb = ribbon(page_no);
      PBSM_CHECK(rb != nullptr) << "missing ribbon for page " << page_no;
      if (sc.idx.size() < rb->count()) sc.idx.resize(rb->count());
      const size_t n =
          ScanRibbonWindow(*rb, window, kind, sc.idx.data(), &stats);
      const uint64_t* handles = rb->handles();
      if (rb->level() == 0) {
        stats.leaf_hits += n;
        const size_t base = out->size();
        out->resize(base + n);
        uint64_t* dst = out->data() + base;
        for (size_t i = 0; i < n; ++i) dst[i] = handles[sc.idx[i]];
      } else {
        const size_t base = sc.stack.size();
        sc.stack.resize(base + n);
        uint32_t* dst = sc.stack.data() + base;
        for (size_t i = 0; i < n; ++i) {
          dst[i] = static_cast<uint32_t>(handles[sc.idx[i]]);
        }
      }
    }
    FlushRibbonScanStats(stats);
    return Status::OK();
  }

  // AoS fallback: parse each node page through the BufferPool and scan the
  // entry array (insert-built or mutated trees).
  std::vector<uint32_t> hits;
  while (!sc.stack.empty()) {
    const uint32_t page_no = sc.stack.back();
    sc.stack.pop_back();
    PBSM_ASSIGN_OR_RETURN(const Node node, LoadNode(page_no));
    stats.nodes_scanned += 1;
    stats.entries_tested += node.entries.size();
    hits.clear();
    OverlapScan(node.entries.data(), node.entries.size(), window, kind,
                &hits);
    for (const uint32_t i : hits) {
      if (node.level == 0) {
        stats.leaf_hits += 1;
        out->push_back(node.entries[i].handle);
      } else {
        sc.stack.push_back(static_cast<uint32_t>(node.entries[i].handle));
      }
    }
  }
  FlushRibbonScanStats(stats);
  return Status::OK();
}

Status RStarTree::ReadNode(uint32_t page_no, uint16_t* level,
                           std::vector<RTreeEntry>* entries) const {
  PBSM_ASSIGN_OR_RETURN(Node node, LoadNode(page_no));
  *level = node.level;
  *entries = std::move(node.entries);
  return Status::OK();
}

Status RStarTree::BuildRibbons(NodeLayout layout) {
  InvalidateRibbons();
  const NodeLayout resolved = ResolveNodeLayout(layout);
  if (resolved == NodeLayout::kAos) return Status::OK();
  const bool quantized = (resolved == NodeLayout::kSoaQuantized);
  // Single-threaded tree walk at build time, before the tree is shared;
  // afterwards the ribbons are immutable. Pages are allocated contiguously
  // from 0, so indexing the vector by page number stays dense.
  std::vector<uint32_t> stack = {root_page_};
  while (!stack.empty()) {
    const uint32_t page_no = stack.back();
    stack.pop_back();
    PBSM_ASSIGN_OR_RETURN(const Node node, LoadNode(page_no));
    if (page_no >= ribbons_.size()) ribbons_.resize(page_no + 1);
    ribbons_[page_no].Build(node.entries.data(), node.entries.size(),
                            node.level, quantized);
    if (node.level > 0) {
      for (const RTreeEntry& e : node.entries) {
        stack.push_back(static_cast<uint32_t>(e.handle));
      }
    }
  }
  layout_ = resolved;
  return Status::OK();
}

Result<RStarTree> RStarTree::BulkLoadSorted(BufferPool* pool,
                                            const std::string& name,
                                            const EntryStream& next,
                                            double fill_factor,
                                            NodeLayout layout) {
  PBSM_CHECK(fill_factor > 0.0 && fill_factor <= 1.0);
  PBSM_ASSIGN_OR_RETURN(const FileId file, pool->disk()->CreateFile(name));
  RStarTree tree(pool, file);

  size_t per_node =
      static_cast<size_t>(static_cast<double>(kMaxEntries) * fill_factor);
  per_node = std::clamp(per_node, size_t{2}, kMaxEntries);

  // Pack leaves from the stream; only the parent entries stay in memory.
  std::vector<RTreeEntry> level_entries;
  {
    Node leaf;
    bool leaf_open = false;
    RTreeEntry e;
    while (true) {
      PBSM_ASSIGN_OR_RETURN(const bool has, next(&e));
      if (!has) break;
      if (!leaf_open) {
        PBSM_ASSIGN_OR_RETURN(const uint32_t page_no,
                              tree.AllocNode(0, &leaf));
        (void)page_no;
        leaf_open = true;
      }
      leaf.entries.push_back(e);
      ++tree.num_entries_;
      if (leaf.entries.size() >= per_node) {
        PBSM_RETURN_IF_ERROR(tree.StoreNode(leaf));
        level_entries.push_back(RTreeEntry{leaf.ComputeMbr(), leaf.page_no});
        leaf.entries.clear();
        leaf_open = false;
      }
    }
    if (leaf_open) {
      PBSM_RETURN_IF_ERROR(tree.StoreNode(leaf));
      level_entries.push_back(RTreeEntry{leaf.ComputeMbr(), leaf.page_no});
    }
  }

  if (level_entries.empty()) {
    Node root;
    PBSM_ASSIGN_OR_RETURN(tree.root_page_, tree.AllocNode(0, &root));
    PBSM_RETURN_IF_ERROR(tree.StoreNode(root));
    tree.height_ = 1;
    PBSM_RETURN_IF_ERROR(tree.BuildRibbons(layout));
    return tree;
  }

  // Pack upper levels until one node remains.
  uint16_t level = 1;
  while (level_entries.size() > 1 || level == 1) {
    if (level_entries.size() == 1) {
      // Single leaf: it is the root.
      tree.root_page_ = static_cast<uint32_t>(level_entries[0].handle);
      tree.height_ = 1;
      PBSM_RETURN_IF_ERROR(tree.BuildRibbons(layout));
      return tree;
    }
    const bool is_root_level = level_entries.size() <= per_node;
    std::vector<RTreeEntry> next_level;
    for (size_t begin = 0; begin < level_entries.size(); begin += per_node) {
      const size_t end = std::min(begin + per_node, level_entries.size());
      Node node;
      PBSM_ASSIGN_OR_RETURN(const uint32_t page_no,
                            tree.AllocNode(level, &node));
      node.entries.assign(level_entries.begin() + static_cast<long>(begin),
                          level_entries.begin() + static_cast<long>(end));
      PBSM_RETURN_IF_ERROR(tree.StoreNode(node));
      next_level.push_back(RTreeEntry{node.ComputeMbr(), page_no});
      if (is_root_level) {
        tree.root_page_ = page_no;
      }
    }
    if (is_root_level) {
      tree.height_ = static_cast<uint16_t>(level + 1);
      PBSM_RETURN_IF_ERROR(tree.BuildRibbons(layout));
      return tree;
    }
    level_entries = std::move(next_level);
    ++level;
  }
  PBSM_RETURN_IF_ERROR(tree.BuildRibbons(layout));
  return tree;
}

Result<RStarTree> RStarTree::BulkLoad(BufferPool* pool,
                                      const std::string& name,
                                      std::vector<RTreeEntry> entries,
                                      double fill_factor,
                                      NodeLayout layout) {
  // Spatial sort: Hilbert value of the MBR center (paper §4.1).
  Rect universe;
  for (const RTreeEntry& e : entries) universe.Expand(e.mbr);
  if (!entries.empty()) {
    const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kHilbert,
                                  universe);
    std::vector<std::pair<uint64_t, size_t>> keyed(entries.size());
    bool already_sorted = true;
    for (size_t i = 0; i < entries.size(); ++i) {
      keyed[i] = {curve.Key(entries[i].mbr), i};
      if (i > 0 && keyed[i].first < keyed[i - 1].first) {
        already_sorted = false;
      }
    }
    // Spatially clustered inputs arrive in curve order; skipping the sort
    // is the index-build saving the paper attributes to clustering (§4.4).
    if (!already_sorted) {
      std::sort(keyed.begin(), keyed.end());
      std::vector<RTreeEntry> sorted;
      sorted.reserve(entries.size());
      for (const auto& [key, idx] : keyed) sorted.push_back(entries[idx]);
      entries = std::move(sorted);
    }
  }

  size_t index = 0;
  return BulkLoadSorted(
      pool, name,
      [&entries, &index](RTreeEntry* out) -> Result<bool> {
        if (index >= entries.size()) return false;
        *out = entries[index++];
        return true;
      },
      fill_factor, layout);
}

Result<RTreeStats> RStarTree::ComputeStats() const {
  RTreeStats stats;
  stats.height = height_;
  std::vector<uint32_t> stack = {root_page_};
  while (!stack.empty()) {
    const uint32_t page_no = stack.back();
    stack.pop_back();
    PBSM_ASSIGN_OR_RETURN(const Node node, LoadNode(page_no));
    ++stats.num_nodes;
    if (node.level == 0) {
      stats.num_entries += node.entries.size();
    } else {
      for (const RTreeEntry& e : node.entries) {
        stack.push_back(static_cast<uint32_t>(e.handle));
      }
    }
  }
  stats.size_bytes = static_cast<uint64_t>(stats.num_nodes) * kPageSize;
  return stats;
}

}  // namespace pbsm
