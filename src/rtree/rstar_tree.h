#ifndef PBSM_RTREE_RSTAR_TREE_H_
#define PBSM_RTREE_RSTAR_TREE_H_

#include <functional>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/plane_sweep_join.h"
#include "geom/rect.h"
#include "rtree/node_layout.h"
#include "rtree/node_ribbon.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace pbsm {

/// One R-tree entry: a bounding rectangle plus a 64-bit handle.
/// In internal nodes the handle is a child page number; in leaves it is the
/// encoded OID of the indexed tuple (the paper's key-pointer).
struct RTreeEntry {
  Rect mbr;
  uint64_t handle = 0;
};

/// Shape statistics for a built tree (Table 2/3's "R*-tree size" column).
struct RTreeStats {
  uint16_t height = 0;         ///< Number of levels (1 = root-only leaf).
  uint32_t num_nodes = 0;
  uint64_t num_entries = 0;    ///< Leaf-level entries.
  uint64_t size_bytes = 0;     ///< num_nodes * page size.
};

/// A disk-resident R*-tree over (MBR, OID) key-pointers.
///
/// Nodes are pages accessed through the BufferPool, so index probes compete
/// for buffer frames with data pages — the effect driving the paper's
/// Figures 7/14/15. Two construction paths are provided:
///  * `Insert` — the classic R*-tree algorithm (Beckmann et al. 1990):
///    least-overlap-enlargement subtree choice at the leaf level, forced
///    reinsertion of the 30% most distant entries on first overflow per
///    level, and the R* axis/distribution split otherwise;
///  * `BulkLoad` — Hilbert-sorted bottom-up packing, the Paradise mechanism
///    the paper insists on (§1: 109.9 s bulk load vs 864.5 s inserts).
///
/// Bulk-loaded trees additionally carry in-memory SoA "ribbons" of the node
/// entries (rtree/node_ribbon.h) unless the layout knob says otherwise, so
/// WindowQuery and the BKS93 tree join scan nodes with the vector kernels
/// without re-parsing pages. Insert/Delete invalidate the ribbons and drop
/// back to the AoS page-scan path.
class RStarTree {
 public:
  /// Creates an empty tree in a new file `name`.
  static Result<RStarTree> Create(BufferPool* pool, const std::string& name);

  /// Builds a tree by bulk loading. `entries` are leaf key-pointers; they
  /// are Hilbert-sorted by MBR center over their minimum cover, packed into
  /// leaves at `fill_factor`, and upper levels are packed the same way.
  /// `layout` selects the in-memory node representation built alongside the
  /// pages (rtree/node_layout.h); kAuto consults PBSM_RTREE_LAYOUT.
  /// Convenience wrapper over BulkLoadSorted for in-memory entry sets.
  static Result<RStarTree> BulkLoad(BufferPool* pool, const std::string& name,
                                    std::vector<RTreeEntry> entries,
                                    double fill_factor = 0.75,
                                    NodeLayout layout = NodeLayout::kAuto);

  /// Yields the next entry in spatial sort order; false at end of stream.
  using EntryStream = std::function<Result<bool>(RTreeEntry*)>;

  /// Streaming bottom-up packer: consumes entries already in spatial sort
  /// order (e.g. from an external sort that respected the operator's memory
  /// budget) and packs leaves and upper levels at `fill_factor`. Only one
  /// level of parent entries is held in memory (plus, for non-AoS layouts,
  /// the per-node ribbons built after packing).
  static Result<RStarTree> BulkLoadSorted(BufferPool* pool,
                                          const std::string& name,
                                          const EntryStream& next,
                                          double fill_factor = 0.75,
                                          NodeLayout layout =
                                              NodeLayout::kAuto);

  RStarTree(RStarTree&&) = default;
  RStarTree& operator=(RStarTree&&) = default;
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Inserts one key-pointer (R*-tree insertion algorithm).
  Status Insert(const Rect& mbr, uint64_t oid);

  /// Removes the leaf entry with exactly this (mbr, oid). Returns the
  /// Guttman R-tree deletion algorithm's behaviour: nodes that underflow
  /// (fewer than kMinEntries entries) are dissolved and their surviving
  /// entries reinserted at their original level; the root collapses when
  /// it has a single child. Sets `*found` to whether the entry existed.
  Status Delete(const Rect& mbr, uint64_t oid, bool* found);

  /// Appends to `out` the handle of every leaf entry whose MBR intersects
  /// `window`. This is the filter-step probe used by indexed nested loops.
  /// Node scans run on the batch filter kernel selected by `simd` (see
  /// core/sweep_kernel.h).
  Status WindowQuery(const Rect& window, std::vector<uint64_t>* out,
                     SimdMode simd = SimdMode::kAuto) const;

  /// Reads node `page_no` into `level` (0 = leaf) and `entries`.
  /// Exposed for the BKS93 synchronized tree join.
  Status ReadNode(uint32_t page_no, uint16_t* level,
                  std::vector<RTreeEntry>* entries) const;

  Result<RTreeStats> ComputeStats() const;

  /// (Re)builds the in-memory node ribbons for the resolved layout by
  /// walking the tree once; kAos clears them. Called by the bulk loaders;
  /// exposed so a caller can re-accelerate a tree after mutations. Must not
  /// race with concurrent readers — build before sharing the tree.
  Status BuildRibbons(NodeLayout layout);

  /// The in-memory node layout currently active (kAos when ribbons are
  /// absent or were invalidated by Insert/Delete).
  NodeLayout layout() const { return layout_; }

  /// The ribbon of node `page_no`, or nullptr when none is built (AoS
  /// layout, or a page this tree never ribboned). Ribbons are immutable
  /// after the bulk load, so concurrent const readers need no locking.
  const NodeRibbon* ribbon(uint32_t page_no) const {
    if (page_no >= ribbons_.size() || !ribbons_[page_no].built()) {
      return nullptr;
    }
    return &ribbons_[page_no];
  }

  uint32_t root_page() const { return root_page_; }
  uint16_t height() const { return height_; }
  uint64_t num_entries() const { return num_entries_; }
  FileId file() const { return file_; }

  /// Maximum entries per node given the page size (M in R*-tree terms).
  static constexpr size_t kMaxEntries =
      (kPageSize - 8) / (4 * sizeof(double) + sizeof(uint64_t));
  /// Minimum fill (m = 40% of M, the R* recommendation).
  static constexpr size_t kMinEntries = (kMaxEntries * 2) / 5;
  /// Entries force-reinserted on first overflow (30% of M).
  static constexpr size_t kReinsertCount = (kMaxEntries * 3) / 10;

 private:
  RStarTree(BufferPool* pool, FileId file)
      : pool_(pool), file_(file) {}

  /// In-memory copy of one node page.
  struct Node {
    uint32_t page_no = 0;
    uint16_t level = 0;
    std::vector<RTreeEntry> entries;

    Rect ComputeMbr() const {
      Rect r;
      for (const auto& e : entries) r.Expand(e.mbr);
      return r;
    }
  };

  Result<Node> LoadNode(uint32_t page_no) const;
  Status StoreNode(const Node& node);
  Result<uint32_t> AllocNode(uint16_t level, Node* out);

  /// Descends from the root to a node at `target_level`, choosing subtrees
  /// the R* way; records the path (page numbers + chosen child slots).
  Status ChoosePath(const Rect& mbr, uint16_t target_level,
                    std::vector<uint32_t>* path_pages,
                    std::vector<size_t>* path_slots);

  /// Inserts `entry` at `target_level`, splitting/reinserting on overflow.
  /// `reinsert_done` tracks per-level forced-reinsert state for this
  /// insertion (R* does at most one reinsert pass per level).
  Status InsertAtLevel(const RTreeEntry& entry, uint16_t target_level,
                       std::vector<bool>* reinsert_done);

  /// R* split of an overflowing entry set; fills two output groups.
  static void SplitEntries(std::vector<RTreeEntry>* entries,
                           std::vector<RTreeEntry>* group_a,
                           std::vector<RTreeEntry>* group_b);

  /// Drops all ribbons and falls back to the AoS page-scan path; called by
  /// the mutating operations (a single Insert/Delete restructures pages the
  /// ribbons mirror).
  void InvalidateRibbons() {
    ribbons_.clear();
    layout_ = NodeLayout::kAos;
  }

  BufferPool* pool_ = nullptr;
  FileId file_ = kInvalidFileId;
  uint32_t root_page_ = 0;
  uint16_t height_ = 1;
  uint64_t num_entries_ = 0;
  /// Active in-memory layout; ribbons_ is indexed by page number (bulk load
  /// allocates pages contiguously from 0, so the vector is dense).
  NodeLayout layout_ = NodeLayout::kAos;
  std::vector<NodeRibbon> ribbons_;
};

}  // namespace pbsm

#endif  // PBSM_RTREE_RSTAR_TREE_H_
