#include "service/index_cache.h"

#include <functional>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"
#include "core/index_build.h"

namespace pbsm {

IndexCache::IndexCache(BufferPool* pool, Config config)
    : pool_(pool),
      config_(config),
      per_shard_capacity_(std::max<size_t>(
          1, (std::max<size_t>(config.capacity, 1) +
              std::max<uint32_t>(config.num_shards, 1) - 1) /
                 std::max<uint32_t>(config.num_shards, 1))) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  hits_ = metrics.GetCounter("service.cache.hits");
  misses_ = metrics.GetCounter("service.cache.misses");
  evictions_ = metrics.GetCounter("service.cache.evictions");
  invalidations_ = metrics.GetCounter("service.cache.invalidations");
  shards_.reserve(std::max<uint32_t>(config.num_shards, 1));
  for (uint32_t i = 0; i < std::max<uint32_t>(config.num_shards, 1); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  drop_listener_token_ =
      pool_->AddDropListener([this](FileId file) { InvalidateFile(file); });
}

IndexCache::~IndexCache() {
  pool_->RemoveDropListener(drop_listener_token_);
  Clear();
}

std::string IndexCache::Key(const JoinInput& input, double fill_factor) {
  // The fill factor participates because trees packed differently are
  // different indexes; rounded to 1e-3 so float noise cannot fragment keys.
  // The node-layout tag participates (versioned, see NodeLayoutCacheTag)
  // so a tree built under one PBSM_RTREE_LAYOUT setting — or an older
  // ribbon format — is never served where a different layout is expected.
  return input.info.name + "#" + std::to_string(input.info.file) + "@" +
         std::to_string(static_cast<int>(fill_factor * 1000.0)) + "!" +
         std::string(NodeLayoutCacheTag(ResolveNodeLayout(NodeLayout::kAuto)));
}

IndexCache::Shard& IndexCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const IndexCache::Shard& IndexCache::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void IndexCache::EraseLru(Shard* shard, const std::string& key) {
  for (auto it = shard->lru.begin(); it != shard->lru.end(); ++it) {
    if (*it == key) {
      shard->lru.erase(it);
      return;
    }
  }
}

void IndexCache::EvictOverCapacityLocked(Shard* shard,
                                         std::vector<EntryRef>* out) {
  while (shard->lru.size() > per_shard_capacity_) {
    const std::string victim = shard->lru.back();
    shard->lru.pop_back();
    auto it = shard->entries.find(victim);
    if (it != shard->entries.end()) {
      out->push_back(std::move(it->second));
      shard->entries.erase(it);
      evictions_->Add();
    }
  }
}

IndexCache::TreeRef IndexCache::WrapTree(RStarTree&& tree) {
  // The deleter drops the index file once the last query releases the
  // tree. DropFile can only fail here if pages are still pinned — which
  // cannot happen after the last probe finished — or if the pool is being
  // fault-injected at shutdown; neither is actionable, hence the void cast.
  auto* owned = new RStarTree(std::move(tree));
  BufferPool* pool = pool_;
  return TreeRef(owned, [pool](const RStarTree* t) {
    const FileId file = t->file();
    delete t;
    (void)pool->DropFile(file);
  });
}

Result<IndexCache::TreeRef> IndexCache::GetOrBuild(const JoinInput& input,
                                                   double fill_factor) {
  const std::string key = Key(input, fill_factor);
  Shard& shard = ShardFor(key);

  EntryRef to_build;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    while (true) {
      auto it = shard.entries.find(key);
      if (it == shard.entries.end()) break;  // Miss: build below.
      EntryRef entry = it->second;
      if (entry->state == Entry::State::kBuilding) {
        // Park until the builder finishes, then re-probe: the entry may
        // have become ready, failed (retry by building), or been
        // invalidated meanwhile.
        shard.build_cv.wait(lock);
        continue;
      }
      PBSM_CHECK(entry->state == Entry::State::kReady);
      EraseLru(&shard, key);
      shard.lru.push_front(key);
      hits_->Add();
      return entry->tree;
    }

    to_build = std::make_shared<Entry>();
    to_build->key = key;
    to_build->dataset_file = input.info.file;
    to_build->dataset_name = input.info.name;
    shard.entries[key] = to_build;
    misses_->Add();
  }

  // Bulk load outside every lock; unique file name per build so a rebuild
  // after invalidation never collides with a still-referenced old tree.
  TraceSpan span("service/index_build");
  const uint64_t build_id =
      next_build_id_.fetch_add(1, std::memory_order_relaxed);
  Result<RStarTree> built = BuildIndexByBulkLoad(
      pool_, input,
      "svc_idx_" + input.info.name + "_" + std::to_string(build_id) +
          ".rtree",
      fill_factor);

  std::vector<EntryRef> doomed;  // Destroyed after unlocking.
  Result<TreeRef> result = Status::Internal("unreachable");
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (!built.ok()) {
      to_build->state = Entry::State::kFailed;
      to_build->error = built.status();
      // Remove so the next request retries; waiters see kFailed via their
      // own entry ref? No — they re-probe the map, find nothing, rebuild.
      auto it = shard.entries.find(key);
      if (it != shard.entries.end() && it->second == to_build) {
        shard.entries.erase(it);
      }
      result = built.status();
    } else {
      to_build->state = Entry::State::kReady;
      to_build->tree = WrapTree(std::move(built).value());
      auto it = shard.entries.find(key);
      if (it != shard.entries.end() && it->second == to_build) {
        // Still current: publish in LRU order and evict over capacity.
        shard.lru.push_front(key);
        EvictOverCapacityLocked(&shard, &doomed);
      }
      // Invalidated mid-build: the tree is still returned to this caller
      // (it is correct for the files it was built from at the time), it
      // just is not cached.
      result = to_build->tree;
    }
    shard.build_cv.notify_all();
  }
  return result;
}

bool IndexCache::Contains(const JoinInput& input, double fill_factor) const {
  const std::string key = Key(input, fill_factor);
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  return it != shard.entries.end() &&
         it->second->state == Entry::State::kReady;
}

void IndexCache::InvalidateFile(FileId file) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::vector<EntryRef> doomed;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (auto it = shard.entries.begin(); it != shard.entries.end();) {
        if (it->second->dataset_file == file &&
            it->second->state != Entry::State::kBuilding) {
          EraseLru(&shard, it->first);
          doomed.push_back(std::move(it->second));
          it = shard.entries.erase(it);
          invalidations_->Add();
        } else {
          ++it;
        }
      }
    }
    // Trees die here, outside the shard mutex: their deleters re-enter the
    // pool (DropFile), which re-enters this listener for the *index* file —
    // a no-op, but it must not find the mutex held.
  }
}

void IndexCache::InvalidateDataset(const std::string& name) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::vector<EntryRef> doomed;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (auto it = shard.entries.begin(); it != shard.entries.end();) {
        if (it->second->dataset_name == name &&
            it->second->state != Entry::State::kBuilding) {
          EraseLru(&shard, it->first);
          doomed.push_back(std::move(it->second));
          it = shard.entries.erase(it);
          invalidations_->Add();
        } else {
          ++it;
        }
      }
    }
  }
}

void IndexCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::vector<EntryRef> doomed;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (auto it = shard.entries.begin(); it != shard.entries.end();) {
        if (it->second->state != Entry::State::kBuilding) {
          EraseLru(&shard, it->first);
          doomed.push_back(std::move(it->second));
          it = shard.entries.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

size_t IndexCache::size() const {
  size_t n = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    n += shard_ptr->lru.size();
  }
  return n;
}

}  // namespace pbsm
