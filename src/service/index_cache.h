#ifndef PBSM_SERVICE_INDEX_CACHE_H_
#define PBSM_SERVICE_INDEX_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/join_options.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace pbsm {

/// Sharded LRU cache of bulk-loaded R*-trees, keyed by (dataset name, heap
/// file id, fill factor) — the piece that lets repeat service traffic stop
/// paying index-rebuild cost on every query (the dominant term of a cold
/// R-tree join; see DESIGN.md "Service layer").
///
/// Entries are handed out as shared_ptrs: an evicted or invalidated tree
/// stays alive until the last running query releases it, and only then is
/// its index file dropped from the buffer pool (the shared_ptr deleter).
/// The cache never destroys a tree a query is probing — that is the cache's
/// "pinning" contract. Corollary: every TreeRef must be released before the
/// BufferPool is destroyed.
///
/// Invalidation: the cache registers a BufferPool drop listener, so
/// dropping a dataset's heap file (storage-level truth) invalidates every
/// tree built over it without the caller having to know the cache exists.
/// InvalidateDataset covers logical drops where the file lives on.
///
/// Concurrency: shards are independent (key-hashed); within a shard, a
/// build in flight parks later requests for the same key on a condition
/// variable, so a popular cold dataset is bulk-loaded exactly once
/// (thundering-herd protection). Shard mutexes are never held across the
/// bulk load itself, nor across tree destruction (which re-enters the pool
/// via DropFile).
class IndexCache {
 public:
  struct Config {
    size_t capacity = 8;     ///< Max ready entries across all shards.
    uint32_t num_shards = 4; ///< Key-hashed; >= 1.
  };

  using TreeRef = std::shared_ptr<const RStarTree>;

  IndexCache(BufferPool* pool, Config config);
  ~IndexCache();

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Returns the cached tree over `input` at `fill_factor`, bulk loading on
  /// a miss. Failed builds are not cached (the next request retries).
  Result<TreeRef> GetOrBuild(const JoinInput& input, double fill_factor);

  /// True when a ready entry exists (no build, no LRU touch, no hit/miss
  /// accounting) — what the planner asks when costing a warm R-tree join.
  bool Contains(const JoinInput& input, double fill_factor) const;

  /// Removes every entry built over dataset file `file` (also wired to the
  /// pool's drop listener). Running queries keep their refs.
  void InvalidateFile(FileId file);

  /// Removes every entry for dataset `name` (logical drop).
  void InvalidateDataset(const std::string& name);

  /// Removes everything.
  void Clear();

  /// Ready entries currently cached.
  size_t size() const;

  uint64_t hits() const { return hits_->Value(); }
  uint64_t misses() const { return misses_->Value(); }
  uint64_t evictions() const { return evictions_->Value(); }

 private:
  struct Entry {
    enum class State { kBuilding, kReady, kFailed };

    std::string key;
    FileId dataset_file = kInvalidFileId;
    std::string dataset_name;
    State state = State::kBuilding;
    TreeRef tree;       // Set when kReady.
    Status error;       // Set when kFailed.
  };
  using EntryRef = std::shared_ptr<Entry>;

  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable build_cv;  ///< Signalled on build completion.
    std::map<std::string, EntryRef> entries;
    /// LRU order of ready keys, most recent first.
    std::list<std::string> lru;
  };

  static std::string Key(const JoinInput& input, double fill_factor);
  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  /// Removes `key`'s LRU node if present.
  static void EraseLru(Shard* shard, const std::string& key);

  /// Pops over-capacity ready entries from `shard` into `out` (destroyed by
  /// the caller after unlocking).
  void EvictOverCapacityLocked(Shard* shard, std::vector<EntryRef>* out);

  /// Wraps a built tree so the last release drops its index file.
  TreeRef WrapTree(RStarTree&& tree);

  BufferPool* pool_;
  const Config config_;
  const size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t drop_listener_token_ = 0;
  std::atomic<uint64_t> next_build_id_{1};

  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  Counter* invalidations_;
};

}  // namespace pbsm

#endif  // PBSM_SERVICE_INDEX_CACHE_H_
