#include "service/join_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/logging.h"
#include "service/shard_manager.h"

namespace pbsm {

namespace {

double Log2Safe(double n) { return std::log2(std::max(n, 2.0)); }

/// Index-build cost of one side: n*log2(n) for the Hilbert sort that
/// dominates bulk loading. Zero when the service cache already holds the
/// tree — that term vanishing is exactly what makes warm R-tree joins win.
double BuildCost(const PlannerSide& side, const PlannerCosts& c) {
  if (side.index_cached) return 0.0;
  const double n = static_cast<double>(side.info->cardinality);
  return c.index_build_per_tuple_log * n * Log2Safe(n);
}

}  // namespace

std::string PlanChoice::TreeString() const {
  std::string out;
  for (const PlanOpEstimate& node : operator_tree) {
    out.append(static_cast<size_t>(node.depth) * 2, ' ');
    char buf[96];
    std::snprintf(buf, sizeof(buf), " (rows~%.0f, est=%.4fs)\n",
                  node.est_rows, node.est_seconds);
    out += node.op + ": " + node.detail + buf;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string PlanChoice::ToString() const {
  std::string out;
  for (size_t i = 0; i < alternatives.size(); ++i) {
    if (i > 0) out += " > ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s(%.3fs)",
                  std::string(JoinMethodName(alternatives[i].method)).c_str(),
                  alternatives[i].estimated_seconds);
    out += buf;
  }
  return out;
}

PlanChoice PlanJoin(const PlannerSide& r, const PlannerSide& s,
                    uint32_t num_threads, const PlannerCosts& c) {
  PBSM_CHECK(r.info != nullptr && s.info != nullptr);
  const double n_r = static_cast<double>(r.info->cardinality);
  const double n_s = static_cast<double>(s.info->cardinality);
  const double n_total = n_r + n_s;

  // Candidate estimate: histogram when both sides have one (sharper on
  // clustered data), catalog density fallback otherwise.
  double candidates;
  if (r.histogram != nullptr && s.histogram != nullptr &&
      r.histogram->nx() == s.histogram->nx() &&
      r.histogram->ny() == s.histogram->ny()) {
    candidates = r.histogram->EstimateJoinCandidates(*s.histogram);
  } else {
    candidates = EstimateCandidatePairs(*r.info, *s.info);
  }

  // Refinement cost is common to every method (they all verify the same
  // candidate set, modulo each method's false-positive rate) and scales
  // with geometry complexity: segment intersection work grows with the
  // combined vertex count of a pair. Adaptive refinement replaces the
  // exact predicate with a cheap cell test for most candidates; only the
  // boundary-collision fraction still pays the full exact cost.
  const double complexity =
      std::max(1.0, (r.info->avg_points() + s.info->avg_points()) / 30.0);
  const double exact_per_candidate = c.refine_per_candidate * complexity;
  const double refine =
      c.refine_mode == RefineMode::kExact
          ? exact_per_candidate * candidates
          : (c.cell_test_per_candidate +
             c.adaptive_exact_fraction * exact_per_candidate) *
                candidates;

  uint32_t threads = num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  PlanChoice choice;
  choice.estimated_candidates = candidates;
  // Grid precision for adaptive covers, from the same catalog statistics
  // the engine's auto choice would use — computed here once so every
  // executor (and the explain output) agrees on it.
  choice.grid_order = ChooseGridOrder(
      Rect::Union(r.info->universe, s.info->universe),
      (r.info->avg_mbr_width() + s.info->avg_mbr_width()) / 2.0,
      (r.info->avg_mbr_height() + s.info->avg_mbr_height()) / 2.0);
  auto add = [&choice](JoinMethod m, double sec) {
    choice.alternatives.push_back({m, sec});
  };

  const double pbsm_filter = c.pbsm_per_tuple * n_total;
  // The candidate merge-dedup only exists under DedupMode::kMerge; the
  // default two-layer filter emits each candidate exactly once and has no
  // such phase.
  const double merge_dedup = c.dedup_mode == DedupMode::kMerge
                                 ? c.merge_dedup_per_candidate * candidates
                                 : 0.0;
  add(JoinMethod::kPbsm, pbsm_filter + merge_dedup + refine);

  // Parallel PBSM: near-linear filter+refine speedup minus a per-tuple
  // coordination tax. At threads == 1 this is strictly pbsm + overhead, so
  // the serial executor wins on a single-core host. The merge-dedup term
  // stays outside the speedup divisor — it is a serial phase in the
  // executor too.
  const double speedup = 1.0 + c.parallel_scaling * (threads - 1);
  add(JoinMethod::kParallelPbsm,
      (pbsm_filter + refine) / speedup + merge_dedup +
          c.parallel_overhead_per_tuple * n_total);

  // Index scans run ~2x faster on the in-memory SoA ribbons (the bulk-load
  // default) than on AoS page parsing; discount the traversal/probe terms
  // accordingly so the index methods are not overcosted on warm caches.
  const double node_scan =
      ResolveNodeLayout(c.node_layout) != NodeLayout::kAos
          ? c.simd_node_scan_factor
          : 1.0;

  // R-tree join: build whatever is not cached, then synchronized traversal.
  add(JoinMethod::kRtree,
      BuildCost(r, c) + BuildCost(s, c) +
          c.rtree_traverse_per_tuple * node_scan * n_total + refine);

  // INL: index the smaller side (matching the facade), probe with the
  // larger. The per-probe log term deliberately overestimates — INL only
  // ever wins when one input is tiny, and overcosting it is the safe error.
  const PlannerSide& small = n_r <= n_s ? r : s;
  const double n_probe = std::max(n_r, n_s);
  const double n_indexed = std::min(n_r, n_s);
  add(JoinMethod::kInl,
      BuildCost(small, c) +
          c.inl_probe_log * node_scan * n_probe * Log2Safe(n_indexed) +
          refine);

  add(JoinMethod::kSpatialHash, c.hash_per_tuple * n_total + refine);

  // Z-order: cheap transform but the z-cell approximation inflates the
  // candidate set, so refinement pays a constant factor.
  add(JoinMethod::kZOrder,
      c.zorder_per_tuple * n_total + refine * c.zorder_candidate_inflation);

  std::stable_sort(choice.alternatives.begin(), choice.alternatives.end(),
                   [](const MethodCost& a, const MethodCost& b) {
                     return a.estimated_seconds < b.estimated_seconds;
                   });
  choice.method = choice.alternatives.front().method;
  choice.estimated_seconds = choice.alternatives.front().estimated_seconds;

  // Render the chosen method as the operator tree BuildJoinTree will
  // construct, splitting that method's total onto the operator that pays
  // each term. `est_rows` out of the filter is the candidate estimate; the
  // planner has no output-selectivity model, so refine reuses it as an
  // upper bound.
  const std::string pair_name = r.info->name + " x " + s.info->name;
  const double filter_cost =
      choice.estimated_seconds -
      (choice.method == JoinMethod::kZOrder
           ? refine * c.zorder_candidate_inflation
           : refine);
  switch (choice.method) {
    case JoinMethod::kParallelPbsm:
      choice.operator_tree.push_back({0, "parallel_join",
                                      "parallel_pbsm " + pair_name, candidates,
                                      choice.estimated_seconds});
      break;
    case JoinMethod::kZOrder:
      choice.operator_tree.push_back({0, "refine", "refine " + pair_name,
                                      candidates,
                                      refine * c.zorder_candidate_inflation});
      choice.operator_tree.push_back(
          {1, "filter_join",
           std::string(JoinMethodName(choice.method)) + " filter " + pair_name,
           candidates * c.zorder_candidate_inflation, filter_cost});
      break;
    default:
      choice.operator_tree.push_back(
          {0, "refine", "refine " + pair_name, candidates, refine});
      choice.operator_tree.push_back(
          {1, "filter_join",
           std::string(JoinMethodName(choice.method)) + " filter " + pair_name,
           candidates, filter_cost});
      break;
  }
  return choice;
}

std::string ShardedPlan::ToString() const {
  std::string out;
  for (const ShardSlicePlan& slice : slices) {
    char line[160];
    if (slice.r_cardinality == 0 || slice.s_cardinality == 0) {
      std::snprintf(line, sizeof(line), "shard%u: empty slice (%llu x %llu)\n",
                    slice.shard,
                    static_cast<unsigned long long>(slice.r_cardinality),
                    static_cast<unsigned long long>(slice.s_cardinality));
    } else {
      std::snprintf(
          line, sizeof(line), "shard%u: %s est=%.3fs (%llu x %llu)\n",
          slice.shard,
          std::string(JoinMethodName(slice.choice.method)).c_str(),
          slice.choice.estimated_seconds,
          static_cast<unsigned long long>(slice.r_cardinality),
          static_cast<unsigned long long>(slice.s_cardinality));
    }
    out += line;
  }
  char totals[96];
  std::snprintf(totals, sizeof(totals),
                "critical path %.3fs, serial %.3fs over %zu shards",
                critical_path_seconds, serial_seconds, slices.size());
  out += totals;
  return out;
}

Result<ShardedPlan> PlanShardedJoin(const ShardManager& shards,
                                    const std::string& r_dataset,
                                    const std::string& s_dataset,
                                    uint32_t num_threads,
                                    const PlannerCosts& costs,
                                    double index_fill_factor) {
  ShardedPlan plan;
  plan.slices.reserve(shards.num_shards());
  for (uint32_t i = 0; i < shards.num_shards(); ++i) {
    PBSM_ASSIGN_OR_RETURN(const ShardManager::ShardDatasetRef r,
                          shards.FindDataset(i, r_dataset));
    PBSM_ASSIGN_OR_RETURN(const ShardManager::ShardDatasetRef s,
                          shards.FindDataset(i, s_dataset));
    ShardSlicePlan slice;
    slice.shard = i;
    slice.r_cardinality = r->info.cardinality;
    slice.s_cardinality = s->info.cardinality;
    if (r->info.cardinality > 0 && s->info.cardinality > 0) {
      const ShardManager::Shard& shard = shards.shard(i);
      PlannerSide pr{&r->info,
                     r->histogram.has_value() ? &*r->histogram : nullptr,
                     shard.cache->Contains(JoinInput{r->heap.get(), r->info},
                                           index_fill_factor)};
      PlannerSide ps{&s->info,
                     s->histogram.has_value() ? &*s->histogram : nullptr,
                     shard.cache->Contains(JoinInput{s->heap.get(), s->info},
                                           index_fill_factor)};
      slice.choice = PlanJoin(pr, ps, num_threads, costs);
      plan.critical_path_seconds = std::max(plan.critical_path_seconds,
                                            slice.choice.estimated_seconds);
      plan.serial_seconds += slice.choice.estimated_seconds;
    }
    plan.slices.push_back(std::move(slice));
  }
  return plan;
}

}  // namespace pbsm
