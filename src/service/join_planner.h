#ifndef PBSM_SERVICE_JOIN_PLANNER_H_
#define PBSM_SERVICE_JOIN_PLANNER_H_

#include <string>
#include <vector>

#include "core/refinement_engine.h"
#include "core/selectivity.h"
#include "core/spatial_join.h"
#include "rtree/node_layout.h"
#include "storage/catalog.h"

namespace pbsm {

/// Everything the planner knows about one join input. `histogram` may be
/// null (catalog-only costing falls back to EstimateCandidatePairs);
/// `index_cached` reflects the service's IndexCache, letting warm queries
/// skip the index-build term of the R-tree methods.
struct PlannerSide {
  const RelationInfo* info = nullptr;
  const SpatialHistogram* histogram = nullptr;
  bool index_cached = false;
};

/// One costed alternative, for explain output and planner tests.
struct MethodCost {
  JoinMethod method = JoinMethod::kPbsm;
  double estimated_seconds = 0.0;
};

/// One operator of the planned tree, pre-order with explicit nesting depth
/// (0 = root; a node's children follow it at depth + 1). `op` matches the
/// exec-layer operator key (`refine`, `filter_join`, ...) so explain output
/// lines up with the `exec.<op>.*` metrics the execution will emit.
/// `est_rows` is the planner's row-count estimate flowing *out* of the
/// operator — an upper bound for refine, whose output selectivity the
/// planner does not model.
struct PlanOpEstimate {
  int depth = 0;
  std::string op;
  std::string detail;
  double est_rows = 0.0;
  double est_seconds = 0.0;
};

/// The planner's decision: the method to run plus the full cost table it
/// was picked from (ascending by cost) and the shared candidate estimate.
struct PlanChoice {
  JoinMethod method = JoinMethod::kPbsm;
  double estimated_seconds = 0.0;
  double estimated_candidates = 0.0;
  /// Cell-grid precision for adaptive refinement, derived from the catalog
  /// extent statistics of both inputs (ChooseGridOrder) — the service
  /// writes it into JoinOptions::refine.grid_order so every executor
  /// rasterizes at the planner's precision instead of re-deriving it.
  uint32_t grid_order = 0;
  std::vector<MethodCost> alternatives;  ///< All six, cheapest first.
  /// Pre-order operator tree the exec layer will build for the chosen
  /// method, with the per-method cost split onto the operators that pay it.
  std::vector<PlanOpEstimate> operator_tree;

  /// "pbsm(0.29s) > rtree(0.41s) > ..." for logs and `serve` explain.
  std::string ToString() const;
  /// Indented one-operator-per-line rendering of `operator_tree` with the
  /// per-operator row and cost estimates, for `--explain`.
  std::string TreeString() const;
};

/// Cost-model coefficients (seconds per unit work), calibrated on the
/// repo's TIGER-style workloads. The absolute scale does not need to match
/// any particular host — only the *ratios* between methods matter, since
/// the planner picks an argmin. Overridable for tests.
struct PlannerCosts {
  /// Refinement of one candidate pair, at the reference complexity of ~30
  /// combined vertices per pair (scaled by the actual average).
  double refine_per_candidate = 4.2e-6;
  double pbsm_per_tuple = 1.0e-6;        ///< Partition + sweep, per tuple.
  double parallel_overhead_per_tuple = 0.3e-6;
  double parallel_scaling = 0.85;        ///< Per-extra-thread efficiency.
  double index_build_per_tuple_log = 1.2e-7;  ///< x n*log2(n), per side.
  double rtree_traverse_per_tuple = 3.0e-7;
  double inl_probe_log = 3.0e-6;         ///< x n_probe*log2(n_indexed).

  /// Node layout the index methods will run with; mirrors
  /// JoinOptions::rtree_layout (same default — kAuto resolves through
  /// PBSM_RTREE_LAYOUT at costing time).
  NodeLayout node_layout = NodeLayout::kAuto;
  /// Discount on the index-scan terms (rtree traversal, INL probes) when
  /// node scans run on the in-memory SoA ribbons instead of AoS page
  /// parsing — calibrated from bench_micro_rtree --compare-layouts, where
  /// the ribbon probe path runs at >= 2x the AoS path.
  double simd_node_scan_factor = 0.5;
  double hash_per_tuple = 2.3e-6;
  double zorder_per_tuple = 2.0e-6;
  double zorder_candidate_inflation = 4.0;  ///< Z-cell false-positive factor.

  /// Merge-dedup of one candidate pair — the phase the two-layer filter
  /// deletes. Charged to the PBSM methods only under DedupMode::kMerge,
  /// and *not* divided by the parallel speedup: the executor's k-way merge
  /// is a serial phase, which is exactly why eliminating it matters more
  /// as threads grow (Amdahl).
  double merge_dedup_per_candidate = 1.1e-6;
  /// Dedup scheme the PBSM executors will run with; mirrors
  /// JoinOptions::dedup_mode (same default).
  DedupMode dedup_mode = DedupMode::kTwoLayer;

  /// Refinement strategy the join will run with; mirrors
  /// JoinOptions::refine.mode (same default). Under the adaptive modes the
  /// per-candidate refinement cost splits into a cheap cell test for every
  /// candidate plus the full exact predicate on only the boundary-collision
  /// fraction.
  RefineMode refine_mode = RefineMode::kExact;
  /// Cell classification + amortized cover build, per candidate pair.
  double cell_test_per_candidate = 0.7e-6;
  /// Fraction of candidates the cell filter cannot settle (boundary
  /// collisions and short-run exact fallbacks), measured on the TIGER-style
  /// workloads. Those pairs still pay refine_per_candidate.
  double adaptive_exact_fraction = 0.15;
};

/// Costs all six join methods for r JOIN s and returns the cheapest.
/// `num_threads` is the worker count the parallel executor would get
/// (0 = hardware concurrency, mirroring JoinOptions::num_threads).
PlanChoice PlanJoin(const PlannerSide& r, const PlannerSide& s,
                    uint32_t num_threads = 0,
                    const PlannerCosts& costs = PlannerCosts());

class ShardManager;

/// Plan of one shard's sub-join within a sharded query.
struct ShardSlicePlan {
  uint32_t shard = 0;
  uint64_t r_cardinality = 0;
  uint64_t s_cardinality = 0;
  PlanChoice choice;  ///< Default-initialized when the slice pair is empty.
};

/// The router's scatter as the planner sees it: one independently costed
/// plan per shard. Methods may differ across shards — each slice is costed
/// from that shard's own statistics and index-cache state.
struct ShardedPlan {
  std::vector<ShardSlicePlan> slices;
  /// max over slices of estimated_seconds — the scatter's estimated
  /// latency on a host with one core per shard.
  double critical_path_seconds = 0.0;
  /// sum over slices — the estimated single-core (work) cost.
  double serial_seconds = 0.0;

  /// One line per shard plus the critical-path/serial totals.
  std::string ToString() const;
};

/// Costs r JOIN s per shard of `shards` (shard-aware costing: each slice's
/// histogram, cardinalities, and cache warmth). Empty slice pairs get a
/// zero-cost entry. `index_fill_factor` must match what the router will
/// run with, so cache-warmth checks hit the same entries.
Result<ShardedPlan> PlanShardedJoin(
    const ShardManager& shards, const std::string& r_dataset,
    const std::string& s_dataset, uint32_t num_threads = 0,
    const PlannerCosts& costs = PlannerCosts(),
    double index_fill_factor = JoinOptions().index_fill_factor);

}  // namespace pbsm

#endif  // PBSM_SERVICE_JOIN_PLANNER_H_
