#include "service/join_router.h"

#include <algorithm>
#include <ctime>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"
#include "core/spatial_sharding.h"

namespace pbsm {

namespace {

std::chrono::steady_clock::duration ToDuration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

double SecondsBetween(std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// CPU time consumed by the calling thread, for the contention-immune
/// ShardSliceStats::cpu_seconds (worker threads time-share cores, so a
/// sub-join's wall time says nothing about its work on a loaded host).
double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// RouterQuery.
// ---------------------------------------------------------------------------

const Result<JoinResponse>& RouterQuery::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool RouterQuery::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void RouterQuery::Cancel() {
  canceller_.Cancel(Status::Cancelled("query cancelled by client"));
}

// ---------------------------------------------------------------------------
// JoinRouter.
// ---------------------------------------------------------------------------

JoinRouter::JoinRouter(ShardManager* shards, JoinRouterConfig config)
    : shards_(shards), config_(std::move(config)) {
  const uint32_t n = shards_->num_shards();
  MetricsRegistry& metrics = MetricsRegistry::Global();
  submitted_ = metrics.GetCounter("service.shard.queries.submitted");
  completed_ = metrics.GetCounter("service.shard.queries.completed");
  failed_ = metrics.GetCounter("service.shard.queries.failed");
  cancelled_ = metrics.GetCounter("service.shard.queries.cancelled");
  rejected_ = metrics.GetCounter("service.shard.queries.rejected");
  subjoins_ = metrics.GetCounter("service.shard.subjoins");
  stolen_ = metrics.GetCounter("service.shard.stolen_partitions");
  redispatches_ = metrics.GetCounter("service.shard.redispatches");
  border_filtered_ = metrics.GetCounter("service.shard.border_filtered");
  planned_ = metrics.GetCounter("service.shard.subjoins_planned");

  queues_.reserve(n);
  queue_depth_gauges_.reserve(n);
  shard_latency_us_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<BoundedQueue<SubJoinRef>>(
        std::max<size_t>(config_.queue_capacity, 1), /*num_priorities=*/2));
    const std::string prefix = "service.shard." + std::to_string(i);
    queue_depth_gauges_.push_back(metrics.GetGauge(prefix + ".queue_depth"));
    shard_latency_us_.push_back(metrics.GetHistogram(prefix + ".latency_us"));
  }

  const uint32_t per_shard = std::max(1u, config_.workers_per_shard);
  workers_.reserve(static_cast<size_t>(n) * per_shard);
  for (uint32_t shard = 0; shard < n; ++shard) {
    for (uint32_t w = 0; w < per_shard; ++w) {
      workers_.emplace_back([this, shard] { WorkerLoop(shard); });
    }
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
}

JoinRouter::~JoinRouter() { Shutdown(/*drain=*/false); }

Result<std::shared_ptr<RouterQuery>> JoinRouter::Submit(JoinRequest request) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("router is shutting down");
  }
  if (request.timeout_seconds < 0) {
    return Status::InvalidArgument("negative timeout");
  }
  // Validate dataset names once up front (registration is all-or-nothing,
  // so shard 0 speaks for every shard).
  PBSM_RETURN_IF_ERROR(shards_->FindDataset(0, request.r_dataset).status());
  PBSM_RETURN_IF_ERROR(shards_->FindDataset(0, request.s_dataset).status());

  // Dispatch set: every strip, or — windowed — only the strips the window
  // overlaps. Border pairs stay complete because the ownership corner is
  // clamped by the window's left edge (see ShardLayout::PairOwner).
  const ShardLayout layout = shards_->layout();
  uint32_t first = 0;
  uint32_t last = shards_->num_shards() - 1;
  if (request.window.has_value() && !request.window->empty()) {
    const ShardLayout::ShardRange range = layout.Overlapping(*request.window);
    first = std::min(range.first, last);
    last = std::min(range.last, last);
  }

  auto query = std::make_shared<RouterQuery>();
  query->request_ = std::move(request);
  query->submit_time_ = std::chrono::steady_clock::now();
  const uint32_t num_subs = last - first + 1;
  query->remaining_ = num_subs;
  query->response_.shard_slices.reserve(num_subs);
  if (query->request_.method.has_value()) {
    query->response_.method = *query->request_.method;
  }

  TraceSpan span("router/scatter");
  std::vector<SubJoinRef> subs;
  subs.reserve(num_subs);
  for (uint32_t shard = first; shard <= last; ++shard) {
    auto sub = std::make_shared<SubJoin>();
    sub->query = query;
    sub->shard = shard;
    sub->enqueue_time = query->submit_time_;
    subs.push_back(std::move(sub));
  }
  const size_t priority = static_cast<size_t>(query->request_.priority);
  for (const SubJoinRef& sub : subs) {
    if (queues_[sub->shard]->TryPush(sub, priority)) {
      UpdateQueueGauge(sub->shard);
      continue;
    }
    // Backpressure rejects the query whole: withdraw the scatter by
    // poisoning every sub-join's claim. A worker may already have claimed
    // an earlier one — the cancel stops it at its next check, and the
    // orphaned gather state dies with the last SubJoinRef.
    for (const SubJoinRef& poisoned : subs) {
      poisoned->claimed.store(true, std::memory_order_release);
    }
    query->canceller_.Cancel(Status::Cancelled("scatter withdrawn"));
    rejected_->Add();
    return Status::ResourceExhausted(
        "shard " + std::to_string(sub->shard) + " queue full (" +
        std::to_string(queues_[sub->shard]->capacity()) +
        " sub-joins); retry with backoff");
  }
  submitted_->Add();

  {
    std::lock_guard<std::mutex> lock(running_mutex_);
    running_.erase(
        std::remove_if(
            running_.begin(), running_.end(),
            [](const std::weak_ptr<RouterQuery>& w) { return w.expired(); }),
        running_.end());
    running_.push_back(query);
  }

  const bool want_deadline = query->request_.timeout_seconds > 0;
  const bool want_watch = config_.speculative_deadline_seconds > 0;
  if (want_deadline || want_watch) {
    std::lock_guard<std::mutex> lock(monitor_mutex_);
    if (want_deadline) {
      deadlines_.emplace(
          query->submit_time_ + ToDuration(query->request_.timeout_seconds),
          query);
    }
    if (want_watch) {
      for (const SubJoinRef& sub : subs) watchlist_.emplace_back(sub);
    }
    monitor_cv_.notify_one();
  }
  return query;
}

Result<JoinResponse> JoinRouter::Execute(JoinRequest request) {
  PBSM_ASSIGN_OR_RETURN(const std::shared_ptr<RouterQuery> query,
                        Submit(std::move(request)));
  return query->Wait();
}

void JoinRouter::WorkerLoop(uint32_t home_shard) {
  const auto poll = ToDuration(std::max(config_.steal_poll_seconds, 1e-4));
  BoundedQueue<SubJoinRef>& home = *queues_[home_shard];
  while (true) {
    SubJoinRef sub;
    bool stolen = false;
    if (std::optional<SubJoinRef> own = home.PopFor(poll)) {
      sub = std::move(*own);
      UpdateQueueGauge(home_shard);
    } else if (config_.enable_stealing) {
      // Idle beat elapsed with an empty home queue: steal from the deepest
      // sibling (partition stealing — the straggler's backlog drains on
      // this otherwise-idle worker).
      uint32_t victim = home_shard;
      size_t deepest = 0;
      for (uint32_t i = 0; i < queues_.size(); ++i) {
        if (i == home_shard) continue;
        const size_t depth = queues_[i]->size();
        if (depth > deepest) {
          deepest = depth;
          victim = i;
        }
      }
      if (victim != home_shard) {
        if (std::optional<SubJoinRef> theft = queues_[victim]->TryPop()) {
          sub = std::move(*theft);
          stolen = true;
          UpdateQueueGauge(victim);
        }
      }
    }
    if (sub == nullptr) {
      if (home.closed()) {
        if (AllQueuesEmpty()) return;
        // Draining shutdown with work left on sibling queues: yield the
        // core to whoever is finishing it.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    // Claim-or-skip: steal, speculative re-dispatch, and withdrawal all
    // race on this exchange, so the sub-join settles exactly once.
    if (sub->claimed.exchange(true, std::memory_order_acq_rel)) continue;
    RunSubJoin(sub, stolen);
  }
}

void JoinRouter::MonitorLoop() {
  const bool speculate = config_.speculative_deadline_seconds > 0;
  const auto spec_deadline = ToDuration(
      speculate ? config_.speculative_deadline_seconds : 0.0);
  std::unique_lock<std::mutex> lock(monitor_mutex_);
  while (true) {
    if (stopping_.load(std::memory_order_acquire)) return;
    auto now = std::chrono::steady_clock::now();
    auto wake = now + std::chrono::hours(1);
    if (!deadlines_.empty()) wake = std::min(wake, deadlines_.top().first);
    if (speculate && !watchlist_.empty()) {
      // Scan a few times per speculative deadline so a straggler is
      // re-dispatched soon after it crosses the threshold.
      wake = std::min(wake, now + std::max(spec_deadline / 4,
                                           ToDuration(0.0005)));
    }
    monitor_cv_.wait_until(lock, wake);
    if (stopping_.load(std::memory_order_acquire)) return;
    now = std::chrono::steady_clock::now();

    // 1. Fire expired query timeouts.
    while (!deadlines_.empty() && deadlines_.top().first <= now) {
      std::weak_ptr<RouterQuery> weak = deadlines_.top().second;
      deadlines_.pop();
      lock.unlock();
      if (QueryRef query = weak.lock(); query != nullptr && !query->done()) {
        query->canceller_.Cancel(Status::Cancelled(
            "query exceeded its " +
            std::to_string(query->request_.timeout_seconds) + "s timeout"));
      }
      lock.lock();
    }

    if (!speculate) continue;

    // 2. Speculative re-dispatch: a sub-join still unclaimed past the
    // deadline gets a copy pushed onto the shallowest sibling queue. The
    // original and the copy race for the claim (exactly-once).
    const size_t scan = watchlist_.size();
    for (size_t i = 0; i < scan; ++i) {
      std::weak_ptr<SubJoin> weak = std::move(watchlist_.front());
      watchlist_.pop_front();
      SubJoinRef sub = weak.lock();
      if (sub == nullptr || sub->claimed.load(std::memory_order_acquire) ||
          sub->redispatched.load(std::memory_order_acquire)) {
        continue;  // Settled, running, or already re-dispatched: drop.
      }
      if (now - sub->enqueue_time < spec_deadline) {
        watchlist_.push_back(std::move(weak));  // Not yet a straggler.
        continue;
      }
      uint32_t target = sub->shard;
      size_t shallowest = SIZE_MAX;
      for (uint32_t q = 0; q < queues_.size(); ++q) {
        if (q == sub->shard) continue;
        const size_t depth = queues_[q]->size();
        if (depth < shallowest) {
          shallowest = depth;
          target = q;
        }
      }
      if (target == sub->shard) continue;  // Single shard: nowhere to go.
      sub->redispatched.store(true, std::memory_order_release);
      const size_t priority =
          static_cast<size_t>(sub->query->request_.priority);
      lock.unlock();
      if (queues_[target]->TryPush(sub, priority)) {
        redispatches_->Add();
        UpdateQueueGauge(target);
      }
      lock.lock();
    }
  }
}

bool JoinRouter::AllQueuesEmpty() const {
  for (const auto& queue : queues_) {
    if (queue->size() > 0) return false;
  }
  return true;
}

void JoinRouter::RunSubJoin(const SubJoinRef& sub, bool stolen) {
  const QueryRef& query = sub->query;
  if (stolen) stolen_->Add();
  if (!draining_.load(std::memory_order_acquire) ||
      query->canceller_.is_cancelled()) {
    CompleteSub(sub,
                query->canceller_.is_cancelled()
                    ? query->canceller_.CancellationStatus()
                    : Status::Cancelled("router shut down"),
                nullptr);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(query->mutex_);
    if (!query->started_) {
      query->started_ = true;
      query->first_start_ = std::chrono::steady_clock::now();
    }
  }
  TraceSpan span("router/subjoin");
  ShardSliceStats slice;
  slice.shard = sub->shard;
  slice.stolen = stolen;
  slice.speculative = sub->redispatched.load(std::memory_order_acquire);
  const auto start = std::chrono::steady_clock::now();
  const double cpu_start = ThreadCpuSeconds();
  const Status status = ExecuteSubJoin(query, sub->shard, &slice);
  slice.cpu_seconds = ThreadCpuSeconds() - cpu_start;
  const auto end = std::chrono::steady_clock::now();
  slice.exec_seconds = SecondsBetween(start, end);
  shard_latency_us_[sub->shard]->Record(
      static_cast<uint64_t>(slice.exec_seconds * 1e6));
  if (!status.ok()) {
    // First real error wins and cancels every sibling shard; kCancelled is
    // ignored by Report so it can never mask the root cause.
    query->canceller_.Report(status);
    CompleteSub(sub, status, nullptr);
    return;
  }
  CompleteSub(sub, status, &slice);
}

Status JoinRouter::ExecuteSubJoin(const QueryRef& query, uint32_t shard_id,
                                  ShardSliceStats* slice) {
  const JoinRequest& request = query->request_;
  ShardManager::Shard& shard = shards_->shard(shard_id);
  PBSM_ASSIGN_OR_RETURN(const ShardManager::ShardDatasetRef r,
                        shards_->FindDataset(shard_id, request.r_dataset));
  PBSM_ASSIGN_OR_RETURN(const ShardManager::ShardDatasetRef s,
                        shards_->FindDataset(shard_id, request.s_dataset));
  slice->method = request.method.value_or(JoinMethod::kPbsm);
  if (r->info.cardinality == 0 || s->info.cardinality == 0) {
    return Status::OK();  // Empty slice: this strip contributes nothing.
  }

  JoinSpec spec;
  spec.predicate = request.predicate;
  spec.options = config_.join_defaults;
  spec.options.cancel = &query->canceller_;
  if (request.refine_mode.has_value()) {
    spec.options.refine.mode = *request.refine_mode;
  }

  // Shard-aware plan: this shard's slice statistics and THIS shard's index
  // cache state — a warm shard may run kRtree while a cold sibling picks
  // kPbsm for the same query.
  if (request.method.has_value()) {
    spec.method = *request.method;
  } else {
    PlannerSide pr{&r->info,
                   r->histogram.has_value() ? &*r->histogram : nullptr,
                   shard.cache->Contains(JoinInput{r->heap.get(), r->info},
                                         spec.options.index_fill_factor)};
    PlannerSide ps{&s->info,
                   s->histogram.has_value() ? &*s->histogram : nullptr,
                   shard.cache->Contains(JoinInput{s->heap.get(), s->info},
                                         spec.options.index_fill_factor)};
    PlannerCosts costs;
    costs.dedup_mode = spec.options.dedup_mode;
    costs.refine_mode = spec.options.refine.mode;
    const PlanChoice plan =
        PlanJoin(pr, ps, config_.join_defaults.num_threads, costs);
    spec.method = plan.method;
    if (spec.options.refine.mode != RefineMode::kExact &&
        spec.options.refine.grid_order == 0) {
      spec.options.refine.grid_order = plan.grid_order;
    }
    planned_->Add();
    std::lock_guard<std::mutex> lock(query->mutex_);
    query->response_.planner_chosen = true;
    if (query->response_.plan.empty()) {
      query->response_.plan =
          "shard" + std::to_string(shard_id) + ": " + plan.ToString();
    }
  }
  slice->method = spec.method;

  // Index-method sub-joins go through this shard's private cache.
  IndexCache::TreeRef r_tree;
  IndexCache::TreeRef s_tree;
  const JoinInput r_input{r->heap.get(), r->info};
  const JoinInput s_input{s->heap.get(), s->info};
  if (spec.method == JoinMethod::kRtree) {
    PBSM_ASSIGN_OR_RETURN(
        r_tree, shard.cache->GetOrBuild(r_input,
                                        spec.options.index_fill_factor));
    PBSM_ASSIGN_OR_RETURN(
        s_tree, shard.cache->GetOrBuild(s_input,
                                        spec.options.index_fill_factor));
    spec.r_index = r_tree.get();
    spec.s_index = s_tree.get();
  } else if (spec.method == JoinMethod::kInl) {
    if (r->info.cardinality <= s->info.cardinality) {
      PBSM_ASSIGN_OR_RETURN(
          r_tree, shard.cache->GetOrBuild(r_input,
                                          spec.options.index_fill_factor));
      spec.r_index = r_tree.get();
    } else {
      PBSM_ASSIGN_OR_RETURN(
          s_tree, shard.cache->GetOrBuild(s_input,
                                          spec.options.index_fill_factor));
      spec.s_index = s_tree.get();
    }
  }

  // Slice sink: window filter, border-ownership dedup, local -> global OID
  // translation. The ownership test is the two-layer rule lifted to shard
  // granularity — with both MBRs replicated into the owner strip, dropping
  // every non-owner copy leaves each pair exactly once across the gather.
  const ShardLayout layout = shards_->layout();
  const ShardManager::ShardDataset* rd = r.get();
  const ShardManager::ShardDataset* sd = s.get();
  const std::optional<Rect> window = request.window;
  const ResultSink user_sink = request.sink;
  uint64_t results = 0;
  uint64_t border_dropped = 0;
  spec.sink = [&, shard_id](Oid ro, Oid so) {
    const auto rit = rd->mbrs.find(ro.Encode());
    const auto sit = sd->mbrs.find(so.Encode());
    if (rit == rd->mbrs.end() || sit == sd->mbrs.end()) return;
    if (window.has_value() && (!rit->second.Intersects(*window) ||
                               !sit->second.Intersects(*window))) {
      return;
    }
    const uint32_t owner =
        window.has_value()
            ? layout.PairOwner(rit->second, sit->second, *window)
            : layout.PairOwner(rit->second, sit->second);
    if (owner != shard_id) {
      ++border_dropped;
      return;
    }
    ++results;
    if (user_sink) {
      user_sink(rd->local_to_global.at(ro.Encode()),
                sd->local_to_global.at(so.Encode()));
    }
  };

  PBSM_RETURN_IF_ERROR(
      SpatialJoin(shard.pool.get(), r_input, s_input, spec).status());
  slice->num_results = results;
  if (border_dropped > 0) border_filtered_->Add(border_dropped);
  return Status::OK();
}

void JoinRouter::CompleteSub(const SubJoinRef& sub, const Status& status,
                             const ShardSliceStats* slice) {
  const QueryRef& query = sub->query;
  subjoins_->Add();
  bool finished = false;
  {
    std::lock_guard<std::mutex> lock(query->mutex_);
    if (query->done_) return;
    if (slice != nullptr) {
      query->response_.shard_slices.push_back(*slice);
      query->response_.num_results += slice->num_results;
      if (query->response_.shard_slices.size() == 1 &&
          !query->request_.method.has_value()) {
        query->response_.method = slice->method;
      }
    }
    if (!status.ok() && query->first_bad_.ok()) query->first_bad_ = status;
    PBSM_CHECK(query->remaining_ > 0);
    finished = (--query->remaining_ == 0);
  }
  if (!finished) return;

  // Gather complete. remaining_ hit zero, so no other thread touches the
  // query's state past this point (Cancel only trips the canceller).
  // Status priority: canceller (first real error or the external cancel
  // reason) > first non-OK sub status > OK.
  Status final_status = Status::OK();
  if (query->canceller_.is_cancelled()) {
    final_status = query->canceller_.CancellationStatus();
  } else {
    std::lock_guard<std::mutex> lock(query->mutex_);
    final_status = query->first_bad_;
  }
  if (final_status.ok()) {
    completed_->Add();
  } else if (final_status.code() == StatusCode::kCancelled) {
    cancelled_->Add();
  } else {
    failed_->Add();
  }
  {
    std::lock_guard<std::mutex> lock(query->mutex_);
    if (final_status.ok()) {
      const auto now = std::chrono::steady_clock::now();
      if (query->started_) {
        query->response_.queue_seconds =
            SecondsBetween(query->submit_time_, query->first_start_);
        query->response_.exec_seconds =
            SecondsBetween(query->first_start_, now);
      }
      query->result_ = query->response_;
    } else {
      query->result_ = final_status;
    }
    query->done_ = true;
  }
  query->done_cv_.notify_all();
}

void JoinRouter::UpdateQueueGauge(uint32_t shard) {
  queue_depth_gauges_[shard]->Set(
      static_cast<int64_t>(queues_[shard]->size()));
}

void JoinRouter::Shutdown(bool drain) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (shutdown_complete_) return;
  draining_.store(drain, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  for (auto& queue : queues_) queue->Close();
  if (!drain) {
    // Fail everything still queued and cancel everything running.
    for (auto& queue : queues_) {
      for (const SubJoinRef& sub : queue->Drain()) {
        if (!sub->claimed.exchange(true, std::memory_order_acq_rel)) {
          CompleteSub(sub,
                      Status::Cancelled("router shut down before the "
                                        "sub-join ran"),
                      nullptr);
        }
      }
    }
    std::lock_guard<std::mutex> lock(running_mutex_);
    for (const std::weak_ptr<RouterQuery>& weak : running_) {
      if (QueryRef query = weak.lock()) {
        query->canceller_.Cancel(Status::Cancelled("router shut down"));
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(monitor_mutex_);
    monitor_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (monitor_.joinable()) monitor_.join();
  for (uint32_t i = 0; i < queues_.size(); ++i) {
    queue_depth_gauges_[i]->Set(0);
  }
  shutdown_complete_ = true;
}

}  // namespace pbsm
