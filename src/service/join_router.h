#ifndef PBSM_SERVICE_JOIN_ROUTER_H_
#define PBSM_SERVICE_JOIN_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/canceller.h"
#include "common/metrics.h"
#include "common/status.h"
#include "service/join_service.h"
#include "service/shard_manager.h"

namespace pbsm {

/// Ticket for one scatter-gathered query. Mirrors JoinQuery; created by
/// JoinRouter::Submit. Thread-safe.
class RouterQuery {
 public:
  /// Blocks until every dispatched sub-join has settled and returns the
  /// gathered result. Idempotent.
  const Result<JoinResponse>& Wait();

  bool done() const;

  /// Requests cooperative cancellation of every sub-join (queued ones fail
  /// without running; running ones stop at their next check).
  void Cancel();

 private:
  friend class JoinRouter;

  JoinRequest request_;
  Canceller canceller_;
  std::chrono::steady_clock::time_point submit_time_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;
  uint32_t remaining_ = 0;       ///< Sub-joins not yet settled.
  bool started_ = false;         ///< First sub-join began executing.
  std::chrono::steady_clock::time_point first_start_;
  Status first_bad_;             ///< First non-OK sub-join status.
  JoinResponse response_;        ///< Aggregated under mutex_.
  Result<JoinResponse> result_{Status::Internal("query still pending")};
};

struct JoinRouterConfig {
  /// Worker threads per shard (each runs one sub-join at a time).
  uint32_t workers_per_shard = 1;

  /// Per-shard sub-join queue bound. A query whose scatter cannot place
  /// every sub-join is rejected whole with kResourceExhausted.
  size_t queue_capacity = 64;

  /// Idle beat of a shard worker: how long it waits on its home queue
  /// before scanning sibling queues for work to steal.
  double steal_poll_seconds = 0.002;

  /// Partition stealing: an idle worker pops from the deepest sibling
  /// queue. Off turns straggler mitigation down to re-dispatch only.
  bool enable_stealing = true;

  /// Speculative re-dispatch knob: > 0 re-enqueues a sub-join still queued
  /// after this many seconds onto the shallowest sibling queue. The copy
  /// and the original race for an atomic claim, so the sub-join still runs
  /// exactly once. 0 disables.
  double speculative_deadline_seconds = 0.0;

  /// Per-sub-join join knobs; `cancel` is overwritten per query.
  /// num_threads applies within one sub-join — with shards supplying the
  /// inter-query parallelism, 1 (serial sub-joins) is the right default.
  JoinOptions join_defaults;
};

/// Scatter-gather router over a ShardManager — the sharded counterpart of
/// JoinService (see DESIGN.md "Sharded service"):
///
///  - Submit clips the request window against the shard strips and
///    dispatches one sub-join per overlapping shard (every shard when
///    unwindowed) onto per-shard bounded priority queues;
///  - per-shard worker loops execute sub-joins against their shard's
///    private storage stack, planning each sub-join from that shard's slice
///    statistics and index-cache state (shard-aware costing: a warm shard
///    may run kRtree while a cold sibling picks kPbsm);
///  - results gather on the ticket; sub-join sinks translate slice OIDs
///    back to global OIDs, apply the window filter, and drop pairs whose
///    border-ownership reference corner lies in another strip (two-layer
///    rule at shard granularity — scatter-gather needs no dedup merge);
///  - the first sub-join to hit a real error Report()s it on the query
///    canceller, cancelling every sibling shard; the gathered status is
///    that first error (kCancelled never masks it);
///  - straggler mitigation: idle workers steal from the deepest sibling
///    queue, and the monitor thread optionally re-dispatches long-queued
///    sub-joins speculatively (both guarded by a per-sub-join atomic claim);
///  - a monitor thread doubles as the timeout watchdog.
///
/// Per-shard metrics: service.shard.<i>.queue_depth gauges and
/// service.shard.<i>.latency_us histograms, plus the global
/// service.shard.{subjoins,stolen_partitions,redispatches,border_filtered}
/// counters. Scatter and sub-joins run under router/" trace spans.
///
/// Thread-safety: every public method may be called from any thread; the
/// per-pair ResultSink of a sharded request may be invoked CONCURRENTLY
/// from different shard workers — unlike JoinService, sinks must be
/// thread-safe.
class JoinRouter {
 public:
  JoinRouter(ShardManager* shards, JoinRouterConfig config);
  ~JoinRouter();  ///< Shutdown(/*drain=*/false) if still running.

  JoinRouter(const JoinRouter&) = delete;
  JoinRouter& operator=(const JoinRouter&) = delete;

  /// Scatters a query. Fails fast with kResourceExhausted when any target
  /// shard queue is full (the whole query is rejected — partial scatters
  /// are withdrawn), kNotFound for unknown datasets, kFailedPrecondition
  /// after shutdown began.
  Result<std::shared_ptr<RouterQuery>> Submit(JoinRequest request);

  /// Submit + Wait convenience for synchronous callers.
  Result<JoinResponse> Execute(JoinRequest request);

  /// Stops accepting queries; with `drain` finishes everything queued
  /// (workers keep stealing until every queue is empty), otherwise fails
  /// queued sub-joins and cancels running queries. Idempotent.
  void Shutdown(bool drain = true);

  uint32_t num_shards() const { return shards_->num_shards(); }
  size_t queue_depth(uint32_t shard) const {
    return queues_[shard]->size();
  }

 private:
  struct SubJoin {
    std::shared_ptr<RouterQuery> query;
    uint32_t shard = 0;  ///< The shard whose slices this sub-join reads.
    /// Exactly-once execution guard: set by the winning worker
    /// (claim-or-skip), by Submit when withdrawing a partial scatter, and
    /// by non-drain shutdown when completing drained sub-joins.
    std::atomic<bool> claimed{false};
    /// Set by the monitor when a speculative copy has been enqueued.
    std::atomic<bool> redispatched{false};
    std::chrono::steady_clock::time_point enqueue_time;
  };
  using SubJoinRef = std::shared_ptr<SubJoin>;
  using QueryRef = std::shared_ptr<RouterQuery>;

  void WorkerLoop(uint32_t home_shard);
  void MonitorLoop();
  bool AllQueuesEmpty() const;

  void RunSubJoin(const SubJoinRef& sub, bool stolen);
  /// The join itself: per-shard planning, per-shard index cache, slice
  /// sink wrapping. Fills `slice` (results, method).
  Status ExecuteSubJoin(const QueryRef& query, uint32_t shard_id,
                        ShardSliceStats* slice);
  /// Settles one sub-join on its query; the last one finalizes the gather.
  void CompleteSub(const SubJoinRef& sub, const Status& status,
                   const ShardSliceStats* slice);
  void UpdateQueueGauge(uint32_t shard);

  ShardManager* shards_;
  const JoinRouterConfig config_;
  std::vector<std::unique_ptr<BoundedQueue<SubJoinRef>>> queues_;
  std::vector<std::thread> workers_;
  std::thread monitor_;

  // Monitor state: timeout deadlines (min-heap) + the speculative
  // re-dispatch watchlist. Guarded by monitor_mutex_.
  std::mutex monitor_mutex_;
  std::condition_variable monitor_cv_;
  using Deadline = std::pair<std::chrono::steady_clock::time_point,
                             std::weak_ptr<RouterQuery>>;
  struct DeadlineLater {
    bool operator()(const Deadline& a, const Deadline& b) const {
      return a.first > b.first;
    }
  };
  std::priority_queue<Deadline, std::vector<Deadline>, DeadlineLater>
      deadlines_;
  std::deque<std::weak_ptr<SubJoin>> watchlist_;

  // In-flight queries, for non-drain shutdown cancellation.
  std::mutex running_mutex_;
  std::vector<std::weak_ptr<RouterQuery>> running_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{true};
  std::mutex shutdown_mutex_;
  bool shutdown_complete_ = false;  ///< Guarded by shutdown_mutex_.

  Counter* submitted_;
  Counter* completed_;
  Counter* failed_;
  Counter* cancelled_;
  Counter* rejected_;
  Counter* subjoins_;
  Counter* stolen_;
  Counter* redispatches_;
  Counter* border_filtered_;
  Counter* planned_;
  std::vector<Gauge*> queue_depth_gauges_;       ///< Per shard.
  std::vector<Histogram*> shard_latency_us_;     ///< Per shard.
};

}  // namespace pbsm

#endif  // PBSM_SERVICE_JOIN_ROUTER_H_
