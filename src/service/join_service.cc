#include "service/join_service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "exec/plan_builder.h"
#include "storage/tuple.h"

namespace pbsm {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
}

}  // namespace

std::string_view QueryPriorityName(QueryPriority p) {
  switch (p) {
    case QueryPriority::kInteractive:
      return "interactive";
    case QueryPriority::kBatch:
      return "batch";
  }
  PBSM_CHECK(false) << "unknown QueryPriority " << static_cast<int>(p);
}

// ---------------------------------------------------------------------------
// JoinQuery.
// ---------------------------------------------------------------------------

const Result<JoinResponse>& JoinQuery::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool JoinQuery::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void JoinQuery::Cancel() {
  canceller_.Cancel(Status::Cancelled("query cancelled by client"));
}

// ---------------------------------------------------------------------------
// JoinService.
// ---------------------------------------------------------------------------

JoinService::JoinService(BufferPool* pool, JoinServiceConfig config)
    : pool_(pool),
      config_(std::move(config)),
      cache_(pool, config_.cache),
      queue_(std::max<size_t>(config_.queue_capacity, 1),
             /*num_priorities=*/2),
      workers_(std::max<uint32_t>(config_.num_workers, 1)) {
  const double fraction =
      std::clamp(config_.admission_fraction, 0.05, 1.0);
  admission_budget_ = std::max(
      config_.join_defaults.memory_budget_bytes,
      static_cast<size_t>(static_cast<double>(pool_->pool_bytes()) *
                          fraction));

  MetricsRegistry& metrics = MetricsRegistry::Global();
  queue_depth_gauge_ = metrics.GetGauge("service.queue_depth");
  running_gauge_ = metrics.GetGauge("service.running_queries");
  submitted_ = metrics.GetCounter("service.queries.submitted");
  completed_ = metrics.GetCounter("service.queries.completed");
  failed_ = metrics.GetCounter("service.queries.failed");
  cancelled_ = metrics.GetCounter("service.queries.cancelled");
  admission_rejects_ = metrics.GetCounter("service.admission_rejects");
  admission_waits_ = metrics.GetCounter("service.admission_waits");
  planned_ = metrics.GetCounter("service.queries.planned");
  latency_interactive_us_ =
      metrics.GetHistogram("service.latency_us.interactive");
  latency_batch_us_ = metrics.GetHistogram("service.latency_us.batch");
  queue_wait_us_ = metrics.GetHistogram("service.queue_wait_us");

  // The executor workers are long-running pool tasks: the pool supplies the
  // threads, the bounded queue supplies priority order and backpressure.
  for (size_t i = 0; i < workers_.num_threads(); ++i) {
    workers_.Submit([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

JoinService::~JoinService() { Shutdown(/*drain=*/false); }

Status JoinService::RegisterDataset(const std::string& name,
                                    const HeapFile* heap,
                                    const RelationInfo& info,
                                    bool build_stats) {
  if (heap == nullptr) {
    return Status::InvalidArgument("RegisterDataset: null heap for '" + name +
                                   "'");
  }
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  auto dataset = std::make_shared<Dataset>();
  dataset->heap = heap;
  dataset->info = info;

  if (build_stats && info.cardinality > 0 && !info.universe.empty()) {
    TraceSpan span("service/register_stats");
    SpatialHistogram hist(info.universe, config_.histogram_nx,
                          config_.histogram_ny);
    dataset->mbrs.reserve(info.cardinality);
    PBSM_RETURN_IF_ERROR(
        heap->Scan([&](Oid oid, const char* data, size_t size) -> Status {
          PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
          const Rect mbr = tuple.geometry.Mbr();
          hist.Add(mbr);
          dataset->mbrs.emplace(oid.Encode(), mbr);
          return Status::OK();
        }));
    dataset->histogram.emplace(std::move(hist));
  }

  std::lock_guard<std::mutex> lock(datasets_mutex_);
  datasets_[name] = std::move(dataset);
  return Status::OK();
}

Status JoinService::DropDataset(const std::string& name) {
  {
    // A view's delta joins fetch counterpart tuples from the dataset heaps;
    // dropping a referenced dataset would leave the view reading a heap the
    // caller may now free. Make the dependency explicit instead.
    std::lock_guard<std::mutex> lock(views_mutex_);
    for (const auto& [view_name, entry] : views_) {
      if (entry.r_dataset == name || entry.s_dataset == name) {
        return Status::FailedPrecondition("dataset '" + name +
                                          "' is referenced by view '" +
                                          view_name + "'; drop the view first");
      }
    }
  }
  DatasetRef dropped;
  {
    std::lock_guard<std::mutex> lock(datasets_mutex_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::NotFound("dataset '" + name + "' not registered");
    }
    dropped = std::move(it->second);
    datasets_.erase(it);
  }
  // Cached trees over the dataset are stale the moment the name is gone;
  // queries already holding TreeRefs finish against the old snapshot.
  cache_.InvalidateFile(dropped->info.file);
  cache_.InvalidateDataset(name);
  return Status::OK();
}

Result<JoinService::DatasetRef> JoinService::FindDataset(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + name + "' not registered");
  }
  return it->second;
}

Result<std::shared_ptr<JoinQuery>> JoinService::Submit(JoinRequest request) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shutting down");
  }
  PBSM_RETURN_IF_ERROR(FindDataset(request.r_dataset).status());
  PBSM_RETURN_IF_ERROR(FindDataset(request.s_dataset).status());
  if (request.timeout_seconds < 0) {
    return Status::InvalidArgument("negative timeout");
  }

  // A query can never be admitted if its operator budget alone exceeds the
  // whole admission pool — reject now instead of deadlocking the worker.
  if (config_.join_defaults.memory_budget_bytes > admission_budget_) {
    admission_rejects_->Add();
    return Status::ResourceExhausted(
        "query memory budget exceeds service admission budget");
  }

  auto query = std::make_shared<JoinQuery>();
  query->request_ = std::move(request);
  query->submit_time_ = std::chrono::steady_clock::now();

  const size_t priority =
      static_cast<size_t>(query->request_.priority);
  if (!queue_.TryPush(query, priority)) {
    admission_rejects_->Add();
    return Status::ResourceExhausted(
        "service queue full (" + std::to_string(queue_.capacity()) +
        " requests); retry with backoff");
  }
  submitted_->Add();
  queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));

  if (query->request_.timeout_seconds > 0) {
    const auto deadline =
        query->submit_time_ +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(query->request_.timeout_seconds));
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    deadlines_.emplace(deadline, query);
    watchdog_cv_.notify_one();
  }
  return query;
}

Result<JoinResponse> JoinService::Execute(JoinRequest request) {
  PBSM_ASSIGN_OR_RETURN(const QueryRef query, Submit(std::move(request)));
  return query->Wait();
}

Result<ExplainResult> JoinService::Explain(const JoinRequest& request) const {
  PBSM_ASSIGN_OR_RETURN(const DatasetRef r, FindDataset(request.r_dataset));
  PBSM_ASSIGN_OR_RETURN(const DatasetRef s, FindDataset(request.s_dataset));
  if (request.window.has_value() && (r->mbrs.empty() || s->mbrs.empty())) {
    return Status::FailedPrecondition(
        "window queries need datasets registered with build_stats");
  }

  JoinSpec spec;
  spec.predicate = request.predicate;
  spec.options = config_.join_defaults;
  if (request.refine_mode.has_value()) {
    spec.options.refine.mode = *request.refine_mode;
  }

  // Same planner call ExecuteJoin would make, including cache-warmth
  // checks, so explain shows exactly what a Submit right now would run.
  PlannerSide pr{&r->info, r->histogram.has_value() ? &*r->histogram : nullptr,
                 cache_.Contains(JoinInput{r->heap, r->info},
                                 config_.join_defaults.index_fill_factor)};
  PlannerSide ps{&s->info, s->histogram.has_value() ? &*s->histogram : nullptr,
                 cache_.Contains(JoinInput{s->heap, s->info},
                                 config_.join_defaults.index_fill_factor)};
  PlannerCosts costs;
  costs.dedup_mode = spec.options.dedup_mode;
  costs.refine_mode = spec.options.refine.mode;
  const PlanChoice plan =
      PlanJoin(pr, ps, config_.join_defaults.num_threads, costs);

  ExplainResult out;
  out.plan = plan.ToString();
  if (request.method.has_value()) {
    out.method = *request.method;
    // The planner only costs the tree of its own choice; a forced method
    // that happens to match still gets the costed rendering.
    if (*request.method == plan.method) out.cost_tree = plan.TreeString();
  } else {
    out.method = plan.method;
    out.planner_chosen = true;
    out.cost_tree = plan.TreeString();
  }
  spec.method = out.method;
  if (request.window.has_value()) {
    spec.window = WindowFilter{*request.window, &r->mbrs, &s->mbrs};
  }

  // Build (but never open) the operator tree the exec layer would drive.
  // No index is pinned and no heap page is touched — construction is pure.
  const std::unique_ptr<Operator> tree =
      BuildJoinTree(JoinInput{r->heap, r->info}, JoinInput{s->heap, s->info},
                    spec);
  out.tree = DescribeTree(*tree);
  MetricsRegistry::Global().GetCounter("service.explains")->Add();
  return out;
}

// ---------------------------------------------------------------------------
// Materialized join views.
// ---------------------------------------------------------------------------

Status JoinService::CreateView(const std::string& view_name,
                               const std::string& r_dataset,
                               const std::string& s_dataset,
                               SpatialPredicate predicate,
                               uint32_t num_tiles) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  {
    std::lock_guard<std::mutex> lock(views_mutex_);
    if (views_.find(view_name) != views_.end()) {
      return Status::InvalidArgument("view '" + view_name +
                                     "' already registered");
    }
  }
  PBSM_ASSIGN_OR_RETURN(const DatasetRef r, FindDataset(r_dataset));
  PBSM_ASSIGN_OR_RETURN(const DatasetRef s, FindDataset(s_dataset));

  MaterializedJoinView::Config config;
  config.name = view_name;
  config.predicate = predicate;
  config.num_tiles = num_tiles;
  config.base.options = config_.join_defaults;
  config.base.options.cancel = nullptr;  // Builds are not query-cancellable.
  PBSM_ASSIGN_OR_RETURN(
      std::unique_ptr<MaterializedJoinView> view,
      MaterializedJoinView::Build(pool_, JoinInput{r->heap, r->info},
                                  JoinInput{s->heap, s->info},
                                  std::move(config)));

  std::lock_guard<std::mutex> lock(views_mutex_);
  const bool inserted =
      views_
          .emplace(view_name, ViewEntry{std::move(view), r_dataset, s_dataset})
          .second;
  if (!inserted) {
    // Lost a race with a concurrent CreateView of the same name.
    return Status::InvalidArgument("view '" + view_name +
                                   "' already registered");
  }
  return Status::OK();
}

Status JoinService::DropView(const std::string& view_name) {
  std::lock_guard<std::mutex> lock(views_mutex_);
  auto it = views_.find(view_name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + view_name + "' not registered");
  }
  views_.erase(it);  // Streaming queries hold their own shared_ptr.
  return Status::OK();
}

std::vector<std::string> JoinService::ListViews() const {
  std::lock_guard<std::mutex> lock(views_mutex_);
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, entry] : views_) names.push_back(name);
  return names;  // std::map iteration order is already sorted.
}

Result<uint64_t> JoinService::QueryView(const std::string& view_name,
                                        const ResultSink& sink) const {
  PBSM_ASSIGN_OR_RETURN(const ViewEntry entry, FindView(view_name));
  TraceSpan span("service/query_view");
  if (sink) entry.view->Emit(sink);
  MetricsRegistry::Global().GetCounter("service.view_queries")->Add();
  return entry.view->num_pairs();
}

Status JoinService::ViewInsert(const std::string& view_name,
                               MaterializedJoinView::Side side, Oid oid,
                               const Tuple& tuple) {
  PBSM_ASSIGN_OR_RETURN(const ViewEntry entry, FindView(view_name));
  PBSM_RETURN_IF_ERROR(entry.view->Insert(side, oid, tuple));
  InvalidateAfterViewMutation(entry, side);
  return Status::OK();
}

Status JoinService::ViewDelete(const std::string& view_name,
                               MaterializedJoinView::Side side, Oid oid) {
  PBSM_ASSIGN_OR_RETURN(const ViewEntry entry, FindView(view_name));
  PBSM_RETURN_IF_ERROR(entry.view->Delete(side, oid));
  InvalidateAfterViewMutation(entry, side);
  return Status::OK();
}

Result<JoinService::ViewEntry> JoinService::FindView(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(views_mutex_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + name + "' not registered");
  }
  return it->second;
}

void JoinService::InvalidateAfterViewMutation(
    const ViewEntry& entry, MaterializedJoinView::Side side) {
  // The heap behind the mutated side changed; any cached R*-tree over it is
  // stale. Running queries keep their refs (cache pinning contract) — only
  // future GetOrBuild calls pay a rebuild.
  const std::string& dataset = side == MaterializedJoinView::Side::kR
                                   ? entry.r_dataset
                                   : entry.s_dataset;
  if (Result<DatasetRef> ds = FindDataset(dataset); ds.ok()) {
    cache_.InvalidateFile(ds.value()->info.file);
  }
  cache_.InvalidateDataset(dataset);
}

void JoinService::Shutdown(bool drain) {
  // Serialised so a second caller (often the destructor after an explicit
  // Shutdown) blocks until teardown is complete instead of racing it.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (shutdown_complete_) return;
  stopping_.store(true, std::memory_order_release);
  draining_.store(drain, std::memory_order_release);

  // Close() lets workers drain what is queued; in non-drain mode we fail
  // the queued queries ourselves and cancel the ones already executing.
  queue_.Close();
  if (!drain) {
    for (const QueryRef& query : queue_.Drain()) {
      Complete(query,
               Status::Cancelled("service shut down before the query ran"));
    }
    std::lock_guard<std::mutex> lock(running_mutex_);
    for (const std::weak_ptr<JoinQuery>& weak : running_) {
      if (QueryRef query = weak.lock()) {
        query->canceller_.Cancel(Status::Cancelled("service shut down"));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_cv_.notify_all();
  }
  admission_cv_.notify_all();

  workers_.Wait();
  if (watchdog_.joinable()) watchdog_.join();
  queue_depth_gauge_->Set(0);
  shutdown_complete_ = true;
}

void JoinService::WorkerLoop() {
  while (true) {
    std::optional<QueryRef> next = queue_.Pop();
    if (!next.has_value()) return;  // Closed and drained.
    queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    const QueryRef& query = *next;
    if (!draining_.load(std::memory_order_acquire) ||
        query->canceller_.is_cancelled()) {
      Complete(query, query->canceller_.is_cancelled()
                          ? query->canceller_.CancellationStatus()
                          : Status::Cancelled("service shut down"));
      continue;
    }
    RunQuery(query);
  }
}

void JoinService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (true) {
    if (deadlines_.empty()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      watchdog_cv_.wait(lock);
      continue;
    }
    const auto next_deadline = deadlines_.top().first;
    const auto now = std::chrono::steady_clock::now();
    if (now < next_deadline) {
      if (stopping_.load(std::memory_order_acquire)) {
        // Shutdown pending: nothing left will honour these deadlines once
        // the workers exit, and cancelling early would be wrong — drop out.
        return;
      }
      watchdog_cv_.wait_until(lock, next_deadline);
      continue;
    }
    std::weak_ptr<JoinQuery> weak = deadlines_.top().second;
    deadlines_.pop();
    lock.unlock();
    if (QueryRef query = weak.lock(); query != nullptr && !query->done()) {
      query->canceller_.Cancel(
          Status::Cancelled("deadline exceeded (" +
                            std::to_string(query->request_.timeout_seconds) +
                            "s timeout)"));
    }
    lock.lock();
  }
}

bool JoinService::AdmitMemory(size_t bytes, const QueryRef& query) {
  std::unique_lock<std::mutex> lock(admission_mutex_);
  bool waited = false;
  while (admission_used_ + bytes > admission_budget_) {
    if (query->canceller_.is_cancelled()) return false;
    if (stopping_.load(std::memory_order_acquire) &&
        !draining_.load(std::memory_order_acquire)) {
      return false;
    }
    if (!waited) {
      waited = true;
      admission_waits_->Add();
    }
    // Bounded wait so cancellation/shutdown flags are re-polled even if a
    // notification is missed.
    admission_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  admission_used_ += bytes;
  return true;
}

void JoinService::ReleaseMemory(size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    PBSM_CHECK(admission_used_ >= bytes);
    admission_used_ -= bytes;
  }
  admission_cv_.notify_all();
}

void JoinService::RunQuery(const QueryRef& query) {
  const size_t reservation = config_.join_defaults.memory_budget_bytes;
  if (!AdmitMemory(reservation, query)) {
    Complete(query, query->canceller_.is_cancelled()
                        ? query->canceller_.CancellationStatus()
                        : Status::Cancelled("service shut down while the "
                                            "query awaited admission"));
    return;
  }
  running_gauge_->Add(1);
  {
    // Registry of in-flight queries so a non-drain shutdown can cancel
    // them; expired slots from finished queries are reclaimed here.
    std::lock_guard<std::mutex> lock(running_mutex_);
    running_.erase(std::remove_if(running_.begin(), running_.end(),
                                  [](const std::weak_ptr<JoinQuery>& w) {
                                    return w.expired();
                                  }),
                   running_.end());
    running_.push_back(query);
  }

  const auto admit_time = std::chrono::steady_clock::now();
  queue_wait_us_->Record(MicrosSince(query->submit_time_, admit_time));

  Result<JoinResponse> result = Status::Internal("unreachable");
  {
    TraceSpan span("service/query");
    Result<DatasetRef> r = FindDataset(query->request_.r_dataset);
    Result<DatasetRef> s = FindDataset(query->request_.s_dataset);
    if (!r.ok()) {
      result = r.status();  // Dropped between submit and execution.
    } else if (!s.ok()) {
      result = s.status();
    } else {
      result = ExecuteJoin(query, r.value(), s.value());
    }
  }

  const auto end_time = std::chrono::steady_clock::now();
  if (result.ok()) {
    JoinResponse& response = result.value();
    response.queue_seconds =
        static_cast<double>(MicrosSince(query->submit_time_, admit_time)) /
        1e6;
    response.exec_seconds =
        static_cast<double>(MicrosSince(admit_time, end_time)) / 1e6;
  }
  Histogram* latency =
      query->request_.priority == QueryPriority::kInteractive
          ? latency_interactive_us_
          : latency_batch_us_;
  latency->Record(MicrosSince(query->submit_time_, end_time));

  running_gauge_->Add(-1);
  ReleaseMemory(reservation);
  Complete(query, std::move(result));
}

Result<JoinResponse> JoinService::ExecuteJoin(const QueryRef& query,
                                              const DatasetRef& r,
                                              const DatasetRef& s) {
  const JoinRequest& request = query->request_;
  JoinResponse response;

  JoinSpec spec;
  spec.predicate = request.predicate;
  spec.options = config_.join_defaults;
  spec.options.cancel = &query->canceller_;
  if (request.refine_mode.has_value()) {
    spec.options.refine.mode = *request.refine_mode;
  }

  // 1. Choose the method: explicit override or cost-based plan. The cost
  // model mirrors the knobs the join will actually run with (dedup scheme,
  // refinement mode), and under adaptive refinement the plan also fixes the
  // cell-grid precision from the catalog statistics.
  if (request.method.has_value()) {
    response.method = *request.method;
  } else {
    PlannerSide pr{&r->info,
                   r->histogram.has_value() ? &*r->histogram : nullptr,
                   cache_.Contains(JoinInput{r->heap, r->info},
                                   config_.join_defaults.index_fill_factor)};
    PlannerSide ps{&s->info,
                   s->histogram.has_value() ? &*s->histogram : nullptr,
                   cache_.Contains(JoinInput{s->heap, s->info},
                                   config_.join_defaults.index_fill_factor)};
    PlannerCosts costs;
    costs.dedup_mode = spec.options.dedup_mode;
    costs.refine_mode = spec.options.refine.mode;
    const PlanChoice plan =
        PlanJoin(pr, ps, config_.join_defaults.num_threads, costs);
    response.method = plan.method;
    response.planner_chosen = true;
    response.plan = plan.ToString();
    if (spec.options.refine.mode != RefineMode::kExact &&
        spec.options.refine.grid_order == 0) {
      spec.options.refine.grid_order = plan.grid_order;
    }
    planned_->Add();
  }
  spec.method = response.method;

  // 2. Index-method queries go through the cache: build-or-reuse both
  // trees, keep the refs alive for the duration of the join (pinning).
  IndexCache::TreeRef r_tree;
  IndexCache::TreeRef s_tree;
  const JoinInput r_input{r->heap, r->info};
  const JoinInput s_input{s->heap, s->info};
  if (spec.method == JoinMethod::kRtree) {
    PBSM_ASSIGN_OR_RETURN(
        r_tree,
        cache_.GetOrBuild(r_input, spec.options.index_fill_factor));
    PBSM_ASSIGN_OR_RETURN(
        s_tree,
        cache_.GetOrBuild(s_input, spec.options.index_fill_factor));
    spec.r_index = r_tree.get();
    spec.s_index = s_tree.get();
  } else if (spec.method == JoinMethod::kInl) {
    // Index the smaller side (matching the facade's choice); the facade
    // probes with the other.
    if (r->info.cardinality <= s->info.cardinality) {
      PBSM_ASSIGN_OR_RETURN(
          r_tree,
          cache_.GetOrBuild(r_input, spec.options.index_fill_factor));
      spec.r_index = r_tree.get();
    } else {
      PBSM_ASSIGN_OR_RETURN(
          s_tree,
          cache_.GetOrBuild(s_input, spec.options.index_fill_factor));
      spec.s_index = s_tree.get();
    }
  }

  // 3. Window filter: pushed into the engine (a SelectOp above the join
  // under the operator engine; a sink filter under the monolith), backed by
  // the MBR tables built at registration. The sink wrapper only counts —
  // it already sees the post-window stream.
  uint64_t window_results = 0;
  if (request.window.has_value()) {
    if (r->mbrs.empty() || s->mbrs.empty()) {
      return Status::FailedPrecondition(
          "window queries need datasets registered with build_stats");
    }
    spec.window = WindowFilter{*request.window, &r->mbrs, &s->mbrs};
    const ResultSink user_sink = request.sink;
    spec.sink = [&window_results, user_sink](Oid ro, Oid so) {
      ++window_results;
      if (user_sink) user_sink(ro, so);
    };
  } else {
    spec.sink = request.sink;
  }

  PBSM_ASSIGN_OR_RETURN(const JoinResult join,
                        SpatialJoin(pool_, r_input, s_input, spec));
  response.num_results =
      request.window.has_value() ? window_results : join.num_results;
  return response;
}

void JoinService::Complete(const QueryRef& query,
                           Result<JoinResponse> result) {
  if (result.ok()) {
    completed_->Add();
  } else if (result.status().code() == StatusCode::kCancelled) {
    cancelled_->Add();
  } else {
    failed_->Add();
  }
  {
    std::lock_guard<std::mutex> lock(query->mutex_);
    if (query->done_) return;  // Already completed (shutdown race).
    query->result_ = std::move(result);
    query->done_ = true;
  }
  query->done_cv_.notify_all();
}

}  // namespace pbsm
