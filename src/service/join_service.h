#ifndef PBSM_SERVICE_JOIN_SERVICE_H_
#define PBSM_SERVICE_JOIN_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/canceller.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/selectivity.h"
#include "core/spatial_join.h"
#include "exec/view_maintainer.h"
#include "service/index_cache.h"
#include "service/join_planner.h"
#include "storage/buffer_pool.h"
#include "storage/tuple.h"

namespace pbsm {

/// Scheduling class of a service query. Strict priority: every queued
/// interactive query runs before any batch query (FIFO within a class).
enum class QueryPriority : uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

std::string_view QueryPriorityName(QueryPriority p);

/// One join the service is asked to run, by dataset name.
struct JoinRequest {
  std::string r_dataset;
  std::string s_dataset;
  SpatialPredicate predicate = SpatialPredicate::kIntersects;

  /// Forced method; nullopt lets the cost-based planner choose.
  std::optional<JoinMethod> method;

  /// Forced refinement strategy; nullopt runs the service's configured
  /// default (JoinServiceConfig::join_defaults.refine.mode). The planner's
  /// cost model follows whichever applies, and under the adaptive modes the
  /// plan also fixes the cell-grid precision.
  std::optional<RefineMode> refine_mode;

  /// When set, only result pairs whose MBRs both overlap the window are
  /// emitted/counted (a window-restricted join).
  std::optional<Rect> window;

  QueryPriority priority = QueryPriority::kBatch;

  /// Wall-clock budget from admission (not submission); 0 = unlimited.
  /// Expiry cancels the join cooperatively (StatusCode::kCancelled).
  double timeout_seconds = 0.0;

  /// Optional per-pair callback; invoked from a service worker thread.
  ResultSink sink;
};

/// Per-shard execution record of one scatter-gathered (sharded) query —
/// what the JoinRouter appends to the response for each sub-join.
struct ShardSliceStats {
  uint32_t shard = 0;          ///< The shard whose slices were joined.
  JoinMethod method = JoinMethod::kPbsm;
  uint64_t num_results = 0;    ///< After window + border-ownership filters.
  double exec_seconds = 0.0;   ///< This sub-join's execution wall time.
  /// CPU time the executing worker thread spent on this sub-join. With
  /// serial sub-joins (the router's num_threads=1 default) this is the
  /// slice's full work, immune to time-sharing with sibling workers — the
  /// number the bench's critical-path throughput is computed from. With
  /// intra-sub-join threads it undercounts (pool threads are not metered).
  double cpu_seconds = 0.0;
  bool stolen = false;         ///< Executed by a sibling shard's worker.
  bool speculative = false;    ///< Ran via speculative re-dispatch.
};

/// What a completed query reports back.
struct JoinResponse {
  JoinMethod method = JoinMethod::kPbsm;
  bool planner_chosen = false;
  std::string plan;            ///< Cost table when the planner chose.
  uint64_t num_results = 0;
  double queue_seconds = 0.0;  ///< Submission to admission.
  double exec_seconds = 0.0;   ///< Admission to completion.

  /// Sharded execution only (JoinRouter): one record per dispatched
  /// sub-join, in completion order. max(exec_seconds) over the slices is
  /// the query's shard-parallel critical path — the latency an
  /// unconstrained multi-core host would see; the throughput bench gates
  /// on it. Empty for single-service (JoinService) execution.
  std::vector<ShardSliceStats> shard_slices;
};

/// What JoinService::Explain returns: the plan a request would run under,
/// rendered without executing anything.
struct ExplainResult {
  JoinMethod method = JoinMethod::kPbsm;
  bool planner_chosen = false;  ///< False when the request forced a method.
  std::string plan;       ///< Cost table, cheapest first (PlanChoice::ToString).
  /// Planner's costed operator tree (PlanChoice::TreeString); empty when the
  /// request forced a method the planner did not pick — the planner only
  /// costs the tree of its own choice.
  std::string cost_tree;
  /// The operator tree the exec layer would actually build and drive
  /// (DescribeTree over BuildJoinTree), including window-pushdown selects.
  std::string tree;
};

/// Ticket for one submitted query. Created by JoinService::Submit; callers
/// Wait() for the result and may Cancel() at any time. Thread-safe.
class JoinQuery {
 public:
  /// Blocks until the query completes (or is cancelled / times out) and
  /// returns its result. Idempotent.
  const Result<JoinResponse>& Wait();

  bool done() const;

  /// Requests cooperative cancellation. A queued query fails without
  /// running; a running one stops at its next cancellation check.
  void Cancel();

 private:
  friend class JoinService;

  JoinRequest request_;
  Canceller canceller_;
  std::chrono::steady_clock::time_point submit_time_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;
  Result<JoinResponse> result_{Status::Internal("query still pending")};
};

struct JoinServiceConfig {
  /// Concurrent query executors (each runs one join at a time).
  uint32_t num_workers = 2;

  /// Bounded request queue; a full queue rejects Submit with
  /// kResourceExhausted (backpressure, not unbounded buffering).
  size_t queue_capacity = 64;

  /// Total operator memory the admission controller hands out, as a
  /// fraction of the buffer pool. A query reserves its operator budget
  /// before running and waits (admission control) when the pool is
  /// oversubscribed.
  double admission_fraction = 0.5;

  /// Histogram grid for dataset statistics (planner input).
  uint32_t histogram_nx = 32;
  uint32_t histogram_ny = 32;

  IndexCache::Config cache;

  /// Per-query join knobs (memory budget, tiles, refinement mode, ...).
  /// `cancel` is overwritten per query; `num_threads` caps the parallel
  /// executor if the planner picks it.
  JoinOptions join_defaults;
};

/// Long-running in-process spatial-join service: a bounded priority queue
/// of JoinRequests drained by a pool of executor workers, with
///
///  - admission control: each query reserves its operator memory budget
///    against a fraction of the buffer pool before running, so concurrent
///    joins cannot collectively thrash the pool;
///  - cost-based planning: requests without a method override are routed
///    by PlanJoin() over catalog stats and per-dataset histograms;
///  - index caching: R*-trees built for kRtree/kInl queries are retained
///    in a sharded LRU (IndexCache) and reused until the dataset is
///    dropped, making repeat index-method queries skip the build;
///  - per-query timeouts and cancellation via Canceller chaining (a
///    watchdog thread cancels queries past their deadline);
///  - graceful drain: Shutdown(true) finishes every queued query,
///    Shutdown(false) fails queued queries and cancels running ones.
///
/// Thread-safety: every public method may be called from any thread.
/// Datasets are registered by name; the service borrows the HeapFile (the
/// caller keeps ownership and must keep it alive until DropDataset or
/// shutdown).
class JoinService {
 public:
  JoinService(BufferPool* pool, JoinServiceConfig config);
  ~JoinService();  ///< Shutdown(/*drain=*/false) if still running.

  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;

  /// Registers `name` for use in requests. Scans the heap once to build
  /// the planner histogram and the MBR table used for window filtering
  /// (skipped when `build_stats` is false — the planner then falls back to
  /// catalog-only estimates and window queries are rejected).
  Status RegisterDataset(const std::string& name, const HeapFile* heap,
                         const RelationInfo& info, bool build_stats = true);

  /// Unregisters `name` and invalidates every cached index over it.
  /// Running queries keep their index refs (cache pinning contract).
  Status DropDataset(const std::string& name);

  /// Enqueues a query. Fails fast with kResourceExhausted when the queue
  /// is full (backpressure), kNotFound for unknown datasets, and
  /// kFailedPrecondition after shutdown began.
  Result<std::shared_ptr<JoinQuery>> Submit(JoinRequest request);

  /// Submit + Wait convenience for synchronous callers.
  Result<JoinResponse> Execute(JoinRequest request);

  /// Plans `request` without executing it: runs the cost-based planner
  /// (or honours the forced method), builds the operator tree the exec
  /// layer would drive, and returns both renderings. Touches no heap pages
  /// beyond the statistics already captured at registration and never
  /// builds indexes.
  Result<ExplainResult> Explain(const JoinRequest& request) const;

  /// Registers a materialized join view named `view_name` over two
  /// registered datasets and runs the base join to populate it. The view is
  /// then kept current through ViewInsert/ViewDelete. Fails with
  /// kAlreadyExists-style kInvalidArgument when the name is taken.
  Status CreateView(const std::string& view_name, const std::string& r_dataset,
                    const std::string& s_dataset,
                    SpatialPredicate predicate = SpatialPredicate::kIntersects,
                    uint32_t num_tiles = 256);

  /// Unregisters a view. Queries already streaming it finish first (shared
  /// ownership).
  Status DropView(const std::string& view_name);

  /// Names of all registered views, sorted.
  std::vector<std::string> ListViews() const;

  /// Emits the view's current pair set (ascending) to `sink` and returns
  /// the pair count — the warm path that replaces re-running the join.
  Result<uint64_t> QueryView(const std::string& view_name,
                             const ResultSink& sink) const;

  /// Applies one tuple insertion to a view's side. The caller must have
  /// already appended the tuple to the side's heap at `oid` (the view
  /// fetches counterpart tuples through the shared buffer pool). Also
  /// invalidates cached indexes over the mutated dataset — they no longer
  /// reflect the heap.
  Status ViewInsert(const std::string& view_name,
                    MaterializedJoinView::Side side, Oid oid,
                    const Tuple& tuple);

  /// Logical deletion of `oid` from a view's side; invalidates cached
  /// indexes over the mutated dataset.
  Status ViewDelete(const std::string& view_name,
                    MaterializedJoinView::Side side, Oid oid);

  /// Stops accepting queries; with `drain` finishes everything queued,
  /// otherwise fails queued queries (kCancelled) and cancels running ones.
  /// Idempotent; the first call's drain mode wins. Blocks until workers
  /// and the watchdog have exited.
  void Shutdown(bool drain = true);

  IndexCache& cache() { return cache_; }
  size_t queue_depth() const { return queue_.size(); }
  uint32_t num_workers() const { return config_.num_workers; }

 private:
  struct Dataset {
    const HeapFile* heap = nullptr;
    RelationInfo info;
    std::optional<SpatialHistogram> histogram;
    /// Oid.Encode() -> feature MBR; only when build_stats was set.
    std::unordered_map<uint64_t, Rect> mbrs;
  };
  using DatasetRef = std::shared_ptr<const Dataset>;
  using QueryRef = std::shared_ptr<JoinQuery>;

  /// One registered view plus the dataset names it joins, so mutations can
  /// invalidate the right cache entries and DropDataset can refuse while a
  /// view still depends on the dataset.
  struct ViewEntry {
    std::shared_ptr<MaterializedJoinView> view;
    std::string r_dataset;
    std::string s_dataset;
  };

  void WorkerLoop();
  void WatchdogLoop();
  void RunQuery(const QueryRef& query);
  /// Executes the join itself; factored out so RunQuery owns bookkeeping
  /// (admission, metrics, completion) and this owns planning + dispatch.
  Result<JoinResponse> ExecuteJoin(const QueryRef& query, const DatasetRef& r,
                                   const DatasetRef& s);
  void Complete(const QueryRef& query, Result<JoinResponse> result);

  Result<DatasetRef> FindDataset(const std::string& name) const;
  Result<ViewEntry> FindView(const std::string& name) const;
  /// Common tail of ViewInsert/ViewDelete: cache invalidation over the
  /// mutated side's dataset.
  void InvalidateAfterViewMutation(const ViewEntry& entry,
                                   MaterializedJoinView::Side side);

  /// Blocks until `bytes` of admission budget is free, the query is
  /// cancelled, or the service stops draining. True on success.
  bool AdmitMemory(size_t bytes, const QueryRef& query);
  void ReleaseMemory(size_t bytes);

  BufferPool* pool_;
  const JoinServiceConfig config_;
  IndexCache cache_;

  BoundedQueue<QueryRef> queue_;
  ThreadPool workers_;
  std::thread watchdog_;

  mutable std::mutex datasets_mutex_;
  std::map<std::string, DatasetRef> datasets_;

  mutable std::mutex views_mutex_;
  std::map<std::string, ViewEntry> views_;

  // Admission budget (bytes). Guarded by admission_mutex_; admission_cv_
  // wakes waiters on release and on shutdown.
  std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  size_t admission_budget_ = 0;
  size_t admission_used_ = 0;

  // Deadline heap for the watchdog: (deadline, query). weak_ptr so a
  // finished query's ticket can die before its deadline fires.
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  using Deadline =
      std::pair<std::chrono::steady_clock::time_point, std::weak_ptr<JoinQuery>>;
  struct DeadlineLater {
    bool operator()(const Deadline& a, const Deadline& b) const {
      return a.first > b.first;
    }
  };
  std::priority_queue<Deadline, std::vector<Deadline>, DeadlineLater>
      deadlines_;

  // In-flight queries (weak: a finished ticket may be released by its
  // client before shutdown looks). Non-drain shutdown cancels them all.
  std::mutex running_mutex_;
  std::vector<std::weak_ptr<JoinQuery>> running_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{true};
  std::mutex shutdown_mutex_;
  bool shutdown_complete_ = false;  ///< Guarded by shutdown_mutex_.

  Gauge* queue_depth_gauge_;
  Gauge* running_gauge_;
  Counter* submitted_;
  Counter* completed_;
  Counter* failed_;
  Counter* cancelled_;
  Counter* admission_rejects_;
  Counter* admission_waits_;
  Counter* planned_;
  Histogram* latency_interactive_us_;
  Histogram* latency_batch_us_;
  Histogram* queue_wait_us_;
};

}  // namespace pbsm

#endif  // PBSM_SERVICE_JOIN_SERVICE_H_
