#include "service/shard_manager.h"

#include <cstdlib>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"
#include "storage/tuple.h"

namespace pbsm {

ShardManager::ShardManager(ShardManagerConfig config)
    : config_(std::move(config)) {
  const uint32_t n = std::max(1u, config_.num_shards);
  if (config_.scratch_dir.empty()) {
    char tmpl[] = "/tmp/pbsm_shards_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    base_dir_ = dir != nullptr ? dir : "/tmp/pbsm_shards_fallback";
    owns_base_dir_ = true;
  } else {
    base_dir_ = config_.scratch_dir;
  }
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->id = i;
    shard->dir = base_dir_ + "/shard" + std::to_string(i);
    shard->disk =
        std::make_unique<DiskManager>(shard->dir, config_.disk_model);
    shard->pool = std::make_unique<BufferPool>(
        shard->disk.get(), config_.shard_pool_bytes, config_.io_retry);
    shard->cache =
        std::make_unique<IndexCache>(shard->pool.get(), config_.cache);
    shards_.push_back(std::move(shard));
  }
  replicated_ = MetricsRegistry::Global().GetCounter(
      "service.shard.replicated_tuples");
}

ShardManager::~ShardManager() {
  // Drop dataset refs and caches before the pools (member order inside
  // Shard handles cache -> pool -> disk); then remove the scratch tree.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->datasets.clear();
  }
  shards_.clear();
  if (owns_base_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(base_dir_, ec);
  }
}

ShardLayout ShardManager::layout() const {
  std::lock_guard<std::mutex> lock(layout_mutex_);
  return layout_;
}

Status ShardManager::EnsureLayout(const HeapFile* heap,
                                  const RelationInfo& info) {
  std::lock_guard<std::mutex> lock(layout_mutex_);
  if (layout_frozen_) return Status::OK();
  if (num_shards() <= 1 || info.cardinality == 0 || info.universe.empty()) {
    // Degenerate first dataset: no balanced cut is computable. Freeze a
    // single-strip layout (everything routes to shard 0) — correct for any
    // later dataset, just unbalanced; callers should register a real
    // dataset first.
    layout_ = num_shards() <= 1 || info.universe.empty()
                  ? ShardLayout(info.universe, {})
                  : UniformShardLayout(info.universe, num_shards());
    layout_frozen_ = true;
    return Status::OK();
  }
  TraceSpan span("shard/compute_layout");
  SpatialHistogram hist(info.universe, config_.histogram_nx,
                        config_.histogram_ny);
  PBSM_RETURN_IF_ERROR(
      heap->Scan([&hist](Oid, const char* data, size_t size) -> Status {
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        hist.Add(tuple.geometry.Mbr());
        return Status::OK();
      }));
  layout_ = ComputeShardLayout(hist, num_shards());
  layout_frozen_ = true;
  return Status::OK();
}

Status ShardManager::RegisterDataset(const std::string& name,
                                     const HeapFile* heap,
                                     const RelationInfo& info) {
  if (heap == nullptr) {
    return Status::InvalidArgument("RegisterDataset: null heap for '" + name +
                                   "'");
  }
  std::lock_guard<std::mutex> register_lock(register_mutex_);
  PBSM_RETURN_IF_ERROR(EnsureLayout(heap, info));
  const ShardLayout layout = this->layout();  // Frozen: safe to copy once.

  TraceSpan span("shard/register");
  // Build every slice off to the side, publish at the end — a failed
  // registration must not leave some shards with the dataset and others
  // without (the scatter-gather correctness argument needs all-or-nothing).
  std::vector<std::unique_ptr<ShardDataset>> slices(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    slices[i] = std::make_unique<ShardDataset>();
    PBSM_ASSIGN_OR_RETURN(
        HeapFile slice_heap,
        HeapFile::Create(shards_[i]->pool.get(),
                         name + ".shard" + std::to_string(i)));
    slices[i]->heap = std::make_unique<HeapFile>(std::move(slice_heap));
    slices[i]->info.name = name;
  }

  uint64_t replicated_copies = 0;
  PBSM_RETURN_IF_ERROR(heap->Scan([&](Oid global_oid, const char* data,
                                      size_t size) -> Status {
    PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
    const Rect mbr = tuple.geometry.Mbr();
    const uint64_t points = tuple.geometry.num_points();
    const ShardLayout::ShardRange range = layout.Overlapping(mbr);
    for (uint32_t sh = range.first; sh <= range.last; ++sh) {
      ShardDataset& slice = *slices[sh];
      PBSM_ASSIGN_OR_RETURN(const Oid local_oid,
                            slice.heap->Append(data, size));
      slice.local_to_global.emplace(local_oid.Encode(), global_oid);
      slice.mbrs.emplace(local_oid.Encode(), mbr);
      slice.info.cardinality += 1;
      slice.info.total_points += points;
      slice.info.universe.Expand(mbr);
      slice.info.sum_mbr_width += mbr.width();
      slice.info.sum_mbr_height += mbr.height();
      if (sh != range.first) ++replicated_copies;
    }
    return Status::OK();
  }));
  replicated_->Add(replicated_copies);

  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardDataset& slice = *slices[i];
    slice.info.file = slice.heap->file();
    slice.info.total_bytes = slice.heap->bytes();
    if (slice.info.cardinality > 0 && !slice.info.universe.empty()) {
      SpatialHistogram hist(slice.info.universe, config_.histogram_nx,
                            config_.histogram_ny);
      for (const auto& [oid, mbr] : slice.mbrs) hist.Add(mbr);
      slice.histogram.emplace(std::move(hist));
    }
    // Make the slice durable so per-shard join I/O is measured on clean
    // pools (mirrors LoadRelation's FlushAll after a bulk load).
    PBSM_RETURN_IF_ERROR(shards_[i]->pool->FlushAll());
  }

  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.catalog.Register(slices[i]->info);
    shard.datasets[name] = ShardDatasetRef(std::move(slices[i]));
  }
  return Status::OK();
}

Status ShardManager::DropDataset(const std::string& name) {
  std::lock_guard<std::mutex> register_lock(register_mutex_);
  bool found = false;
  for (auto& shard : shards_) {
    ShardDatasetRef dropped;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      auto it = shard->datasets.find(name);
      if (it == shard->datasets.end()) continue;
      dropped = std::move(it->second);
      shard->datasets.erase(it);
    }
    found = true;
    // Cached trees over the slice are stale; running queries keep their
    // refs (IndexCache pinning contract). The slice heap itself stays on
    // the shard's disk until the manager dies — queries may still hold the
    // ShardDatasetRef and scan it.
    shard->cache->InvalidateFile(dropped->info.file);
    shard->cache->InvalidateDataset(name);
  }
  if (!found) {
    return Status::NotFound("dataset '" + name + "' not registered");
  }
  return Status::OK();
}

Result<ShardManager::ShardDatasetRef> ShardManager::FindDataset(
    uint32_t shard_id, const std::string& name) const {
  PBSM_CHECK(shard_id < shards_.size());
  const Shard& shard = *shards_[shard_id];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.datasets.find(name);
  if (it == shard.datasets.end()) {
    return Status::NotFound("dataset '" + name + "' not registered");
  }
  return it->second;
}

size_t ShardManager::total_pinned_frames() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->pool->pinned_frames();
  return total;
}

}  // namespace pbsm
