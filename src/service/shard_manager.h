#ifndef PBSM_SERVICE_SHARD_MANAGER_H_
#define PBSM_SERVICE_SHARD_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/selectivity.h"
#include "core/spatial_sharding.h"
#include "service/index_cache.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace pbsm {

struct ShardManagerConfig {
  uint32_t num_shards = 1;

  /// Buffer pool of EACH shard — shards do not share frames, so a sharded
  /// service multiplies its total memory by num_shards by design (that is
  /// the scaling story: independent pools stop serializing all traffic
  /// through one latch domain and one eviction clock).
  size_t shard_pool_bytes = 16ull << 20;

  /// Histogram grid used both for the one-time shard-layout computation and
  /// for each shard's per-slice planner histograms.
  uint32_t histogram_nx = 32;
  uint32_t histogram_ny = 32;

  /// Per-shard index cache (capacity is per shard, not global).
  IndexCache::Config cache;

  /// Disk model / retry policy of each shard's private DiskManager.
  DiskModel disk_model;
  IoRetryPolicy io_retry;

  /// Base directory for the per-shard scratch DiskManagers; empty picks a
  /// unique /tmp directory which is removed on destruction.
  std::string scratch_dir;
};

/// Owns the spatial shards of the sharded join service: N vertical strips
/// (ShardLayout) each backed by its own DiskManager + BufferPool + Catalog
/// + IndexCache, holding a replicated slice of every registered dataset.
///
/// Registration scans the caller's (global) heap once and routes each tuple
/// into every shard whose strip its MBR overlaps, building per-shard heap
/// slices, catalog entries, planner histograms, and the local-OID →
/// (global OID, MBR) maps the router's sinks use to translate results back
/// into the caller's OID space and to apply the border-ownership filter.
///
/// The layout is computed from the FIRST registered dataset's histogram
/// (replication-aware column loads; see ComputeShardLayout) and frozen: all
/// datasets must route under one layout or cross-dataset pairs could land
/// in a shard holding only one side. Register the dominant dataset first
/// for the best balance.
///
/// Thread-safety: registration calls are serialized internally; lookups and
/// shard access are safe concurrently with each other and with running
/// queries. A ShardDatasetRef returned by FindDataset stays valid after
/// DropDataset until released (queries keep their snapshot).
class ShardManager {
 public:
  /// One dataset's slice within one shard.
  struct ShardDataset {
    std::unique_ptr<HeapFile> heap;  ///< Shard-local replicated slice.
    RelationInfo info;               ///< Slice stats (global coordinates).
    std::optional<SpatialHistogram> histogram;  ///< Planner input.
    /// Slice Oid.Encode() -> Oid in the caller's global heap.
    std::unordered_map<uint64_t, Oid> local_to_global;
    /// Slice Oid.Encode() -> feature MBR (window + ownership filters).
    std::unordered_map<uint64_t, Rect> mbrs;
  };
  using ShardDatasetRef = std::shared_ptr<const ShardDataset>;

  /// One shard: a full private storage stack. Member order is destruction
  /// order in reverse — the cache must die before the pool (it drops index
  /// files through it), the pool before the disk.
  struct Shard {
    uint32_t id = 0;
    std::string dir;
    std::unique_ptr<DiskManager> disk;
    std::unique_ptr<BufferPool> pool;
    std::unique_ptr<IndexCache> cache;
    Catalog catalog;  ///< Guarded by mutex.
    mutable std::mutex mutex;
    std::map<std::string, ShardDatasetRef> datasets;  ///< Guarded by mutex.
  };

  explicit ShardManager(ShardManagerConfig config);
  ~ShardManager();

  ShardManager(const ShardManager&) = delete;
  ShardManager& operator=(const ShardManager&) = delete;

  /// Scans `heap` and replicates its tuples into the shards (see class
  /// comment). The first call freezes the shard layout from this dataset's
  /// histogram. The caller keeps ownership of `heap` but the shards copy
  /// every record, so it may be dropped afterwards.
  Status RegisterDataset(const std::string& name, const HeapFile* heap,
                         const RelationInfo& info);

  /// Removes `name` from every shard and invalidates cached indexes over
  /// its slices. Running queries finish against their snapshot refs.
  Status DropDataset(const std::string& name);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  /// The frozen layout (by value: freezing races a pre-registration read
  /// otherwise). Cheap — num_shards-1 doubles.
  ShardLayout layout() const;
  Shard& shard(uint32_t i) { return *shards_[i]; }
  const Shard& shard(uint32_t i) const { return *shards_[i]; }

  Result<ShardDatasetRef> FindDataset(uint32_t shard,
                                      const std::string& name) const;

  /// Sum of pinned frames across all shard pools — the leak check the
  /// sharded tests assert to zero after every query settles.
  size_t total_pinned_frames() const;

 private:
  /// Computes and freezes the layout on first registration.
  Status EnsureLayout(const HeapFile* heap, const RelationInfo& info);

  const ShardManagerConfig config_;
  std::string base_dir_;
  bool owns_base_dir_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex layout_mutex_;
  bool layout_frozen_ = false;        ///< Guarded by layout_mutex_.
  ShardLayout layout_;                ///< Immutable once frozen.
  std::mutex register_mutex_;         ///< Serializes registrations.

  Counter* replicated_;
};

}  // namespace pbsm

#endif  // PBSM_SERVICE_SHARD_MANAGER_H_
