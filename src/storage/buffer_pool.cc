#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace pbsm {

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t pool_bytes) : disk_(disk) {
  size_t n = pool_bytes / kPageSize;
  if (n == 0) n = 1;
  frames_.resize(n);
  for (Frame& f : frames_) {
    f.data = std::make_unique<char[]>(kPageSize);
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors on shutdown are not recoverable anyway.
  (void)FlushAll();
}

void BufferPool::Unpin(size_t frame, bool dirty) {
  Frame& f = frames_[frame];
  PBSM_CHECK(f.pin_count > 0) << "unpin of unpinned frame";
  --f.pin_count;
  if (dirty) f.dirty = true;
  f.referenced = true;
}

Result<size_t> BufferPool::GetVictimFrame() {
  // First pass: any unused frame.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].in_use) return i;
  }
  // Clock sweep: give each referenced unpinned frame one second chance.
  const size_t n = frames_.size();
  for (size_t sweep = 0; sweep < 2 * n; ++sweep) {
    Frame& f = frames_[clock_hand_];
    const size_t current = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (f.pin_count > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    if (f.dirty) {
      // SHORE behaviour (paper §4.6): when a dirty page must be flushed,
      // write *all* dirty unpinned pages in sorted (file, page) order so
      // consecutive pages go out in one near-sequential sweep.
      std::vector<size_t> dirty;
      for (size_t i = 0; i < frames_.size(); ++i) {
        if (frames_[i].in_use && frames_[i].dirty &&
            frames_[i].pin_count == 0) {
          dirty.push_back(i);
        }
      }
      std::sort(dirty.begin(), dirty.end(), [this](size_t a, size_t b) {
        return frames_[a].id < frames_[b].id;
      });
      for (size_t i : dirty) {
        PBSM_RETURN_IF_ERROR(
            disk_->WritePage(frames_[i].id, frames_[i].data.get()));
        frames_[i].dirty = false;
      }
    }
    page_table_.erase(f.id);
    f.in_use = false;
    return current;
  }
  return Status::ResourceExhausted("all buffer pool frames are pinned");
}

Result<PageHandle> BufferPool::FetchPage(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++hits_;
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.referenced = true;
    return PageHandle(this, it->second, id, f.data.get());
  }
  ++misses_;
  PBSM_ASSIGN_OR_RETURN(const size_t victim, GetVictimFrame());
  Frame& f = frames_[victim];
  PBSM_RETURN_IF_ERROR(disk_->ReadPage(id, f.data.get()));
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.referenced = true;
  f.in_use = true;
  page_table_[id] = victim;
  return PageHandle(this, victim, id, f.data.get());
}

Result<PageHandle> BufferPool::NewPage(FileId file) {
  PBSM_ASSIGN_OR_RETURN(const uint32_t page_no, disk_->AllocatePage(file));
  const PageId id{file, page_no};
  PBSM_ASSIGN_OR_RETURN(const size_t victim, GetVictimFrame());
  Frame& f = frames_[victim];
  std::memset(f.data.get(), 0, kPageSize);
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;  // Must reach disk even if never modified again.
  f.referenced = true;
  f.in_use = true;
  page_table_[id] = victim;
  PageHandle handle(this, victim, id, f.data.get());
  return handle;
}

Status BufferPool::FlushAll() {
  // SHORE-style: sort dirty pages so the flush is as sequential as possible.
  std::vector<size_t> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].in_use && frames_[i].dirty) dirty.push_back(i);
  }
  std::sort(dirty.begin(), dirty.end(), [this](size_t a, size_t b) {
    return frames_[a].id < frames_[b].id;
  });
  for (size_t i : dirty) {
    PBSM_RETURN_IF_ERROR(disk_->WritePage(frames_[i].id, frames_[i].data.get()));
    frames_[i].dirty = false;
  }
  return Status::OK();
}

Status BufferPool::DropFile(FileId file) {
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.in_use && f.id.file == file) {
      if (f.pin_count > 0) {
        return Status::FailedPrecondition("dropping file with pinned pages");
      }
      page_table_.erase(f.id);
      f.in_use = false;
      f.dirty = false;
    }
  }
  return disk_->DeleteFile(file);
}

}  // namespace pbsm
