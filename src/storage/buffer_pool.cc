#include "storage/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace pbsm {

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t pool_bytes,
                       IoRetryPolicy retry)
    : disk_(disk), retry_(retry) {
  size_t n = pool_bytes / kPageSize;
  if (n == 0) n = 1;
  frames_.resize(n);
  for (Frame& f : frames_) {
    f.data = std::make_unique<char[]>(kPageSize);
  }
  MetricsRegistry& metrics = MetricsRegistry::Global();
  m_hits_ = metrics.GetCounter("storage.bufferpool.hits");
  m_misses_ = metrics.GetCounter("storage.bufferpool.misses");
  m_evictions_ = metrics.GetCounter("storage.bufferpool.evictions");
  m_flush_batches_ = metrics.GetCounter("storage.bufferpool.flush_batches");
  m_flush_pages_ = metrics.GetCounter("storage.bufferpool.flush_pages");
  m_latch_waits_ = metrics.GetCounter("storage.bufferpool.latch_waits");
  m_io_retries_ = metrics.GetCounter("io.retries");
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors on shutdown are not recoverable anyway.
  (void)FlushAll();
}

uint64_t BufferPool::hit_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t BufferPool::miss_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

size_t BufferPool::pinned_frames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t pinned = 0;
  for (const Frame& f : frames_) {
    if (f.in_use && f.pin_count > 0) ++pinned;
  }
  return pinned;
}

namespace {
/// Transient device errors are worth retrying; everything else (corruption,
/// missing file, exhausted pool) is deterministic and retrying only burns
/// time.
bool IsRetryable(const Status& s) {
  return s.code() == StatusCode::kIoError;
}
}  // namespace

Status BufferPool::ReadWithRetry(PageId id, char* buf) {
  Status status;
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    status = disk_->ReadPage(id, buf);
    if (status.ok() || !IsRetryable(status)) return status;
    if (attempt == retry_.max_attempts) break;
    m_io_retries_->Add();
    std::this_thread::sleep_for(
        std::chrono::microseconds(attempt * retry_.backoff_us));
  }
  return status;
}

Status BufferPool::WriteWithRetry(PageId id, const char* buf) {
  Status status;
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    status = disk_->WritePage(id, buf);
    if (status.ok() || !IsRetryable(status)) return status;
    if (attempt == retry_.max_attempts) break;
    m_io_retries_->Add();
    std::this_thread::sleep_for(
        std::chrono::microseconds(attempt * retry_.backoff_us));
  }
  return status;
}

void BufferPool::Unpin(size_t frame, bool dirty) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[frame];
  PBSM_CHECK(f.pin_count > 0) << "unpin of unpinned frame";
  --f.pin_count;
  if (dirty) f.dirty = true;
  f.referenced = true;
}

Status BufferPool::FlushDirtyUnpinned(std::unique_lock<std::mutex>* lock) {
  // SHORE behaviour (paper §4.6): when a dirty page must be flushed, write
  // *all* dirty unpinned pages in sorted (file, page) order so consecutive
  // pages go out in one near-sequential sweep. Each frame is latched
  // (io_busy) before the lock is dropped so nothing pins or evicts it while
  // its bytes are in flight.
  std::vector<size_t> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.in_use && f.dirty && f.pin_count == 0 && !f.io_busy) {
      f.io_busy = true;
      dirty.push_back(i);
    }
  }
  std::sort(dirty.begin(), dirty.end(), [this](size_t a, size_t b) {
    return frames_[a].id < frames_[b].id;
  });

  m_flush_batches_->Add();
  m_flush_pages_->Add(dirty.size());

  lock->unlock();
  Status status;
  size_t written = 0;
  for (; written < dirty.size(); ++written) {
    Frame& f = frames_[dirty[written]];
    status = WriteWithRetry(f.id, f.data.get());
    if (!status.ok()) break;
  }
  lock->lock();
  for (size_t i = 0; i < dirty.size(); ++i) {
    Frame& f = frames_[dirty[i]];
    if (i < written) f.dirty = false;
    f.io_busy = false;
  }
  io_cv_.notify_all();
  return status;
}

Result<size_t> BufferPool::GetVictimFrame(std::unique_lock<std::mutex>* lock) {
  // The flush drops the lock, so frame states can change under us; restart
  // the selection after each flush round. Every flush cleans at least the
  // frame that triggered it, so the flush-retry bound is only hit when other
  // threads re-dirty frames faster than we can flush them.
  int flush_rounds = 0;
  while (true) {
    // First pass: any unused frame.
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (!frames_[i].in_use && !frames_[i].io_busy) return i;
    }
    // Clock sweep: give each referenced unpinned frame one second chance.
    const size_t n = frames_.size();
    bool flushed = false;
    bool io_in_flight = false;
    for (size_t sweep = 0; sweep < 2 * n; ++sweep) {
      Frame& f = frames_[clock_hand_];
      const size_t current = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % n;
      if (f.io_busy) {
        io_in_flight = true;
        continue;
      }
      if (f.pin_count > 0) continue;
      if (f.referenced) {
        f.referenced = false;
        continue;
      }
      if (f.dirty) {
        PBSM_RETURN_IF_ERROR(FlushDirtyUnpinned(lock));
        flushed = true;
        break;
      }
      page_table_.erase(f.id);
      f.in_use = false;
      m_evictions_->Add();
      return current;
    }
    if (flushed) {
      if (++flush_rounds >= 16) {
        return Status::ResourceExhausted(
            "buffer pool frames re-dirtied faster than they can be flushed");
      }
      continue;
    }
    if (io_in_flight) {
      // Every evictable frame is only transiently latched for in-flight I/O
      // (a flush round latches all dirty unpinned frames at once); wait for
      // a latch to clear and retry instead of failing spuriously.
      m_latch_waits_->Add();
      io_cv_.wait(*lock);
      continue;
    }
    return Status::ResourceExhausted("all buffer pool frames are pinned");
  }
}

Result<PageHandle> BufferPool::FetchPage(PageId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  bool counted = false;  // First probe decides whether this call hit/missed.
  while (true) {
    auto it = page_table_.find(id);
    if (it != page_table_.end()) {
      Frame& f = frames_[it->second];
      if (f.io_busy) {
        // Another thread is reading this page in (or flushing it); wait for
        // the latch, then re-probe — the frame may have been repurposed.
        m_latch_waits_->Add();
        io_cv_.wait(lock);
        continue;
      }
      if (!counted) {
        ++hits_;
        m_hits_->Add();
        counted = true;
      }
      ++f.pin_count;
      f.referenced = true;
      return PageHandle(this, it->second, id, f.data.get());
    }
    if (dropping_files_.count(id.file) > 0) {
      return Status::FailedPrecondition("fetch from file being dropped");
    }
    if (!counted) {
      ++misses_;
      m_misses_->Add();
      counted = true;
    }
    PBSM_ASSIGN_OR_RETURN(const size_t victim, GetVictimFrame(&lock));
    // GetVictimFrame may release the lock (flush writes, latch waits), so
    // another thread can have loaded `id` — or started dropping its file —
    // in the meantime. Re-probe before claiming the victim: claiming anyway
    // would publish a second mapping for `id` and orphan the live frame,
    // whose later eviction erases the wrong page-table entry. The victim
    // stays unused (in_use == false), so skipping it loses nothing.
    if (page_table_.count(id) > 0 || dropping_files_.count(id.file) > 0) {
      continue;
    }
    Frame& f = frames_[victim];
    f.id = id;
    f.pin_count = 1;
    f.dirty = false;
    f.referenced = true;
    f.in_use = true;
    f.io_busy = true;
    // Publish the mapping before the read so concurrent fetchers of the same
    // page wait on the latch instead of double-reading into a second frame.
    page_table_[id] = victim;
    lock.unlock();
    const Status read = ReadWithRetry(id, f.data.get());
    lock.lock();
    f.io_busy = false;
    if (!read.ok()) {
      page_table_.erase(id);
      f.in_use = false;
      f.pin_count = 0;
      io_cv_.notify_all();
      return read;
    }
    io_cv_.notify_all();
    return PageHandle(this, victim, id, f.data.get());
  }
}

Result<PageHandle> BufferPool::NewPage(FileId file) {
  PBSM_ASSIGN_OR_RETURN(const uint32_t page_no, disk_->AllocatePage(file));
  const PageId id{file, page_no};
  std::unique_lock<std::mutex> lock(mutex_);
  if (dropping_files_.count(file) > 0) {
    return Status::FailedPrecondition("new page in file being dropped");
  }
  PBSM_ASSIGN_OR_RETURN(const size_t victim, GetVictimFrame(&lock));
  Frame& f = frames_[victim];
  std::memset(f.data.get(), 0, kPageSize);
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;  // Must reach disk even if never modified again.
  f.referenced = true;
  f.in_use = true;
  page_table_[id] = victim;
  return PageHandle(this, victim, id, f.data.get());
}

Status BufferPool::FlushAll() {
  // SHORE-style: sort dirty pages so the flush is as sequential as possible.
  // Unlike the eviction flush this includes pinned pages — callers promise
  // quiescence (shutdown, checkpoints).
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<size_t> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.in_use && f.dirty && !f.io_busy) {
      f.io_busy = true;
      dirty.push_back(i);
    }
  }
  std::sort(dirty.begin(), dirty.end(), [this](size_t a, size_t b) {
    return frames_[a].id < frames_[b].id;
  });
  m_flush_batches_->Add();
  m_flush_pages_->Add(dirty.size());
  lock.unlock();
  Status status;
  size_t written = 0;
  for (; written < dirty.size(); ++written) {
    Frame& f = frames_[dirty[written]];
    status = WriteWithRetry(f.id, f.data.get());
    if (!status.ok()) break;
  }
  lock.lock();
  for (size_t i = 0; i < dirty.size(); ++i) {
    Frame& f = frames_[dirty[i]];
    if (i < written) f.dirty = false;
    f.io_busy = false;
  }
  io_cv_.notify_all();
  return status;
}

Status BufferPool::DropFile(FileId file) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.in_use && f.id.file == file) {
      if (f.pin_count > 0 || f.io_busy) {
        return Status::FailedPrecondition("dropping file with pinned pages");
      }
      page_table_.erase(f.id);
      f.in_use = false;
      f.dirty = false;
    }
  }
  // Block re-fetches of this file's pages until the on-disk delete finishes;
  // otherwise a concurrent FetchPage could re-load a page in the window and
  // leave a frame referencing a deleted file.
  dropping_files_.insert(file);
  lock.unlock();
  const Status status = disk_->DeleteFile(file);
  lock.lock();
  dropping_files_.erase(file);
  lock.unlock();
  if (status.ok()) {
    // Notify caches layered above the pool. Copy under the listener mutex,
    // invoke outside it: a listener may drop derived files (recursing into
    // DropFile) or unregister other listeners.
    std::vector<std::function<void(FileId)>> listeners;
    {
      std::lock_guard<std::mutex> guard(drop_listener_mutex_);
      listeners.reserve(drop_listeners_.size());
      for (const auto& [token, fn] : drop_listeners_) listeners.push_back(fn);
    }
    for (const auto& fn : listeners) fn(file);
  }
  return status;
}

uint64_t BufferPool::AddDropListener(std::function<void(FileId)> listener) {
  std::lock_guard<std::mutex> guard(drop_listener_mutex_);
  const uint64_t token = next_drop_listener_token_++;
  drop_listeners_.emplace_back(token, std::move(listener));
  return token;
}

void BufferPool::RemoveDropListener(uint64_t token) {
  std::lock_guard<std::mutex> guard(drop_listener_mutex_);
  for (auto it = drop_listeners_.begin(); it != drop_listeners_.end(); ++it) {
    if (it->first == token) {
      drop_listeners_.erase(it);
      return;
    }
  }
}

}  // namespace pbsm
