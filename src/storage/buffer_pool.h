#ifndef PBSM_STORAGE_BUFFER_POOL_H_
#define PBSM_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace pbsm {

class BufferPool;

/// RAII pin on a buffered page. Unpins on destruction. Move-only.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame, PageId id, char* data)
      : pool_(pool), frame_(frame), id_(id), data_(data) {}
  ~PageHandle() { Release(); }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& o) noexcept
      : pool_(o.pool_),
        frame_(o.frame_),
        id_(o.id_),
        data_(o.data_),
        dirty_(o.dirty_) {
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.dirty_ = false;
  }
  PageHandle& operator=(PageHandle&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      id_ = o.id_;
      data_ = o.data_;
      dirty_ = o.dirty_;
      o.pool_ = nullptr;
      o.data_ = nullptr;
      o.dirty_ = false;
    }
    return *this;
  }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const { return data_; }
  /// Grants mutable access and marks the page dirty.
  char* mutable_data() {
    dirty_ = true;
    return data_;
  }

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_;
  char* data_ = nullptr;
  bool dirty_ = false;
};

/// Fixed-capacity page cache with CLOCK replacement, safe for concurrent use
/// from many threads.
///
/// Mirrors the SHORE behaviours the paper leans on:
///  * operators do not manage their own partition buffers — they pin/unpin
///    and the pool decides what to evict;
///  * when dirty pages must be flushed, the pool writes them in sorted
///    (file, page) order to turn random evictions into near-sequential disk
///    writes (§4.6 of the paper).
///
/// Latching protocol: one pool mutex guards the page table, the frame
/// metadata (pin counts, dirty/reference bits) and the clock hand; it is
/// never held across disk I/O. A frame doing I/O (being read in on a miss,
/// or written out during an eviction flush) is marked `io_busy`, which acts
/// as the per-frame latch: the miss path skips io_busy frames during victim
/// selection, and the hit path waits on `io_cv_` until the latch clears, so
/// page bytes are never read or replaced mid-transfer. Pinned frames are
/// never evicted, so the data pointer inside a PageHandle stays valid
/// without holding any lock — concurrent readers of a pinned page are safe;
/// writers of the *same* page must coordinate externally (the executors
/// only ever write thread-private pages).
/// How the pool handles transient physical I/O failures (kIoError): each
/// failed read/write is retried up to `max_attempts` total attempts with
/// linear backoff. Non-retryable codes (Corruption from a torn page,
/// NotFound, OutOfRange, ResourceExhausted) fail immediately — retrying a
/// torn page re-reads the same torn bytes.
struct IoRetryPolicy {
  int max_attempts = 4;
  int backoff_us = 50;  ///< Sleep attempt * backoff_us between attempts.
};

class BufferPool {
 public:
  /// `pool_bytes` is rounded down to whole pages (>= 1 page enforced).
  BufferPool(DiskManager* disk, size_t pool_bytes,
             IoRetryPolicy retry = IoRetryPolicy());
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageHandle> FetchPage(PageId id);

  /// Allocates a fresh page in `file`, pins it zero-filled and dirty.
  Result<PageHandle> NewPage(FileId file);

  /// Writes back every dirty page (sorted order), keeping contents cached.
  /// Requires that no concurrent thread is mutating pinned pages.
  Status FlushAll();

  /// Drops all frames belonging to `file` without writing them back, then
  /// deletes the file. Used for temporary spools. Fails with
  /// FailedPrecondition if any of the file's pages is pinned or mid-I/O;
  /// concurrent FetchPage calls for the file fail the same way until the
  /// on-disk delete completes.
  Status DropFile(FileId file);

  size_t capacity_pages() const { return frames_.size(); }
  size_t pool_bytes() const { return frames_.size() * kPageSize; }
  uint64_t hit_count() const;
  uint64_t miss_count() const;
  /// Number of frames with a nonzero pin count — zero once every PageHandle
  /// is released, including down error-propagation paths (the fault tests
  /// assert this after every failed join).
  size_t pinned_frames() const;

  /// Registers a callback invoked after DropFile successfully deletes
  /// `file` — the hook caches above the pool (e.g. the service IndexCache)
  /// use to invalidate entries derived from a dropped dataset. Returns a
  /// token for RemoveDropListener. Listeners run on the dropping thread,
  /// outside the pool mutex, so they may themselves call back into the
  /// pool (e.g. drop a derived index file).
  uint64_t AddDropListener(std::function<void(FileId)> listener);
  void RemoveDropListener(uint64_t token);

  DiskManager* disk() const { return disk_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id;
    std::unique_ptr<char[]> data;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool referenced = false;
    bool in_use = false;
    bool io_busy = false;  ///< Per-frame latch: disk I/O in flight.
  };

  /// Finds a victim frame (clock sweep), flushing dirty candidates if
  /// needed. Called with *lock held; may release it around disk writes.
  Result<size_t> GetVictimFrame(std::unique_lock<std::mutex>* lock);

  /// Writes out all clean-able dirty frames in sorted (file, page) order.
  /// Called with *lock held; releases it around the writes.
  Status FlushDirtyUnpinned(std::unique_lock<std::mutex>* lock);

  /// disk_->ReadPage / WritePage with the retry policy applied. Called
  /// without the pool mutex (the frame involved is io_busy-latched).
  Status ReadWithRetry(PageId id, char* buf);
  Status WriteWithRetry(PageId id, const char* buf);

  void Unpin(size_t frame, bool dirty);

  DiskManager* disk_;
  IoRetryPolicy retry_;
  std::vector<Frame> frames_;

  mutable std::mutex mutex_;
  /// Signalled whenever a frame's io_busy latch clears.
  std::condition_variable io_cv_;
  std::unordered_map<PageId, size_t, PageIdHash> page_table_;
  /// Files whose DropFile is between frame purge and on-disk delete; fetches
  /// of their pages are rejected so no frame can reference a deleted file.
  std::unordered_set<FileId> dropping_files_;
  /// Drop listeners, guarded by their own mutex (never held together with
  /// mutex_) so callbacks can re-enter the pool.
  std::mutex drop_listener_mutex_;
  std::vector<std::pair<uint64_t, std::function<void(FileId)>>>
      drop_listeners_;
  uint64_t next_drop_listener_token_ = 1;
  size_t clock_hand_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;

  // Global-registry counters ("storage.bufferpool.*"), resolved once at
  // construction. latch_waits counts io_cv_ sleeps (fetch of an in-flight
  // page, or victim search with all evictable frames latched).
  Counter* m_hits_;
  Counter* m_misses_;
  Counter* m_evictions_;
  Counter* m_flush_batches_;
  Counter* m_flush_pages_;
  Counter* m_latch_waits_;
  Counter* m_io_retries_;
};

}  // namespace pbsm

#endif  // PBSM_STORAGE_BUFFER_POOL_H_
