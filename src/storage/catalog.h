#ifndef PBSM_STORAGE_CATALOG_H_
#define PBSM_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "geom/rect.h"
#include "storage/page.h"

namespace pbsm {

/// Catalog statistics for one stored relation.
///
/// `universe` is the minimum cover of the spatial join attribute across all
/// tuples — the statistic the PBSM partitioner reads (paper §3.1: "From the
/// catalog information for the joining attribute of input R, the algorithm
/// estimates the universe of the input").
struct RelationInfo {
  std::string name;
  FileId file = kInvalidFileId;
  uint64_t cardinality = 0;
  uint64_t total_bytes = 0;
  uint64_t total_points = 0;  ///< Sum of geometry vertex counts.
  Rect universe;
  /// Sums of per-feature MBR extents (loader-computed). avg width x avg
  /// height against the universe area gives the MBR density the planner's
  /// catalog-only selectivity fallback uses when no histogram is built.
  double sum_mbr_width = 0.0;
  double sum_mbr_height = 0.0;

  double avg_points() const {
    return cardinality == 0
               ? 0.0
               : static_cast<double>(total_points) /
                     static_cast<double>(cardinality);
  }

  double avg_mbr_width() const {
    return cardinality == 0 ? 0.0
                            : sum_mbr_width / static_cast<double>(cardinality);
  }
  double avg_mbr_height() const {
    return cardinality == 0
               ? 0.0
               : sum_mbr_height / static_cast<double>(cardinality);
  }
};

/// In-memory system catalog mapping relation names to statistics.
class Catalog {
 public:
  /// Registers or replaces a relation entry.
  void Register(const RelationInfo& info) { relations_[info.name] = info; }

  Result<RelationInfo> Get(const std::string& name) const {
    auto it = relations_.find(name);
    if (it == relations_.end()) {
      return Status::NotFound("relation '" + name + "' not in catalog");
    }
    return it->second;
  }

  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  const std::map<std::string, RelationInfo>& relations() const {
    return relations_;
  }

 private:
  std::map<std::string, RelationInfo> relations_;
};

}  // namespace pbsm

#endif  // PBSM_STORAGE_CATALOG_H_
