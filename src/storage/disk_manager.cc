#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"

namespace pbsm {

DiskManager::DiskManager(std::string directory, DiskModel model)
    : directory_(std::move(directory)), model_(model) {
  ::mkdir(directory_.c_str(), 0755);
  MetricsRegistry& metrics = MetricsRegistry::Global();
  m_reads_ = metrics.GetCounter("storage.disk.reads");
  m_writes_ = metrics.GetCounter("storage.disk.writes");
  m_seq_reads_ = metrics.GetCounter("storage.disk.seq_reads");
  m_seq_writes_ = metrics.GetCounter("storage.disk.seq_writes");
  m_torn_pages_ = metrics.GetCounter("io.torn_pages_detected");
}

DiskManager::~DiskManager() {
  for (auto& [id, state] : files_) {
    if (state.fd >= 0) ::close(state.fd);
  }
}

Result<FileId> DiskManager::OpenNewFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  const FileId id = next_file_id_++;
  FileState state;
  state.fd = fd;
  state.path = path;
  state.num_pages = 0;
  files_.emplace(id, std::move(state));
  return id;
}

Result<FileId> DiskManager::CreateFile(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return OpenNewFile(directory_ + "/" + name);
}

Result<FileId> DiskManager::CreateTempFile() {
  std::lock_guard<std::mutex> lock(mutex_);
  return OpenNewFile(directory_ + "/tmp_" + std::to_string(temp_counter_++) +
                     ".spool");
}

Status DiskManager::DeleteFile(FileId file) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("file id " + std::to_string(file));
  }
  ::close(it->second.fd);
  ::unlink(it->second.path.c_str());
  files_.erase(it);
  for (auto cs = page_checksums_.begin(); cs != page_checksums_.end();) {
    if (cs->first.file == file) {
      cs = page_checksums_.erase(cs);
    } else {
      ++cs;
    }
  }
  return Status::OK();
}

DiskManager::FileState* DiskManager::GetFile(FileId file) {
  auto it = files_.find(file);
  return it == files_.end() ? nullptr : &it->second;
}

const DiskManager::FileState* DiskManager::GetFile(FileId file) const {
  auto it = files_.find(file);
  return it == files_.end() ? nullptr : &it->second;
}

void DiskManager::Account(PageId id, bool is_write) {
  const bool sequential = has_last_access_ && last_access_.file == id.file &&
                          id.page_no == last_access_.page_no + 1;
  if (is_write) {
    ++stats_.writes;
    m_writes_->Add();
    if (sequential) {
      ++stats_.sequential_writes;
      m_seq_writes_->Add();
    }
  } else {
    ++stats_.reads;
    m_reads_->Add();
    if (sequential) {
      ++stats_.sequential_reads;
      m_seq_reads_->Add();
    }
  }
  stats_.modeled_seconds += model_.PageCost(sequential);
  last_access_ = id;
  has_last_access_ = true;
}

Result<uint32_t> DiskManager::AllocatePage(FileId file) {
  std::lock_guard<std::mutex> lock(mutex_);
  FileState* state = GetFile(file);
  if (state == nullptr) {
    return Status::NotFound("file id " + std::to_string(file));
  }
  if (fault_injector_ != nullptr) {
    FaultInjector::Decision d =
        fault_injector_->Decide(FaultOp::kAllocate, PageId{file, 0});
    if (!d.status.ok()) return d.status;
  }
  const uint32_t page_no = state->num_pages++;
  // The page is materialized lazily; ftruncate extends with zeros.
  if (::ftruncate(state->fd,
                  static_cast<off_t>(state->num_pages) * kPageSize) != 0) {
    --state->num_pages;
    return Status::IoError("ftruncate: " + std::string(std::strerror(errno)));
  }
  return page_no;
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  std::lock_guard<std::mutex> lock(mutex_);
  FileState* state = GetFile(id.file);
  if (state == nullptr) {
    return Status::NotFound("file id " + std::to_string(id.file));
  }
  if (id.page_no >= state->num_pages) {
    return Status::OutOfRange("page " + std::to_string(id.page_no) +
                              " beyond file end");
  }
  if (fault_injector_ != nullptr) {
    FaultInjector::Decision d = fault_injector_->Decide(FaultOp::kRead, id);
    if (!d.status.ok()) return d.status;
  }
  const ssize_t n = ::pread(state->fd, buf, kPageSize,
                            static_cast<off_t>(id.page_no) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pread returned " + std::to_string(n));
  }
  // Verify against the checksum of the last intended write (if any): a
  // mismatch means the medium holds bytes nobody handed to WritePage — a
  // torn write. Not retryable: re-reading yields the same torn bytes.
  auto cs = page_checksums_.find(id);
  if (cs != page_checksums_.end() && Crc32c(buf, kPageSize) != cs->second) {
    m_torn_pages_->Add();
    return Status::Corruption(
        "page checksum mismatch (torn write): file " +
        std::to_string(id.file) + " page " + std::to_string(id.page_no));
  }
  Account(id, /*is_write=*/false);
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  std::lock_guard<std::mutex> lock(mutex_);
  FileState* state = GetFile(id.file);
  if (state == nullptr) {
    return Status::NotFound("file id " + std::to_string(id.file));
  }
  if (id.page_no >= state->num_pages) {
    return Status::OutOfRange("page " + std::to_string(id.page_no) +
                              " beyond file end");
  }
  size_t bytes_to_write = kPageSize;
  if (fault_injector_ != nullptr) {
    FaultInjector::Decision d = fault_injector_->Decide(FaultOp::kWrite, id);
    if (!d.status.ok()) return d.status;
    if (d.torn) bytes_to_write = d.torn_bytes;
  }
  const ssize_t n = ::pwrite(state->fd, buf, bytes_to_write,
                             static_cast<off_t>(id.page_no) * kPageSize);
  if (n != static_cast<ssize_t>(bytes_to_write)) {
    return Status::IoError("pwrite returned " + std::to_string(n));
  }
  // Record the checksum of the *intended* page contents, torn or not: a
  // torn write reports success (as a crash mid-write would), and the
  // recorded checksum is what later exposes it at read time.
  page_checksums_[id] = Crc32c(buf, kPageSize);
  Account(id, /*is_write=*/true);
  return Status::OK();
}

Result<uint32_t> DiskManager::NumPages(FileId file) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const FileState* state = GetFile(file);
  if (state == nullptr) {
    return Status::NotFound("file id " + std::to_string(file));
  }
  return state->num_pages;
}

Result<uint64_t> DiskManager::FileBytes(FileId file) const {
  PBSM_ASSIGN_OR_RETURN(const uint32_t pages, NumPages(file));
  return static_cast<uint64_t>(pages) * kPageSize;
}

}  // namespace pbsm
