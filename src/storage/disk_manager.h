#ifndef PBSM_STORAGE_DISK_MANAGER_H_
#define PBSM_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/fault_injector.h"
#include "storage/page.h"

namespace pbsm {

/// Parameters of the simulated disk used to convert physical page I/O counts
/// into seconds. Defaults approximate the paper's 1996-era 2 GB SCSI Seagate
/// ST12400N: ~11 ms average positioning time, ~3.5 MB/s sustained transfer.
///
/// Modern NVMe hardware would hide the buffer-pool effects the paper studies;
/// costing counted I/Os with period-accurate constants restores the paper's
/// CPU-vs-I/O balance while the real file I/O still exercises the full code
/// path.
struct DiskModel {
  double seek_ms = 11.0;          ///< Average seek + rotational delay.
  double transfer_mb_per_s = 3.5; ///< Sustained sequential transfer rate.

  /// Modeled seconds for one page access.
  double PageCost(bool sequential) const {
    const double transfer_s =
        static_cast<double>(kPageSize) / (transfer_mb_per_s * 1024 * 1024);
    return transfer_s + (sequential ? 0.0 : seek_ms / 1000.0);
  }
};

/// Physical I/O counters plus modeled elapsed time.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sequential_reads = 0;
  uint64_t sequential_writes = 0;
  double modeled_seconds = 0.0;

  uint64_t total() const { return reads + writes; }
  uint64_t random_reads() const { return reads - sequential_reads; }
  uint64_t random_writes() const { return writes - sequential_writes; }

  IoStats& operator-=(const IoStats& o) {
    reads -= o.reads;
    writes -= o.writes;
    sequential_reads -= o.sequential_reads;
    sequential_writes -= o.sequential_writes;
    modeled_seconds -= o.modeled_seconds;
    return *this;
  }
  friend IoStats operator-(IoStats a, const IoStats& b) { return a -= b; }
};

/// Owns the database files and performs all physical page I/O.
///
/// Every read/write is classified sequential (the page immediately follows
/// the previous access on the same device) or random, counted in IoStats,
/// and costed with the DiskModel. The classification is device-wide, not
/// per-file — interleaved access to two files destroys sequentiality exactly
/// as it did on the paper's single data disk.
///
/// Thread-safe: a single mutex serialises file-table mutation, page I/O and
/// stats accounting. Serialising the I/O itself is deliberate — it models
/// the one spindle of the paper's machine, and keeps the device-wide
/// sequentiality classification meaningful under concurrency.
///
/// Fault tolerance: an optional FaultInjector is consulted before every
/// physical operation (deterministic scripted failures for testing), and a
/// CRC-32C checksum of every written page is kept and verified on read, so
/// torn writes surface as Status::Corruption instead of silently feeding
/// garbage to the operators. See DESIGN.md "Fault injection & error
/// propagation".
class DiskManager {
 public:
  /// Files are created under `directory` (created if absent).
  explicit DiskManager(std::string directory, DiskModel model = DiskModel());
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Creates (truncates) a file and returns its id.
  Result<FileId> CreateFile(const std::string& name);

  /// Creates a uniquely named temporary file.
  Result<FileId> CreateTempFile();

  /// Closes and removes the file from disk.
  Status DeleteFile(FileId file);

  /// Appends a zeroed page; returns its page number.
  Result<uint32_t> AllocatePage(FileId file);

  /// Reads page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf);

  /// Writes kPageSize bytes from `buf` to page `id`.
  Status WritePage(PageId id, const char* buf);

  /// Number of pages currently allocated in `file`.
  Result<uint32_t> NumPages(FileId file) const;

  /// File size in bytes.
  Result<uint64_t> FileBytes(FileId file) const;

  /// Installs (or clears, with nullptr) a fault injector consulted before
  /// every physical read/write/allocate. Shared ownership so test scenarios
  /// can keep inspecting the injector after handing it over.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    std::lock_guard<std::mutex> lock(mutex_);
    fault_injector_ = std::move(injector);
  }
  std::shared_ptr<FaultInjector> fault_injector() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return fault_injector_;
  }

  IoStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = IoStats();
  }
  const DiskModel& model() const { return model_; }

  const std::string& directory() const { return directory_; }

 private:
  struct FileState {
    int fd = -1;
    std::string path;
    uint32_t num_pages = 0;
  };

  Result<FileId> OpenNewFile(const std::string& path);
  FileState* GetFile(FileId file);
  const FileState* GetFile(FileId file) const;
  void Account(PageId id, bool is_write);

  std::string directory_;
  DiskModel model_;
  mutable std::mutex mutex_;
  std::unordered_map<FileId, FileState> files_;
  FileId next_file_id_ = 1;
  uint64_t temp_counter_ = 0;
  IoStats stats_;
  /// Optional deterministic fault source (see fault_injector.h).
  std::shared_ptr<FaultInjector> fault_injector_;
  /// CRC-32C of the last *intended* contents of every page written through
  /// WritePage. Verified on every ReadPage; a mismatch means the on-disk
  /// bytes diverged from what the writer handed us — a torn write (injected
  /// or real) — and surfaces as Status::Corruption. Pages that were only
  /// ftruncate-extended (allocated, never written) have no entry and are
  /// not checked.
  std::unordered_map<PageId, uint32_t, PageIdHash> page_checksums_;
  // Last physical page touched on the (single, shared) device.
  PageId last_access_;
  bool has_last_access_ = false;

  // Global-registry mirrors of stats_, resolved once at construction
  // ("storage.disk.*"; see DESIGN.md "Observability").
  Counter* m_reads_;
  Counter* m_writes_;
  Counter* m_seq_reads_;
  Counter* m_seq_writes_;
  Counter* m_torn_pages_;
};

}  // namespace pbsm

#endif  // PBSM_STORAGE_DISK_MANAGER_H_
